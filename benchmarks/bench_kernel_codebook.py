"""Codebook-kernel bench — precomputed code→noise tables vs live datapath.

Seeds the perf trajectory for the sampling kernel (docs/performance.md):
times the resampling arm at 1M draws under the hardware (CORDIC) log
datapath with the codebook kernel against the live per-draw datapath,
asserts the ≥3× floor, and times raw ``sample_codes`` for both log
back-ends plus the batched-vs-scalar fleet epoch.  Machine-readable
results land in ``BENCH_kernels.json`` at the repo root so future PRs
can track regressions; the human-readable table goes to
``benchmarks/results/`` like every other bench.
"""

import json
import pathlib
import time

import numpy as np

from repro.aggregation import run_fleet
from repro.mechanisms import ResamplingMechanism, SensorSpec
from repro.rng import CordicLn, FxpLaplaceConfig, FxpLaplaceRng, NumpySource
from repro.rng.codebook import codebook_cache
from repro.runtime import ReleasePipeline

from conftest import record_experiment

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_JSON = REPO_ROOT / "BENCH_kernels.json"

SENSOR = SensorSpec(0.0, 10.0)
EPSILON = 0.5
INPUT_BITS = 14
N_DRAWS = 1_000_000
MIN_SPEEDUP = 3.0

FLEET_DEVICES = 2_000
FLEET_EPOCHS = 3


def _write_results(section: str, payload: dict) -> None:
    """Merge one section into BENCH_kernels.json (schema-stamped)."""
    data = {"schema": 1}
    if RESULTS_JSON.exists():
        try:
            data = json.loads(RESULTS_JSON.read_text())
        except json.JSONDecodeError:
            pass
    data["schema"] = 1
    data[section] = payload
    RESULTS_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def bench_kernel_resampling_arm(benchmark):
    """Resampling-arm releases at 1M draws: codebook must be ≥3× live.

    The hardware-faithful CORDIC logarithm is the datapath the codebook
    collapses into a gather; the live arm re-runs the CORDIC iteration
    on every draw and every resample round.
    """
    backend = CordicLn()
    truth = np.random.default_rng(11).uniform(1.0, 9.0, N_DRAWS)

    def build(kernel):
        return ResamplingMechanism(
            SENSOR,
            EPSILON,
            input_bits=INPUT_BITS,
            log_backend=backend,
            kernel=kernel,
            pipeline=ReleasePipeline(),
        )

    def run():
        mech_cb = build("codebook")
        mech_live = build("live")
        # Warm both arms (table build / numpy dispatch) outside the timing.
        mech_cb.release(truth[:1000])
        mech_live.release(truth[:1000])
        t0 = time.perf_counter()
        out_cb = mech_cb.release(truth)
        t_cb = time.perf_counter() - t0
        t0 = time.perf_counter()
        out_live = mech_live.release(truth)
        t_live = time.perf_counter() - t0
        return t_cb, t_live, out_cb.event, out_live.event

    t_cb, t_live, ev_cb, ev_live = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = t_live / t_cb
    _write_results(
        "resampling_arm",
        {
            "backend": "cordic",
            "input_bits": INPUT_BITS,
            "samples": N_DRAWS,
            "draws_codebook": ev_cb.draws,
            "draws_live": ev_live.draws,
            "codebook_s": round(t_cb, 4),
            "live_s": round(t_live, 4),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SPEEDUP,
        },
    )
    record_experiment(
        "kernel_codebook_resampling",
        "\n".join(
            [
                f"resampling arm, {N_DRAWS} samples, Bu={INPUT_BITS}, CORDIC log",
                f"live datapath : {t_live:.3f} s ({ev_live.draws} draws)",
                f"codebook      : {t_cb:.3f} s ({ev_cb.draws} draws)",
                f"speedup       : {speedup:.1f}x (floor {MIN_SPEEDUP:.0f}x)",
                f"kernels       : {ev_cb.kernel} vs {ev_live.kernel}",
            ]
        ),
    )
    assert ev_cb.kernel == "codebook" and ev_live.kernel == "live"
    assert speedup >= MIN_SPEEDUP, f"codebook kernel only {speedup:.1f}x faster"


def bench_kernel_sample_codes(benchmark):
    """Raw ``sample_codes`` timing, codebook vs live, both log back-ends."""
    rows = {}

    def run():
        for name, backend in (("exact", None), ("cordic", CordicLn())):
            cfg = FxpLaplaceConfig(
                input_bits=INPUT_BITS,
                output_bits=20,
                delta=SENSOR.d / 64.0,
                lam=SENSOR.d / EPSILON,
            )
            timings = {}
            for kernel in ("codebook", "live"):
                rng = FxpLaplaceRng(
                    cfg, source=NumpySource(seed=3), log_backend=backend,
                    kernel=kernel,
                )
                rng.sample_codes(1000)  # warm (table build / dispatch)
                t0 = time.perf_counter()
                rng.sample_codes(N_DRAWS)
                timings[kernel] = time.perf_counter() - t0
            rows[name] = timings
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    payload = {"samples": N_DRAWS, "input_bits": INPUT_BITS}
    for backend, t in rows.items():
        payload[backend] = {
            "codebook_s": round(t["codebook"], 4),
            "live_s": round(t["live"], 4),
            "speedup": round(t["live"] / t["codebook"], 2),
        }
    _write_results("sample_codes", payload)
    record_experiment(
        "kernel_codebook_sample_codes",
        "\n".join(
            [f"sample_codes, {N_DRAWS} draws, Bu={INPUT_BITS}"]
            + [
                f"{name:6s}: codebook {t['codebook'] * 1e3:7.1f} ms, "
                f"live {t['live'] * 1e3:7.1f} ms "
                f"({t['live'] / t['codebook']:.1f}x)"
                for name, t in rows.items()
            ]
        ),
    )
    # The CORDIC datapath is where tables shine; the exact-log path must
    # at minimum not regress.
    assert rows["cordic"]["live"] / rows["cordic"]["codebook"] >= MIN_SPEEDUP
    assert rows["exact"]["codebook"] <= rows["exact"]["live"] * 1.25


def bench_kernel_fleet_paths(benchmark):
    """Fleet epoch timings under the codebook kernel, batched vs scalar."""
    truth = np.random.default_rng(5).uniform(
        2.0, 8.0, size=(FLEET_EPOCHS, FLEET_DEVICES)
    )
    kwargs = dict(
        epsilon=EPSILON,
        source_seed=7,
        input_bits=13,
        output_bits=18,
        delta=10 / 64,
        pipeline=ReleasePipeline(),
    )

    def run():
        t0 = time.perf_counter()
        batched = run_fleet(
            truth, SENSOR, rng=np.random.default_rng(4), batched=True, **kwargs
        )
        t_batched = time.perf_counter() - t0
        t0 = time.perf_counter()
        scalar = run_fleet(
            truth, SENSOR, rng=np.random.default_rng(4), batched=False, **kwargs
        )
        t_scalar = time.perf_counter() - t0
        identical = all(
            np.array_equal(batched.server.values(e), scalar.server.values(e))
            for e in batched.server.epochs
        )
        return t_batched, t_scalar, identical

    t_batched, t_scalar, identical = benchmark.pedantic(run, rounds=1, iterations=1)
    _write_results(
        "fleet",
        {
            "devices": FLEET_DEVICES,
            "epochs": FLEET_EPOCHS,
            "batched_s": round(t_batched, 4),
            "scalar_s": round(t_scalar, 4),
            "bit_identical": identical,
            "cache_stats": codebook_cache().stats(),
        },
    )
    record_experiment(
        "kernel_codebook_fleet",
        "\n".join(
            [
                f"fleet {FLEET_DEVICES} devices x {FLEET_EPOCHS} epochs, "
                "codebook kernel",
                f"batched : {t_batched:.3f} s",
                f"scalar  : {t_scalar:.3f} s",
                "outputs : " + ("bit-identical" if identical else "MISMATCH"),
            ]
        ),
    )
    assert identical
