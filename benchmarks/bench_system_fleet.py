"""System bench — the full Fig. 2(b) stack vs the analytic prediction.

Runs the device-fleet → untrusted-aggregator pipeline at several fleet
sizes and compares the measured mean-query error against the closed-form
prediction ``2λ/√(πN)``.  The theory line is the deployment-sizing tool
(`devices_for_target_mae`); the bench shows the end-to-end system —
guards, grids, budgets and all — actually sits on it.
"""

import numpy as np

from repro.analysis import predicted_mean_mae, render_series
from repro.aggregation import run_fleet
from repro.mechanisms import SensorSpec

from conftest import record_experiment

SENSOR = SensorSpec(0.0, 10.0)
EPSILON = 0.5
FLEET_SIZES = (100, 300, 1000, 3000)
EPOCHS = 6


def bench_system_fleet_vs_theory(benchmark):
    lam = SENSOR.d / EPSILON

    def run():
        measured = []
        for n in FLEET_SIZES:
            rng = np.random.default_rng(n)
            truth = rng.uniform(3.0, 7.0, size=(EPOCHS, n))
            result = run_fleet(
                truth,
                SENSOR,
                epsilon=EPSILON,
                rng=np.random.default_rng(n + 1),
                input_bits=13,
                output_bits=18,
                delta=10 / 64,
            )
            measured.append(result.mean_abs_error)
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    predicted = [predicted_mean_mae(lam, n) for n in FLEET_SIZES]

    # Thresholding truncates the noise slightly, so measured can sit a
    # bit under the untruncated prediction; both must scale as 1/sqrt(N).
    ratios = [m / p for m, p in zip(measured, predicted)]
    ok = all(0.3 < r < 2.0 for r in ratios)
    text = "\n".join(
        [
            render_series(
                "devices",
                list(FLEET_SIZES),
                [
                    ("measured fleet MAE", [f"{v:.4f}" for v in measured]),
                    ("predicted 2λ/√(πN)", [f"{v:.4f}" for v in predicted]),
                    ("ratio", [f"{r:.2f}" for r in ratios]),
                ],
                title=(
                    f"system fleet vs theory: mean-query MAE, ε={EPSILON}, "
                    f"{EPOCHS} epochs per point"
                ),
            ),
            "",
            "expected: the end-to-end system tracks the analytic 1/√N law "
            "within truncation effects — " + ("CONFIRMED" if ok else "MISMATCH"),
        ]
    )
    record_experiment("system_fleet_vs_theory", text)
    assert ok
