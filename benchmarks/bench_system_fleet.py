"""System bench — the full Fig. 2(b) stack vs the analytic prediction.

Runs the device-fleet → untrusted-aggregator pipeline at several fleet
sizes and compares the measured mean-query error against the closed-form
prediction ``2λ/√(πN)``.  The theory line is the deployment-sizing tool
(`devices_for_target_mae`); the bench shows the end-to-end system —
guards, grids, budgets and all — actually sits on it.
"""

import time

import numpy as np

from repro.analysis import predicted_mean_mae, render_series
from repro.aggregation import run_fleet
from repro.mechanisms import SensorSpec

from conftest import record_experiment

SENSOR = SensorSpec(0.0, 10.0)
EPSILON = 0.5
FLEET_SIZES = (100, 300, 1000, 3000)
EPOCHS = 6

# Batched-vs-scalar comparison (one pipeline release per epoch vs one
# per device per epoch).
SPEEDUP_DEVICES = 10_000
SPEEDUP_EPOCHS = 3
MIN_SPEEDUP = 5.0


def bench_system_fleet_vs_theory(benchmark):
    lam = SENSOR.d / EPSILON

    def run():
        measured = []
        for n in FLEET_SIZES:
            rng = np.random.default_rng(n)
            truth = rng.uniform(3.0, 7.0, size=(EPOCHS, n))
            result = run_fleet(
                truth,
                SENSOR,
                epsilon=EPSILON,
                rng=np.random.default_rng(n + 1),
                input_bits=13,
                output_bits=18,
                delta=10 / 64,
            )
            measured.append(result.mean_abs_error)
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    predicted = [predicted_mean_mae(lam, n) for n in FLEET_SIZES]

    # Thresholding truncates the noise slightly, so measured can sit a
    # bit under the untruncated prediction; both must scale as 1/sqrt(N).
    ratios = [m / p for m, p in zip(measured, predicted)]
    ok = all(0.3 < r < 2.0 for r in ratios)
    text = "\n".join(
        [
            render_series(
                "devices",
                list(FLEET_SIZES),
                [
                    ("measured fleet MAE", [f"{v:.4f}" for v in measured]),
                    ("predicted 2λ/√(πN)", [f"{v:.4f}" for v in predicted]),
                    ("ratio", [f"{r:.2f}" for r in ratios]),
                ],
                title=(
                    f"system fleet vs theory: mean-query MAE, ε={EPSILON}, "
                    f"{EPOCHS} epochs per point"
                ),
            ),
            "",
            "expected: the end-to-end system tracks the analytic 1/√N law "
            "within truncation effects — " + ("CONFIRMED" if ok else "MISMATCH"),
        ]
    )
    record_experiment("system_fleet_vs_theory", text)
    assert ok


def bench_fleet_batched_speedup(benchmark):
    """Batched epochs must be bit-identical to the scalar loop and >= 5x faster.

    Both paths share one :class:`~repro.rng.urng.SplitStreamSource` seed,
    so the per-device reports — not just the aggregates — must match
    exactly; the batched path privatizes each 10k-device epoch as a
    single array release.
    """
    truth = np.random.default_rng(17).uniform(
        2.0, 8.0, size=(SPEEDUP_EPOCHS, SPEEDUP_DEVICES)
    )
    kwargs = dict(
        epsilon=EPSILON,
        device_budget=2.5,
        dropout=0.1,
        source_seed=7,
        input_bits=13,
        output_bits=18,
        delta=10 / 64,
    )

    def run():
        t0 = time.perf_counter()
        batched = run_fleet(
            truth, SENSOR, rng=np.random.default_rng(4), batched=True, **kwargs
        )
        t_batched = time.perf_counter() - t0
        t0 = time.perf_counter()
        scalar = run_fleet(
            truth, SENSOR, rng=np.random.default_rng(4), batched=False, **kwargs
        )
        t_scalar = time.perf_counter() - t0
        return batched, scalar, t_batched, t_scalar

    batched, scalar, t_batched, t_scalar = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    identical = all(
        np.array_equal(batched.server.values(e), scalar.server.values(e))
        for e in batched.server.epochs
    )
    speedup = t_scalar / t_batched
    text = "\n".join(
        [
            f"fleet: {SPEEDUP_DEVICES} devices x {SPEEDUP_EPOCHS} epochs, "
            f"eps={EPSILON}, budgeted, 10% dropout",
            f"scalar loop : {t_scalar:.3f} s",
            f"batched     : {t_batched:.3f} s",
            f"speedup     : {speedup:.1f}x (floor {MIN_SPEEDUP:.0f}x)",
            "outputs     : "
            + ("bit-identical" if identical else "MISMATCH"),
        ]
    )
    record_experiment("fleet_batched_speedup", text)
    assert identical
    assert speedup >= MIN_SPEEDUP, f"batched path only {speedup:.1f}x faster"
