"""Frequency-oracle utility bench — RR vs OUE vs OLH across ε.

Runs the three categorical oracle arms over the same skewed population
at each ε and reports the utility-vs-ε table the oracle-selection
guidance in docs/api.md cites: closed-form rare-item standard error,
empirical mean absolute error, and — the ULP axis — per-report bits on
the wire (k-RR ships ``ceil(log2 d)`` bits, OUE ships ``d``, OLH ships
``ceil(log2 g)`` with ``g ≈ e^ε + 1``).

It also *asserts* the statistical contract: over repeated trials each
arm's estimate of the tracked category must be unbiased, with the mean
estimate within 3σ of the truth (σ from the closed-form variance of the
mean of T trials — ``sqrt(Var[f̂]/T)``), and the empirical per-trial
variance must agree with the closed form within a generous Monte Carlo
band.  A bias or a variance-formula error fails the bench, not just a
number in a table.

Machine-readable results land in ``BENCH_oracles.json`` at the repo
root.  Standalone script (not pytest-benchmark): CI runs ``--quick`` as
the oracle-smoke job and uploads the JSON as an artifact.
"""

import argparse
import json
import math
import pathlib
import sys
import time

import numpy as np

from repro.mechanisms import make_oracle
from repro.queries import estimate_frequencies, frequency_variance, ideal_oracle_variance
from repro.rng import SplitStreamSource, audited_generator

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_JSON = REPO_ROOT / "BENCH_oracles.json"

SEED = 20260808
ARMS = ("krr", "oue", "olh")
ARM_LABELS = {"krr": "k-RR", "oue": "OUE", "olh": "OLH"}
#: Unbiasedness gate: |mean(f_hat) - f| <= 3 sigma of the trial mean.
BIAS_SIGMAS = 3.0
#: Empirical/closed-form variance ratio band (Monte Carlo tolerance).
VAR_BAND = (0.4, 2.5)


def _population(rng, d, n):
    """Fixed skewed population: one heavy category, uniform tail."""
    p = np.r_[0.3, np.full(d - 1, 0.7 / (d - 1))]
    return rng.choice(d, size=n, p=p)


def _run_arm(kind, d, epsilon, values, trials, seed0):
    """T trials of one arm on one dataset; per-trial tracked estimates."""
    n = values.size
    f_true = np.bincount(values, minlength=d) / n
    tracked = int(np.argmax(f_true))  # the heavy category
    estimates, maes = [], []
    t0 = time.perf_counter()
    for t in range(trials):
        arm = make_oracle(kind, d, epsilon, source=SplitStreamSource(seed0 + t))
        est = estimate_frequencies(arm, arm.report(values))
        estimates.append(float(est.frequencies[tracked]))
        maes.append(float(np.abs(est.frequencies - f_true).mean()))
    elapsed = time.perf_counter() - t0
    arm = make_oracle(kind, d, epsilon, source=SplitStreamSource(seed0))
    p, q = arm.estimator_params()
    closed_var = frequency_variance(n, p, q, float(f_true[tracked]))
    rare_sigma = math.sqrt(frequency_variance(n, p, q, 0.0))
    mean_est = float(np.mean(estimates))
    bias = mean_est - float(f_true[tracked])
    bias_sigma = math.sqrt(closed_var / trials)
    emp_var = float(np.var(estimates, ddof=1)) if trials > 1 else float("nan")
    return {
        "arm": ARM_LABELS[kind],
        "kind": kind,
        "epsilon": epsilon,
        "exact_epsilon": round(arm.exact_epsilon(), 6),
        "report_bits": int(arm.report_bits),
        "tracked_f": round(float(f_true[tracked]), 6),
        "mean_estimate": round(mean_est, 6),
        "bias": round(bias, 6),
        "bias_z": round(bias / bias_sigma, 3),
        "closed_form_var": closed_var,
        "empirical_var": emp_var,
        "var_ratio": round(emp_var / closed_var, 3),
        "rare_sigma": round(rare_sigma, 6),
        "ideal_rare_sigma": round(
            math.sqrt(ideal_oracle_variance(n, epsilon)), 6
        ),
        "mae": round(float(np.mean(maes)), 6),
        "seconds": round(elapsed, 3),
        "unbiased_3sigma": bool(abs(bias) <= BIAS_SIGMAS * bias_sigma),
        "var_in_band": bool(VAR_BAND[0] <= emp_var / closed_var <= VAR_BAND[1]),
    }


def _render(rows):
    head = (
        f"{'eps':>4} {'arm':<5} {'exact eps':>9} {'bits':>5} "
        f"{'rare sigma':>10} {'MAE':>8} {'bias z':>7} {'var ratio':>9}"
    )
    print(head)
    print("-" * len(head))
    for r in rows:
        print(
            f"{r['epsilon']:>4g} {r['arm']:<5} {r['exact_epsilon']:>9.4f} "
            f"{r['report_bits']:>5d} {r['rare_sigma']:>10.4f} "
            f"{r['mae']:>8.4f} {r['bias_z']:>7.2f} {r['var_ratio']:>9.2f}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--categories", type=int, default=32)
    parser.add_argument("--devices", type=int, default=20_000)
    parser.add_argument("--trials", type=int, default=24)
    parser.add_argument(
        "--epsilons", type=float, nargs="+", default=[0.5, 1.0, 2.0, 4.0]
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small domain/population, fewer trials",
    )
    args = parser.parse_args(argv)

    if args.quick:
        d, n, trials, epsilons = 8, 4_000, 10, [1.0, 2.0]
    else:
        d, n, trials, epsilons = (
            args.categories, args.devices, args.trials, args.epsilons
        )

    values = _population(audited_generator(SEED), d, n)
    print(f"population: d={d} n={n} trials={trials} epsilons={epsilons}")

    rows = []
    for epsilon in epsilons:
        for kind in ARMS:
            rows.append(
                _run_arm(kind, d, epsilon, values, trials, SEED + len(rows) * 1000)
            )
    _render(rows)

    failures = [
        f"{r['arm']} @ eps={r['epsilon']}: "
        + ("biased" if not r["unbiased_3sigma"] else "variance off")
        for r in rows
        if not (r["unbiased_3sigma"] and r["var_in_band"])
    ]

    payload = {
        "schema": 1,
        "categories": d,
        "devices": n,
        "trials": trials,
        "epsilons": epsilons,
        "bias_sigmas": BIAS_SIGMAS,
        "var_band": list(VAR_BAND),
        "quick": args.quick,
        "rows": rows,
        "failures": failures,
    }
    RESULTS_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {RESULTS_JSON}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"all arms unbiased within {BIAS_SIGMAS} sigma; "
          f"variances within {VAR_BAND}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
