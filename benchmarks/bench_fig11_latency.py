"""Fig. 11 — DP-Box noising latency (cycles) per dataset and guard mode.

Streams a sample of each Table-I dataset through the cycle-level DP-Box
in both guard modes.  Paper claims: thresholding is always the 2-cycle
base; "resampling never adds more than a cycle, on average (often much
lower)".

Latency is measured **solely from the release-event stream**: each
noising emits one :class:`~repro.runtime.ReleaseEvent` carrying its
cycle count, and the stats are folded from a captured ring buffer — the
bench never looks at the driver's return values.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import DPBox, DPBoxConfig, DPBoxDriver, GuardMode, LatencyStats
from repro.runtime import ReleasePipeline, RingBufferSink

from conftest import record_experiment

N_PER_DATASET = 150


def _epsilon_exponent() -> int:
    return 1  # eps = 0.5, the evaluation setting


def _drive(ds, mode):
    pipeline = ReleasePipeline()
    ring = pipeline.add_sink(RingBufferSink(capacity=N_PER_DATASET))
    box = DPBox(
        DPBoxConfig(input_bits=14, range_frac_bits=6, guard_mode=mode),
        pipeline=pipeline,
    )
    drv = DPBoxDriver(box)
    drv.initialize(budget=1e12)
    drv.configure(
        epsilon_exponent=_epsilon_exponent(),
        range_lower=ds.sensor.m,
        range_upper=ds.sensor.M,
    )
    for x in ds.values[:N_PER_DATASET]:
        drv.noise(float(x))
    return LatencyStats.from_events(ring.events)


def bench_fig11_latency(benchmark, paper_datasets):
    names = list(paper_datasets)

    def run_all():
        return {
            name: {
                "thresh": _drive(paper_datasets[name], GuardMode.THRESHOLD),
                "resample": _drive(paper_datasets[name], GuardMode.RESAMPLE),
            }
            for name in names
        }

    stats = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in names:
        th = stats[name]["thresh"]
        rs = stats[name]["resample"]
        rows.append(
            [
                name,
                f"{th.mean_cycles:.3f}",
                f"{rs.mean_cycles:.3f}",
                f"{rs.max_cycles}",
                f"{rs.mean_draws:.3f}",
            ]
        )
    text = "\n".join(
        [
            render_table(
                [
                    "dataset",
                    "thresholding (cycles)",
                    "resampling mean",
                    "resampling max",
                    "mean draws",
                ],
                rows,
                title=f"Fig. 11: average DP-Box latency, {N_PER_DATASET} samples/dataset, eps=0.5",
            ),
            "",
            "paper shape check: thresholding = 2 cycles always; resampling "
            "averages < 3 cycles (never more than +1 on average) — "
            + (
                "REPRODUCED"
                if all(
                    s["thresh"].mean_cycles == 2.0 and s["resample"].mean_cycles < 3.0
                    for s in stats.values()
                )
                else "MISMATCH"
            ),
        ]
    )
    record_experiment("fig11_latency", text)

    for s in stats.values():
        assert s["thresh"].mean_cycles == 2.0
        assert s["resample"].mean_cycles < 3.0
