"""Table VI — SVM classification accuracy vs training size and ε.

Trains a linear SVM on LDP-noised features of a halfspace-separable
synthetic dataset, tests on clean data.  Paper shape: accuracy rises with
training-set size for every privacy level, and smaller ε costs samples.
Cells average a few repetitions (single SGD runs on heavily noised data
are high-variance).
"""

import numpy as np

from repro.analysis import render_table
from repro.datasets import make_halfspace_dataset
from repro.ml import train_private_svm

from conftest import record_experiment

TRAIN_SIZES = (1000, 2000, 3000, 4000, 5000)
EPSILONS = (0.5, 1.0, 2.0, None)
REPEATS = 3


def bench_table6_private_svm(benchmark):
    def sweep():
        grid = {}
        for eps in EPSILONS:
            grid[eps] = {}
            for n in TRAIN_SIZES:
                accs = []
                for rep in range(REPEATS):
                    data = make_halfspace_dataset(
                        n + 3000, dim=2, margin=0.05, seed=100 + rep
                    )
                    accs.append(
                        train_private_svm(
                            data, n_train=n, epsilon=eps, seed=rep
                        ).test_accuracy
                    )
                grid[eps][n] = float(np.mean(accs))
        return grid

    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for eps in EPSILONS:
        label = "No DP" if eps is None else f"eps = {eps:g}"
        rows.append([label] + [f"{grid[eps][n]:.1%}" for n in TRAIN_SIZES])

    # Shape checks: more privacy never helps (on average over the row),
    # and every arm improves from the smallest to the largest size.
    means = {eps: np.mean(list(grid[eps].values())) for eps in EPSILONS}
    ordered = means[0.5] <= means[1.0] + 0.05 and means[1.0] <= means[2.0] + 0.05
    grows = all(
        grid[eps][TRAIN_SIZES[-1]] >= grid[eps][TRAIN_SIZES[0]] - 0.05
        for eps in EPSILONS
    )
    text = "\n".join(
        [
            render_table(
                ["privacy"] + [f"n={n}" for n in TRAIN_SIZES],
                rows,
                title=f"Table VI: SVM accuracy (clean test set, {REPEATS} repetitions/cell)",
            ),
            "",
            "paper shape check: accuracy ordered by eps and improving with "
            "training size — " + ("REPRODUCED" if ordered and grows else "MISMATCH"),
        ]
    )
    record_experiment("table6_svm", text)
    assert ordered and grows
