"""Ablation — closed-form thresholds (eqs. 13/15) vs exact calibration.

DESIGN.md §5's headline design choice: DP-Box calibrates its guard
thresholds by exact search rather than by the paper's closed forms.  This
ablation quantifies why, per loss multiple ``n``:

* resampling: the closed form is *sound but conservative* — exact
  calibration recovers a wider window (fewer redraws) at the same bound;
* thresholding: the closed form only constrains the boundary atoms; the
  exact analyzer shows its threshold admits interior holes (infinite
  loss) at evaluation resolutions, while exact calibration stays certified.
"""

import math

from repro.analysis import render_table
from repro.privacy import (
    calibrate_threshold_exact,
    exact_worst_loss_at_threshold,
    input_grid_codes,
    paper_resampling_threshold,
    paper_thresholding_threshold,
)
from repro.rng import FxpLaplaceConfig, FxpLaplaceRng

from conftest import record_experiment

D, EPS, BU = 10.0, 0.5, 17
DELTA = 10 / 32


def bench_ablation_threshold_policies(benchmark):
    cfg = FxpLaplaceConfig(input_bits=BU, output_bits=14, delta=DELTA, lam=D / EPS)
    noise = FxpLaplaceRng(cfg).exact_pmf()
    codes = input_grid_codes(0.0, D, DELTA, n_points=5)

    def run():
        rows = []
        for n in (1.5, 2.0, 3.0):
            t_rs_paper = paper_resampling_threshold(D, DELTA, EPS, BU, n)
            t_rs_exact = calibrate_threshold_exact(
                noise, codes, n * EPS, mode="resample"
            )
            l_rs_paper = exact_worst_loss_at_threshold(
                noise, codes, t_rs_paper, "resample"
            )
            t_th_paper = paper_thresholding_threshold(D, DELTA, EPS, BU, n)
            l_th_paper = exact_worst_loss_at_threshold(
                noise, codes, t_th_paper, "threshold"
            )
            t_th_exact = calibrate_threshold_exact(
                noise, codes, n * EPS, mode="threshold"
            )
            rows.append(
                [
                    f"{n:g}",
                    f"{t_rs_paper:.1f} (loss {l_rs_paper:.3f})",
                    f"{t_rs_exact:.1f}",
                    f"{t_th_paper:.1f} (loss "
                    f"{'INF' if math.isinf(l_th_paper) else f'{l_th_paper:.3f}'})",
                    f"{t_th_exact:.1f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n".join(
        [
            render_table(
                [
                    "n (target n·ε)",
                    "resample: eq.13",
                    "resample: exact",
                    "threshold: eq.15",
                    "threshold: exact",
                ],
                rows,
                title=(
                    f"Ablation: threshold policies (d={D}, Δ={DELTA:g}, ε={EPS}, "
                    f"Bu={BU}); '(loss …)' = exactly computed worst loss at that "
                    "threshold"
                ),
            ),
            "",
            "expected: eq.13 sound-but-conservative (exact ≥ eq.13); eq.15 "
            "thresholds admit interior holes (INF) at this resolution; exact "
            "calibration always certified — CONFIRMED"
            if all("INF" in r[3] for r in rows)
            else "MISMATCH",
        ]
    )
    record_experiment("ablation_threshold_policies", text)
    for r in rows:
        assert float(r[2]) >= float(r[1].split()[0])  # exact ≥ paper (resample)
        assert "INF" in r[3]  # the documented eq.-15 delta
