"""Benchmark-harness plumbing.

Every bench regenerates one paper table or figure.  The experiment tables
are (a) written to ``benchmarks/results/<experiment>.txt`` and (b) echoed
in the pytest terminal summary, so ``pytest benchmarks/ --benchmark-only``
shows both the timing table and the reproduced paper artifacts.
"""

from __future__ import annotations

import pathlib
from typing import List, Tuple

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_REPORTS: List[Tuple[str, str]] = []


def record_experiment(name: str, text: str) -> None:
    """Register a reproduced table/figure for the summary and results dir."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    _REPORTS.append((name, text))


def pytest_terminal_summary(terminalreporter):  # pragma: no cover - plumbing
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced paper artifacts")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", name)
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def record():
    """The recorder, as a fixture."""
    return record_experiment


@pytest.fixture(scope="session")
def bench_rng() -> np.random.Generator:
    return np.random.default_rng(20180604)


# ---------------------------------------------------------------------------
# Shared expensive objects
# ---------------------------------------------------------------------------
@pytest.fixture(scope="session")
def paper_datasets():
    """Table-I datasets, with the largest ones subsampled for bench speed.

    The subsampling is recorded in each bench's output; MAE trends depend
    on N, which the size-sweep bench (Fig. 15) covers explicitly.
    """
    from repro.datasets import load, PAPER_DATASETS

    out = {}
    rng = np.random.default_rng(0)
    for name in PAPER_DATASETS:
        ds = load(name, seed=2018)
        if ds.n > 20000:
            ds = ds.subsample(20000, rng)
        out[name] = ds
    return out


@pytest.fixture(scope="session")
def bench_arms():
    """Mechanism factories for the four evaluation arms at ε = 0.5."""
    from repro.mechanisms import make_mechanism

    def build(arm, sensor, epsilon=0.5, **kw):
        if arm == "ideal":
            return make_mechanism(arm, sensor, epsilon)
        kw.setdefault("input_bits", 14)
        return make_mechanism(arm, sensor, epsilon, **kw)

    return build
