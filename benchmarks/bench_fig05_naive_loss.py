"""Section III-A3 (Fig. 5 analysis) — privacy loss of the naive FxP arm.

Computes the exact pointwise privacy-loss profile of the naive
fixed-point Laplace mechanism over its whole output range and shows both
failure modes: loss exceeding every finite bound at the tail holes, and
outright infinite loss where only a subset of inputs can reach an output.
"""

import numpy as np

from repro.analysis import render_table
from repro.mechanisms import SensorSpec, make_mechanism

from conftest import record_experiment

SENSOR = SensorSpec(0.0, 10.0)
EPSILON = 0.5


def bench_fig5_naive_loss_profile(benchmark):
    mech = make_mechanism(
        "baseline", SENSOR, EPSILON, input_bits=17, output_bits=14, delta=10 / 32
    )
    family = mech._family()
    profile = benchmark(family.loss_profile)
    values = family.output_values()

    finite = np.isfinite(profile)
    reachable = ~np.isnan(profile)
    n_inf = int(np.sum(np.isinf(profile)))
    central = profile[(values >= 0) & (values <= 10)]

    rows = []
    for off in (0.0, 50.0, 100.0, 150.0, 200.0):
        mask = reachable & (values >= 10 + off) & (values < 10 + off + 50)
        seg = profile[mask]
        seg_max = float(np.max(seg)) if seg.size else float("nan")
        rows.append([f"(M+{off:.0f}, M+{off + 50:.0f}]", f"{seg_max:.3g}"])
    text = "\n".join(
        [
            f"naive FxP Laplace, eps={EPSILON}, range [0, 10]:",
            f"  in-range worst loss        : {float(np.max(central)):.4f} (~eps)",
            f"  outputs with INFINITE loss : {n_inf}",
            f"  worst loss overall         : "
            f"{'inf' if not finite[reachable].all() else float(np.max(profile[reachable]))}",
            "",
            render_table(
                ["output segment", "worst loss (eps units x 1)"],
                rows,
                title="loss vs output value beyond the range (cf. Fig. 8's axes)",
            ),
            "",
            "paper claim: naive fixed-point noising cannot guarantee LDP "
            f"(infinite loss at {n_inf} outputs) — REPRODUCED",
        ]
    )
    record_experiment("fig05_naive_loss", text)

    assert n_inf > 0
    assert float(np.max(central)) < 1.1 * EPSILON
