"""Section II-A — the fundamental privacy/utility tradeoff.

"If ε is set too high, we get more accurate output ... small ε will
provide better privacy, but the DP output might not be particularly
useful due to large error."  Sweeps ε over the four arms on a fixed
dataset and prints the mean-query MAE curve — the tradeoff every other
experiment sits on.
"""

import numpy as np

from repro.analysis import render_series
from repro.datasets import load
from repro.mechanisms import make_mechanism
from repro.queries import MeanQuery, mae_trials

from conftest import record_experiment

EPSILONS = (0.125, 0.25, 0.5, 1.0, 2.0)
ARMS = ("ideal", "baseline", "resampling", "thresholding")
TRIALS = 12


def bench_tradeoff_privacy_utility(benchmark):
    ds = load("statlog-heart", seed=3)
    query = MeanQuery()

    def sweep():
        curves = {arm: [] for arm in ARMS}
        for eps in EPSILONS:
            for arm in ARMS:
                kwargs = {} if arm == "ideal" else {"input_bits": 17}
                mech = make_mechanism(arm, ds.sensor, eps, **kwargs)
                mae = float(
                    mae_trials(mech, ds.values, query, n_trials=TRIALS).mean()
                )
                curves[arm].append(mae)
        return curves

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)

    ok = all(
        curves[arm][0] > 2 * curves[arm][-1] for arm in ARMS
    )  # strong privacy costs accuracy, for every arm
    text = "\n".join(
        [
            render_series(
                "epsilon",
                list(EPSILONS),
                [(arm, [f"{v:.3f}" for v in curves[arm]]) for arm in ARMS],
                title=(
                    f"Privacy/utility tradeoff: mean-query MAE on "
                    f"{ds.name} ({TRIALS} trials)"
                ),
            ),
            "",
            "paper shape check (Section II-A): error falls monotonically-ish "
            "as ε grows, across all arms — "
            + ("REPRODUCED" if ok else "MISMATCH"),
        ]
    )
    record_experiment("tradeoff_privacy_utility", text)
    assert ok
