"""Shared machinery for the Table II–V utility benchmarks."""

from __future__ import annotations

from typing import Dict

from repro.analysis import render_table
from repro.datasets import SensorDataset
from repro.queries import Query, measure_utility

ARMS = ("ideal", "baseline", "resampling", "thresholding")
EPSILON = 0.5  # "All of the utility results are for the privacy setting eps=0.5"
N_TRIALS = 12


def utility_table(
    paper_datasets: Dict[str, SensorDataset],
    bench_arms,
    query: Query,
    table_name: str,
) -> str:
    """One paper utility table: rows = datasets, cols = arms (MAE + LDP?)."""
    headers = ["dataset"]
    ldp_verdicts = {}
    for arm in ARMS:
        # LDP? is a property of the arm configuration, not the dataset;
        # certify once on a representative sensor.
        sensor = next(iter(paper_datasets.values())).sensor
        mech = bench_arms(arm, sensor, EPSILON)
        ldp_verdicts[arm] = "Y" if mech.ldp_report().satisfied else "N"
        headers.append(f"{mech.name} [LDP? {ldp_verdicts[arm]}]")
    rows = []
    for name, ds in paper_datasets.items():
        row = [name]
        for arm in ARMS:
            mech = bench_arms(arm, ds.sensor, EPSILON)
            res = measure_utility(mech, ds.values, [query], n_trials=N_TRIALS)
            row.append(res[query.name].cell())
        rows.append(row)
    title = (
        f"{table_name}: MAE of the {query.name} query, eps={EPSILON}, "
        f"{N_TRIALS} trials (cells: MAE±std (relative))"
    )
    body = render_table(headers, rows, title=title)
    verdict_line = (
        "paper shape check: FxP baseline tracks Ideal but LDP?=N; "
        "Resampling/Thresholding track Ideal with LDP?=Y — "
        + (
            "REPRODUCED"
            if ldp_verdicts["baseline"] == "N"
            and ldp_verdicts["resampling"] == "Y"
            and ldp_verdicts["thresholding"] == "Y"
            else "MISMATCH"
        )
    )
    return body + "\n" + verdict_line
