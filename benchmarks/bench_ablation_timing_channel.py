"""Ablation — the resampling timing channel and its mitigation (§IV-C).

Resampling latency depends on the sensor value (edge values reject more
often).  We quantify the leak as the success rate of the optimal
latency-only distinguisher vs number of observed queries, then apply the
paper's mitigation ("sample noise multiple times instead of only one and
choose one of them") and show the channel closes.
"""

import numpy as np

from repro.analysis import render_series
from repro.attacks import run_timing_attack, timing_advantage
from repro.mechanisms import ResamplingMechanism, SensorSpec

from conftest import record_experiment

SENSOR = SensorSpec(0.0, 8.0)
QUERY_COUNTS = (10, 100, 1000, 4000)


def bench_ablation_timing_channel(benchmark):
    # Low URNG resolution -> tight window -> visible channel.
    mech = ResamplingMechanism(
        SENSOR, 0.5, loss_multiple=3.0, input_bits=9, output_bits=16, delta=8 / 64
    )
    x_edge, x_mid = SENSOR.m, SENSOR.midpoint

    def run():
        exact = [
            0.5 + 0.5 * timing_advantage(mech, x_edge, x_mid, n_queries=q)
            for q in QUERY_COUNTS
        ]
        empirical = [
            run_timing_attack(
                mech,
                x_edge,
                x_mid,
                n_queries=q,
                n_trials=200,
                rng=np.random.default_rng(q),
            ).success_rate
            for q in QUERY_COUNTS
        ]
        mitigated = [
            run_timing_attack(
                mech,
                x_edge,
                x_mid,
                n_queries=q,
                n_trials=200,
                fixed_draws=4,
                rng=np.random.default_rng(q),
            ).success_rate
            for q in QUERY_COUNTS
        ]
        return exact, empirical, mitigated

    exact, empirical, mitigated = benchmark.pedantic(run, rounds=1, iterations=1)

    ok = exact[-1] > 0.75 and empirical[-1] > 0.7 and abs(mitigated[-1] - 0.5) < 0.1
    text = "\n".join(
        [
            f"acceptance probabilities: edge {mech.acceptance_probability(x_edge):.4f}, "
            f"center {mech.acceptance_probability(x_mid):.4f} "
            f"(Bu=9, threshold {mech.threshold:.2f})",
            render_series(
                "queries observed",
                list(QUERY_COUNTS),
                [
                    ("optimal (exact)", [f"{v:.3f}" for v in exact]),
                    ("empirical LR attack", [f"{v:.3f}" for v in empirical]),
                    ("with fixed-draw mitigation", [f"{v:.3f}" for v in mitigated]),
                ],
                title="Ablation: latency-only distinguisher success rate (0.5 = blind)",
            ),
            "",
            "expected: the unmitigated channel leaks increasingly with "
            "observations; fixed draws pin success at a coin flip — "
            + ("CONFIRMED" if ok else "MISMATCH"),
        ]
    )
    record_experiment("ablation_timing_channel", text)
    assert ok
