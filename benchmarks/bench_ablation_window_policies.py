"""Ablation — replenishment policy: fixed windows vs sliding windows.

DP-Box replenishes its budget at fixed period boundaries (§III-C).  A
fixed window admits the classic straddle: an adversary timing requests
just before and just after a boundary collects up to 2B of loss inside
one interval of window length.  The sliding-window accountant closes
that gap at the cost of tracking outstanding charges.  This ablation
measures the worst observed per-interval disclosure for both policies
under a boundary-timing adversary and an honest uniform workload.
"""

import numpy as np

from repro.analysis import render_table
from repro.privacy.windows import FixedWindowAccountant, SlidingWindowAccountant

from conftest import record_experiment

BUDGET = 1.0
WINDOW = 1000
PER_QUERY = 0.25


def _max_interval_loss(events, window):
    """Worst total loss inside any sliding interval of the window length."""
    worst = 0.0
    times = np.array([t for t, _ in events], dtype=float)
    losses = np.array([l for _, l in events], dtype=float)
    for t in times:
        mask = (times > t - window) & (times <= t)
        worst = max(worst, float(losses[mask].sum()))
    return worst


def _drive(acc, schedule):
    events = []
    for t in schedule:
        acc.advance(t - acc.now)
        if acc.try_spend(PER_QUERY):
            events.append((t, PER_QUERY))
    return events


def bench_ablation_window_policies(benchmark):
    # Boundary-timing adversary: bursts just before and after boundaries.
    adversary = []
    for k in range(1, 6):
        boundary = k * WINDOW
        adversary += [boundary - 3, boundary - 2, boundary - 1, boundary + 1,
                      boundary + 2, boundary + 3, boundary + 4, boundary + 5]
    # Honest workload: uniform arrivals.
    rng = np.random.default_rng(0)
    honest = sorted(rng.integers(1, 6 * WINDOW, size=200).tolist())

    def run():
        rows = []
        for label, schedule in (("boundary adversary", adversary), ("honest uniform", honest)):
            fixed = _drive(FixedWindowAccountant(BUDGET, WINDOW), list(schedule))
            sliding = _drive(SlidingWindowAccountant(BUDGET, WINDOW), list(schedule))
            rows.append(
                [
                    label,
                    f"{_max_interval_loss(fixed, WINDOW):.2f}",
                    f"{_max_interval_loss(sliding, WINDOW):.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    adv_fixed = float(rows[0][1])
    adv_sliding = float(rows[0][2])
    ok = adv_fixed > BUDGET + PER_QUERY / 2 and adv_sliding <= BUDGET + 1e-9
    text = "\n".join(
        [
            render_table(
                ["workload", "fixed window: worst interval loss", "sliding window"],
                rows,
                title=(
                    f"Ablation: replenishment policies (budget {BUDGET}/window, "
                    f"{PER_QUERY}/query) — worst loss inside any {WINDOW}-tick interval"
                ),
            ),
            "",
            "expected: the fixed-window policy (DP-Box replenishment) admits a "
            f"boundary straddle up to 2B = {2 * BUDGET}; the sliding window "
            "caps every interval at B — "
            + ("CONFIRMED" if ok else "MISMATCH"),
        ]
    )
    record_experiment("ablation_window_policies", text)
    assert ok
