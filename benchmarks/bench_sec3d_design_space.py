"""Section III-D sizing claim — minimum datapath width vs privacy level.

"To support sensors with resolution up to 13 bits with privacy parameter
ε ≥ 0.1, we needed to use 20-bit fixed-point values."  We regenerate the
sizing table with the exact design-space search: for each ε, the minimum
URNG width at which a certified guard exists (bare feasibility) and at
which resampling also stays cheap (≥ 95 % single-draw acceptance).
"""

from repro.analysis import render_table
from repro.core import minimum_input_bits
from repro.errors import CalibrationError

from conftest import record_experiment

EPSILONS = (1.0, 0.5, 0.25, 0.125, 0.0625)
SENSOR_BITS = 6  # grid = range / 2**6; wider grids scale the same way


def bench_sec3d_design_space(benchmark):
    def sweep():
        rows = []
        for eps in EPSILONS:
            try:
                feasible = minimum_input_bits(
                    10.0, eps, range_frac_bits=SENSOR_BITS
                ).input_bits
            except CalibrationError:
                feasible = None
            try:
                efficient = minimum_input_bits(
                    10.0,
                    eps,
                    range_frac_bits=SENSOR_BITS,
                    mode="resample",
                    min_acceptance=0.95,
                ).input_bits
            except CalibrationError:
                efficient = None
            rows.append(
                [
                    f"{eps:g}",
                    str(feasible) if feasible else "> 26",
                    str(efficient) if efficient else "> 26",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    feasibles = [int(r[1]) for r in rows if r[1].isdigit()]
    ok = feasibles == sorted(feasibles) and feasibles[-1] > feasibles[0]
    text = "\n".join(
        [
            render_table(
                [
                    "epsilon",
                    "min Bu (guard exists)",
                    "min Bu (and >=95% acceptance)",
                ],
                rows,
                title=(
                    f"Section III-D sizing: minimum URNG width vs ε "
                    f"({SENSOR_BITS}-bit sensor grid, loss bound 2ε, exact search)"
                ),
            ),
            "",
            "paper shape check: smaller ε demands wider fixed-point values "
            "(the 'ε ≥ 0.1 needs 20 bits' phenomenon) — "
            + ("REPRODUCED" if ok else "MISMATCH"),
        ]
    )
    record_experiment("sec3d_design_space", text)
    assert ok
