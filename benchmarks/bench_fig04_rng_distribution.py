"""Fig. 4 — ideal Laplace vs fixed-point RNG distribution.

Reproduces the paper's running example (Lap(20), Bu=17, By=12, Δ=10/2⁵):
(a) near the mode the FxP RNG tracks the ideal density; (b) in the tail
the FxP RNG shows quantized probability levels (multiples of 2^-(Bu+1)),
zero-probability holes, and a hard support bound at L = λ·Bu·ln2 — the
two nonidealities behind the privacy failure.
"""

import numpy as np

from repro.analysis import render_series
from repro.rng import FxpLaplaceConfig, FxpLaplaceRng

from conftest import record_experiment

CFG = FxpLaplaceConfig(input_bits=17, output_bits=12, delta=10 / 2**5, lam=20.0)


def bench_fig4_exact_pmf(benchmark):
    rng = FxpLaplaceRng(CFG)
    pmf = benchmark(rng._pmf_enumerate)
    ideal = rng.ideal_bin_probs()

    # (a) central region: FxP matches ideal.
    center_ks = np.arange(-5, 6)
    fxp_c = [pmf.prob_at(int(k)) for k in center_ks]
    ideal_c = [ideal.prob_at(int(k)) for k in center_ks]

    # (b) tail zoom: quantized levels and holes.
    tail_ks = np.arange(CFG.top_code - 30, CFG.top_code + 1)
    fxp_t = [pmf.prob_at(int(k)) for k in tail_ks]
    ideal_t = [ideal.prob_at(int(k)) for k in tail_ks]
    unit = 2.0 ** -(CFG.input_bits + 1)
    holes = int(np.sum(np.array(fxp_t) == 0.0))

    text = []
    text.append("Fig. 4(a) — center of the distribution (probability per bin):")
    text.append(
        render_series(
            "noise value",
            [f"{k * CFG.delta:+.3f}" for k in center_ks],
            [("ideal Lap(20)", ideal_c), ("FxP RNG", fxp_c)],
        )
    )
    text.append("")
    text.append("Fig. 4(b) — tail zoom (last 31 bins before the support bound):")
    text.append(
        render_series(
            "noise value",
            [f"{k * CFG.delta:+.2f}" for k in tail_ks],
            [
                ("ideal", ideal_t),
                ("FxP (multiples of 2^-18)", [p / unit for p in fxp_t]),
            ],
        )
    )
    text.append("")
    text.append(
        f"support bound L = lam*Bu*ln2 = {CFG.max_magnitude_real:.2f} "
        f"(code {CFG.top_code}); zero-probability holes in this window: {holes}"
    )
    text.append(
        "paper shape check: center matches ideal; tail shows discrete levels, "
        f"holes ({holes} > 0) and bounded support — REPRODUCED"
    )
    record_experiment("fig04_rng_distribution", "\n".join(text))

    assert holes > 0
    assert pmf.total_variation(ideal) < 0.01
