"""Ablation — Algorithm-1 adaptive charging vs naive request counting.

Section III-C motivates the output-adaptive accountant: "one simple way
to implement budget control ... is by simply counting the number of
requests", charging every request the worst-case loss.  The adaptive
policy charges the realized segment's loss instead, so central (likely)
outputs cost less and the same budget answers more queries.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import BudgetEngine, build_segment_table
from repro.mechanisms import SensorSpec, make_mechanism

from conftest import record_experiment

SENSOR = SensorSpec(0.0, 10.0)
EPSILON = 0.5
BUDGET = 20.0
LEVELS = (1.0, 1.25, 1.5, 1.75, 2.0)
REPEATS = 10


def bench_ablation_budget_policies(benchmark):
    mech = make_mechanism(
        "thresholding", SENSOR, EPSILON, input_bits=14, output_bits=18, delta=10 / 64
    )
    family = mech._family()
    table = build_segment_table(family, EPSILON, LEVELS)
    worst = mech.ldp_report().worst_loss  # what naive counting must charge

    def run():
        fresh_adaptive, fresh_naive = [], []
        for rep in range(REPEATS):
            rng = np.random.default_rng(rep)
            xs = rng.uniform(SENSOR.m, SENSOR.M, 4000)
            engine = BudgetEngine(table, budget=BUDGET)
            count_a = 0
            for x in xs:
                y = float(mech.privatize(np.asarray([x]))[0])
                k = int(round(y / mech.delta))
                decision = engine.submit(k)
                if decision.from_cache:
                    break
                count_a += 1
            fresh_adaptive.append(count_a)
            fresh_naive.append(int(BUDGET // worst))
        return float(np.mean(fresh_adaptive)), float(np.mean(fresh_naive))

    adaptive, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    gain = adaptive / naive
    text = "\n".join(
        [
            render_table(
                ["policy", "fresh queries per budget", "per-query charge"],
                [
                    ["naive request counting", f"{naive:.1f}", f"{worst:.3f} (worst case)"],
                    ["Algorithm 1 (adaptive)", f"{adaptive:.1f}", "segment-dependent"],
                ],
                title=(
                    f"Ablation: budget policies, budget={BUDGET}, eps={EPSILON}, "
                    f"uniform queries, mean of {REPEATS} runs"
                ),
            ),
            "",
            f"adaptive answers {gain:.2f}x as many queries before exhaustion — "
            + ("CONFIRMED" if gain > 1.2 else "MISMATCH"),
        ]
    )
    record_experiment("ablation_budget_policies", text)
    assert gain > 1.2
