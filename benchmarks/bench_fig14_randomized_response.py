"""Fig. 14 — randomized-response accuracy vs dataset size.

DP-Box with threshold zero privatizes a binary attribute (the paper uses
the male/female column of Statlog heart); the debiased population
estimate gets more accurate as the dataset grows while each individual
bit stays private.
"""

import numpy as np

from repro.analysis import render_series
from repro.mechanisms import SensorSpec, make_mechanism

from conftest import record_experiment

EPSILON = 2.0
TRUE_RATE = 0.68  # male fraction in Statlog heart is ~0.68
SIZES = (100, 270, 1000, 3000, 10000, 30000)
REPEATS = 25


def bench_fig14_rr_accuracy(benchmark):
    rr = make_mechanism(
        "rr", SensorSpec(0.0, 1.0), EPSILON, input_bits=14, delta=1 / 128
    )
    rng = np.random.default_rng(14)

    def sweep():
        maes = []
        for n in SIZES:
            errs = []
            for _ in range(REPEATS):
                bits = (rng.random(n) < TRUE_RATE).astype(int)
                est = rr.estimate_frequency(rr.privatize_bits(bits))
                errs.append(abs(est - bits.mean()))
            maes.append(float(np.mean(errs)))
        return maes

    maes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    text = "\n".join(
        [
            f"DP-Box randomized response (threshold 0): flip prob "
            f"{rr.flip_probability:.3f}, exact channel eps {rr.exact_epsilon():.3f}",
            render_series(
                "entries",
                list(SIZES),
                [("MAE of population estimate", [f"{m:.4f}" for m in maes])],
                title=f"Fig. 14: male-population estimate error vs dataset size "
                f"(true rate {TRUE_RATE}, {REPEATS} repeats)",
            ),
            "",
            "paper shape check: query accuracy improves with dataset size while "
            "individual bits stay private — "
            + ("REPRODUCED" if maes[-1] < maes[0] / 3 else "MISMATCH"),
        ]
    )
    record_experiment("fig14_randomized_response", text)

    assert maes[-1] < maes[0] / 3
