"""Ablation — DP noise distributions on fixed point (Section III-A4).

The paper argues the finite-precision failure applies to *any*
DP-guaranteeing distribution ("Laplace, Gaussian, or staircase").  This
ablation runs all three through the identical pipeline: exact PMF →
naive-arm verdict → exact threshold calibration → guarded utility.
Expected: every naive arm fails identically; every guarded arm is
certified; the staircase (ℓ1-optimal) adds the least absolute noise,
the (ε, δ) Gaussian the most at these parameters.
"""

import numpy as np

from repro.analysis import render_table
from repro.mechanisms import GuardedNoiseMechanism, SensorSpec, make_mechanism
from repro.rng import (
    FxpGaussianRng,
    FxpLaplaceConfig,
    FxpStaircaseRng,
    StaircaseParams,
    gaussian_sigma,
)

from conftest import record_experiment

D, EPS = 8.0, 0.5
SENSOR = SensorSpec(0.0, D)
CFG = FxpLaplaceConfig(input_bits=13, output_bits=20, delta=D / 64, lam=D / EPS)


def _generators():
    return {
        "laplace": None,  # handled by the standard arms
        "staircase": FxpStaircaseRng(CFG, StaircaseParams(sensitivity=D, epsilon=EPS)),
        "gaussian": FxpGaussianRng(CFG, sigma=gaussian_sigma(D, EPS, 1e-5)),
    }


def bench_ablation_noise_distributions(benchmark):
    def run():
        rows = []
        x = np.full(20000, D / 2)
        for name, gen in _generators().items():
            if gen is None:
                naive = make_mechanism(
                    "baseline", SENSOR, EPS, input_bits=13, output_bits=20, delta=D / 64
                )
                guarded = make_mechanism(
                    "thresholding",
                    SENSOR,
                    EPS,
                    input_bits=13,
                    output_bits=20,
                    delta=D / 64,
                )
            else:
                naive = GuardedNoiseMechanism(SENSOR, EPS, gen, mode="baseline")
                guarded = GuardedNoiseMechanism(
                    SENSOR, EPS, gen, mode="threshold", target_loss=2 * EPS
                )
            naive_rep = naive.ldp_report(epsilon_target=1e9)
            guard_rep = guarded.ldp_report()
            mae = float(np.abs(guarded.privatize(x) - D / 2).mean())
            rows.append(
                [
                    name,
                    "INF" if not naive_rep.is_finite else f"{naive_rep.worst_loss:.3g}",
                    f"{guarded.threshold:.2f}",
                    f"{guard_rep.worst_loss:.4f}",
                    "Y" if guard_rep.satisfied else "N",
                    f"{mae:.3f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    maes = {r[0]: float(r[5]) for r in rows}
    ok = (
        all(r[1] == "INF" for r in rows)
        and all(r[4] == "Y" for r in rows)
        and maes["staircase"] <= maes["laplace"] + 0.05
        and maes["gaussian"] > maes["laplace"]
    )
    text = "\n".join(
        [
            render_table(
                [
                    "distribution",
                    "naive worst loss",
                    "calibrated n_th2",
                    "guarded worst loss",
                    "LDP?",
                    "per-sample MAE",
                ],
                rows,
                title=(
                    f"Ablation: DP noise distributions on fixed point "
                    f"(d={D}, eps={EPS}; Gaussian pays delta=1e-5 extra)"
                ),
            ),
            "",
            "expected: every naive arm has infinite loss; every guarded arm "
            "certifies; staircase <= laplace < gaussian on absolute noise — "
            + ("CONFIRMED" if ok else "MISMATCH"),
        ]
    )
    record_experiment("ablation_noise_distributions", text)
    assert ok
