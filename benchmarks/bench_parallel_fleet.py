"""Parallel-fleet bench — sharded multi-core execution vs single-process.

Sweeps the sharded fleet runner (``repro.parallel.run_fleet_sharded``)
across fleet sizes under the hardware (CORDIC) logarithm with the live
per-draw datapath — the compute-bound regime where extra cores matter —
and reports, per size, the single-process time, the pool time on each
transport, and the measured IPC payload (``ipc_bytes``: pickled bytes of
everything that actually crosses the pool pipe).  The zero-copy
shared-memory data plane ships block names instead of epoch matrices,
so its ``ipc_bytes`` column is what justifies the transport.

Before timing anything it verifies the headline invariant on a small
fleet: a run sharded across W workers is bit-identical to the same plan
at ``workers=1`` on *both* transports, and a ``shards=1`` run is
bit-identical to the legacy unsharded batched fleet.

The ≥2× speedup floor is only asserted on machines with ≥4 cores (and
not in ``--quick`` mode); smaller hosts still record the sweep so the
trajectory is visible in ``BENCH_parallel.json`` (schema 2).

Standalone script (not pytest-benchmark): CI runs ``--quick`` with two
workers as a smoke test, developers run it bare for the full sweep.
"""

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

from repro.aggregation import run_fleet
from repro.mechanisms import SensorSpec
from repro.parallel import plan_execution, plan_shards, run_fleet_sharded
from repro.rng import CordicLn, audited_generator

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_JSON = REPO_ROOT / "BENCH_parallel.json"

SENSOR = SensorSpec(0.0, 50.0)
EPSILON = 2.0
SEED = 20260806
MIN_SPEEDUP = 2.0
#: The floor only binds on machines with enough cores to show it.
MIN_CORES_FOR_FLOOR = 4

#: Fleet sizes swept (full mode) — the 50k row is the headline number.
SWEEP_SIZES = (5_000, 50_000, 500_000)
QUICK_SIZES = (500, 2_000)


def _identity_check(workers: int) -> bool:
    """Bit-identity: W workers ≡ 1 worker on both transports, and
    shards=1 ≡ unsharded."""
    truth = audited_generator(SEED).uniform(5.0, 45.0, size=(4, 96))
    common = dict(
        arm="thresholding",
        source_seed=SEED,
        dropout=0.15,
        device_budget=60.0,
    )
    one = run_fleet_sharded(
        truth, SENSOR, EPSILON, rng=audited_generator(1), shards=8, workers=1, **common
    )
    for use_shm in (False, True):
        many = run_fleet_sharded(
            truth,
            SENSOR,
            EPSILON,
            rng=audited_generator(1),
            shards=8,
            workers=workers,
            shm=use_shm,
            **common,
        )
        for epoch in one.server.epochs:
            if not np.array_equal(
                one.server.values(epoch), many.server.values(epoch)
            ):
                return False

    legacy = run_fleet(
        truth, SENSOR, EPSILON, rng=audited_generator(1), batched=True, **common
    )
    bridge = run_fleet_sharded(
        truth, SENSOR, EPSILON, rng=audited_generator(1), shards=1, workers=1, **common
    )
    for epoch in legacy.server.epochs:
        if not np.array_equal(
            legacy.server.values(epoch), bridge.server.values(epoch)
        ):
            return False
    return True


def _run(truth, workers, shards, use_shm=None, measure_ipc=False):
    """One streaming sharded run on the live CORDIC datapath."""
    t0 = time.perf_counter()
    result = run_fleet_sharded(
        truth,
        SENSOR,
        EPSILON,
        arm="thresholding",
        source_seed=SEED,
        rng=audited_generator(2),
        workers=workers,
        shards=shards,
        streaming=True,
        with_devices=False,
        log_backend=CordicLn(),
        kernel="live",
        shm=use_shm,
        measure_ipc=measure_ipc,
    )
    return time.perf_counter() - t0, result


def _sweep_row(devices, epochs, workers, shards, shm_mode):
    """Timings + IPC bytes for one fleet size."""
    truth = audited_generator(SEED).uniform(5.0, 45.0, size=(epochs, devices))
    t_single, _ = _run(truth, 1, shards)
    row = {
        "devices": devices,
        "epochs": epochs,
        "t_single_s": round(t_single, 4),
        "t_parallel_shm_s": None,
        "t_parallel_pickle_s": None,
        "ipc_bytes_shm": None,
        "ipc_bytes_pickle": None,
        "ipc_reduction": None,
        "speedup": None,
    }
    if shm_mode in ("auto", "on"):
        t, _ = _run(truth, workers, shards, use_shm=True)
        row["t_parallel_shm_s"] = round(t, 4)
    if shm_mode in ("auto", "off"):
        t, _ = _run(truth, workers, shards, use_shm=False)
        row["t_parallel_pickle_s"] = round(t, 4)
    # IPC payloads, measured outside the timed runs (pickling the
    # payload to count it costs real time on the pickle transport).
    _, res = _run(truth, workers, shards, use_shm=True, measure_ipc=True)
    row["ipc_bytes_shm"] = int(res.ipc_bytes)
    _, res = _run(truth, workers, shards, use_shm=False, measure_ipc=True)
    row["ipc_bytes_pickle"] = int(res.ipc_bytes)
    if row["ipc_bytes_shm"]:
        row["ipc_reduction"] = round(
            row["ipc_bytes_pickle"] / row["ipc_bytes_shm"], 1
        )
    best = min(
        (t for t in (row["t_parallel_shm_s"], row["t_parallel_pickle_s"]) if t),
        default=None,
    )
    if best:
        row["speedup"] = round(t_single / best, 3)
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=24)
    parser.add_argument("--workers", type=int, default=None,
                        help="default: min(4, cpu_count)")
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument(
        "--shm",
        choices=("auto", "on", "off"),
        default="auto",
        help="transport for the timed pool runs: auto times both, "
        "on/off restrict to one (IPC bytes are measured for both "
        "either way)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=None,
        help="fleet sizes to sweep (default: 5k/50k/500k, or small in --quick)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=RESULTS_JSON,
        help="where to write the schema-2 JSON results",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small fleets, 2 workers, no speedup floor",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    if args.quick:
        sizes = tuple(args.sizes) if args.sizes else QUICK_SIZES
        epochs = min(args.epochs, 4)
        workers = 2 if args.workers is None else args.workers
    else:
        sizes = tuple(args.sizes) if args.sizes else SWEEP_SIZES
        epochs = args.epochs
        workers = min(4, cores) if args.workers is None else args.workers
    assert_floor = (
        not args.quick
        and cores >= MIN_CORES_FOR_FLOOR
        and workers >= MIN_CORES_FOR_FLOOR
    )
    shards = plan_shards(max(sizes), args.shards).n_shards
    plan = plan_execution(max(sizes), epochs, shards=args.shards)

    print(f"cores={cores} workers={workers} shards={shards} "
          f"sizes={list(sizes)} epochs={epochs} shm={args.shm}")
    print(f"planner would choose: {plan.describe()} ({plan.reason})")

    bit_identical = _identity_check(workers)
    print(f"bit-identity (W={workers} vs W=1, shm vs pickle, "
          f"shards=1 vs unsharded): {'OK' if bit_identical else 'FAILED'}")

    # Warm codebook/table caches outside the timed region.
    warm = audited_generator(SEED).uniform(5.0, 45.0, size=(1, 256))
    _run(warm, 1, args.shards)

    sweep = []
    for devices in sizes:
        row = _sweep_row(devices, epochs, workers, args.shards, args.shm)
        sweep.append(row)
        print(
            f"devices={devices:>7d}  single={row['t_single_s']:.3f}s  "
            f"shm={row['t_parallel_shm_s']}s  pickle={row['t_parallel_pickle_s']}s  "
            f"speedup={row['speedup']}x  "
            f"ipc {row['ipc_bytes_pickle']} -> {row['ipc_bytes_shm']} bytes "
            f"({row['ipc_reduction']}x smaller)"
        )

    headline = sweep[-1]
    payload = {
        "schema": 2,
        "cores": cores,
        "workers": workers,
        "shards": shards,
        "arm": "thresholding",
        "datapath": "cordic-live",
        "shm_mode": args.shm,
        "planner": plan.describe(),
        "sweep": sweep,
        "speedup": headline["speedup"],
        "speedup_floor": MIN_SPEEDUP,
        "floor_asserted": assert_floor,
        "bit_identical": bit_identical,
        "quick": args.quick,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")

    if not bit_identical:
        print("FAIL: sharded run is not bit-identical across worker "
              "counts/transports")
        return 1
    if assert_floor and headline["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {headline['speedup']:.2f}x below the "
              f"{MIN_SPEEDUP}x floor on a {cores}-core machine")
        return 1
    if not assert_floor:
        print(f"speedup floor not asserted "
              f"(quick={args.quick}, cores={cores} < {MIN_CORES_FOR_FLOOR} "
              f"or workers={workers} < {MIN_CORES_FOR_FLOOR})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
