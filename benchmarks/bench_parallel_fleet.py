"""Parallel-fleet bench — sharded multi-core execution vs single-process.

Times the sharded fleet runner (``repro.parallel.run_fleet_sharded``) at
a 50k-device fleet under the hardware (CORDIC) logarithm with the live
per-draw datapath — the compute-bound regime where extra cores matter —
and asserts the ≥2× speedup floor when the machine actually has ≥4
cores.  Before timing anything it verifies the headline invariant on a
small fleet: a run sharded across W workers is bit-identical to the
same plan at ``workers=1``, and a ``shards=1`` run is bit-identical to
the legacy unsharded batched fleet.

Machine-readable results land in ``BENCH_parallel.json`` at the repo
root (cores, workers, shards, fleet size, timings, speedup, whether the
floor was asserted); ``BENCH_kernels.json`` remains single-process-only
(see docs/performance.md).

Standalone script (not pytest-benchmark): CI runs ``--quick`` with two
workers as a smoke test, developers run it bare for the full floor.
"""

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

from repro.aggregation import run_fleet
from repro.mechanisms import SensorSpec
from repro.parallel import plan_shards, run_fleet_sharded
from repro.rng import CordicLn, audited_generator

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_JSON = REPO_ROOT / "BENCH_parallel.json"

SENSOR = SensorSpec(0.0, 50.0)
EPSILON = 2.0
SEED = 20260806
MIN_SPEEDUP = 2.0
#: The floor only binds on machines with enough cores to show it.
MIN_CORES_FOR_FLOOR = 4


def _identity_check(workers: int) -> bool:
    """Bit-identity: W workers ≡ 1 worker, and shards=1 ≡ unsharded."""
    truth = audited_generator(SEED).uniform(5.0, 45.0, size=(4, 96))
    common = dict(
        arm="thresholding",
        source_seed=SEED,
        dropout=0.15,
        device_budget=60.0,
    )
    one = run_fleet_sharded(
        truth, SENSOR, EPSILON, rng=audited_generator(1), shards=8, workers=1, **common
    )
    many = run_fleet_sharded(
        truth,
        SENSOR,
        EPSILON,
        rng=audited_generator(1),
        shards=8,
        workers=workers,
        **common,
    )
    for epoch in one.server.epochs:
        if not np.array_equal(one.server.values(epoch), many.server.values(epoch)):
            return False

    legacy = run_fleet(
        truth, SENSOR, EPSILON, rng=audited_generator(1), batched=True, **common
    )
    bridge = run_fleet_sharded(
        truth, SENSOR, EPSILON, rng=audited_generator(1), shards=1, workers=1, **common
    )
    for epoch in legacy.server.epochs:
        if not np.array_equal(
            legacy.server.values(epoch), bridge.server.values(epoch)
        ):
            return False
    return True


def _timed_run(truth, workers: int, shards: int) -> float:
    """One streaming sharded run on the live CORDIC datapath; seconds."""
    t0 = time.perf_counter()
    run_fleet_sharded(
        truth,
        SENSOR,
        EPSILON,
        arm="thresholding",
        source_seed=SEED,
        rng=audited_generator(2),
        workers=workers,
        shards=shards,
        streaming=True,
        with_devices=False,
        log_backend=CordicLn(),
        kernel="live",
    )
    return time.perf_counter() - t0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=50_000)
    parser.add_argument("--epochs", type=int, default=24)
    parser.add_argument("--workers", type=int, default=None,
                        help="default: min(4, cpu_count)")
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small fleet, 2 workers, no speedup floor",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    if args.quick:
        devices, epochs = 2_000, 4
        workers = 2 if args.workers is None else args.workers
    else:
        devices, epochs = args.devices, args.epochs
        workers = min(4, cores) if args.workers is None else args.workers
    plan = plan_shards(devices, args.shards)
    assert_floor = (
        not args.quick and cores >= MIN_CORES_FOR_FLOOR and workers >= MIN_CORES_FOR_FLOOR
    )

    print(f"cores={cores} workers={workers} shards={plan.n_shards} "
          f"devices={devices} epochs={epochs}")

    bit_identical = _identity_check(workers)
    print(f"bit-identity (W={workers} vs W=1, shards=1 vs unsharded): "
          f"{'OK' if bit_identical else 'FAILED'}")

    truth = audited_generator(SEED).uniform(5.0, 45.0, size=(epochs, devices))
    _timed_run(truth[:1], 1, args.shards)  # warm codebook/table caches
    t_single = _timed_run(truth, 1, args.shards)
    t_parallel = _timed_run(truth, workers, args.shards)
    speedup = t_single / t_parallel if t_parallel > 0 else float("inf")
    print(f"single-process: {t_single:.3f}s   {workers} workers: "
          f"{t_parallel:.3f}s   speedup: {speedup:.2f}x")

    payload = {
        "schema": 1,
        "cores": cores,
        "workers": workers,
        "shards": plan.n_shards,
        "devices": devices,
        "epochs": epochs,
        "arm": "thresholding",
        "datapath": "cordic-live",
        "t_single_s": round(t_single, 4),
        "t_parallel_s": round(t_parallel, 4),
        "speedup": round(speedup, 3),
        "speedup_floor": MIN_SPEEDUP,
        "floor_asserted": assert_floor,
        "bit_identical": bit_identical,
        "quick": args.quick,
    }
    RESULTS_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {RESULTS_JSON}")

    if not bit_identical:
        print("FAIL: sharded run is not bit-identical across worker counts")
        return 1
    if assert_floor and speedup < MIN_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor "
              f"on a {cores}-core machine")
        return 1
    if not assert_floor:
        print(f"speedup floor not asserted "
              f"(quick={args.quick}, cores={cores} < {MIN_CORES_FOR_FLOOR} "
              f"or workers={workers} < {MIN_CORES_FOR_FLOOR})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
