"""Table I — the evaluation datasets and their statistics.

Regenerates the dataset-description table from our synthetic substitutes
(DESIGN.md §4) and checks each matches its published entry count, range,
and moments.
"""

from repro.analysis import render_table
from repro.datasets import DATASET_CONFIGS, load

from conftest import record_experiment


def bench_table1_dataset_stats(benchmark):
    datasets = benchmark.pedantic(
        lambda: {cfg.name: load(cfg.name, seed=2018) for cfg in DATASET_CONFIGS},
        rounds=1,
        iterations=1,
    )
    rows = []
    ok = True
    for cfg in DATASET_CONFIGS:
        st = datasets[cfg.name].stats()
        spread = cfg.hi - cfg.lo
        ok &= st.entries == cfg.entries
        ok &= abs(st.mean - cfg.mean) < 0.1 * spread
        rows.append(
            [
                cfg.name,
                st.entries,
                f"{cfg.lo:g}/{cfg.hi:g}",
                f"{st.mean:.4g}",
                f"{st.std:.4g}",
                cfg.shape,
            ]
        )
    text = "\n".join(
        [
            render_table(
                ["dataset", "entries", "min/max (declared)", "mean", "std", "shape"],
                rows,
                title="Table I: datasets used for utility comparisons (synthetic substitutes)",
            ),
            "",
            "check vs published statistics: " + ("REPRODUCED" if ok else "MISMATCH"),
        ]
    )
    record_experiment("table1_datasets", text)
    assert ok
