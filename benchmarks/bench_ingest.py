"""Ingestion-service bench — socket admission throughput and latency.

Starts the asyncio ingestion service in-process on a loopback socket and
drives it with the deterministic load generator
(:func:`repro.service.run_load`), sweeping report-batch size.  Per row it
records reports/sec, the server-side admission-latency percentiles (p50 /
p99, measured inside ``_handle_line`` from raw-line arrival to response),
the client-observed round-trip percentiles, and the admission tallies
(repaired / blocked / busy retries / internal errors).

Before timing anything it verifies the headline seam invariant: a fleet
epoch ingested over the socket is **bit-identical** to the same epoch
submitted in-process via ``AggregationServer.submit_array`` — JSON
doubles are repr-round-trippable, the service folds whole batches in
admission order, so the streaming moments agree to the last bit.

The ≥5k reports/sec floor is asserted in both modes (measured loopback
throughput is ~40× above it); an internal-error admission is always a
failure.  Standalone script (not pytest-benchmark): CI runs ``--quick``
as the ingest smoke test, developers run it bare for the full sweep.
"""

import argparse
import json
import pathlib
import socket
import sys

from repro.aggregation import AggregationServer
from repro.rng import audited_generator
from repro.service import IngestClient, ServiceConfig, run_load
from repro.service.server import serve_in_thread

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_JSON = REPO_ROOT / "BENCH_ingest.json"

SEED = 20260808
#: Acceptance floor: the service must sustain this on loopback.
MIN_REPORTS_PER_S = 5_000

#: (batch_size, n_batches) rows swept — the last row is the headline.
SWEEP = ((64, 400), (256, 400), (1024, 200))
QUICK_SWEEP = ((64, 40), (256, 40))


def _identity_check() -> bool:
    """Socket-fed epochs ≡ in-process ``submit_array``, bit for bit."""
    gen = audited_generator(SEED)
    batches = []
    for b in range(8):
        values = gen.uniform(0.0, 50.0, size=193)
        ids = [f"dev-{b}-{i}" for i in range(values.size)]
        batches.append((b % 3, ids, values))

    in_process = AggregationServer(streaming=True)
    for epoch, ids, values in batches:
        in_process.submit_array(epoch, values, 1.0, device_ids=ids)

    socket_fed = AggregationServer(streaming=True)
    with serve_in_thread(socket_fed, ServiceConfig()) as handle:
        host, port = handle.address
        with IngestClient(host, port) as client:
            for epoch, ids, values in batches:
                reply = client.submit(
                    epoch, ids, [float(v) for v in values], claimed_loss=1.0
                )
                assert reply["status"] == "admitted", reply
        handle.stop()
    return socket_fed.snapshot() == in_process.snapshot()


def _sweep_row(batch_size: int, n_batches: int, queue_capacity: int) -> dict:
    aggregation = AggregationServer(streaming=True)
    config = ServiceConfig(queue_capacity=queue_capacity)
    with serve_in_thread(aggregation, config) as handle:
        host, port = handle.address
        load = run_load(
            host,
            port,
            batches=n_batches,
            batch_size=batch_size,
            epochs=max(4, n_batches),  # distinct epochs: no rate-limit noise
            seed=SEED,
        )
        handle.stop()
    metrics = load.server_metrics

    def us(key):
        value = metrics.get(key)
        return None if value is None else round(value, 1)

    return {
        "batch_size": batch_size,
        "n_batches": n_batches,
        "reports_admitted": load.reports_admitted,
        "n_repaired": load.n_repaired,
        "n_blocked": load.n_blocked,
        "n_busy_retries": load.n_busy_retries,
        "elapsed_s": round(load.elapsed_s, 4),
        "reports_per_s": round(load.reports_per_s, 1),
        "client_rtt_p50_us": round(load.latency_p50_us, 1),
        "client_rtt_p99_us": round(load.latency_p99_us, 1),
        "server_admit_p50_us": us("latency_p50_us"),
        "server_admit_p99_us": us("latency_p99_us"),
        "max_queue_depth": metrics.get("max_queue_depth"),
        "internal_errors": metrics.get("internal_errors"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--queue-capacity", type=int, default=64,
        help="service backpressure bound (pending whole batches)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=RESULTS_JSON,
        help="where to write the schema-1 JSON results",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: short bursts, same floors",
    )
    args = parser.parse_args(argv)

    sweep_spec = QUICK_SWEEP if args.quick else SWEEP
    print(f"host={socket.gethostname()} loopback sweep={list(sweep_spec)} "
          f"queue_capacity={args.queue_capacity}")

    bit_identical = _identity_check()
    print(f"bit-identity (socket-fed vs in-process submit_array): "
          f"{'OK' if bit_identical else 'FAILED'}")

    sweep = []
    for batch_size, n_batches in sweep_spec:
        row = _sweep_row(batch_size, n_batches, args.queue_capacity)
        sweep.append(row)
        print(
            f"batch={batch_size:>5d} x{n_batches:<4d} "
            f"{row['reports_per_s']:>10,.0f} reports/s  "
            f"admit p50 {row['server_admit_p50_us']} us / "
            f"p99 {row['server_admit_p99_us']} us  "
            f"rtt p99 {row['client_rtt_p99_us']:,.0f} us  "
            f"queue<= {row['max_queue_depth']}  "
            f"errors {row['internal_errors']}"
        )

    headline = sweep[-1]
    payload = {
        "schema": 1,
        "transport": "loopback-tcp-jsonl",
        "queue_capacity": args.queue_capacity,
        "sweep": sweep,
        "reports_per_s": headline["reports_per_s"],
        "server_admit_p99_us": headline["server_admit_p99_us"],
        "throughput_floor": MIN_REPORTS_PER_S,
        "bit_identical": bit_identical,
        "quick": args.quick,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")

    if not bit_identical:
        print("FAIL: socket-fed epoch is not bit-identical to in-process "
              "submission")
        return 1
    internal_errors = sum(row["internal_errors"] or 0 for row in sweep)
    if internal_errors:
        print(f"FAIL: {internal_errors} internal-error admission(s)")
        return 1
    if headline["reports_per_s"] < MIN_REPORTS_PER_S:
        print(f"FAIL: {headline['reports_per_s']:,.0f} reports/s below the "
              f"{MIN_REPORTS_PER_S:,} floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
