"""Ingestion-service bench — both wires, throughput, latency, and bytes.

Starts the asyncio ingestion service in-process on a loopback socket and
drives it with the deterministic load generator
(:func:`repro.service.run_load`), sweeping report-batch size **per
wire**: the default JSONL v1 and the negotiated binary columnar v2.
Per row it records reports/sec, wire bytes per admitted report, the
server-side admission-latency percentiles (p50 / p99), the
client-observed round-trip percentiles, and the admission tallies
(repaired / blocked / busy retries / internal errors).

Measurement discipline: the load generator pipelines requests
(``PIPELINE`` in flight) so throughput reflects the admission path, not
serial round-trip stalls; the garbage collector is paused around each
timed burst (hundreds of thousands of tracked device ids make gen-2
collections expensive and noisy); each cell is the median of
``--trials`` runs on a fresh server.

Before timing anything it verifies the headline seam invariant on
**both wires**: a fleet epoch ingested over the socket is bit-identical
to the same epoch submitted in-process via
``AggregationServer.submit_array``.

Floors (full mode): ≥5k reports/sec on either wire, zero internal
errors, zero busy retries (fold order stays batch order under the
pipelined window), and the headline ratio — binary vs JSONL reports/s
at batch_size=1024 — at least ``MIN_BINARY_SPEEDUP``.  Standalone
script (not pytest-benchmark): CI runs ``--quick --wire <w>`` as the
ingest smoke matrix, developers run it bare for the full sweep.
"""

import argparse
import gc
import json
import pathlib
import socket
import statistics
import sys

from repro.aggregation import AggregationServer
from repro.rng import audited_generator
from repro.service import IngestClient, ServiceConfig, run_load
from repro.service.server import serve_in_thread

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_JSON = REPO_ROOT / "BENCH_ingest.json"

SEED = 20260808
#: Acceptance floor: the service must sustain this on loopback.
MIN_REPORTS_PER_S = 5_000
#: Headline acceptance: binary wire throughput vs JSONL at batch 1024.
MIN_BINARY_SPEEDUP = 3.0
#: Request window depth for the load generator (queue_capacity is 64 by
#: default, so the window never trips busy backpressure).
PIPELINE = 16

WIRES = ("jsonl", "binary")

#: (batch_size, n_batches) rows swept — the last row is the headline.
SWEEP = ((64, 400), (256, 400), (1024, 200))
QUICK_SWEEP = ((64, 40), (256, 40))


def _identity_check(wire: str) -> bool:
    """Socket-fed epochs ≡ in-process ``submit_array``, bit for bit."""
    gen = audited_generator(SEED)
    batches = []
    for b in range(8):
        values = gen.uniform(0.0, 50.0, size=193)
        ids = [f"dev-{b}-{i}" for i in range(values.size)]
        batches.append((b % 3, ids, values))

    in_process = AggregationServer(streaming=True)
    for epoch, ids, values in batches:
        in_process.submit_array(epoch, values, 1.0, device_ids=ids)

    socket_fed = AggregationServer(streaming=True)
    with serve_in_thread(socket_fed, ServiceConfig()) as handle:
        host, port = handle.address
        with IngestClient(host, port, wire=wire) as client:
            for epoch, ids, values in batches:
                reply = client.submit(epoch, ids, values, claimed_loss=1.0)
                assert reply["status"] == "admitted", reply
        handle.stop()
    return socket_fed.snapshot() == in_process.snapshot()


def _trial(
    wire: str, batch_size: int, n_batches: int, queue_capacity: int
) -> dict:
    aggregation = AggregationServer(streaming=True)
    config = ServiceConfig(queue_capacity=queue_capacity)
    with serve_in_thread(aggregation, config) as handle:
        host, port = handle.address
        gc.collect()
        gc.disable()
        try:
            load = run_load(
                host,
                port,
                batches=n_batches,
                batch_size=batch_size,
                epochs=max(4, n_batches),  # distinct epochs: no rate noise
                seed=SEED,
                wire=wire,
                pipeline=PIPELINE,
            )
        finally:
            gc.enable()
        handle.stop()
    metrics = load.server_metrics

    def us(key):
        value = metrics.get(key)
        return None if value is None else round(value, 1)

    return {
        "wire": wire,
        "batch_size": batch_size,
        "n_batches": n_batches,
        "pipeline": PIPELINE,
        "reports_admitted": load.reports_admitted,
        "n_repaired": load.n_repaired,
        "n_blocked": load.n_blocked,
        "n_busy_retries": load.n_busy_retries,
        "elapsed_s": round(load.elapsed_s, 4),
        "reports_per_s": round(load.reports_per_s, 1),
        "wire_bytes_sent": load.wire_bytes_sent,
        "wire_bytes_per_report": round(load.wire_bytes_per_report, 2),
        "client_rtt_p50_us": round(load.latency_p50_us, 1),
        "client_rtt_p99_us": round(load.latency_p99_us, 1),
        "server_admit_p50_us": us("latency_p50_us"),
        "server_admit_p99_us": us("latency_p99_us"),
        "max_queue_depth": metrics.get("max_queue_depth"),
        "internal_errors": metrics.get("internal_errors"),
    }


def _sweep_cell(
    wire: str,
    batch_size: int,
    n_batches: int,
    queue_capacity: int,
    trials: int,
) -> dict:
    rows = [
        _trial(wire, batch_size, n_batches, queue_capacity)
        for _ in range(trials)
    ]
    rates = sorted(row["reports_per_s"] for row in rows)
    median_rate = statistics.median(rates)
    # Report the trial whose rate is the median; carry the spread.
    row = min(rows, key=lambda r: abs(r["reports_per_s"] - median_rate))
    row["trials"] = trials
    row["reports_per_s_spread"] = [rates[0], rates[-1]]
    # Tallies must be clean on *every* trial, not just the median one.
    row["internal_errors"] = sum(r["internal_errors"] or 0 for r in rows)
    row["n_busy_retries"] = sum(r["n_busy_retries"] for r in rows)
    row["n_blocked"] = sum(r["n_blocked"] for r in rows)
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--queue-capacity", type=int, default=64,
        help="service backpressure bound (pending whole batches)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=RESULTS_JSON,
        help="where to write the schema-2 JSON results",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: short bursts, one trial, no speedup floor",
    )
    parser.add_argument(
        "--wire",
        choices=(*WIRES, "both"),
        default="both",
        help="restrict the sweep to one wire (CI matrix axis)",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="trials per cell, median reported (default: 3, quick: 1)",
    )
    args = parser.parse_args(argv)

    sweep_spec = QUICK_SWEEP if args.quick else SWEEP
    trials = args.trials if args.trials else (1 if args.quick else 3)
    wires = WIRES if args.wire == "both" else (args.wire,)
    print(f"host={socket.gethostname()} loopback sweep={list(sweep_spec)} "
          f"wires={list(wires)} queue_capacity={args.queue_capacity} "
          f"pipeline={PIPELINE} trials={trials}")

    bit_identical = {wire: _identity_check(wire) for wire in wires}
    for wire, ok in bit_identical.items():
        print(f"bit-identity ({wire} socket-fed vs in-process submit_array): "
              f"{'OK' if ok else 'FAILED'}")

    sweep = []
    for batch_size, n_batches in sweep_spec:
        for wire in wires:
            row = _sweep_cell(
                wire, batch_size, n_batches, args.queue_capacity, trials
            )
            sweep.append(row)
            print(
                f"{wire:>6s} batch={batch_size:>5d} x{n_batches:<4d} "
                f"{row['reports_per_s']:>10,.0f} reports/s  "
                f"{row['wire_bytes_per_report']:>6.1f} B/report  "
                f"admit p50 {row['server_admit_p50_us']} us / "
                f"p99 {row['server_admit_p99_us']} us  "
                f"errors {row['internal_errors']}"
            )

    headline_batch = sweep_spec[-1][0]
    by_wire = {
        row["wire"]: row
        for row in sweep
        if row["batch_size"] == headline_batch
    }
    speedup = None
    if "jsonl" in by_wire and "binary" in by_wire:
        speedup = round(
            by_wire["binary"]["reports_per_s"]
            / by_wire["jsonl"]["reports_per_s"],
            2,
        )
        print(f"headline batch={headline_batch}: binary/jsonl = {speedup}x")

    payload = {
        "schema": 2,
        "transport": "loopback-tcp",
        "wires": list(wires),
        "queue_capacity": args.queue_capacity,
        "pipeline": PIPELINE,
        "trials": trials,
        "sweep": sweep,
        "headline_batch_size": headline_batch,
        "reports_per_s": {
            wire: row["reports_per_s"] for wire, row in by_wire.items()
        },
        "wire_bytes_per_report": {
            wire: row["wire_bytes_per_report"]
            for wire, row in by_wire.items()
        },
        "binary_speedup": speedup,
        "throughput_floor": MIN_REPORTS_PER_S,
        "speedup_floor": MIN_BINARY_SPEEDUP,
        "bit_identical": bit_identical,
        "quick": args.quick,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")

    failed = False
    for wire, ok in bit_identical.items():
        if not ok:
            print(f"FAIL: {wire} socket-fed epoch is not bit-identical to "
                  f"in-process submission")
            failed = True
    internal_errors = sum(row["internal_errors"] or 0 for row in sweep)
    if internal_errors:
        print(f"FAIL: {internal_errors} internal-error admission(s)")
        failed = True
    for row in sweep:
        if row["reports_per_s"] < MIN_REPORTS_PER_S:
            print(f"FAIL: {row['wire']} batch={row['batch_size']} at "
                  f"{row['reports_per_s']:,.0f} reports/s is below the "
                  f"{MIN_REPORTS_PER_S:,} floor")
            failed = True
    if not args.quick:
        busy = sum(row["n_busy_retries"] for row in sweep)
        if busy:
            print(f"FAIL: {busy} busy retries (pipelined fold order no "
                  f"longer batch order)")
            failed = True
        if speedup is not None and speedup < MIN_BINARY_SPEEDUP:
            print(f"FAIL: binary speedup {speedup}x below the "
                  f"{MIN_BINARY_SPEEDUP}x floor at batch={headline_batch}")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
