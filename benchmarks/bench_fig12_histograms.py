"""Fig. 12 — output histograms of two Statlog heart entries, ε = 1.

Feeds two dataset entries through the naive DP-Box arm many times and
compares the output histograms: (a) overall the two look like overlapping
Laplace bells; (b) zoomed into the tail, bins appear that only one entry
can produce — "two data can be totally distinguishable if the DP output
reports a value that only one data can generate".  The guarded arm shows
no such bins.
"""

import numpy as np

from repro.analysis import GridHistogram, overlap_fraction
from repro.attacks import run_distinguisher
from repro.datasets import load
from repro.mechanisms import make_mechanism

from conftest import record_experiment

EPSILON = 1.0
N_PRESENTATIONS = 20000  # paper presents each entry 500x; we push further


def bench_fig12_tail_distinguishability(benchmark):
    heart = load("statlog-heart", seed=2018)
    x1, x2 = float(heart.values[0]), float(heart.values[1])
    kw = dict(input_bits=14, output_bits=18, delta=heart.sensor.d / 64)
    naive = make_mechanism("baseline", heart.sensor, EPSILON, **kw)
    guarded = make_mechanism("thresholding", heart.sensor, EPSILON, **kw)

    def histograms():
        y1 = naive.privatize(np.full(N_PRESENTATIONS, x1))
        y2 = naive.privatize(np.full(N_PRESENTATIONS, x2))
        return (
            GridHistogram.from_samples(y1, naive.delta),
            GridHistogram.from_samples(y2, naive.delta),
        )

    h1, h2 = benchmark.pedantic(histograms, rounds=1, iterations=1)

    # Sampled view (illustration) ...
    overall_sampled = overlap_fraction(h1, h2)
    # ... and the exact view the assertion uses: populated-bin overlap of
    # the true conditional PMFs.
    k1 = int(naive.quantize_inputs(np.asarray([x1]))[0])
    k2 = int(naive.quantize_inputs(np.asarray([x2]))[0])
    pmf1 = naive.noise_pmf.shifted(k1)
    pmf2 = naive.noise_pmf.shifted(k2)
    lo = min(pmf1.min_k, pmf2.min_k)
    hi = max(pmf1.max_k, pmf2.max_k)
    a = pmf1.prob_array(lo, hi)
    b = pmf2.prob_array(lo, hi)
    populated = (a > 0) | (b > 0)
    overall = float(((a > 0) & (b > 0)).sum() / populated.sum())
    # Exact upper-tail window: last 1% of pmf1's mass.
    cum = np.cumsum(a[::-1])[::-1]
    tail_start = int(np.flatnonzero(cum <= 0.01 * a.sum())[0])
    a_t, b_t = a[tail_start:], b[tail_start:]
    pop_t = (a_t > 0) | (b_t > 0)
    tail_overlap = float(((a_t > 0) & (b_t > 0)).sum() / pop_t.sum())

    naive_rep = run_distinguisher(naive, x1, x2, n_samples=20000)
    guarded_rep = run_distinguisher(guarded, x1, x2, n_samples=20000)

    text = "\n".join(
        [
            f"two Statlog entries x1={x1:g}, x2={x2:g}, eps={EPSILON}, "
            f"{N_PRESENTATIONS} presentations each:",
            f"  (a) populated-bin overlap, full range : {overall:.3f} "
            f"(sampled view: {overall_sampled:.3f})",
            f"  (b) populated-bin overlap, upper tail : {tail_overlap:.3f}",
            "",
            "exact certain-identification probability per output:",
            f"  naive DP-Box arm   : {naive_rep.certain_rate_x1:.2e} (x1) "
            f"/ {naive_rep.certain_rate_x2:.2e} (x2)",
            f"  thresholding arm   : {guarded_rep.certain_rate_x1:.2e} "
            f"/ {guarded_rep.certain_rate_x2:.2e}",
            "",
            "paper shape check: naive tails stop overlapping (privacy broken); "
            "guarded DP-Box keeps every output producible by both — "
            + (
                "REPRODUCED"
                if tail_overlap < overall and guarded_rep.certain_rate_x1 == 0.0
                else "MISMATCH"
            ),
        ]
    )
    record_experiment("fig12_histograms", text)

    assert tail_overlap < overall
    assert naive_rep.certain_rate_x1 > 0
    assert guarded_rep.certain_rate_x1 == 0.0 and guarded_rep.certain_rate_x2 == 0.0
