"""Table V — MAE of the counting query across datasets and arms.

Four arms (Ideal / FxP baseline / Resampling / Thresholding) at ε = 0.5
over the seven Table-I datasets, with the exact-analysis LDP verdict per
arm — the paper's point being that the baseline matches ideal utility
while failing LDP, and the guards match while passing.
"""

from repro.queries import CountingQuery

from _table_utils import utility_table
from conftest import record_experiment


def bench_table5_counting_query(benchmark, paper_datasets, bench_arms):
    text = benchmark.pedantic(
        utility_table,
        args=(paper_datasets, bench_arms, CountingQuery(), "Table 5"),
        rounds=1,
        iterations=1,
    )
    record_experiment("table5_counting", text)
    assert "REPRODUCED" in text
