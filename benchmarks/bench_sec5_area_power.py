"""Section V — DP-Box synthesis characteristics (model).

No RTL toolchain is available (DESIGN.md §4); this bench reports the
published synthesis points through the analytic area/power model, checks
their internal consistency (critical path admits the 16 MHz target, the
relaxed variant trades area for power), and prices the budget logic.
The timed operation is the cycle-level model's noising step — the thing
whose single-cycle feasibility the synthesis numbers assert.
"""

from repro.analysis import render_table
from repro.core import (
    BUDGET_LOGIC_OVERHEAD,
    DPBOX_BASELINE,
    DPBOX_RELAXED,
    DPBox,
    DPBoxConfig,
    DPBoxDriver,
)

from conftest import record_experiment


def bench_sec5_synthesis_model(benchmark):
    box = DPBox(DPBoxConfig(input_bits=14, range_frac_bits=6))
    drv = DPBoxDriver(box)
    drv.initialize(budget=1e9)
    drv.configure(epsilon_exponent=1, range_lower=0.0, range_upper=10.0)
    benchmark(drv.noise, 5.0)

    rows = []
    for point in (DPBOX_BASELINE, DPBOX_RELAXED):
        rows.append(
            [
                point.name,
                point.gates,
                f"{point.critical_path_ns:.2f}",
                f"{point.power_uw:.1f}",
                f"{point.max_frequency_hz / 1e6:.1f}",
                f"{point.energy_per_cycle_pj:.2f}",
            ]
        )
    text = "\n".join(
        [
            render_table(
                [
                    "variant",
                    "gates",
                    "critical path (ns)",
                    "power (uW)",
                    "max freq (MHz)",
                    "pJ/cycle",
                ],
                rows,
                title="Section V: DP-Box synthesis points (65 nm, published constants)",
            ),
            "",
            f"budget-control logic overhead: +{BUDGET_LOGIC_OVERHEAD:.0%} gates "
            f"({DPBOX_BASELINE.gates} -> {DPBOX_BASELINE.gates_with_budget_logic()})",
            f"16 MHz operation feasible: critical path {DPBOX_BASELINE.critical_path_ns} ns "
            f"< {1e3 / 16:.2f} ns period — REPRODUCED (as model consistency)",
        ]
    )
    record_experiment("sec5_area_power", text)

    assert DPBOX_BASELINE.max_frequency_hz > 16e6
    assert DPBOX_BASELINE.gates_with_budget_logic() > DPBOX_BASELINE.gates
