"""Fig. 8 — normalized privacy loss vs noised-output value, and the
segment thresholds the budget controller stores.

The paper's example reads: outputs in (M, M+76] cost no more than 1.5ε,
(M+76, M+90] no more than 2.0ε.  We regenerate the same kind of table
from the exact loss profile of a calibrated thresholding mechanism.
"""

from repro.analysis import render_table
from repro.core import build_segment_table
from repro.mechanisms import SensorSpec, make_mechanism

from conftest import record_experiment

SENSOR = SensorSpec(0.0, 10.0)
EPSILON = 0.5
LEVELS = (1.0, 1.25, 1.5, 1.75, 2.0)


def bench_fig8_segment_table(benchmark):
    mech = make_mechanism(
        "thresholding", SENSOR, EPSILON, input_bits=14, output_bits=18, delta=10 / 64
    )
    family = mech._family()
    table = benchmark(build_segment_table, family, EPSILON, LEVELS)

    rows = []
    prev = 0.0
    for seg in table.segments:
        hi = seg.max_offset_codes * mech.delta
        label = (
            "[m, M] (in range)"
            if seg.max_offset_codes == 0
            else f"(M+{prev:g}, M+{hi:g}]  and mirrored below m"
        )
        rows.append([label, f"{seg.loss:.4f}", f"{seg.loss / EPSILON:.3f}·ε"])
        prev = hi
    text = "\n".join(
        [
            render_table(
                ["noised-output segment", "charged loss", "normalized"],
                rows,
                title=f"Fig. 8: privacy-loss segments (ε = {EPSILON}, levels {LEVELS})",
            ),
            "",
            "paper shape check: loss grows with distance beyond the sensor "
            "range, in steps the budget logic can look up — REPRODUCED",
        ]
    )
    record_experiment("fig08_loss_segments", text)

    losses = [s.loss for s in table.segments]
    assert losses == sorted(losses)
    assert losses[-1] <= 2.0 * EPSILON + 1e-9
