"""Ablation — how broken is "broken"? (ε, δ) analysis of the naive arm.

The paper's negative result is qualitative: the naive fixed-point arm is
not ε-LDP for *any* ε.  The hockey-stick analysis quantifies it: the
smallest δ at which the arm becomes (ε, δ)-LDP equals the probability
mass of its revealing outputs — orders of magnitude above the
δ ≪ 1/N standard.  The guarded arm reaches δ = 0 at its calibrated ε.
"""

import numpy as np

from repro.analysis import render_table
from repro.mechanisms import SensorSpec, make_mechanism
from repro.privacy import delta_at_epsilon

from conftest import record_experiment

SENSOR = SensorSpec(0.0, 10.0)
EPSILON = 0.5
EPS_GRID = (0.5, 1.0, 2.0, 4.0, 8.0)


def bench_ablation_approximate_dp(benchmark):
    kw = dict(input_bits=14, output_bits=18, delta=10 / 64)
    naive = make_mechanism("baseline", SENSOR, EPSILON, **kw)
    guarded = make_mechanism("thresholding", SENSOR, EPSILON, **kw)
    fam_naive = naive._family()
    fam_guarded = guarded._family()

    def run():
        rows = []
        for e in EPS_GRID:
            rows.append(
                [
                    f"{e:g}",
                    f"{delta_at_epsilon(fam_naive, e):.3e}",
                    f"{delta_at_epsilon(fam_guarded, e):.3e}",
                ]
            )
        floor = delta_at_epsilon(fam_naive, 40.0)
        return rows, floor

    rows, floor = benchmark.pedantic(run, rounds=1, iterations=1)

    guarded_zero = float(rows[-1][2]) == 0.0
    text = "\n".join(
        [
            render_table(
                ["epsilon", "naive arm: tightest δ", "thresholding arm: tightest δ"],
                rows,
                title=(
                    "Ablation: (ε, δ)-LDP — the smallest δ making each arm "
                    f"(ε, δ)-private (nominal ε = {EPSILON})"
                ),
            ),
            "",
            f"naive arm δ floor (any ε): {floor:.3e} — the exact mass of its "
            "certainty-revealing outputs.",
            f"At N = 10^4 users the DP standard requires δ ≪ 1e-4; the naive "
            f"floor is {floor / 1e-4:.1f}× that bound, so the failure is not "
            "academically small — CONFIRMED"
            if floor > 1e-4 and guarded_zero
            else "MISMATCH",
        ]
    )
    record_experiment("ablation_approximate_dp", text)
    assert floor > 1e-4  # the leak is macroscopic
    assert guarded_zero  # the guard needs no delta at all


def bench_delta_computation_speed(benchmark):
    """Timing target: one full δ(ε) evaluation on a realistic family."""
    mech = make_mechanism(
        "baseline", SENSOR, EPSILON, input_bits=14, output_bits=18, delta=10 / 64
    )
    family = mech._family()
    result = benchmark(delta_at_epsilon, family, 1.0)
    assert result > 0
