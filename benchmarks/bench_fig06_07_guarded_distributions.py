"""Figs. 6 & 7 — noised-output distributions under resampling/thresholding.

For the two extreme sensor values, computes the exact conditional output
distributions: resampling truncates (common window, renormalized mass),
thresholding clamps (visible probability atoms at the window edges where
"both data m and M have similar probability to report the boundary
values").
"""

import numpy as np

from repro.analysis import render_table
from repro.mechanisms import SensorSpec, make_mechanism

from conftest import record_experiment

SENSOR = SensorSpec(0.0, 10.0)
EPSILON = 0.5
KW = dict(input_bits=14, output_bits=18, delta=10 / 64)


def _atoms(mech):
    lo, hi = mech.window
    rows = []
    for x in (SENSOR.m, SENSOR.M):
        k_x = int(mech.quantize_inputs(np.asarray([x]))[0])
        shifted = mech.noise_pmf.shifted(k_x)
        rows.append(
            [
                f"x = {x:g}",
                f"{shifted.tail_le(lo - 1):.5f}",
                f"{shifted.tail_ge(hi + 1):.5f}",
            ]
        )
    return rows


def bench_fig6_resampling_distribution(benchmark):
    mech = make_mechanism("resampling", SENSOR, EPSILON, **KW)
    y = benchmark(mech.privatize, np.full(20000, SENSOR.m))
    lo, hi = np.array(mech.window) * mech.delta
    text = "\n".join(
        [
            f"resampling: threshold n_th1 = {mech.threshold:.3f}, "
            f"window [{lo:.2f}, {hi:.2f}] (common to every input)",
            f"  empirical output range for x=m : [{y.min():.2f}, {y.max():.2f}]",
            f"  acceptance prob (x=m)          : {mech.acceptance_probability(SENSOR.m):.4f}",
            f"  exact worst-case loss          : {mech.ldp_report().worst_loss:.4f} "
            f"<= {mech.claimed_loss_bound} — Fig. 6 REPRODUCED",
        ]
    )
    record_experiment("fig06_resampling_distribution", text)
    assert y.min() >= lo - 1e-9 and y.max() <= hi + 1e-9


def bench_fig7_thresholding_distribution(benchmark):
    mech = make_mechanism("thresholding", SENSOR, EPSILON, **KW)
    y = benchmark(mech.privatize, np.full(20000, SENSOR.m))
    lo, hi = np.array(mech.window) * mech.delta
    atom_rows = _atoms(mech)
    emp_low_atom = float(np.mean(np.isclose(y, lo)))
    text = "\n".join(
        [
            f"thresholding: threshold n_th2 = {mech.threshold:.3f}, "
            f"window [{lo:.2f}, {hi:.2f}], outputs clamp to the edges",
            render_table(
                ["input", "P[clamp low]", "P[clamp high]"],
                atom_rows,
                title="exact boundary-atom probabilities (the Fig. 7 spikes)",
            ),
            f"  empirical low-atom mass for x=m: {emp_low_atom:.5f}",
            f"  exact worst-case loss          : {mech.ldp_report().worst_loss:.4f} "
            f"<= {mech.claimed_loss_bound} — Fig. 7 REPRODUCED",
        ]
    )
    record_experiment("fig07_thresholding_distribution", text)
    assert y.min() >= lo - 1e-9 and y.max() <= hi + 1e-9
    # The near boundary is visibly more likely for the near input.
    near = float(atom_rows[0][1])
    far = float(atom_rows[1][1])
    assert near > far
