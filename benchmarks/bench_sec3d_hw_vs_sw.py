"""Section III-D — hardware vs software noising: latency and energy.

Reproduces the comparison table: 4043 cycles for 20-bit fixed-point
software, 1436 for half-float software, 4 cycles (conservative) for
DP-Box — yielding 894× / 318× energy wins.  The software constant is
grounded by actually running the functional software noiser with its
MSP430 cycle-cost model; the hardware constant by the cycle-level DP-Box.
"""

from repro.analysis import render_table
from repro.core import (
    DPBox,
    DPBoxConfig,
    DPBoxDriver,
    EnergyModel,
    SW_FLOAT_CYCLES,
    SW_FXP_CYCLES,
    SoftwareNoiser,
)

from conftest import record_experiment


def bench_sec3d_software_noising(benchmark):
    """Timing target: one software noising (functional + cycle model)."""
    sw = SoftwareNoiser(seed=0, calibrate_to_paper=True)
    benchmark(lambda: sw.noise_value(100, lam_shift=2, delta_shift=8))
    modeled = sw.average_cycles(16)

    box = DPBox(DPBoxConfig(input_bits=14, range_frac_bits=6))
    drv = DPBoxDriver(box)
    drv.initialize(budget=1e9)
    drv.configure(epsilon_exponent=1, range_lower=0.0, range_upper=10.0)
    hw_cycles = [drv.noise(5.0).cycles for _ in range(50)]

    model = EnergyModel()
    rows = [
        [
            "software, 20-bit fixed point",
            f"{SW_FXP_CYCLES}",
            f"{model.software_energy_pj(SW_FXP_CYCLES) / 1000:.2f}",
            "1x",
        ],
        [
            "software, half-precision float",
            f"{SW_FLOAT_CYCLES}",
            f"{model.software_energy_pj(SW_FLOAT_CYCLES) / 1000:.2f}",
            f"{SW_FXP_CYCLES / SW_FLOAT_CYCLES:.2f}x",
        ],
        [
            "DP-Box (4 MCU cycles + 2 box cycles)",
            "4",
            f"{model.hardware_energy_pj() / 1000:.3f}",
            f"{model.ratio_vs_fxp_software():.0f}x",
        ],
    ]
    text = "\n".join(
        [
            render_table(
                ["implementation", "cycles", "energy (nJ/noising)", "vs FxP software"],
                rows,
                title="Section III-D: per-noising latency and energy",
            ),
            "",
            f"functional software model (measured): {modeled:.0f} cycles "
            f"(paper: {SW_FXP_CYCLES})",
            f"cycle-level DP-Box (measured): {max(hw_cycles)} box cycles per noising",
            f"energy ratios: {model.ratio_vs_fxp_software():.0f}x vs fixed-point SW "
            f"(paper 894x), {model.ratio_vs_float_software():.0f}x vs float SW "
            f"(paper 318x) — REPRODUCED",
        ]
    )
    record_experiment("sec3d_hw_vs_sw", text)

    assert abs(modeled - SW_FXP_CYCLES) / SW_FXP_CYCLES < 0.1
    assert max(hw_cycles) == 2
    assert abs(model.ratio_vs_fxp_software() - 894) < 20
    assert abs(model.ratio_vs_float_software() - 318) < 10
