"""Ablation — pipelined DP-Box variants (Section V).

"We generated several other variants of DP-Box to better understand
latency / area tradeoffs.  Unsurprisingly, we found that pipelined
variants reduced critical path length at the expense of area."  This
ablation sweeps the first-order pipelining model over 1–4 stages and
checks the expected monotonicities.
"""

from repro.analysis import render_table
from repro.core import DPBOX_BASELINE

from conftest import record_experiment


def bench_ablation_pipeline_variants(benchmark):
    def sweep():
        return [DPBOX_BASELINE.pipelined(s) for s in (1, 2, 3, 4)]

    variants = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            v.name,
            v.gates,
            f"{v.critical_path_ns:.2f}",
            f"{v.max_frequency_hz / 1e6:.1f}",
            f"{v.power_uw:.1f}",
        ]
        for v in variants
    ]
    cps = [v.critical_path_ns for v in variants]
    gates = [v.gates for v in variants]
    ok = cps == sorted(cps, reverse=True) and gates == sorted(gates)
    text = "\n".join(
        [
            render_table(
                ["variant", "gates", "critical path (ns)", "max freq (MHz)", "power (µW)"],
                rows,
                title="Ablation: pipelined DP-Box variants (first-order model)",
            ),
            "",
            "expected: critical path falls and area grows with stage count — "
            + ("CONFIRMED" if ok else "MISMATCH"),
        ]
    )
    record_experiment("ablation_pipeline_variants", text)
    assert ok
    # Even one extra stage should comfortably beat the 16 MHz requirement.
    assert variants[1].max_frequency_hz > 2 * 16e6
