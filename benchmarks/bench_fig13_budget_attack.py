"""Fig. 13 — averaging adversary vs privacy-budget control, ε = 0.5.

Three arms: no budget, a small budget, a larger budget.  Without control
the adversary's relative error keeps shrinking with the number of
requests; with a finite budget the DP-Box switches to its cached output
and the error floors.
"""

import numpy as np

from repro.analysis import render_series
from repro.attacks import run_averaging_attack_mechanism
from repro.mechanisms import SensorSpec, make_mechanism

from conftest import record_experiment

SENSOR = SensorSpec(94.0, 200.0)
EPSILON = 0.5
TRUE_VALUE = 131.0
N_REQUESTS = 20000
BUDGETS = (None, 25.0, 100.0)
REPEATS = 12


def bench_fig13_budget_attack(benchmark):
    mech = make_mechanism("thresholding", SENSOR, EPSILON, input_bits=14)
    loss = mech.ldp_report().worst_loss

    def run_all():
        curves = {}
        for budget in BUDGETS:
            per_rep = []
            for _ in range(REPEATS):
                trace = run_averaging_attack_mechanism(
                    mech,
                    TRUE_VALUE,
                    SENSOR.d,
                    n_requests=N_REQUESTS,
                    budget=budget,
                    per_query_loss=loss,
                    n_checkpoints=12,
                )
                per_rep.append(trace.relative_errors)
            curves[budget] = (trace.checkpoints, np.mean(per_rep, axis=0))
        return curves

    curves = benchmark.pedantic(run_all, rounds=1, iterations=1)

    checkpoints = curves[None][0]
    series = []
    for budget in BUDGETS:
        label = "no budget" if budget is None else f"budget {budget:g}"
        series.append((label, [f"{v:.4f}" for v in curves[budget][1]]))
    floors = {b: float(np.mean(curves[b][1][-3:])) for b in BUDGETS}
    text = "\n".join(
        [
            render_series(
                "requests",
                list(checkpoints),
                series,
                title=(
                    f"Fig. 13: adversary's relative estimation error vs #requests "
                    f"(eps={EPSILON}, per-query loss {loss:.3f}, mean of {REPEATS} runs)"
                ),
            ),
            "",
            f"terminal errors: no-budget {floors[None]:.4f}  "
            f"< budget-100 {floors[100.0]:.4f}  < budget-25 {floors[25.0]:.4f}",
            "paper shape check: unbounded requests drive the error toward 0; "
            "finite budgets floor it, smaller budget = higher floor — "
            + (
                "REPRODUCED"
                if floors[None] < floors[100.0] < floors[25.0]
                else "MISMATCH"
            ),
        ]
    )
    record_experiment("fig13_budget_attack", text)

    assert floors[None] < floors[100.0] < floors[25.0]
