"""Fig. 15 — mean-query MAE vs dataset size, high and low RNG resolution.

(a) With enough URNG bits every arm's error keeps shrinking with N — more
data buys more aggregate accuracy.  (b) With few URNG bits the guards
must set tight thresholds; the resulting truncation/clamp bias does not
average out, so the guarded arms hit an error floor while the ideal
mechanism keeps improving.
"""

import numpy as np

from repro.analysis import render_series
from repro.datasets import truncated_gaussian
from repro.mechanisms import SensorSpec, make_mechanism
from repro.queries import MeanQuery, mae_trials

from conftest import record_experiment

SENSOR = SensorSpec(0.0, 10.0)
EPSILON = 0.5
SIZES = (100, 300, 1000, 3000, 10000, 30000)
TRIALS = 10
ARMS = ("ideal", "baseline", "resampling", "thresholding")


def _mech(arm, input_bits, loss_multiple):
    if arm == "ideal":
        return make_mechanism(arm, SENSOR, EPSILON)
    return make_mechanism(
        arm,
        SENSOR,
        EPSILON,
        input_bits=input_bits,
        output_bits=18,
        delta=10 / 64,
        loss_multiple=loss_multiple,
    )


def _sweep(input_bits, loss_multiple):
    rng = np.random.default_rng(15)
    query = MeanQuery()
    # Off-center data so guard bias (if any) is visible in the mean.
    data_full = truncated_gaussian(max(SIZES), 0.0, 10.0, 7.0, 1.5, rng=rng)
    out = {}
    for arm in ARMS:
        mech = _mech(arm, input_bits, loss_multiple)
        out[arm] = [
            float(mae_trials(mech, data_full[:n], query, n_trials=TRIALS).mean())
            for n in SIZES
        ]
    return out


def _render(tag, curves):
    return render_series(
        "entries",
        list(SIZES),
        [(arm, [f"{v:.4f}" for v in curves[arm]]) for arm in ARMS],
        title=tag,
    )


def bench_fig15a_high_resolution(benchmark):
    curves = benchmark.pedantic(_sweep, args=(17, 2.0), rounds=1, iterations=1)
    text = "\n".join(
        [
            _render(
                f"Fig. 15(a): mean-query MAE vs N, Bu=17 (eps={EPSILON}, "
                f"{TRIALS} trials)",
                curves,
            ),
            "",
            "paper shape check: with ample RNG resolution, every arm's error "
            "falls toward zero as N grows — "
            + (
                "REPRODUCED"
                if all(curves[a][-1] < curves[a][0] / 4 for a in ARMS)
                else "MISMATCH"
            ),
        ]
    )
    record_experiment("fig15a_mae_vs_size_high_res", text)
    for arm in ARMS:
        assert curves[arm][-1] < curves[arm][0] / 4


def bench_fig15b_low_resolution(benchmark):
    curves = benchmark.pedantic(_sweep, args=(9, 3.0), rounds=1, iterations=1)
    floor_note = (
        f"guarded floors at N={SIZES[-1]}: "
        f"resampling {curves['resampling'][-1]:.4f}, "
        f"thresholding {curves['thresholding'][-1]:.4f} "
        f"vs ideal {curves['ideal'][-1]:.4f}"
    )
    reproduced = (
        curves["ideal"][-1] < curves["ideal"][0] / 4
        and curves["resampling"][-1] > 3 * curves["ideal"][-1]
        and curves["thresholding"][-1] > 3 * curves["ideal"][-1]
    )
    text = "\n".join(
        [
            _render(
                f"Fig. 15(b): mean-query MAE vs N, Bu=9 (guards forced to "
                f"tight thresholds; eps={EPSILON})",
                curves,
            ),
            "",
            floor_note,
            "paper shape check: low RNG resolution gives the guarded arms an "
            "error floor that more data cannot cross — "
            + ("REPRODUCED" if reproduced else "MISMATCH"),
        ]
    )
    record_experiment("fig15b_mae_vs_size_low_res", text)
    assert reproduced
