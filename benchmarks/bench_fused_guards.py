"""Fused guard-pass bench — signed gather + one-pass masks vs unfused.

The single-core fast path fuses the per-release elementwise chain on the
codebook-gather path: the sign multiply folds into a doubled ``[+k, -k]``
gather (``CodebookEntry.gather_signed_add``), the input-code add runs in
place on the gather output, the resample accept test is one unsigned
range check, and the threshold clamp clips in place.  This bench times
those passes against the *reconstructed unfused vectorized reference* —
the pre-fusion chain ``gather → 2b → 1-… → sign·k → +codes`` plus the
two-pass window compare and the out-of-place clip — on the CORDIC
resampling arm configuration, asserts bit-identity, and requires the
fused passes to clear the ≥1.3× floor.

URNG codes and sign bits are pre-drawn once and replayed into both arms:
PCG64 generation is identical work on both sides, and excluding it is
what makes this a microbench of the *passes* rather than of numpy's
bit generator.  The end-to-end resampling release (generation included)
is reported alongside for context, with no floor — at small ``Bu`` the
bit generator is a constant ~40% of the release and dilutes any pass
fusion.  Results land in ``BENCH_kernels.json`` under ``fused_guards``.
"""

import json
import pathlib
import time

import numpy as np

from repro.mechanisms import ResamplingMechanism, SensorSpec
from repro.rng import CordicLn
from repro.runtime import ReleasePipeline

from conftest import record_experiment

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULTS_JSON = REPO_ROOT / "BENCH_kernels.json"

SENSOR = SensorSpec(0.0, 10.0)
EPSILON = 0.5
INPUT_BITS = 14
N_SAMPLES = 1_000_000
REPS = 9
MIN_SPEEDUP = 1.3


def _write_results(payload: dict) -> None:
    data = {"schema": 1}
    if RESULTS_JSON.exists():
        try:
            data = json.loads(RESULTS_JSON.read_text())
        except json.JSONDecodeError:
            pass
    data["schema"] = 1
    data["fused_guards"] = payload
    RESULTS_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _best(fn, reps=REPS):
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def bench_fused_guard_passes(benchmark):
    """Fused resample-round + clamp passes must be ≥1.3× the unfused chain."""
    mech = ResamplingMechanism(
        SENSOR,
        EPSILON,
        input_bits=INPUT_BITS,
        log_backend=CordicLn(),
        kernel="codebook",
        pipeline=ReleasePipeline(),
    )
    entry = mech.rng._resolve_codebook()
    assert entry is not None, "CORDIC table must fit the budget at Bu=14"
    lo, hi = mech.window
    span = np.uint64(hi - lo)

    gen = np.random.default_rng(20180604)
    codes = gen.integers(mech.k_m, mech.k_M + 1, size=N_SAMPLES)
    # Pre-drawn URNG stream, replayed into both arms (see module note).
    m = gen.integers(1, (1 << INPUT_BITS) + 1, size=N_SAMPLES)
    bits = gen.integers(0, 2, size=N_SAMPLES)
    table = entry.table

    def unfused_round():
        # Pre-fusion reference: separate gather, sign construction,
        # add, two-pass window compare, out-of-place clip.
        k = table[m - 1]
        sign = 1 - 2 * bits
        k_y = codes + sign * k
        mask = (k_y < lo) | (k_y > hi)
        clamped = np.clip(k_y, lo, hi)
        return mask, clamped

    def fused_round():
        # What the pipeline runs: signed gather with the add folded in,
        # free-view unsigned range check, in-place clip (the guard owns
        # the buffer, so mutating it is the production semantics).
        k_y = entry.gather_signed_add(m, bits, codes)
        mask = (k_y - lo).view(np.uint64) > span
        np.clip(k_y, lo, hi, out=k_y)
        return mask, k_y

    def run():
        unfused_round()  # warm (gather table, numpy dispatch)
        fused_round()  # warm (builds the signed table once)
        t_unfused, ref = _best(unfused_round)
        t_fused, out = _best(fused_round)
        return t_unfused, t_fused, ref, out

    t_unfused, t_fused, ref, out = benchmark.pedantic(run, rounds=1, iterations=1)
    for got, want in zip(out, ref):
        np.testing.assert_array_equal(got, want)
    speedup = t_unfused / t_fused

    # Context: the full resampling release, PCG generation included.
    truth = np.random.default_rng(11).uniform(1.0, 9.0, N_SAMPLES)
    mech.release(truth[:1000])  # warm
    t_release, _ = _best(lambda: mech.release(truth), reps=3)

    _write_results(
        {
            "backend": "cordic",
            "input_bits": INPUT_BITS,
            "samples": N_SAMPLES,
            "window": [int(lo), int(hi)],
            "unfused_ms": round(t_unfused * 1e3, 3),
            "fused_ms": round(t_fused * 1e3, 3),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SPEEDUP,
            "release_end_to_end_ms": round(t_release * 1e3, 3),
        }
    )
    record_experiment(
        "fused_guard_passes",
        "\n".join(
            [
                f"resampling-round passes, {N_SAMPLES} samples, Bu={INPUT_BITS}, "
                f"CORDIC log, window [{lo}, {hi}]",
                f"unfused chain : {t_unfused * 1e3:7.2f} ms "
                "(gather, 2b, 1-, sign*k, +codes, 2-pass mask, clip)",
                f"fused passes  : {t_fused * 1e3:7.2f} ms "
                "(signed gather+add, 1-pass mask, in-place clip)",
                f"speedup       : {speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x)",
                f"end-to-end    : {t_release * 1e3:7.2f} ms/release "
                "(PCG64 generation included; no floor)",
            ]
        ),
    )
    assert speedup >= MIN_SPEEDUP, f"fused passes only {speedup:.2f}x faster"
