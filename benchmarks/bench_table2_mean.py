"""Table II — MAE of the mean query across datasets and arms.

Four arms (Ideal / FxP baseline / Resampling / Thresholding) at ε = 0.5
over the seven Table-I datasets, with the exact-analysis LDP verdict per
arm — the paper's point being that the baseline matches ideal utility
while failing LDP, and the guards match while passing.
"""

from repro.queries import MeanQuery

from _table_utils import utility_table
from conftest import record_experiment


def bench_table2_mean_query(benchmark, paper_datasets, bench_arms):
    text = benchmark.pedantic(
        utility_table,
        args=(paper_datasets, bench_arms, MeanQuery(), "Table 2"),
        rounds=1,
        iterations=1,
    )
    record_experiment("table2_mean", text)
    assert "REPRODUCED" in text
