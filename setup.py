"""Setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP-517 editable installs (which shell out to ``bdist_wheel``) fail.
This shim lets ``pip install -e . --no-use-pep517 --no-build-isolation``
perform a classic ``setup.py develop`` install instead.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
