"""Every example script must run clean end-to-end.

The examples are part of the public deliverable; a release where they
crash is broken regardless of the test suite.  Each runs as a subprocess
(fresh interpreter, import-path realism) with a generous timeout.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert EXAMPLES_DIR.is_dir()
    assert len(SCRIPTS) >= 7


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they show"
