"""Integration: physical signal → ADC → DP-Box arm → aggregator.

The full stack a deployment would run, end to end: each device samples a
physical signal through a realistic ADC, privatizes the digitized
reading, and the untrusted server aggregates.  Asserts the complete
system keeps both sides of the bargain — utility at the aggregate, exact
privacy per device — plus the analytic error prediction.
"""

import numpy as np
import pytest

from repro.aggregation import AggregationServer, Report
from repro.analysis import predicted_mean_mae
from repro.sensors import ADC, SensorNode, temperature_walk


@pytest.fixture(scope="module")
def fleet():
    adc = ADC(n_bits=12, v_min=15.0, v_max=30.0, noise_std=0.05)
    nodes = [
        SensorNode(
            adc,
            epsilon=0.5,
            input_bits=12,
            output_bits=16,
            delta=15.0 / 64,
        )
        for _ in range(8)  # nodes share calibration; vary the data instead
    ]
    return adc, nodes


class TestEndToEnd:
    def test_every_node_certified(self, fleet):
        _, nodes = fleet
        assert all(node.is_private() for node in nodes)

    def test_system_round_trip(self, fleet):
        adc, nodes = fleet
        rng = np.random.default_rng(0)
        n_devices = 400
        # Per-device physical truth around a shared room temperature.
        true_temps = 22.0 + rng.normal(0.0, 0.5, n_devices)
        server = AggregationServer(noise_scale=15.0 / 0.5)
        node = nodes[0]
        private = node.read_private(true_temps, rng)
        for i, v in enumerate(private):
            server.submit(
                Report(
                    device_id=f"dev{i}",
                    epoch=0,
                    value=float(v),
                    claimed_loss=node.mechanism.claimed_loss_bound,
                )
            )
        summary = server.summarize(0)
        predicted = predicted_mean_mae(15.0 / 0.5, n_devices)
        assert abs(summary.mean - true_temps.mean()) < 4 * predicted

    def test_privacy_survives_adc_nonidealities(self):
        """Offset/gain/noise in the ADC cannot break LDP: the mechanism's
        guarantee is over its *input*, and the ADC clamps into range."""
        skewed = ADC(
            n_bits=10, v_min=15.0, v_max=30.0, noise_std=0.5, offset=0.8,
            gain_error=0.03,
        )
        node = SensorNode(
            skewed, epsilon=0.5, input_bits=12, output_bits=16, delta=15.0 / 64
        )
        assert node.is_private()
        wild = np.array([-40.0, 22.0, 99.0])
        out = node.read_private(wild, np.random.default_rng(1))
        assert np.all(np.isfinite(out))

    def test_signal_through_stack_tracks_trend(self, fleet):
        """A daily temperature arc survives privatization in aggregate."""
        _, nodes = fleet
        node = nodes[0]
        signal = temperature_walk(400, start=20.0, seed=9)
        rng = np.random.default_rng(2)
        # Many devices observe the same instant; average the reports.
        per_instant_mean = []
        for t in (0, 399):
            observations = np.full(600, signal[t])
            private = node.read_private(observations, rng)
            per_instant_mean.append(float(private.mean()))
        # λ=30, N=600 → std of mean ≈ 1.7; the estimates stay in range.
        for est, t in zip(per_instant_mean, (0, 399)):
            assert abs(est - signal[t]) < 6.0
