"""Integration: the extension subsystems against the core machinery."""

import numpy as np
import pytest

from repro.analysis import estimate_pairwise_loss
from repro.core import ChannelConfig, GuardMode, MultiSensorDPBox, minimum_input_bits
from repro.mechanisms import GuardedNoiseMechanism, SensorSpec
from repro.queries import MeanQuery, measure_utility
from repro.rng import (
    FxpLaplaceConfig,
    FxpStaircaseRng,
    StaircaseParams,
)

D, EPS = 8.0, 0.5
SENSOR = SensorSpec(0.0, D)


class TestStaircaseThroughTheHarness:
    """The generic mechanism must be a drop-in for the evaluation stack."""

    @pytest.fixture(scope="class")
    def staircase_mech(self):
        cfg = FxpLaplaceConfig(
            input_bits=12, output_bits=18, delta=D / 64, lam=D / EPS
        )
        rng = FxpStaircaseRng(cfg, StaircaseParams(sensitivity=D, epsilon=EPS))
        return GuardedNoiseMechanism(
            SENSOR, EPS, rng, mode="threshold", target_loss=2 * EPS
        )

    def test_utility_harness_runs(self, staircase_mech):
        data = np.random.default_rng(0).uniform(0, D, 500)
        results = measure_utility(staircase_mech, data, [MeanQuery()], n_trials=6)
        assert results["mean"].mae >= 0

    def test_empirical_loss_respects_exact_bound(self, staircase_mech):
        est = estimate_pairwise_loss(
            staircase_mech, 0.0, D, staircase_mech.delta, n_samples=30000,
            min_count=20,
        )
        assert not est.suggests_violation

    def test_exact_verdict_stable_across_reconstruction(self):
        cfg = FxpLaplaceConfig(
            input_bits=12, output_bits=18, delta=D / 64, lam=D / EPS
        )
        losses = []
        for _ in range(2):
            rng = FxpStaircaseRng(cfg, StaircaseParams(sensitivity=D, epsilon=EPS))
            mech = GuardedNoiseMechanism(
                SENSOR, EPS, rng, mode="threshold", target_loss=2 * EPS
            )
            losses.append(mech.ldp_report().worst_loss)
        assert losses[0] == losses[1]  # calibration is deterministic


class TestMultiSensorAdversary:
    def test_averaging_across_channels_capped_by_shared_budget(self):
        """An adversary polling two twin channels cannot beat the shared
        budget's information cap."""
        twins = [
            ChannelConfig(f"s{i}", SensorSpec(0.0, 10.0), 0.5, input_bits=12)
            for i in range(2)
        ]
        box = MultiSensorDPBox(twins, budget=6.0)
        replies = []
        for _ in range(200):
            for name in ("s0", "s1"):
                replies.append(box.request(name, 5.0))
        fresh = [r.value for r in replies if not r.from_cache]
        # The number of fresh samples is bounded by budget / min charge.
        min_charge = min(
            seg.loss
            for name in ("s0", "s1")
            for seg in box.channel(name).table.segments
        )
        assert len(fresh) <= 6.0 / min_charge + 1
        # And the estimate error from the capped fresh pool stays bounded
        # away from zero (cannot average indefinitely).
        err = abs(np.mean(fresh) - 5.0)
        assert err > 1e-3

    def test_channel_modes_can_differ(self):
        box = MultiSensorDPBox(
            [
                ChannelConfig("a", SensorSpec(0.0, 8.0), 0.5, input_bits=12),
                ChannelConfig(
                    "b",
                    SensorSpec(0.0, 8.0),
                    0.5,
                    guard_mode=GuardMode.RESAMPLE,
                    input_bits=12,
                ),
            ],
            budget=100.0,
        )
        a = box.channel("a").mechanism
        b = box.channel("b").mechanism
        assert a.name == "Thresholding" and b.name == "Resampling"
        assert box.request("a", 4.0).charged > 0
        assert box.request("b", 4.0).charged > 0


class TestDesignSpaceConsistency:
    def test_minimum_width_point_actually_certifies(self):
        from repro.mechanisms import make_mechanism

        point = minimum_input_bits(10.0, 0.25, range_frac_bits=6)
        mech = make_mechanism(
            "thresholding",
            SensorSpec(0.0, 10.0),
            0.25,
            input_bits=point.input_bits,
            output_bits=20,
            delta=10.0 / 64,
        )
        assert mech.ldp_report().satisfied
