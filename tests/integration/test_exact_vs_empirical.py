"""Integration: the exact analyzer and the samplers must tell one story."""

import numpy as np
import pytest

from repro.analysis import GridHistogram, estimate_pairwise_loss
from repro.privacy.loss import DiscreteMechanismFamily


class TestExactPmfVsSampling:
    @pytest.mark.parametrize("arm", ["baseline", "resampling", "thresholding"])
    def test_conditional_distribution_matches_family_row(self, arm, request):
        mech = request.getfixturevalue(f"small_{arm.replace('ing', 'ing')}")
        x = 0.0
        y = mech.privatize(np.full(50000, x))
        hist = GridHistogram.from_samples(y, mech.delta)
        k_x = int(mech.quantize_inputs(np.array([x]))[0])
        if hasattr(mech, "window"):
            mode = "resample" if arm == "resampling" else "threshold"
            fam = DiscreteMechanismFamily.additive(
                mech.noise_pmf, [k_x, mech.k_M], window=mech.window, mode=mode
            )
        else:
            fam = DiscreteMechanismFamily.additive(mech.noise_pmf, [k_x, mech.k_M])
        exact_row = fam.matrix[0]
        ks = fam.output_codes
        emp = np.array([hist.count_at(int(k)) for k in ks], dtype=float)
        emp /= emp.sum()
        # Aggregate into 10 coarse bins to control sampling noise.
        for chunk in np.array_split(np.arange(ks.size), 10):
            assert emp[chunk].sum() == pytest.approx(
                exact_row[chunk].sum(), abs=0.015
            ), arm


class TestEmpiricalLossAgreesWithExact:
    def test_guarded_empirical_below_exact_bound(self, small_resampling):
        exact = small_resampling.ldp_report().worst_loss
        est = estimate_pairwise_loss(
            small_resampling,
            0.0,
            8.0,
            small_resampling.delta,
            n_samples=40000,
            min_count=25,
        )
        assert not est.suggests_violation
        # With min_count filtering, the empirical max ratio cannot exceed
        # the exact bound by much more than sampling noise allows.
        assert est.max_finite_loss < exact + 1.0

    def test_baseline_empirical_flags_what_exact_proves(self, small_baseline):
        exact = small_baseline.ldp_report()
        est = estimate_pairwise_loss(
            small_baseline, 0.0, 8.0, small_baseline.delta, n_samples=60000
        )
        assert exact.n_infinite_outputs > 0
        assert est.suggests_violation
