"""Integration: the cycle-level DP-Box and the vectorized mechanism layer
must realize the same mathematical mechanism."""

import numpy as np
import pytest

from repro import DPBox, DPBoxConfig, DPBoxDriver, GuardMode, SensorSpec, make_mechanism
from repro.core import Command


@pytest.fixture(scope="module")
def box_and_mech():
    cfg = DPBoxConfig(input_bits=12, range_frac_bits=6, guard_mode=GuardMode.THRESHOLD)
    box = DPBox(cfg)
    drv = DPBoxDriver(box)
    drv.initialize(budget=1e9)
    drv.configure(epsilon_exponent=1, range_lower=0.0, range_upper=8.0)
    mech = make_mechanism(
        "thresholding",
        SensorSpec(0.0, 8.0),
        0.5,
        loss_multiple=cfg.loss_multiple,
        input_bits=cfg.input_bits,
        output_bits=cfg.output_bits,
        delta=8.0 / 64,
    )
    return drv, mech


class TestEquivalence:
    def test_same_grid(self, box_and_mech):
        drv, mech = box_and_mech
        rt = drv.box._ensure_runtime()
        assert rt.delta == pytest.approx(mech.delta)

    def test_same_threshold_calibration(self, box_and_mech):
        drv, mech = box_and_mech
        rt = drv.box._ensure_runtime()
        assert rt.k_th == mech.k_th

    def test_same_window(self, box_and_mech):
        drv, mech = box_and_mech
        rt = drv.box._ensure_runtime()
        assert (rt.k_m - rt.k_th, rt.k_M + rt.k_th) == mech.window

    def test_output_distributions_match(self, box_and_mech):
        drv, mech = box_and_mech
        x = 4.0
        hw = np.array([drv.noise(x).value for _ in range(4000)])
        sw = mech.privatize(np.full(4000, x))
        # Two-sample comparison of coarse-bin masses.
        lo = min(hw.min(), sw.min())
        hi = max(hw.max(), sw.max())
        bins = np.linspace(lo, hi + 1e-9, 13)
        h_hw, _ = np.histogram(hw, bins=bins)
        h_sw, _ = np.histogram(sw, bins=bins)
        p_hw = h_hw / h_hw.sum()
        p_sw = h_sw / h_sw.sum()
        assert 0.5 * np.abs(p_hw - p_sw).sum() < 0.05

    def test_hw_outputs_within_mechanism_window(self, box_and_mech):
        drv, mech = box_and_mech
        lo = mech.window[0] * mech.delta
        hi = mech.window[1] * mech.delta
        for _ in range(100):
            v = drv.noise(0.0).value
            assert lo - 1e-9 <= v <= hi + 1e-9


class TestResampleEquivalence:
    def test_draw_statistics_match(self):
        cfg = DPBoxConfig(
            input_bits=12, range_frac_bits=6, guard_mode=GuardMode.RESAMPLE
        )
        box = DPBox(cfg)
        drv = DPBoxDriver(box)
        drv.initialize(budget=1e9)
        drv.configure(epsilon_exponent=1, range_lower=0.0, range_upper=8.0)
        mech = make_mechanism(
            "resampling",
            SensorSpec(0.0, 8.0),
            0.5,
            loss_multiple=cfg.loss_multiple,
            input_bits=cfg.input_bits,
            output_bits=cfg.output_bits,
            delta=8.0 / 64,
        )
        hw_draws = np.array([drv.noise(0.0).draws for _ in range(600)])
        expected = mech.expected_draws(0.0)
        assert hw_draws.mean() == pytest.approx(expected, rel=0.1)


class TestCommandLevelEquivalence:
    def test_driver_and_manual_commands_agree(self):
        """Hand-rolled command sequences produce the same protocol state."""
        cfg = DPBoxConfig(input_bits=12, range_frac_bits=6)
        box = DPBox(cfg)
        box.issue(Command.SET_EPSILON, 50.0)  # budget during init
        box.clock.tick()
        box.issue(Command.START_NOISING)
        box.clock.tick()
        box.issue(Command.SET_EPSILON, 1)  # now the runtime exponent
        box.clock.tick()
        box.issue(Command.SET_RANGE_LOWER, 0.0)
        box.clock.tick()
        box.issue(Command.SET_RANGE_UPPER, 8.0)
        box.clock.tick()
        box.issue(Command.SET_SENSOR_VALUE, 4.0)
        box.clock.tick()
        box.issue(Command.START_NOISING)
        box.clock.tick()
        box.issue(Command.DO_NOTHING)
        for _ in range(16):
            box.clock.tick()
            if box.ready:
                break
        assert box.ready
        assert box.last_result is not None
        assert box.last_result.cycles >= 2
