"""Integration: the paper's headline claims, end to end.

Each test states a claim from the paper and verifies it with the full
stack (exact analysis + sampling + hardware model), not module-local
shortcuts.
"""

import math

import numpy as np
import pytest

from repro import (
    DPBox,
    DPBoxConfig,
    DPBoxDriver,
    GuardMode,
    SensorSpec,
    make_mechanism,
)
from repro.core import EnergyModel, SoftwareNoiser, SW_FXP_CYCLES
from repro.datasets import load
from repro.queries import MeanQuery, mae_trials


class TestClaimNaiveFxpIsNotLdp:
    """Section III-A3: naive fixed-point Laplace has infinite loss."""

    def test_exact_analysis_finds_infinite_loss(self, small_baseline):
        rep = small_baseline.ldp_report(epsilon_target=math.inf)
        assert rep.n_infinite_outputs > 0

    def test_both_failure_causes_present(self, small_baseline):
        # Cause 1: bounded support — outputs beyond x+L impossible.
        # Cause 2: tail holes — zero-probability bins inside the support.
        pmf = small_baseline.noise_pmf
        lo, hi = pmf.nonzero_bounds()
        assert hi < 10**9  # bounded
        interior = pmf.prob_array(lo, hi)
        assert np.any(interior == 0.0)  # holes

    def test_higher_resolution_does_not_fix_it(self, small_sensor):
        # "as long as Bx is finite ... there always exists a large
        # difference in the tail region".
        rich = make_mechanism(
            "baseline", small_sensor, 0.5, input_bits=20, output_bits=24, delta=8 / 64
        )
        assert not rich.is_ldp()


class TestClaimGuardsRestoreLdp:
    """Section III-B: resampling and thresholding guarantee n·ε-LDP."""

    def test_resampling_certified(self, small_resampling):
        rep = small_resampling.ldp_report()
        assert rep.satisfied and rep.is_finite

    def test_thresholding_certified(self, small_thresholding):
        rep = small_thresholding.ldp_report()
        assert rep.satisfied and rep.is_finite

    def test_guards_hold_across_epsilon(self, small_sensor, small_kwargs):
        for eps in (0.25, 0.5, 1.0):
            for arm in ("resampling", "thresholding"):
                mech = make_mechanism(arm, small_sensor, eps, **small_kwargs)
                assert mech.ldp_report().satisfied, (arm, eps)

    def test_guards_hold_for_hardware_log_backend(self, small_sensor):
        # The guard guarantee must survive a CORDIC (not exact) logarithm
        # because calibration runs on the exact-log PMF but the DP-Box
        # datapath is close; here we calibrate directly on the CORDIC PMF.
        from repro.rng import CordicLn

        mech = make_mechanism(
            "thresholding",
            small_sensor,
            0.5,
            input_bits=12,
            output_bits=16,
            delta=8 / 64,
            log_backend=CordicLn(frac_bits=24, n_iterations=24),
        )
        assert mech.ldp_report().satisfied


class TestClaimUtilityPreserved:
    """Tables II–V: guarded mechanisms match ideal utility closely."""

    def test_mean_query_mae_within_2x_of_ideal(self):
        ds = load("statlog-heart", seed=1)
        ideal = make_mechanism("ideal", ds.sensor, 0.5)
        base_mae = mae_trials(ideal, ds.values, MeanQuery(), n_trials=30).mean()
        for arm in ("baseline", "resampling", "thresholding"):
            mech = make_mechanism(arm, ds.sensor, 0.5, input_bits=14)
            mae = mae_trials(mech, ds.values, MeanQuery(), n_trials=30).mean()
            assert mae < 2.5 * base_mae + 1e-9, arm


class TestClaimLatency:
    """Section V / Fig. 11: 2 cycles + at most ~1 extra for resampling."""

    def test_dpbox_threshold_always_two_cycles(self, dpbox_driver):
        assert {dpbox_driver.noise(4.0).cycles for _ in range(30)} == {2}

    def test_dpbox_resample_average_below_three(self):
        box = DPBox(DPBoxConfig(input_bits=12, range_frac_bits=6, guard_mode=GuardMode.RESAMPLE))
        drv = DPBoxDriver(box)
        drv.initialize(budget=1e9)
        drv.configure(epsilon_exponent=1, range_lower=0.0, range_upper=8.0)
        cycles = [drv.noise(0.0).cycles for _ in range(300)]
        assert np.mean(cycles) < 3.0  # "never adds more than a cycle on average"


class TestClaimEnergy:
    """Section III-D: hardware wins by 894x / 318x."""

    def test_ratios(self):
        model = EnergyModel()
        assert model.ratio_vs_fxp_software() == pytest.approx(894, rel=0.01)
        assert model.ratio_vs_float_software() == pytest.approx(318, rel=0.01)

    def test_software_model_grounds_the_constant(self):
        sw = SoftwareNoiser(seed=0, calibrate_to_paper=True)
        assert sw.average_cycles(8) == pytest.approx(SW_FXP_CYCLES, rel=0.1)


class TestClaimBudgetControl:
    """Section VI-D: finite budget caps the averaging adversary."""

    def test_attack_floor_with_and_without_budget(self, small_thresholding):
        from repro.attacks import floor_error, run_averaging_attack_mechanism

        floors_nb, floors_b = [], []
        for _ in range(8):
            floors_nb.append(
                floor_error(
                    run_averaging_attack_mechanism(
                        small_thresholding, 4.0, 8.0, n_requests=4000
                    )
                )
            )
            floors_b.append(
                floor_error(
                    run_averaging_attack_mechanism(
                        small_thresholding, 4.0, 8.0, n_requests=4000, budget=8.0
                    )
                )
            )
        assert np.mean(floors_b) > 2 * np.mean(floors_nb)


class TestClaimRandomizedResponse:
    """Section VI-E: threshold-zero DP-Box implements RR."""

    def test_rr_channel_is_exactly_ldp(self):
        rr = make_mechanism(
            "rr", SensorSpec(0.0, 1.0), 2.0, input_bits=12, output_bits=16, delta=1 / 64
        )
        rep = rr.ldp_report(epsilon_target=rr.exact_epsilon())
        assert rep.satisfied

    def test_population_estimate_converges(self):
        rr = make_mechanism(
            "rr", SensorSpec(0.0, 1.0), 2.0, input_bits=12, output_bits=16, delta=1 / 64
        )
        rng = np.random.default_rng(0)
        maes = []
        for n in (100, 1000, 10000):
            errs = []
            for _ in range(15):
                bits = (rng.random(n) < 0.35).astype(int)
                est = rr.estimate_frequency(rr.privatize_bits(bits))
                errs.append(abs(est - bits.mean()))
            maes.append(np.mean(errs))
        assert maes[2] < maes[0]  # Fig. 14's downward trend
