"""Property tests: the columnar guard chain is the scalar chain.

Three equivalences, each over adversarially generated batch sequences:

* **Representation**: for any batch expressible on the binary wire,
  ``GuardChain.check_array`` on the columnar request and
  ``GuardChain.check`` on the equivalent scalar request return the
  same verdict, guard, reason, delta and warnings; the canonical
  requests agree report-for-report; and after committing admitted
  outcomes the two chains' internal state — budget LRU contents *and
  order*, per-epoch rate counts — is identical.
* **Budget LRU oracle**: the C-level fast path inside the budget
  guard's commit produces exactly the state of the per-id
  pop/reinsert/evict walk, including eviction victims.
* **Rate-count oracle**: the rate guard's fast path keeps/drops the
  same report indices and commits the same per-epoch counts as the
  naive per-report walk.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import AggregationServer
from repro.service.guards import (
    EpochBudgetGuard,
    RateLimitGuard,
    Verdict,
    default_chain,
)

# Small id pool so batches collide within and across batches: repairs,
# budget exhaustion and LRU eviction all actually happen.
_device_id = st.sampled_from(
    ["a", "b", "cc", "d0", "èé", "dev-1", "x" * 12]
)

_value = st.one_of(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.just(float("nan")),
    st.just(float("inf")),
)


@st.composite
def batches(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    return {
        "epoch": draw(st.integers(min_value=0, max_value=3)),
        "device_ids": draw(
            st.lists(_device_id, min_size=n, max_size=n)
        ),
        "values": draw(st.lists(_value, min_size=n, max_size=n)),
        "claimed_loss": draw(
            st.sampled_from([0.5, 1.0, 3.0, 9.0, 17.0])
        ),
    }


@st.composite
def chain_configs(draw):
    return {
        "coerce": draw(st.booleans()),
        "max_claimed_loss": 16.0,
        "device_budget": draw(st.sampled_from([None, 2.0, 4.0])),
        "per_epoch_limit": draw(st.integers(min_value=1, max_value=2)),
        "max_devices_tracked": draw(st.sampled_from([3, 1_048_576])),
    }


def _scalar_request(batch):
    return {
        "op": "submit",
        "epoch": batch["epoch"],
        "device_ids": list(batch["device_ids"]),
        "values": [float(v) for v in batch["values"]],
        "claimed_loss": batch["claimed_loss"],
    }


def _columnar_request(batch):
    raw = [s.encode("utf-8") for s in batch["device_ids"]]
    width = max(len(r) for r in raw)
    return {
        "op": "submit",
        "epoch": batch["epoch"],
        "device_ids": np.asarray(raw, dtype=f"S{width}"),
        "values": np.asarray(batch["values"], dtype=np.float64),
        "claimed_loss": batch["claimed_loss"],
    }


def _final_reports(request):
    """(id, value) pairs of a canonical request, representation-blind."""
    values = request["values"]
    if isinstance(values, np.ndarray):
        values = values.tolist()
    return list(zip(request["device_ids"], [float(v) for v in values]))


@settings(max_examples=60, deadline=None)
@given(config=chain_configs(), seq=st.lists(batches(), min_size=1, max_size=8))
def test_columnar_chain_equivalent_to_scalar(config, seq):
    scalar_chain = default_chain(**config)
    columnar_chain = default_chain(**config)
    for batch in seq:
        s_out = scalar_chain.check(_scalar_request(batch))
        c_out = columnar_chain.check_array(_columnar_request(batch))
        assert c_out.verdict == s_out.verdict
        assert c_out.guard == s_out.guard
        assert c_out.reason == s_out.reason
        assert c_out.delta == s_out.delta
        assert c_out.warnings == s_out.warnings
        if s_out.admitted:
            assert _final_reports(c_out.request) == _final_reports(
                s_out.request
            )
            assert (
                c_out.request["claimed_loss"] == s_out.request["claimed_loss"]
            )
            s_out.commit()
            c_out.commit()
        # Committed state stays in lockstep — values AND dict order.
        s_budget, c_budget = scalar_chain.guards[1], columnar_chain.guards[1]
        assert list(c_budget._spent.items()) == list(s_budget._spent.items())
        s_rate, c_rate = scalar_chain.guards[2], columnar_chain.guards[2]
        assert c_rate._seen == s_rate._seen
        assert [list(c.items()) for c in c_rate._seen.values()] == [
            list(s.items()) for s in s_rate._seen.values()
        ]


@settings(max_examples=80, deadline=None)
@given(
    seq=st.lists(
        st.tuples(
            st.lists(_device_id, min_size=1, max_size=6),
            st.sampled_from([0.5, 1.0, 2.0]),
        ),
        min_size=1,
        max_size=10,
    ),
    cap=st.integers(min_value=1, max_value=8),
)
def test_budget_charge_matches_naive_lru_walk(seq, cap):
    guard = EpochBudgetGuard(device_budget=1e9, max_devices_tracked=cap)
    oracle = {}
    for ids, loss in seq:
        decision = guard.check(
            {
                "op": "submit",
                "epoch": 0,
                "device_ids": list(ids),
                "values": [0.0] * len(ids),
                "claimed_loss": loss,
            }
        )
        assert decision.verdict in (Verdict.ALLOW, Verdict.WARN)
        decision.commit(
            {"op": "submit", "device_ids": list(ids), "claimed_loss": loss}
        )
        for device_id in ids:  # the naive pop/reinsert walk
            oracle[device_id] = oracle.pop(device_id, 0.0) + loss
        while len(oracle) > cap:
            del oracle[next(iter(oracle))]
        assert list(guard._spent.items()) == list(oracle.items())


@settings(max_examples=80, deadline=None)
@given(
    seq=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.lists(_device_id, min_size=1, max_size=6),
        ),
        min_size=1,
        max_size=10,
    ),
    limit=st.integers(min_value=1, max_value=2),
)
def test_rate_limit_matches_naive_walk(seq, limit):
    guard = RateLimitGuard(per_epoch_limit=limit)
    oracle = {}
    for epoch, ids in seq:
        request = {
            "op": "submit",
            "epoch": epoch,
            "device_ids": list(ids),
            "values": list(range(len(ids))),
            "claimed_loss": 1.0,
        }
        decision = guard.check(request)
        # Naive walk: which indices survive, what gets committed.
        counts = oracle.setdefault(epoch, {})
        keep, pending = [], {}
        for i, device_id in enumerate(ids):
            used = counts.get(device_id, 0) + pending.get(device_id, 0)
            if used < limit:
                pending[device_id] = pending.get(device_id, 0) + 1
                keep.append(i)
        if len(keep) == len(ids):
            assert decision.verdict == Verdict.ALLOW
            final = request
        elif keep:
            assert decision.verdict == Verdict.REPAIR
            assert decision.request["device_ids"] == [ids[i] for i in keep]
            assert decision.request["values"] == keep
            final = decision.request
        else:
            assert decision.verdict == Verdict.BLOCK
            continue
        decision.commit(final)
        for device_id, n in pending.items():
            counts[device_id] = counts.get(device_id, 0) + n
        assert guard._seen[epoch] == counts
        assert list(guard._seen[epoch].items()) == list(counts.items())


@settings(max_examples=60, deadline=None)
@given(
    seq=st.lists(
        st.tuples(
            st.lists(_device_id, min_size=1, max_size=6),
            st.sampled_from([0.5, 1.0, 2.0]),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_disclosure_charge_matches_naive_walk(seq):
    server = AggregationServer(streaming=True)
    oracle = {}
    for ids, loss in seq:
        server.submit_array(
            0,
            np.zeros(len(ids)),
            loss,
            device_ids=list(ids),
            donate=True,
        )
        for device_id in ids:
            oracle[device_id] = oracle.get(device_id, 0.0) + loss
        assert list(server._disclosure.items()) == list(oracle.items())
