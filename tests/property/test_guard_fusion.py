"""Property tests: the fused guard passes are bit-identical to references.

The pipeline fuses three hot elementwise passes (ROADMAP fast-path
note): the threshold guard's add+clip runs in place, the resample
guard's out-of-window mask is a single unsigned range check, and the
categorical ``modulus`` combine reduces in place.  Fusion must never
change a single released code — these tests pit each fused pass against
a straightforward scalar/two-pass reference on the *same* draw stream
and require exact equality, including the per-sample resample round
counts (the Fig. 12 timing observable).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ResampleExhaustedError
from repro.rng.laplace_fxp import FxpLaplaceConfig, FxpLaplaceRng
from repro.rng.urng import NumpySource
from repro.runtime import ReleasePipeline, ReleaseRequest


def _request(codes, draw, **kwargs):
    return ReleaseRequest(
        mechanism="fusion-test",
        epsilon=1.0,
        claimed_loss=1.0,
        codes=np.asarray(codes),
        draw=draw,
        **kwargs,
    )


def _seeded_draw(seed, width):
    """A deterministic draw(n) stream: integer codes in [-width, width]."""
    gen = np.random.Generator(np.random.PCG64(seed))

    def draw(n):
        return gen.integers(-width, width + 1, size=n)

    return draw


# ---------------------------------------------------------------------
# _clamp: in-place integer clip == out-of-place reference
# ---------------------------------------------------------------------
@settings(max_examples=100)
@given(
    codes=st.lists(st.integers(min_value=-500, max_value=500), min_size=1, max_size=64),
    lo=st.integers(min_value=-200, max_value=0),
    hi=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_threshold_guard_matches_scalar_clip(codes, lo, hi, seed):
    codes = np.asarray(codes, dtype=np.int64)
    width = 50
    pipe = ReleasePipeline(sinks=[])
    out = pipe.release(
        _request(codes, _seeded_draw(seed, width), guard="threshold", window=(lo, hi))
    )
    # Reference: same stream, plain per-element min/max.
    ref_draw = _seeded_draw(seed, width)
    noise = ref_draw(codes.size)
    expected = np.array(
        [min(max(int(c) + int(e), lo), hi) for c, e in zip(codes, noise)],
        dtype=np.int64,
    )
    np.testing.assert_array_equal(out.codes, expected)


def test_threshold_guard_fractional_window_still_upcasts():
    # A fractional window over integer codes cannot clip in place; the
    # fused path must fall back to the upcasting clip, not raise.
    codes = np.arange(-5, 6, dtype=np.int64)
    pipe = ReleasePipeline(sinks=[])
    out = pipe.release(
        _request(
            codes,
            lambda n: np.zeros(n, dtype=np.int64),
            guard="threshold",
            window=(-2.5, 2.5),
        )
    )
    np.testing.assert_array_equal(out.codes, np.clip(codes, -2.5, 2.5))
    assert out.codes.dtype.kind == "f"


# ---------------------------------------------------------------------
# resample: fused unsigned range check == two-pass comparisons,
# including the draw consumption order and per-sample round counts
# ---------------------------------------------------------------------
def _reference_resample(codes, draw, lo, hi, max_rounds):
    """Scalar reference: same batch-shaped consumption order."""
    codes = np.asarray(codes, dtype=np.int64)
    n = codes.size
    k_y = codes + draw(n)
    rounds = np.ones(n, dtype=np.int64)
    pending = [i for i in range(n) if k_y[i] < lo or k_y[i] > hi]
    for _ in range(max_rounds - 1):
        if not pending:
            break
        redraw = draw(len(pending))
        still = []
        for j, i in enumerate(pending):
            k_y[i] = codes[i] + redraw[j]
            rounds[i] += 1
            if k_y[i] < lo or k_y[i] > hi:
                still.append(i)
        pending = still
    if pending:
        raise ResampleExhaustedError("reference exhausted")
    return k_y, rounds


@settings(max_examples=60, deadline=None)
@given(
    codes=st.lists(st.integers(min_value=-30, max_value=30), min_size=1, max_size=48),
    lo=st.integers(min_value=-60, max_value=-10),
    hi=st.integers(min_value=10, max_value=60),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_resample_guard_matches_scalar_reference(codes, lo, hi, seed):
    codes = np.asarray(codes, dtype=np.int64)
    width = 40
    pipe = ReleasePipeline(sinks=[])
    out = pipe.release(
        _request(codes, _seeded_draw(seed, width), guard="resample", window=(lo, hi))
    )
    ref_codes, ref_rounds = _reference_resample(
        codes, _seeded_draw(seed, width), lo, hi, max_rounds=64
    )
    np.testing.assert_array_equal(out.codes, ref_codes)
    np.testing.assert_array_equal(out.rounds, ref_rounds)


def test_resample_negative_codes_unsigned_trick():
    # Negative out-of-window values must register as pending: the
    # unsigned wrap maps k - lo < 0 to a huge value, never to "inside".
    codes = np.array([-100, 0, 100], dtype=np.int64)
    draws = iter(
        [np.array([0, 0, 0]), np.array([150]), np.array([120]), np.array([90])]
    )
    pipe = ReleasePipeline(sinks=[])
    out = pipe.release(
        _request(codes, lambda n: next(draws), guard="resample", window=(-10, 110))
    )
    # -100 redraws (3 rounds: -100+150=50 in window after first redraw?
    # No: round 1 gives -100, out; redraw +150 -> 50, in).  0 and 100
    # stay.  Rounds: [2, 1, 1].
    np.testing.assert_array_equal(out.codes, np.array([50, 0, 100]))
    np.testing.assert_array_equal(out.rounds, np.array([2, 1, 1]))


def test_resample_exhaustion_still_raises():
    pipe = ReleasePipeline(sinks=[])
    with pytest.raises(ResampleExhaustedError):
        pipe.release(
            _request(
                np.array([1000], dtype=np.int64),
                lambda n: np.zeros(n, dtype=np.int64),
                guard="resample",
                window=(0, 10),
                max_rounds=4,
            )
        )


# ---------------------------------------------------------------------
# sample_codes_add: fused draw+add == codes + sample_codes(n), same stream
# ---------------------------------------------------------------------
_FUSION_CONFIG = FxpLaplaceConfig(
    input_bits=10, output_bits=12, delta=10.0 / 128.0, lam=10.0
)


@settings(max_examples=60, deadline=None)
@given(
    codes=st.lists(
        st.integers(min_value=-2000, max_value=2000), min_size=1, max_size=128
    ),
    seed=st.integers(min_value=0, max_value=2**31),
    kernel=st.sampled_from(["codebook", "live"]),
)
def test_sample_codes_add_matches_unfused(codes, seed, kernel):
    codes = np.asarray(codes, dtype=np.int64)
    fused_rng = FxpLaplaceRng(
        _FUSION_CONFIG, source=NumpySource(seed), kernel=kernel
    )
    unfused_rng = FxpLaplaceRng(
        _FUSION_CONFIG, source=NumpySource(seed), kernel=kernel
    )
    fused = fused_rng.sample_codes_add(codes)
    expected = codes + unfused_rng.sample_codes(codes.size)
    np.testing.assert_array_equal(fused, expected)
    assert fused.dtype == np.int64


def test_sample_codes_add_source_consumption_matches():
    # After a fused call and an unfused call on seed-identical sources,
    # the NEXT draws must also agree: the fused path consumed exactly n
    # uniform codes then n sign bits, nothing more or less.
    a = FxpLaplaceRng(_FUSION_CONFIG, source=NumpySource(7), kernel="live")
    b = FxpLaplaceRng(_FUSION_CONFIG, source=NumpySource(7), kernel="live")
    codes = np.arange(-8, 9, dtype=np.int64)
    a.sample_codes_add(codes)
    codes + b.sample_codes(codes.size)
    np.testing.assert_array_equal(a.sample_codes(32), b.sample_codes(32))


def test_sample_codes_add_does_not_mutate_input():
    rng = FxpLaplaceRng(_FUSION_CONFIG, source=NumpySource(3))
    codes = np.arange(16, dtype=np.int64)
    keep = codes.copy()
    rng.sample_codes_add(codes)
    np.testing.assert_array_equal(codes, keep)


@settings(max_examples=40, deadline=None)
@given(
    codes=st.lists(st.integers(min_value=-40, max_value=40), min_size=1, max_size=48),
    seed=st.integers(min_value=0, max_value=2**31),
    guard=st.sampled_from(["none", "threshold", "resample"]),
)
def test_pipeline_draw_add_matches_draw_only(codes, seed, guard):
    # The released codes through every guard must be identical whether
    # the request carries the fused draw_add or only the plain draw.
    codes = np.asarray(codes, dtype=np.int64)
    window = (-1500, 1500) if guard != "none" else None
    fused_rng = FxpLaplaceRng(_FUSION_CONFIG, source=NumpySource(seed))
    plain_rng = FxpLaplaceRng(_FUSION_CONFIG, source=NumpySource(seed))
    pipe = ReleasePipeline(sinks=[])
    fused_out = pipe.release(
        _request(
            codes,
            fused_rng.sample_codes,
            draw_add=fused_rng.sample_codes_add,
            guard=guard,
            window=window,
        )
    )
    plain_out = pipe.release(
        _request(codes, plain_rng.sample_codes, guard=guard, window=window)
    )
    np.testing.assert_array_equal(fused_out.codes, plain_out.codes)
    if guard == "resample":
        np.testing.assert_array_equal(fused_out.rounds, plain_out.rounds)


# ---------------------------------------------------------------------
# modulus combine: in-place mod == scalar reference
# ---------------------------------------------------------------------
@settings(max_examples=60)
@given(
    codes=st.lists(st.integers(min_value=0, max_value=19), min_size=1, max_size=64),
    modulus=st.integers(min_value=2, max_value=20),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_modulus_combine_matches_scalar(codes, modulus, seed):
    codes = np.asarray(codes, dtype=np.int64) % modulus
    gen = np.random.Generator(np.random.PCG64(seed))
    offsets = gen.integers(0, modulus, size=codes.size)
    pipe = ReleasePipeline(sinks=[])
    out = pipe.release(
        _request(codes, lambda n: offsets[:n].copy(), guard="none", modulus=modulus)
    )
    expected = np.array(
        [(int(c) + int(o)) % modulus for c, o in zip(codes, offsets)], dtype=np.int64
    )
    np.testing.assert_array_equal(out.codes, expected)
