"""Property-based tests: DiscretePMF transformation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import DiscretePMF


@st.composite
def pmfs(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    raw = draw(
        st.lists(
            st.integers(min_value=0, max_value=100), min_size=n, max_size=n
        ).filter(lambda xs: sum(xs) > 0)
    )
    min_k = draw(st.integers(min_value=-50, max_value=50))
    step = draw(st.sampled_from([0.25, 0.5, 1.0, 2.0]))
    probs = np.array(raw, dtype=float) / sum(raw)
    return DiscretePMF(step=step, min_k=min_k, probs=probs)


@given(pmf=pmfs())
def test_total_is_one(pmf):
    assert abs(pmf.total - 1.0) < 1e-12


@given(pmf=pmfs(), dk=st.integers(min_value=-100, max_value=100))
def test_shift_preserves_probabilities(pmf, dk):
    shifted = pmf.shifted(dk)
    np.testing.assert_array_equal(shifted.probs, pmf.probs)
    assert shifted.min_k == pmf.min_k + dk


@given(pmf=pmfs(), dk=st.integers(min_value=-100, max_value=100))
def test_shift_moves_mean_exactly(pmf, dk):
    assert abs(pmf.shifted(dk).mean() - (pmf.mean() + dk * pmf.step)) < 1e-9


@given(pmf=pmfs())
def test_clamp_to_full_window_is_identity(pmf):
    cl = pmf.clamped(pmf.min_k, pmf.max_k)
    np.testing.assert_allclose(cl.probs, pmf.probs)


@given(pmf=pmfs(), lo=st.integers(-60, 60), hi=st.integers(-60, 60))
def test_clamp_preserves_mass(pmf, lo, hi):
    lo, hi = min(lo, hi), max(lo, hi)
    assert abs(pmf.clamped(lo, hi).total - pmf.total) < 1e-12


@given(pmf=pmfs())
def test_truncation_renormalizes(pmf):
    lo, hi = pmf.nonzero_bounds()
    tr = pmf.truncated(lo, hi)
    assert abs(tr.total - 1.0) < 1e-12


@given(pmf=pmfs(), k=st.integers(-120, 120))
def test_tails_complementary(pmf, k):
    assert abs(pmf.tail_le(k - 1) + pmf.tail_ge(k) - pmf.total) < 1e-12


@given(pmf=pmfs(), k=st.integers(-120, 120))
def test_tail_monotone(pmf, k):
    assert pmf.tail_ge(k) >= pmf.tail_ge(k + 1) - 1e-15


@given(pmf=pmfs())
def test_tv_symmetric_and_bounded(pmf):
    other = pmf.shifted(3)
    tv = pmf.total_variation(other)
    assert 0.0 <= tv <= 1.0 + 1e-12
    assert abs(tv - other.total_variation(pmf)) < 1e-12


@settings(max_examples=30)
@given(pmf=pmfs())
def test_variance_nonnegative(pmf):
    assert pmf.variance() >= -1e-12
