"""Property tests: SeedSequence-spawned shard streams are deterministic.

The sharded fleet's headline invariant reduces to three stream
properties, tested here directly on the RNG substrate:

* ``shard_seed_sequences(seed, 1)`` returns the *root* sequence, so a
  single-shard source reproduces the unsharded
  :class:`~repro.rng.urng.SplitStreamSource` draw-for-draw — the bridge
  between the sharded runner and the legacy fleet.
* Spawned sub-streams are a pure function of ``(seed, n_shards)``:
  re-spawning yields bit-identical streams, independent of how many
  draws each consumer makes or in what batch sizes (PCG64 fills a
  size-n batch element-by-element, the invariant the batched fleet
  already relies on).
* Distinct shards get distinct streams (spawn independence).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng.urng import (
    SplitStreamSource,
    shard_seed_sequences,
    spawn_shard_sources,
)
from repro.errors import ConfigurationError

BITS = 12


def _draws(source, n, bits=BITS):
    return source.uniform_codes(n, bits), source.random_bits(n)


class TestSingleShardBridge:
    @settings(max_examples=40)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           n=st.integers(min_value=1, max_value=256))
    def test_one_shard_reproduces_unsharded_stream(self, seed, n):
        unsharded = SplitStreamSource(seed)
        (only,) = spawn_shard_sources(seed, 1)
        codes_u, bits_u = _draws(unsharded, n)
        codes_s, bits_s = _draws(only, n)
        assert np.array_equal(codes_u, codes_s)
        assert np.array_equal(bits_u, bits_s)

    def test_one_shard_returns_root_sequence(self):
        root = np.random.SeedSequence(99)
        assert shard_seed_sequences(root, 1) == [root]


class TestSpawnDeterminism:
    @settings(max_examples=30)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           n_shards=st.integers(min_value=2, max_value=8),
           n=st.integers(min_value=1, max_value=128))
    def test_respawn_is_bit_identical(self, seed, n_shards, n):
        first = spawn_shard_sources(seed, n_shards)
        second = spawn_shard_sources(seed, n_shards)
        for a, b in zip(first, second):
            codes_a, bits_a = _draws(a, n)
            codes_b, bits_b = _draws(b, n)
            assert np.array_equal(codes_a, codes_b)
            assert np.array_equal(bits_a, bits_b)

    @settings(max_examples=30)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           n=st.integers(min_value=2, max_value=128))
    def test_batch_partition_invariance(self, seed, n):
        """One size-n batch ≡ any split into consecutive smaller batches."""
        whole = spawn_shard_sources(seed, 4)
        split = spawn_shard_sources(seed, 4)
        cut = n // 2
        for a, b in zip(whole, split):
            codes = a.uniform_codes(n, BITS)
            parts = np.concatenate(
                [b.uniform_codes(cut, BITS), b.uniform_codes(n - cut, BITS)]
            )
            assert np.array_equal(codes, parts)

    def test_distinct_shards_distinct_streams(self):
        sources = spawn_shard_sources(7, 4)
        streams = [s.uniform_codes(64, BITS) for s in sources]
        for i in range(len(streams)):
            for j in range(i + 1, len(streams)):
                assert not np.array_equal(streams[i], streams[j])

    def test_spawn_consumes_nothing_from_root_draws(self):
        """Spawning sub-seeds must not perturb the root-derived stream."""
        a = SplitStreamSource(31)
        root = np.random.SeedSequence(31)
        root.spawn(5)  # spawning advances spawn bookkeeping only
        b = SplitStreamSource(31)
        assert np.array_equal(a.uniform_codes(32, BITS), b.uniform_codes(32, BITS))


class TestValidation:
    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_seed_sequences(0, 0)

    def test_seed_sequence_accepted_as_seed(self):
        seqs = shard_seed_sequences(np.random.SeedSequence(5), 3)
        assert len(seqs) == 3
