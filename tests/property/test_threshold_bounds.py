"""Property tests for the closed-form thresholds of paper eqs. 13/15.

Cross-checks :mod:`repro.privacy.thresholds` against the exhaustive
enumeration in :mod:`repro.privacy.verify` over a grid of FxP formats
(``Bu``), privacy levels (ε) and loss multiples (``n``):

* **eq. 13 (resampling)** is *sufficient on its own*: wherever the
  closed form produces a threshold, the exactly enumerated worst-case
  loss of the resampling mechanism is at most ``n·ε``.
* **eq. 15 (thresholding)** bounds exactly what it claims — the
  boundary-atom tail-mass ratio ``Pr[n >= n_th2] / Pr[n >= n_th2 + d]``
  — on every grid cell.  It is *not* sufficient on its own: the
  interior of the clamped window can still contain holes (DESIGN.md §5),
  which is why DP-Box calibrates thresholds exactly.  Both halves are
  asserted so the documented limitation cannot silently regress in
  either direction.
* **exact calibration** (`calibrate_threshold_exact`) always returns a
  threshold whose enumerated loss meets the target, and for thresholding
  it never exceeds the optimistic closed form.
"""

import itertools
import math

import pytest

from repro.errors import CalibrationError
from repro.privacy.thresholds import (
    calibrate_threshold_exact,
    exact_worst_loss_at_threshold,
    paper_resampling_threshold,
    paper_thresholding_threshold,
)
from repro.privacy.verify import verify_additive_mechanism
from repro.rng.laplace_fxp import FxpLaplaceConfig, FxpLaplaceRng

D = 8.0
DELTA = D / 32.0  # paper-style Δ = d/2**5 grid
CODES = [0, 16, 32]  # m, midpoint, M on the Δ grid (endpoints are worst case)

GRID = list(itertools.product((8, 10, 12), (0.25, 0.5, 1.0), (2.0, 3.0)))


def _noise(input_bits, epsilon):
    cfg = FxpLaplaceConfig(
        input_bits=input_bits, output_bits=16, delta=DELTA, lam=D / epsilon
    )
    return FxpLaplaceRng(cfg).exact_pmf()


def _grid_id(case):
    bu, eps, n = case
    return f"Bu{bu}-eps{eps}-n{n}"


# ----------------------------------------------------------------------
# eq. 13 — resampling closed form
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", GRID, ids=_grid_id)
def test_resampling_closed_form_bounds_exact_loss(case):
    bu, eps, n = case
    try:
        th = paper_resampling_threshold(D, DELTA, eps, bu, n)
    except CalibrationError:
        # Coarse formats (e.g. Bu=8 at small ε) genuinely have no
        # positive threshold; the closed form must say so, not return
        # an unsafe value.
        return
    noise = _noise(bu, eps)
    loss = exact_worst_loss_at_threshold(noise, CODES, th, "resample")
    assert loss <= n * eps + 1e-9
    report = verify_additive_mechanism(
        noise, 0.0, D, n * eps, mode="resample", threshold=th, input_codes=CODES
    )
    assert report.satisfied


def test_resampling_closed_form_exists_at_paper_operating_point():
    # The paper's running configuration must be feasible, so the
    # CalibrationError escape above cannot swallow the whole grid.
    assert paper_resampling_threshold(D, DELTA, 0.5, 17, 2.0) > 0


# ----------------------------------------------------------------------
# eq. 15 — thresholding closed form
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", GRID, ids=_grid_id)
def test_thresholding_closed_form_bounds_boundary_atoms(case):
    bu, eps, n = case
    th = paper_thresholding_threshold(D, DELTA, eps, bu, n)
    noise = _noise(bu, eps)
    k_th = int(round(th / DELTA))
    k_d = int(round(D / DELTA))
    tail_near = noise.tail_ge(k_th)
    tail_far = noise.tail_ge(k_th + k_d)
    assert tail_far > 0, "n_th2 must keep the far boundary atom populated"
    assert math.log(tail_near / tail_far) <= n * eps + 1e-9


@pytest.mark.parametrize("case", GRID, ids=_grid_id)
def test_thresholding_closed_form_is_not_sufficient_alone(case):
    # The documented limitation (DESIGN.md §5): at the eq.-(15)
    # threshold, interior holes in the bounded noise tail make the
    # *full-window* loss infinite on this grid — which is exactly why
    # exact calibration is the arbiter.  If this ever starts passing,
    # the docs (and DP-Box's default calibration path) are stale.
    bu, eps, n = case
    th = paper_thresholding_threshold(D, DELTA, eps, bu, n)
    loss = exact_worst_loss_at_threshold(_noise(bu, eps), CODES, th, "threshold")
    assert math.isinf(loss)


# ----------------------------------------------------------------------
# Exact calibration against both closed forms
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", GRID, ids=_grid_id)
def test_exact_calibration_meets_target_and_beats_eq15(case):
    bu, eps, n = case
    noise = _noise(bu, eps)
    th2 = paper_thresholding_threshold(D, DELTA, eps, bu, n)
    try:
        th = calibrate_threshold_exact(
            noise, CODES, n * eps, "threshold", k_hint=int(round(th2 / DELTA))
        )
    except CalibrationError:
        # Only the coarsest corner (Bu=8, ε=0.25, n=2) is infeasible.
        assert (bu, eps, n) == (8, 0.25, 2.0)
        return
    loss = exact_worst_loss_at_threshold(noise, CODES, th, "threshold")
    assert loss <= n * eps + 1e-9
    assert th <= th2  # the closed form only over-estimates
    report = verify_additive_mechanism(
        noise, 0.0, D, n * eps, mode="threshold", threshold=th, input_codes=CODES
    )
    assert report.satisfied


@pytest.mark.parametrize("case", GRID, ids=_grid_id)
def test_exact_calibration_meets_target_for_resampling(case):
    bu, eps, n = case
    noise = _noise(bu, eps)
    try:
        th = calibrate_threshold_exact(noise, CODES, n * eps, "resample")
    except CalibrationError:
        pytest.skip("minimal window already exceeds the target here")
    loss = exact_worst_loss_at_threshold(noise, CODES, th, "resample")
    assert loss <= n * eps + 1e-9
    # Where eq. 13 exists, exact calibration must be at least as generous
    # (a larger window always helps utility; see ROADMAP north star).
    try:
        th13 = paper_resampling_threshold(D, DELTA, eps, bu, n)
    except CalibrationError:
        return
    assert th >= th13 - 1e-9
