"""Property-based tests: config serialization round-trips."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DPBoxConfig, GuardMode
from repro.core.serialization import config_from_dict, config_to_dict
from repro.mechanisms import SensorSpec
from repro.rng import FxpLaplaceConfig


@st.composite
def dpbox_configs(draw):
    loss_multiple = draw(st.floats(min_value=1.1, max_value=5.0))
    n_levels = draw(st.integers(min_value=1, max_value=4))
    levels = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.1, max_value=loss_multiple),
                min_size=n_levels,
                max_size=n_levels,
                unique=True,
            )
        )
    )
    return DPBoxConfig(
        input_bits=draw(st.integers(min_value=2, max_value=40)),
        output_bits=draw(st.integers(min_value=4, max_value=40)),
        range_frac_bits=draw(st.integers(min_value=1, max_value=16)),
        guard_mode=draw(st.sampled_from(list(GuardMode))),
        loss_multiple=loss_multiple,
        segment_levels=tuple(levels),
        cache_on_exhaustion=draw(st.booleans()),
        fixed_resample_draws=draw(st.integers(min_value=0, max_value=8)),
        use_cordic_log=draw(st.booleans()),
        cordic_frac_bits=draw(st.integers(min_value=8, max_value=32)),
    )


@settings(max_examples=60)
@given(cfg=dpbox_configs())
def test_dpbox_round_trip_identity(cfg):
    assert config_from_dict(config_to_dict(cfg)) == cfg


@settings(max_examples=60)
@given(cfg=dpbox_configs())
def test_dict_is_json_safe(cfg):
    encoded = json.dumps(config_to_dict(cfg))
    assert config_from_dict(json.loads(encoded)) == cfg


@settings(max_examples=40)
@given(
    m=st.floats(min_value=-1e6, max_value=1e6),
    d=st.floats(min_value=1e-3, max_value=1e6),
)
def test_sensor_spec_round_trip(m, d):
    spec = SensorSpec(m, m + d)
    assert config_from_dict(config_to_dict(spec)) == spec


@settings(max_examples=40)
@given(
    input_bits=st.integers(min_value=2, max_value=40),
    output_bits=st.integers(min_value=2, max_value=40),
    delta=st.floats(min_value=1e-6, max_value=1e3),
    lam=st.floats(min_value=1e-6, max_value=1e6),
)
def test_fxp_config_round_trip(input_bits, output_bits, delta, lam):
    cfg = FxpLaplaceConfig(
        input_bits=input_bits, output_bits=output_bits, delta=delta, lam=lam
    )
    assert config_from_dict(config_to_dict(cfg)) == cfg
