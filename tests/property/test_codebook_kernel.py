"""Property tests: codebook kernel is bit-identical to the live datapath.

The codebook table is *defined* as the live `m -> k` map swept over the
full Bu-bit alphabet, so identity should hold for every config, every
logarithm back-end, and every uniform-code source — including the
resample guard's multi-round trajectories, where both kernels must
consume the source in exactly the same order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanisms import ResamplingMechanism, SensorSpec
from repro.rng import (
    CordicLn,
    ExhaustiveSource,
    FxpLaplaceConfig,
    FxpLaplaceRng,
    LfsrSource,
    NumpySource,
    PiecewisePolyLn,
    SplitStreamSource,
    TauswortheSource,
    codebook_cache,
)
from repro.runtime import ReleasePipeline

BACKENDS = {
    "exact": lambda: None,
    "cordic": lambda: CordicLn(),
    "ppoly": lambda: PiecewisePolyLn(),
}

SOURCES = {
    "tausworthe": lambda: TauswortheSource(seed=99),
    "numpy": lambda: NumpySource(seed=99),
    "exhaustive": lambda: ExhaustiveSource(),
    "lfsr": lambda: LfsrSource(seed=99),
}


def _rng_pair(cfg, backend_key, source_factory):
    """Same config/backend/seed, one per kernel."""
    return tuple(
        FxpLaplaceRng(
            cfg,
            source=source_factory(),
            log_backend=BACKENDS[backend_key](),
            kernel=kernel,
        )
        for kernel in ("codebook", "live")
    )


@st.composite
def fxp_configs(draw):
    input_bits = draw(st.integers(min_value=6, max_value=13))
    lam = draw(st.floats(min_value=0.5, max_value=50))
    delta = draw(st.floats(min_value=0.05, max_value=2.0))
    return FxpLaplaceConfig(
        input_bits=input_bits, output_bits=20, delta=delta, lam=lam
    )


@pytest.mark.parametrize("backend_key", sorted(BACKENDS))
@pytest.mark.parametrize("source_key", sorted(SOURCES))
@settings(max_examples=10, deadline=None)
@given(cfg=fxp_configs(), n=st.integers(1, 4096))
def test_codebook_bit_identical_to_live(backend_key, source_key, cfg, n):
    cb, live = _rng_pair(cfg, backend_key, SOURCES[source_key])
    assert cb.kernel == "codebook" and live.kernel == "live"
    np.testing.assert_array_equal(cb.sample_codes(n), live.sample_codes(n))


@pytest.mark.parametrize("backend_key", sorted(BACKENDS))
@settings(max_examples=10, deadline=None)
@given(cfg=fxp_configs())
def test_codebook_covers_full_alphabet(backend_key, cfg):
    """table[m-1] == live datapath for EVERY code m, not just sampled ones."""
    rng = FxpLaplaceRng(cfg, log_backend=BACKENDS[backend_key](), kernel="codebook")
    entry = rng._resolve_codebook()
    m = np.arange(1, 2**cfg.input_bits + 1, dtype=np.int64)
    np.testing.assert_array_equal(entry.gather(m), rng._codes_from_uniform(m))
    assert entry.table.shape == (2**cfg.input_bits,)


@settings(max_examples=10, deadline=None)
@given(cfg=fxp_configs(), n=st.integers(1, 2048), seed=st.integers(0, 2**31))
def test_codebook_split_stream_identical(cfg, n, seed):
    """Split code/sign streams exercise the draw-order contract directly."""
    cb, live = _rng_pair(cfg, "exact", lambda: SplitStreamSource(seed))
    np.testing.assert_array_equal(cb.sample_codes(n), live.sample_codes(n))


@pytest.mark.parametrize("backend_key", sorted(BACKENDS))
def test_resample_guard_trajectories_identical(backend_key):
    """Full mechanism releases — including redraw rounds — agree bitwise.

    The resample guard redraws out-of-range outputs, so the two kernels
    only stay aligned if every round consumes codes then sign bits in
    the same order.  SplitStreamSource keeps those streams independent,
    which would expose any reordering immediately.
    """
    sensor = SensorSpec(0.0, 10.0)
    x = np.random.default_rng(7).uniform(0.5, 9.5, 5000)
    outs = {}
    for kernel in ("codebook", "live"):
        mech = ResamplingMechanism(
            sensor,
            epsilon=0.5,
            input_bits=12,
            log_backend=BACKENDS[backend_key](),
            source=SplitStreamSource(42),
            kernel=kernel,
            pipeline=ReleasePipeline(),
        )
        assert mech.rng.kernel == kernel
        outs[kernel] = mech.release(x)
    np.testing.assert_array_equal(
        outs["codebook"].values, outs["live"].values
    )
    assert outs["codebook"].event.draws == outs["live"].event.draws
    assert (
        outs["codebook"].event.resample_rounds
        == outs["live"].event.resample_rounds
    )
    assert outs["codebook"].event.kernel == "codebook"
    assert outs["live"].event.kernel == "live"


@settings(max_examples=10, deadline=None)
@given(cfg=fxp_configs())
def test_codebook_pmf_matches_live_enumeration(cfg):
    """Shared-cache PMF == per-instance enumeration == analytic form."""
    cb = FxpLaplaceRng(cfg, kernel="codebook")
    live = FxpLaplaceRng(cfg, kernel="live")
    assert cb.exact_pmf("enumerate").total_variation(
        live.exact_pmf("enumerate")
    ) < 1e-15
    assert cb.exact_pmf("enumerate").total_variation(cb.exact_pmf("analytic")) < 1e-12


def test_auto_kernel_budget_fallback_still_bit_identical():
    """`auto` over budget degrades to live — outputs unchanged either way."""
    cache = codebook_cache()
    cfg = FxpLaplaceConfig(input_bits=10, output_bits=20, delta=0.125, lam=8.0)
    auto = FxpLaplaceRng(cfg, source=NumpySource(seed=5), kernel="auto")
    live = FxpLaplaceRng(cfg, source=NumpySource(seed=5), kernel="live")
    planned = cache.planned_bytes(cfg)
    try:
        from repro.rng import configure_codebooks

        configure_codebooks(table_budget_bytes=planned - 1)
        assert auto.kernel == "live"  # fell back, silently
        np.testing.assert_array_equal(
            auto.sample_codes(500), live.sample_codes(500)
        )
    finally:
        from repro.rng.codebook import DEFAULT_TABLE_BUDGET_BYTES

        configure_codebooks(table_budget_bytes=DEFAULT_TABLE_BUDGET_BYTES)
