"""Property-based tests: fixed-point arithmetic invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import (
    Fxp,
    OverflowPolicy,
    QFormat,
    dequantize_codes,
    quantize_array,
    quantize_code,
)

formats = st.builds(
    QFormat,
    total_bits=st.integers(min_value=3, max_value=24),
    frac_bits=st.integers(min_value=-2, max_value=20),
)
finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(fmt=formats, value=finite_floats)
def test_quantize_always_in_range(fmt, value):
    code = quantize_code(value, fmt)
    assert fmt.min_code <= code <= fmt.max_code


@given(fmt=formats, value=finite_floats)
def test_quantize_error_bounded_by_half_step_in_range(fmt, value):
    clipped = min(max(value, fmt.min_value), fmt.max_value)
    code = quantize_code(clipped, fmt)
    assert abs(code * fmt.step - clipped) <= fmt.step / 2 + 1e-9 * abs(clipped)


@given(fmt=formats, code=st.integers(min_value=-(2**23), max_value=2**23))
def test_roundtrip_on_grid_is_identity(fmt, code):
    code = max(fmt.min_code, min(fmt.max_code, code))
    assert quantize_code(code * fmt.step, fmt) == code


@given(fmt=formats, value=finite_floats)
def test_wrap_is_congruent_modulo_span(fmt, value):
    raw = int(np.sign(value) * np.floor(abs(value) / fmt.step + 0.5))
    wrapped = quantize_code(value, fmt, overflow=OverflowPolicy.WRAP)
    assert (wrapped - raw) % fmt.num_codes == 0


@settings(max_examples=50)
@given(
    fmt=formats,
    values=st.lists(finite_floats, min_size=1, max_size=40),
)
def test_vector_matches_scalar(fmt, values):
    arr = np.array(values)
    vec = quantize_array(arr, fmt)
    scalar = [quantize_code(float(v), fmt) for v in values]
    np.testing.assert_array_equal(vec, scalar)


@given(fmt=formats, a=finite_floats, b=finite_floats)
def test_add_commutative(fmt, a, b):
    x = Fxp.from_float(a, fmt)
    y = Fxp.from_float(b, fmt)
    assert x.add(y).code == y.add(x).code


@given(fmt=formats, a=finite_floats)
def test_double_negation_fixed_point(fmt, a):
    x = Fxp.from_float(a, fmt)
    # neg saturates at min_code, so double negation is identity except
    # when x is min_code (which maps to max_code and back to -max_code).
    if x.code != fmt.min_code:
        assert x.neg().neg().code == x.code


@given(fmt=formats, codes=st.lists(st.integers(-(2**22), 2**22), min_size=1, max_size=20))
def test_dequantize_scales_linearly(fmt, codes):
    arr = np.array([max(fmt.min_code, min(fmt.max_code, c)) for c in codes])
    np.testing.assert_allclose(dequantize_codes(arr, fmt), arr * fmt.step)
