"""Property-based tests: RNG substrate invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import (
    CordicLn,
    FxpLaplaceConfig,
    FxpLaplaceRng,
    Taus88,
    VectorTaus88,
)


@settings(max_examples=25)
@given(seed=st.integers(min_value=0, max_value=2**31), n=st.integers(1, 50))
def test_taus88_scalar_vector_agree(seed, n):
    scalar = Taus88(seed=seed)
    vec = VectorTaus88(seed=seed, n_lanes=4)
    expected = [scalar.next_u32() for _ in range(n)]
    got = [int(vec._step()[0]) for _ in range(n)]
    assert got == expected


@settings(max_examples=25)
@given(
    m=st.integers(min_value=1, max_value=1 << 14),
    frac_bits=st.integers(min_value=16, max_value=28),
)
def test_cordic_ln_accuracy_scales_with_frac_bits(m, frac_bits):
    unit = CordicLn(frac_bits=frac_bits, n_iterations=24)
    got = unit.ln_uniform(m, input_bits=14)
    # Truncating shifts lose ~1 LSB per iteration; 24 iterations plus the
    # range-reduction constant bound the error by a few hundred LSBs.
    tolerance = 200 * 2.0**-frac_bits + 1e-6
    assert abs(got - math.log(m / 2.0**14)) < tolerance


@st.composite
def fxp_configs(draw):
    input_bits = draw(st.integers(min_value=6, max_value=14))
    lam = draw(st.floats(min_value=0.5, max_value=50))
    delta = draw(st.floats(min_value=0.05, max_value=2.0))
    return FxpLaplaceConfig(
        input_bits=input_bits, output_bits=20, delta=delta, lam=lam
    )


@settings(max_examples=30, deadline=None)
@given(cfg=fxp_configs())
def test_exact_pmf_is_valid_distribution(cfg):
    pmf = FxpLaplaceRng(cfg).exact_pmf()
    assert abs(pmf.total - 1.0) < 1e-12
    assert np.all(pmf.probs >= 0)


@settings(max_examples=30, deadline=None)
@given(cfg=fxp_configs())
def test_exact_pmf_symmetric(cfg):
    pmf = FxpLaplaceRng(cfg).exact_pmf()
    np.testing.assert_allclose(pmf.probs, pmf.probs[::-1], atol=1e-15)


@settings(max_examples=30, deadline=None)
@given(cfg=fxp_configs())
def test_analytic_counts_match_enumeration(cfg):
    rng = FxpLaplaceRng(cfg)
    assert rng.exact_pmf("enumerate").total_variation(rng.exact_pmf("analytic")) < 1e-12


@settings(max_examples=30, deadline=None)
@given(cfg=fxp_configs())
def test_support_bounded_by_theory(cfg):
    pmf = FxpLaplaceRng(cfg).exact_pmf()
    lo, hi = pmf.nonzero_bounds()
    assert hi <= cfg.top_code
    assert lo >= -cfg.top_code


@settings(max_examples=15, deadline=None)
@given(cfg=fxp_configs(), n=st.integers(min_value=1, max_value=500))
def test_samples_always_within_support(cfg, n):
    rng = FxpLaplaceRng(cfg)
    codes = rng.sample_codes(n)
    assert np.abs(codes).max() <= cfg.top_code


# ---------------------------------------------------------------------------
# Alternative noise generators (staircase / Gaussian) share the inversion
# datapath invariants.
# ---------------------------------------------------------------------------
from repro.rng import FxpGaussianRng, FxpStaircaseRng, StaircaseParams


@st.composite
def staircase_rngs(draw):
    d = draw(st.floats(min_value=1.0, max_value=20.0))
    eps = draw(st.floats(min_value=0.25, max_value=2.0))
    input_bits = draw(st.integers(min_value=8, max_value=12))
    cfg = FxpLaplaceConfig(
        input_bits=input_bits, output_bits=20, delta=d / 32, lam=d / eps
    )
    return FxpStaircaseRng(cfg, StaircaseParams(sensitivity=d, epsilon=eps))


@settings(max_examples=20, deadline=None)
@given(rng=staircase_rngs())
def test_staircase_pmf_valid_and_symmetric(rng):
    pmf = rng.exact_pmf()
    assert abs(pmf.total - 1.0) < 1e-12
    np.testing.assert_allclose(pmf.probs, pmf.probs[::-1], atol=1e-15)


@settings(max_examples=20, deadline=None)
@given(rng=staircase_rngs(), n=st.integers(min_value=1, max_value=300))
def test_staircase_samples_within_support(rng, n):
    codes = rng.sample_codes(n)
    lo, hi = rng.exact_pmf().nonzero_bounds()
    assert codes.min() >= lo and codes.max() <= hi


@st.composite
def gaussian_rngs(draw):
    sigma = draw(st.floats(min_value=0.5, max_value=30.0))
    input_bits = draw(st.integers(min_value=8, max_value=12))
    cfg = FxpLaplaceConfig(
        input_bits=input_bits, output_bits=20, delta=sigma / 8, lam=1.0
    )
    return FxpGaussianRng(cfg, sigma=sigma)


@settings(max_examples=20, deadline=None)
@given(rng=gaussian_rngs())
def test_gaussian_pmf_valid_and_std_close(rng):
    pmf = rng.exact_pmf()
    assert abs(pmf.total - 1.0) < 1e-12
    assert math.sqrt(pmf.variance()) == pytest.approx(rng.sigma, rel=0.1)


@settings(max_examples=20, deadline=None)
@given(rng=gaussian_rngs())
def test_gaussian_support_bounded_by_top_code(rng):
    lo, hi = rng.exact_pmf().nonzero_bounds()
    assert hi <= rng.top_code and lo >= -rng.top_code
