"""Property-based tests: privacy-loss invariants of the analyzer."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy import BudgetAccountant, pointwise_loss
from repro.privacy.loss import DiscreteMechanismFamily
from repro.rng import DiscretePMF


@st.composite
def noise_pmfs(draw):
    """Strictly positive symmetric noise (guaranteed finite baseline loss)."""
    half = draw(
        st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=10)
    )
    probs = np.array(half[::-1] + [draw(st.integers(1, 100))] + half, dtype=float)
    return DiscretePMF(step=1.0, min_k=-len(half), probs=probs / probs.sum())


@given(p1=st.floats(0, 1), p2=st.floats(0, 1))
def test_pointwise_loss_antisymmetric(p1, p2):
    a = pointwise_loss(p1, p2)
    b = pointwise_loss(p2, p1)
    if math.isfinite(a):
        assert abs(a + b) < 1e-12 or (a == 0 and b == 0)
    else:
        assert not math.isfinite(b)


@settings(max_examples=60)
@given(noise=noise_pmfs(), span=st.integers(min_value=1, max_value=4))
def test_guards_never_increase_window_mass_invariants(noise, span):
    codes = [0, span]
    window = (noise.min_k, span + noise.max_k)
    resample = DiscreteMechanismFamily.additive(noise, codes, window=window, mode="resample")
    threshold = DiscreteMechanismFamily.additive(noise, codes, window=window, mode="threshold")
    np.testing.assert_allclose(resample.matrix.sum(axis=1), 1.0, atol=1e-12)
    np.testing.assert_allclose(threshold.matrix.sum(axis=1), 1.0, atol=1e-12)


@settings(max_examples=60)
@given(noise=noise_pmfs(), span=st.integers(min_value=1, max_value=4))
def test_adding_interior_inputs_never_raises_worst_loss(noise, span):
    """The endpoints dominate: refining the input grid keeps the sup."""
    window = (noise.min_k - 1, span + noise.max_k + 1)
    ends = DiscreteMechanismFamily.additive(
        noise, [0, span], window=window, mode="threshold"
    )
    if span >= 2:
        dense = DiscreteMechanismFamily.additive(
            noise, list(range(span + 1)), window=window, mode="threshold"
        )
        l_ends = ends.worst_case_loss().worst_loss
        l_dense = dense.worst_case_loss().worst_loss
        # Interior inputs can only add pairs with *smaller* separation.
        assert l_dense <= l_ends + 1e-9 or (
            math.isinf(l_ends) and math.isinf(l_dense)
        )


@settings(max_examples=40)
@given(noise=noise_pmfs(), span=st.integers(min_value=1, max_value=3))
def test_wider_threshold_window_never_decreases_loss(noise, span):
    codes = [0, span]
    losses = []
    for extra in (0, 1, 2):
        window = (-extra, span + extra)
        fam = DiscreteMechanismFamily.additive(
            noise, codes, window=window, mode="threshold"
        )
        losses.append(fam.worst_case_loss().worst_loss)
    finite = [l for l in losses if math.isfinite(l)]
    assert finite == sorted(finite)


@given(
    budget=st.floats(min_value=0.1, max_value=100),
    losses=st.lists(st.floats(min_value=0.0, max_value=5.0), max_size=30),
)
def test_accountant_never_overspends(budget, losses):
    acc = BudgetAccountant(budget)
    for loss in losses:
        if acc.can_spend(loss):
            acc.spend(loss)
    assert acc.spent <= budget + 1e-9
    assert acc.remaining >= 0.0
