"""Property-based fuzzing of the DP-Box command protocol.

Random (but phase-legal) command sequences must never corrupt the box:
every completed noising lands inside the guard window, the budget never
goes negative, and the only exception the box ever raises is
HardwareProtocolError (for genuinely illegal sequences).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Command, DPBox, DPBoxConfig, DPBoxDriver, GuardMode, Phase
from repro.errors import HardwareProtocolError


def _fresh_driver() -> DPBoxDriver:
    box = DPBox(DPBoxConfig(input_bits=10, range_frac_bits=5))
    drv = DPBoxDriver(box)
    drv.initialize(budget=50.0)
    drv.configure(epsilon_exponent=1, range_lower=0.0, range_upper=8.0)
    return drv


action = st.sampled_from(
    ["noise", "set_value", "set_eps", "toggle", "nothing", "reconfig"]
)


@settings(max_examples=25, deadline=None)
@given(actions=st.lists(action, min_size=1, max_size=25), data=st.data())
def test_random_legal_sequences_preserve_invariants(actions, data):
    drv = _fresh_driver()
    box = drv.box
    r_hi = 8.0  # track the currently configured upper bound
    for act in actions:
        if act == "noise":
            x = data.draw(st.floats(min_value=0.0, max_value=1.0)) * r_hi
            result = drv.noise(float(np.clip(x, 0, r_hi)))
            rt = box._ensure_runtime()
            lo = rt.origin + (rt.k_m - rt.k_th) * rt.delta
            hi = rt.origin + (rt.k_M + rt.k_th) * rt.delta
            assert lo - 1e-9 <= result.value <= hi + 1e-9
            assert result.cycles >= 2
        elif act == "set_value":
            drv._step(
                Command.SET_SENSOR_VALUE,
                data.draw(st.floats(0.0, 1.0)) * r_hi,
            )
        elif act == "set_eps":
            # nm <= 2: smaller eps at Bu=10 is legitimately uncalibratable
            # (the paper needs 20-bit values for eps >= 0.1, Section III-D).
            drv._step(Command.SET_EPSILON, data.draw(st.integers(0, 2)))
        elif act == "toggle":
            drv._step(Command.SET_THRESHOLD)
            drv._step(Command.DO_NOTHING)
        elif act == "nothing":
            drv._step(Command.DO_NOTHING)
        elif act == "reconfig":
            r_hi = float(data.draw(st.sampled_from([4.0, 8.0, 16.0])))
            drv.configure(
                epsilon_exponent=data.draw(st.integers(1, 2)),
                range_lower=0.0,
                range_upper=r_hi,
            )
            # A stale sensor value may now be out of range; refresh it.
            drv._step(Command.SET_SENSOR_VALUE, r_hi / 2)
        assert box.budget_engine.remaining >= 0.0
        assert box.phase in (Phase.WAITING, Phase.NOISING)


@settings(max_examples=25, deadline=None)
@given(
    cmds=st.lists(
        st.tuples(
            st.sampled_from(list(Command)),
            st.floats(min_value=-10, max_value=10, allow_nan=False),
        ),
        max_size=20,
    )
)
def test_arbitrary_commands_only_raise_protocol_errors(cmds):
    """Even adversarial command streams fail cleanly or are absorbed."""
    box = DPBox(DPBoxConfig(input_bits=10, range_frac_bits=5))
    for cmd, val in cmds:
        box.issue(cmd, val)
        try:
            box.clock.tick()
        except HardwareProtocolError:
            box.issue(Command.DO_NOTHING)  # recover and continue fuzzing
            continue


@settings(max_examples=15, deadline=None)
@given(n_noisings=st.integers(min_value=1, max_value=30))
def test_budget_conservation_under_fuzz(n_noisings):
    drv = _fresh_driver()
    box = drv.box
    total_charged = 0.0
    for _ in range(n_noisings):
        total_charged += drv.noise(4.0).charged
    eng = box.budget_engine
    assert total_charged == eng.accountant.spent
    assert eng.accountant.spent <= 50.0 + 1e-9


@settings(max_examples=10, deadline=None)
@given(mode=st.sampled_from(list(GuardMode)), xs=st.lists(st.floats(0, 8), min_size=1, max_size=10))
def test_all_modes_all_values_complete(mode, xs):
    box = DPBox(DPBoxConfig(input_bits=10, range_frac_bits=5, guard_mode=mode))
    drv = DPBoxDriver(box)
    drv.initialize(budget=1e6)
    drv.configure(epsilon_exponent=1, range_lower=0.0, range_upper=8.0)
    for x in xs:
        result = drv.noise(float(x))
        assert result.cycles >= 2
