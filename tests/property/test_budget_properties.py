"""Property-based tests: budget engine safety invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BudgetEngine, Segment, SegmentTable


@st.composite
def tables(draw):
    k_M = draw(st.integers(min_value=1, max_value=30))
    n_segments = draw(st.integers(min_value=1, max_value=4))
    offsets = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=60),
                min_size=n_segments,
                max_size=n_segments,
                unique=True,
            )
        )
    )
    losses = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.1, max_value=2.0),
                min_size=n_segments + 1,
                max_size=n_segments + 1,
            )
        )
    )
    segments = [Segment(0, losses[0])] + [
        Segment(off, loss) for off, loss in zip(offsets, losses[1:])
    ]
    return SegmentTable(k_m=0, k_M=k_M, segments=tuple(segments))


@settings(max_examples=60)
@given(
    table=tables(),
    budget=st.floats(min_value=0.5, max_value=50),
    data=st.data(),
)
def test_total_charged_never_exceeds_budget(table, budget, data):
    eng = BudgetEngine(table, budget=budget)
    max_k = table.k_M + table.segments[-1].max_offset_codes
    min_k = table.k_m - table.segments[-1].max_offset_codes
    outputs = data.draw(
        st.lists(st.integers(min_value=min_k, max_value=max_k), max_size=60)
    )
    charged = 0.0
    for k in outputs:
        try:
            charged += eng.submit(k).charged
        except Exception:
            break
    assert charged <= budget + 1e-9
    assert charged == eng.accountant.spent


@settings(max_examples=60)
@given(table=tables(), data=st.data())
def test_cached_replies_are_earlier_fresh_outputs(table, data):
    eng = BudgetEngine(table, budget=2.0)
    max_k = table.k_M + table.segments[-1].max_offset_codes
    outputs = data.draw(
        st.lists(st.integers(min_value=table.k_m, max_value=max_k), min_size=1, max_size=60)
    )
    fresh_seen = []
    for k in outputs:
        try:
            d = eng.submit(k)
        except Exception:
            continue
        if d.from_cache:
            assert d.k_out in fresh_seen
            assert d.charged == 0.0
        else:
            fresh_seen.append(d.k_out)
            assert d.k_out == k


@settings(max_examples=40)
@given(table=tables(), period=st.integers(min_value=1, max_value=1000))
def test_replenishment_count_consistent(table, period):
    eng = BudgetEngine(table, budget=1.0, replenish_period_cycles=period)
    total_cycles = 0
    rng = np.random.default_rng(0)
    for _ in range(10):
        step = int(rng.integers(0, 500))
        eng.advance_cycles(step)
        total_cycles += step
    assert eng.n_replenishments == total_cycles // period
