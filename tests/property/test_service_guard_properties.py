"""Property tests: the guard chain's admission trichotomy.

For *any* request — well-formed, hostile, or garbage — the chain's
outcome is exactly one of:

* **admitted** — the final request is the input request (modulo nothing:
  no delta, no dropped reports);
* **repaired** — the final request differs, and *every* difference is
  recorded in the delta (coercions named, dropped reports named
  one delta entry per drop);
* **blocked** — nothing proceeds, and the reason + deciding guard are
  recorded.

No fourth outcome, no silent drops, no crash: guards must never raise
on untrusted content (raising would turn a content decision into a
connection error, outside the audit trail).  Determinism rides along:
the same request sequence produces the same verdicts on a fresh chain.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import default_chain

# Values a hostile or buggy device might put in each slot.
_scalar_junk = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=12),
)

_value_entry = st.one_of(
    st.floats(allow_nan=True, allow_infinity=True),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.text(max_size=8),  # sometimes numeric strings -> repair
    st.none(),
)

_device_id = st.one_of(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")), max_size=6
    ),
    st.just(""),
    st.integers(min_value=0, max_value=9),
)


@st.composite
def submit_requests(draw):
    """Mostly-plausible submit requests with adversarial mutations."""
    n = draw(st.integers(min_value=0, max_value=6))
    request = {
        "op": draw(st.sampled_from(["submit", "submit_counts", "noise"])),
        "epoch": draw(
            st.one_of(
                st.integers(min_value=-3, max_value=2_000_000),
                st.floats(min_value=-2.0, max_value=10.0),
                _scalar_junk,
            )
        ),
        "device_ids": draw(
            st.one_of(
                st.lists(_device_id, min_size=n, max_size=n),
                st.lists(_device_id, max_size=4),
                _scalar_junk,
            )
        ),
        "values": draw(
            st.one_of(st.lists(_value_entry, min_size=n, max_size=n), _scalar_junk)
        ),
        "claimed_loss": draw(
            st.one_of(
                st.floats(min_value=-1.0, max_value=32.0),
                st.just("1.5"),
                _scalar_junk,
            )
        ),
    }
    if request["op"] == "submit_counts":
        request.pop("device_ids")
        request.pop("values")
        request["counts"] = draw(
            st.one_of(
                st.lists(
                    st.integers(min_value=-2, max_value=50), max_size=5
                ),
                _scalar_junk,
            )
        )
        request["n_reports"] = draw(
            st.one_of(st.integers(min_value=-1, max_value=100), _scalar_junk)
        )
    if draw(st.booleans()):
        request[draw(st.sampled_from(["debug", "extra", "op2"]))] = draw(
            _scalar_junk
        )
    return request


@given(request=submit_requests())
@settings(max_examples=300, deadline=None)
def test_trichotomy_no_silent_drops(request):
    outcome = default_chain().check(dict(request))

    assert outcome.verdict in ("admitted", "repaired", "blocked")

    if outcome.verdict == "blocked":
        assert not outcome.admitted
        assert outcome.reason, "a BLOCK must carry its reason"
        assert outcome.guard != "chain", "a BLOCK names the deciding guard"
        return

    assert outcome.admitted
    final = outcome.request
    if outcome.verdict == "admitted":
        # Fully admitted: the batch went through untouched.
        assert outcome.delta == ()
        if request["op"] == "submit":
            assert final["values"] == [float(v) for v in request["values"]]
            assert final["device_ids"] == list(request["device_ids"])
    else:
        # Repaired: every change is on the record.
        assert outcome.delta, "a REPAIR must record its delta"
        if request["op"] == "submit":
            # Dropped reports are named one delta entry per drop.
            n_dropped = len(request["values"]) - len(final["values"])
            assert n_dropped >= 0
            drops = [e for e in outcome.delta if "dropped" in e]
            assert len(drops) >= n_dropped
            assert len(final["values"]) >= 1, "empty repairs must BLOCK"

    # Whatever was admitted is exactly typed for the fold.
    assert isinstance(final["epoch"], int) and final["epoch"] >= 0
    assert isinstance(final["claimed_loss"], float) and final["claimed_loss"] > 0
    if request["op"] == "submit":
        assert all(isinstance(v, float) for v in final["values"])
        assert len(final["device_ids"]) == len(final["values"])
    else:
        assert all(isinstance(c, int) for c in final["counts"])
        assert isinstance(final["n_reports"], int) and final["n_reports"] >= 1


@given(requests=st.lists(submit_requests(), min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_admission_trace_is_deterministic(requests):
    # Two fresh chains fed the same sequence agree decision-for-decision
    # (guards are deterministic state machines: replayable admissions).
    # Admitted outcomes are committed — state evolves exactly as it
    # would on the server once each batch lands in the queue.
    a_chain = default_chain()
    b_chain = default_chain()
    for request in requests:
        a = a_chain.check(dict(request))
        b = b_chain.check(dict(request))
        assert a.verdict == b.verdict
        assert a.guard == b.guard
        assert a.reason == b.reason
        assert a.delta == b.delta
        assert a.request == b.request
        if a.admitted:
            a.commit()
            b.commit()


@given(requests=st.lists(submit_requests(), min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_uncommitted_checks_never_change_later_verdicts(requests):
    # check() is side-effect-free: any number of refused (uncommitted)
    # admission attempts leaves the chain ruling exactly like a chain
    # that never saw them — the busy-retry contract, property-grade.
    probed = default_chain()
    fresh = default_chain()
    for request in requests:
        probed.check(dict(request))  # e.g. answered busy; never enqueued
    for request in requests:
        a = probed.check(dict(request))
        b = fresh.check(dict(request))
        assert (a.verdict, a.guard, a.reason, a.delta) == (
            b.verdict, b.guard, b.reason, b.delta
        )
