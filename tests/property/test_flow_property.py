"""Property test: the flow analysis is complete on synthetic fixtures.

Generates a two-module sensor → forwarding-chain → sink fixture with a
random chain depth and a sanitizer inserted at a random hop (or not at
all), then asserts the exact dichotomy the linter promises:

* no sanitizer anywhere on the path  →  DPL006 fires at the sink;
* a ``privatize`` seam at *any* hop  →  nothing fires.
"""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.flow import ProjectGraph, run_flow_analysis

SENSOR = "def load_reading():\n    return 42.0\n"


def build_fixture(depth, sanitize_at, use_alias):
    """Files for a chain entry → h{depth-1} → … → h0 → server.submit.

    ``sanitize_at`` is -1 (never), ``depth`` (at the entry), or a hop
    index; ``use_alias`` routes the value through an extra local in each
    hop so renaming does not launder taint.
    """
    hops = []
    for i in range(depth):
        body = []
        if use_alias:
            body.append("    w = v")
            val = "w"
        else:
            val = "v"
        if sanitize_at == i:
            body.append(f"    {val} = mech.privatize({val})")
        if i == 0:
            body.append(f"    server.submit({val})")
        else:
            body.append(f"    h{i - 1}(server, mech, {val})")
        hops.append(f"def h{i}(server, mech, v):\n" + "\n".join(body))

    entry = ["def entry(server, mech):", "    v = load_reading()"]
    if sanitize_at == depth:
        entry.append("    v = mech.privatize(v)")
    if depth:
        entry.append(f"    h{depth - 1}(server, mech, v)")
    else:
        entry.append("    server.submit(v)")

    relay_imports = ["from sensors.probe import load_reading"]
    files = {
        "sensors/__init__.py": "",
        "sensors/probe.py": SENSOR,
        "aggregation/__init__.py": "",
    }
    if depth:
        files["runtime/__init__.py"] = ""
        files["runtime/emit.py"] = "\n\n".join(hops) + "\n"
        relay_imports.append(f"from runtime.emit import h{depth - 1}")
    files["aggregation/relay.py"] = (
        "\n".join(relay_imports) + "\n\n\n" + "\n".join(entry) + "\n"
    )
    return files


def analyze(files):
    graph = ProjectGraph.build(
        [(path, src, ast.parse(src)) for path, src in files.items()]
    )
    return run_flow_analysis(graph)


@settings(max_examples=40, deadline=None)
@given(
    depth=st.integers(min_value=0, max_value=4),
    sanitize=st.booleans(),
    position=st.integers(min_value=0, max_value=4),
    use_alias=st.booleans(),
)
def test_sensor_to_sink_dichotomy(depth, sanitize, position, use_alias):
    sanitize_at = min(position, depth) if sanitize else -1
    files = build_fixture(depth, sanitize_at, use_alias)
    findings = analyze(files)

    if not sanitize:
        dpl006 = [f for f in findings if f.rule_id == "DPL006"]
        assert len(dpl006) == 1, (
            f"unprivatized depth-{depth} chain must be flagged exactly "
            f"once, got {[f.render_text() for f in findings]}"
        )
        f = dpl006[0]
        sink_file = "runtime/emit.py" if depth else "aggregation/relay.py"
        assert f.path == sink_file
        # The witness starts where the raw value enters the program.
        assert f.flow[0].path == "aggregation/relay.py"
        assert f.flow[-1].path == sink_file
        assert f.flow[-1].line == f.line
    else:
        assert findings == [], (
            f"seam at hop {sanitize_at} of {depth} must sanitize, got "
            f"{[f.render_text() for f in findings]}"
        )
