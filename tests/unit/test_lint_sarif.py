"""SARIF 2.1.0 emission: structure, schema validity, code flows."""

from __future__ import annotations

import json
import textwrap

import jsonschema
import pytest

from repro.lint.engine import LintConfig, LintEngine
from repro.lint.findings import Finding, FlowStep, Severity
from repro.lint.flow.sarif import SARIF_VERSION, render_sarif
from repro.lint.flow.sarif_schema import SARIF_2_1_0_SCHEMA


def _finding(**over):
    base = dict(
        rule_id="DPL006",
        severity=Severity.ERROR,
        path="aggregation/relay.py",
        line=5,
        col=4,
        message="raw flow to sink",
        source_line="server.submit(value)",
    )
    base.update(over)
    return Finding(**base)


FLOW = (
    FlowStep(path="sensors/probe.py", line=2, note="raw sensor read"),
    FlowStep(path="aggregation/relay.py", line=5, note="submitted to server"),
)


def test_empty_log_is_schema_valid():
    log = render_sarif([])
    assert log["version"] == SARIF_VERSION == "2.1.0"
    jsonschema.validate(log, SARIF_2_1_0_SCHEMA)
    assert log["runs"][0]["results"] == []


def test_rule_catalog_complete_and_sorted():
    rules = render_sarif([])["runs"][0]["tool"]["driver"]["rules"]
    ids = [r["id"] for r in rules]
    assert ids == sorted(ids)
    # 5 per-file + 3 flow + 3 pseudo.
    assert ids == [
        "DPL001", "DPL002", "DPL003", "DPL004", "DPL005",
        "DPL006", "DPL007", "DPL008",
        "DPL900", "DPL901", "DPL902",
    ]
    for rule in rules:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in ("error", "warning")


def test_result_fields_and_rule_index():
    log = render_sarif([_finding()])
    jsonschema.validate(log, SARIF_2_1_0_SCHEMA)
    run = log["runs"][0]
    result = run["results"][0]
    assert result["ruleId"] == "DPL006"
    # ruleIndex points back into the driver catalog.
    assert run["tool"]["driver"]["rules"][result["ruleIndex"]]["id"] == "DPL006"
    assert result["level"] == "error"
    assert result["partialFingerprints"]["dplintFingerprint/v1"]
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 5
    # dplint columns are 0-based (ast); SARIF is 1-based.
    assert region["startColumn"] == 4 + 1


def test_flow_witness_becomes_code_flow():
    log = render_sarif([_finding(flow=FLOW)])
    jsonschema.validate(log, SARIF_2_1_0_SCHEMA)
    steps = log["runs"][0]["results"][0]["codeFlows"][0]["threadFlows"][0][
        "locations"
    ]
    assert len(steps) == len(FLOW)
    first = steps[0]["location"]
    assert (
        first["physicalLocation"]["artifactLocation"]["uri"]
        == "sensors/probe.py"
    )
    assert first["message"]["text"] == "raw sensor read"


def test_no_code_flow_without_witness():
    log = render_sarif([_finding()])
    assert "codeFlows" not in log["runs"][0]["results"][0]


def test_warning_severity_maps_to_warning_level():
    log = render_sarif([_finding(rule_id="DPL008", severity=Severity.WARNING)])
    assert log["runs"][0]["results"][0]["level"] == "warning"


def test_log_is_json_serializable():
    blob = json.dumps(render_sarif([_finding(flow=FLOW)]))
    assert json.loads(blob)["version"] == "2.1.0"


def test_end_to_end_engine_findings_validate(tmp_path):
    """SARIF built from a real engine run over a flow fixture validates."""
    files = {
        "sensors/__init__.py": "",
        "sensors/probe.py": "def load_reading():\n    return 42.0\n",
        "aggregation/__init__.py": "",
        "aggregation/relay.py": textwrap.dedent(
            """
            from sensors.probe import load_reading

            def forward(server):
                server.submit(load_reading())
            """
        ),
    }
    for rel, src in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(src)
    config = LintConfig(rule_ids=["DPL006"], root=str(tmp_path))
    result = LintEngine(config).run([str(tmp_path)])
    assert result.findings, "fixture must produce a flow finding"
    log = render_sarif(result.findings)
    jsonschema.validate(log, SARIF_2_1_0_SCHEMA)
    sarif_result = log["runs"][0]["results"][0]
    assert sarif_result["ruleId"] == "DPL006"
    assert sarif_result["codeFlows"], "flow finding must carry its witness"


def test_vendored_schema_rejects_bad_logs():
    with pytest.raises(jsonschema.ValidationError):
        jsonschema.validate({"version": "2.1.0"}, SARIF_2_1_0_SCHEMA)
    with pytest.raises(jsonschema.ValidationError):
        jsonschema.validate(
            {"version": "9.9.9", "runs": []}, SARIF_2_1_0_SCHEMA
        )
