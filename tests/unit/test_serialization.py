"""Config JSON round-trips."""

import pytest

from repro.core import ChannelConfig, DPBoxConfig, GuardMode
from repro.core.serialization import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.errors import ConfigurationError
from repro.mechanisms import SensorSpec
from repro.rng import FxpLaplaceConfig


class TestRoundTrips:
    def test_dpbox_config(self):
        cfg = DPBoxConfig(
            input_bits=14,
            guard_mode=GuardMode.RESAMPLE,
            segment_levels=(1.0, 2.0),
            use_cordic_log=True,
        )
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_fxp_laplace_config(self):
        cfg = FxpLaplaceConfig(input_bits=12, output_bits=16, delta=0.25, lam=4.0)
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_sensor_spec(self):
        spec = SensorSpec(94.0, 200.0)
        assert config_from_dict(config_to_dict(spec)) == spec

    def test_channel_config_with_nested_sensor(self):
        ch = ChannelConfig(
            "temp", SensorSpec(0.0, 40.0), 0.5, guard_mode=GuardMode.RESAMPLE
        )
        rebuilt = config_from_dict(config_to_dict(ch))
        assert rebuilt == ch
        assert isinstance(rebuilt.sensor, SensorSpec)

    def test_file_round_trip(self, tmp_path):
        cfg = DPBoxConfig(input_bits=17, loss_multiple=3.0, segment_levels=(1.5, 3.0))
        path = tmp_path / "dpbox.json"
        save_config(cfg, path)
        assert load_config(path, DPBoxConfig) == cfg

    def test_guard_mode_serialized_by_value(self):
        d = config_to_dict(DPBoxConfig(guard_mode=GuardMode.RESAMPLE))
        assert d["guard_mode"] == "resample"


class TestErrorHandling:
    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"type": "Nonsense"})

    def test_missing_discriminator(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"input_bits": 14})

    def test_unknown_field_rejected(self):
        d = config_to_dict(DPBoxConfig())
        d["budgget"] = 5  # typo must not be silently dropped
        with pytest.raises(ConfigurationError):
            config_from_dict(d)

    def test_expected_type_enforced(self):
        d = config_to_dict(SensorSpec(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            config_from_dict(d, DPBoxConfig)

    def test_unsupported_object(self):
        with pytest.raises(ConfigurationError):
            config_to_dict(object())

    def test_invalid_values_still_validated(self):
        d = config_to_dict(DPBoxConfig())
        d["input_bits"] = 99
        with pytest.raises(ConfigurationError):
            config_from_dict(d)

    def test_bad_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_config(path)
