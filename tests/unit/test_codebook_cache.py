"""Codebook cache: LRU behavior, budgets, stats, and kernel reporting."""

import numpy as np
import pytest

from repro.core import DPBox, DPBoxConfig, DPBoxDriver
from repro.errors import ConfigurationError
from repro.mechanisms import SensorSpec, make_mechanism
from repro.rng import (
    CordicLn,
    FxpLaplaceConfig,
    FxpLaplaceRng,
    NumpySource,
    codebook_cache,
    configure_codebooks,
)
from repro.rng.codebook import (
    DEFAULT_MAX_ENTRIES,
    DEFAULT_TABLE_BUDGET_BYTES,
    CodebookCache,
    backend_fingerprint,
)
from repro.runtime import CounterSink, ReleasePipeline


def cfg(bits=8, lam=8.0):
    return FxpLaplaceConfig(input_bits=bits, output_bits=20, delta=0.25, lam=lam)


def build_for(config):
    """The live datapath stand-in used for direct CodebookCache tests."""
    return FxpLaplaceRng(config, kernel="live")._codes_from_uniform


class TestCacheLRU:
    def test_hit_returns_same_entry(self):
        cache = CodebookCache()
        c = cfg()
        e1 = cache.get(c, None, build_for(c))
        e2 = cache.get(c, None, build_for(c))
        assert e1 is e2
        assert cache.stats()["hits"] == 1
        assert cache.stats()["builds"] == 1

    def test_distinct_backends_distinct_entries(self):
        cache = CodebookCache()
        c = cfg()
        exact = cache.get(c, None, build_for(c))
        rng = FxpLaplaceRng(c, log_backend=CordicLn(), kernel="live")
        cordic = cache.get(c, CordicLn(), rng._codes_from_uniform)
        assert exact is not cordic
        assert len(cache) == 2

    def test_lru_evicts_oldest(self):
        cache = CodebookCache(max_entries=2)
        configs = [cfg(lam=l) for l in (4.0, 8.0, 16.0)]
        for c in configs:
            cache.get(c, None, build_for(c))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.peek(configs[0], None) is None  # the oldest went
        assert cache.peek(configs[2], None) is not None

    def test_get_refreshes_recency(self):
        cache = CodebookCache(max_entries=2)
        a, b, c = (cfg(lam=l) for l in (4.0, 8.0, 16.0))
        cache.get(a, None, build_for(a))
        cache.get(b, None, build_for(b))
        cache.get(a, None, build_for(a))  # touch a — b becomes LRU
        cache.get(c, None, build_for(c))
        assert cache.peek(a, None) is not None
        assert cache.peek(b, None) is None

    def test_stats_reconcile_with_get_calls(self):
        cache = CodebookCache(max_entries=2, table_budget_bytes=1024)
        calls = 0
        for c in [cfg(bits=6), cfg(bits=6), cfg(bits=7), cfg(bits=12)]:
            cache.get(c, None, build_for(c))  # bits=12 > 1 KiB budget
            calls += 1
        s = cache.stats()
        assert s["hits"] + s["builds"] + s["budget_fallbacks"] == calls
        assert s["budget_fallbacks"] == 1
        assert s["bytes"] == cache.total_bytes

    def test_clear_resets_everything(self):
        cache = CodebookCache()
        c = cfg()
        cache.get(c, None, build_for(c))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["builds"] == 0


class TestBudget:
    def test_over_budget_returns_none(self):
        cache = CodebookCache(table_budget_bytes=64)
        c = cfg(bits=8)  # 256 * 4 bytes > 64
        assert cache.get(c, None, build_for(c)) is None
        assert cache.budget_fallbacks == 1

    def test_planned_bytes_int32(self):
        cache = CodebookCache()
        c = cfg(bits=10)
        assert cache.planned_bytes(c) == (1 << 10) * 4
        entry = cache.get(c, None, build_for(c))
        assert entry.table.dtype == np.int32
        assert entry.nbytes == cache.planned_bytes(c)

    def test_table_dtype_widens_past_int32(self):
        assert CodebookCache._table_dtype((1 << 31) - 1) is np.int32
        assert CodebookCache._table_dtype(1 << 31) is np.int64

    def test_invalid_limits_rejected(self):
        with pytest.raises(ConfigurationError):
            CodebookCache(max_entries=0)
        with pytest.raises(ConfigurationError):
            CodebookCache(table_budget_bytes=0)


class TestConfigureProcessCache:
    def test_shrink_evicts_immediately(self):
        cache = codebook_cache()
        try:
            cache.clear()
            for l in (4.0, 8.0, 16.0):
                c = cfg(lam=l)
                cache.get(c, None, build_for(c))
            configure_codebooks(max_entries=1)
            assert len(cache) == 1
            assert cache.evictions == 2
        finally:
            configure_codebooks(
                max_entries=DEFAULT_MAX_ENTRIES,
                table_budget_bytes=DEFAULT_TABLE_BUDGET_BYTES,
            )
            cache.clear()

    def test_budget_change_gates_future_gets(self):
        cache = codebook_cache()
        try:
            cache.clear()
            configure_codebooks(table_budget_bytes=64)
            rng = FxpLaplaceRng(cfg(bits=8), kernel="auto")
            assert rng.kernel == "live"
            with pytest.raises(ConfigurationError):
                FxpLaplaceRng(cfg(bits=8), kernel="codebook").kernel
        finally:
            configure_codebooks(
                max_entries=DEFAULT_MAX_ENTRIES,
                table_budget_bytes=DEFAULT_TABLE_BUDGET_BYTES,
            )
            cache.clear()


class TestBackendFingerprint:
    def test_exact_and_hardware_backends(self):
        assert backend_fingerprint(None) == ("exact-f64",)
        assert backend_fingerprint(CordicLn(frac_bits=20, n_iterations=16)) == (
            "cordic",
            20,
            16,
        )

    def test_unknown_backend_keys_by_identity(self):
        class Weird:
            def ln_uniform(self, m, input_bits):  # pragma: no cover
                return 0.0

        w = Weird()
        assert backend_fingerprint(w) != backend_fingerprint(Weird())
        assert backend_fingerprint(w) == backend_fingerprint(w)


class TestSharedPmf:
    def test_enumerated_pmf_shared_across_instances(self):
        """_pmf_cache routes through the process cache: one PMF object."""
        c = cfg(bits=9)
        a = FxpLaplaceRng(c, kernel="codebook")
        b = FxpLaplaceRng(c, kernel="codebook")
        assert a.exact_pmf("enumerate") is b.exact_pmf("enumerate")

    def test_live_kernel_keeps_private_pmf(self):
        c = cfg(bits=9)
        a = FxpLaplaceRng(c, kernel="live")
        b = FxpLaplaceRng(c, kernel="live")
        pa, pb = a.exact_pmf("enumerate"), b.exact_pmf("enumerate")
        assert pa is not pb
        assert pa.total_variation(pb) == 0.0


class TestKernelReporting:
    def test_counter_sink_per_kernel(self):
        counters = CounterSink()
        pipe = ReleasePipeline(sinks=[counters])
        sensor = SensorSpec(0.0, 8.0)
        kwargs = dict(input_bits=10, output_bits=16, delta=8 / 64, pipeline=pipe)
        cb = make_mechanism("baseline", sensor, 0.5, kernel="codebook", **kwargs)
        live = make_mechanism("baseline", sensor, 0.5, kernel="live", **kwargs)
        cb.release(np.full(7, 3.0))
        cb.release(np.full(5, 3.0))
        live.release(np.full(2, 3.0))
        per = counters.per_kernel
        assert per["codebook"]["events"] == 2
        assert per["codebook"]["draws"] == 12
        assert per["live"]["events"] == 1
        assert per["live"]["draws"] == 2
        assert "per_kernel" in counters.summary()

    def test_mechanism_event_carries_kernel(self):
        pipe = ReleasePipeline()
        sensor = SensorSpec(0.0, 8.0)
        mech = make_mechanism(
            "thresholding", sensor, 0.5, input_bits=10, output_bits=16,
            delta=8 / 64, pipeline=pipe, kernel="auto",
        )
        with pipe.capture() as ring:
            mech.release(np.array([4.0]))
        assert ring.events[-1].kernel == "codebook"

    def test_dpbox_event_carries_kernel(self):
        counters = CounterSink()
        pipe = ReleasePipeline(sinks=[counters])
        box = DPBox(
            DPBoxConfig(input_bits=10, range_frac_bits=6), pipeline=pipe
        )
        driver = DPBoxDriver(box)
        driver.initialize(budget=5.0)
        driver.configure(
            epsilon_exponent=1, range_lower=0.0, range_upper=8.0
        )
        driver.noise(4.0)
        assert "codebook" in counters.per_kernel
        assert counters.per_kernel["codebook"]["events"] >= 1
