"""Windowed budget accountants."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.privacy.windows import FixedWindowAccountant, SlidingWindowAccountant


class TestFixedWindow:
    def test_spend_within_window(self):
        acc = FixedWindowAccountant(budget=1.0, window=100)
        assert acc.try_spend(0.6)
        assert not acc.try_spend(0.6)
        assert acc.remaining == pytest.approx(0.4)

    def test_reset_at_boundary(self):
        acc = FixedWindowAccountant(budget=1.0, window=100)
        acc.try_spend(1.0)
        acc.advance(99)
        assert acc.remaining == 0.0
        acc.advance(1)  # crosses the boundary
        assert acc.remaining == 1.0

    def test_boundary_straddle_reaches_2x(self):
        """The documented weakness: 2B inside one sliding interval."""
        acc = FixedWindowAccountant(budget=1.0, window=100)
        acc.advance(99)
        assert acc.try_spend(1.0)  # end of window 0
        acc.advance(2)
        assert acc.try_spend(1.0)  # start of window 1
        # Total 2.0 within ticks [99, 101] — an interval of length 2.

    def test_multiple_windows(self):
        acc = FixedWindowAccountant(budget=0.5, window=10)
        total = 0.0
        for _ in range(10):
            if acc.try_spend(0.5):
                total += 0.5
            acc.advance(10)
        assert total == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedWindowAccountant(0.0, 10)
        with pytest.raises(ConfigurationError):
            FixedWindowAccountant(1.0, 0)
        acc = FixedWindowAccountant(1.0, 10)
        with pytest.raises(ConfigurationError):
            acc.try_spend(-0.1)
        with pytest.raises(ConfigurationError):
            acc.advance(-1)


class TestSlidingWindow:
    def test_charges_expire(self):
        acc = SlidingWindowAccountant(budget=1.0, window=100)
        assert acc.try_spend(1.0)
        assert not acc.try_spend(0.1)
        acc.advance(100)
        assert acc.try_spend(1.0)

    def test_no_interval_exceeds_budget(self):
        """The strict guarantee, checked exhaustively on a random trace."""
        rng = np.random.default_rng(0)
        acc = SlidingWindowAccountant(budget=1.0, window=50)
        events = []  # (time, loss) actually charged
        for _ in range(400):
            acc.advance(int(rng.integers(0, 5)))
            loss = float(rng.uniform(0, 0.4))
            if acc.try_spend(loss):
                events.append((acc.now, loss))
        times = np.array([t for t, _ in events])
        losses = np.array([l for _, l in events])
        for t, _ in events:
            in_window = (times > t - 50) & (times <= t)
            assert losses[in_window].sum() <= 1.0 + 1e-9

    def test_partial_expiry(self):
        acc = SlidingWindowAccountant(budget=1.0, window=10)
        acc.try_spend(0.5)
        acc.advance(5)
        acc.try_spend(0.5)
        acc.advance(6)  # first charge (t=0) expired, second (t=5) not
        assert acc.spent_in_window_ending_now() == pytest.approx(0.5)
        assert acc.try_spend(0.5)

    def test_stricter_than_fixed(self):
        """Sliding refuses the boundary-straddle that fixed allows."""
        fixed = FixedWindowAccountant(budget=1.0, window=100)
        sliding = SlidingWindowAccountant(budget=1.0, window=100)
        for acc in (fixed, sliding):
            acc.advance(99)
            assert acc.try_spend(1.0)
            acc.advance(2)
        assert fixed.try_spend(1.0)
        assert not sliding.try_spend(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowAccountant(1.0, -5)
        acc = SlidingWindowAccountant(1.0, 10)
        with pytest.raises(ConfigurationError):
            acc.try_spend(-1.0)
