"""Ingestion service end-to-end over real sockets.

Covers the wire contract (ops, malformed lines), the admission verdicts
and their trace events, explicit BUSY backpressure under a gated
aggregation fold, the socket-vs-in-process bit-identity guarantee, and
the kill-the-server-mid-batch atomicity contract (a batch folds whole
or not at all — never partially).
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.aggregation import AggregationServer
from repro.rng import audited_generator
from repro.runtime import IngestEvent, JsonlSink
from repro.runtime.sinks import read_events_jsonl
from repro.service import IngestClient, ServiceConfig, run_load
from repro.service.server import serve_in_thread


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def streaming_service():
    aggregation = AggregationServer(streaming=True)
    handle = serve_in_thread(
        aggregation, ServiceConfig(allow_shutdown=True)
    )
    try:
        yield aggregation, handle
    finally:
        handle.stop()


class TestWireOps:
    def test_ping(self, streaming_service):
        _, handle = streaming_service
        with IngestClient(*handle.address) as client:
            assert client.ping() == {"status": "ok", "pong": True}

    def test_snapshot_and_metrics(self, streaming_service):
        _, handle = streaming_service
        with IngestClient(*handle.address) as client:
            client.submit(0, ["a"], [4.5], 1.0)
            assert wait_until(
                lambda: client.snapshot()["snapshot"]["epochs"].get(
                    "0", {}
                ).get("count") == 1
            )
            metrics = client.metrics()["metrics"]
            assert metrics["reports_admitted"] == 1
            assert metrics["internal_errors"] == 0
            assert metrics["latency_p50_us"] is not None

    @pytest.mark.parametrize(
        "raw",
        [
            b"this is not json\n",
            b"[1, 2, 3]\n",
            b'{"no": "op"}\n',
            b'{"op": 7}\n',
        ],
    )
    def test_malformed_line_blocked_at_wire(self, streaming_service, raw):
        _, handle = streaming_service
        with IngestClient(*handle.address) as client:
            client.send_raw(raw)
            reply = json.loads(client._reader.readline())
            assert reply["status"] == "blocked"
            assert reply["guard"] == "wire"
            # The connection survives a malformed line.
            assert client.ping()["status"] == "ok"

    def test_unknown_op_blocked(self, streaming_service):
        _, handle = streaming_service
        with IngestClient(*handle.address) as client:
            reply = client.request({"op": "exfiltrate"})
            assert reply["status"] == "blocked"
            assert "unknown op" in reply["reason"]

    def test_shutdown_disabled_by_default(self):
        aggregation = AggregationServer(streaming=True)
        handle = serve_in_thread(aggregation)  # allow_shutdown=False
        try:
            with IngestClient(*handle.address) as client:
                reply = client.shutdown()
                assert reply["status"] == "blocked"
                assert client.ping()["status"] == "ok"
        finally:
            handle.stop()


class TestAdmissionVerdicts:
    def test_admitted_batch_folds(self, streaming_service):
        aggregation, handle = streaming_service
        with IngestClient(*handle.address) as client:
            reply = client.submit(0, ["a", "b"], [1.5, 2.5], 1.0)
        assert reply["status"] == "admitted"
        assert reply["n_reports"] == 2
        assert wait_until(lambda: 0 in aggregation.epochs)
        assert aggregation.snapshot()["epochs"]["0"]["count"] == 2

    def test_wire_repair_recorded(self, streaming_service):
        aggregation, handle = streaming_service
        with IngestClient(*handle.address) as client:
            # Raw request so the client's own float() coercion doesn't
            # pre-repair the value string.
            reply = client.request(
                {"op": "submit", "epoch": 0, "device_ids": ["a"],
                 "values": ["3.25"], "claimed_loss": 1.0}
            )
            assert reply["status"] == "repaired"
            assert any("3.25" in entry for entry in reply["delta"])
            assert wait_until(lambda: 0 in aggregation.epochs)
            assert aggregation.snapshot()["epochs"]["0"]["mean"] == 3.25

    def test_blocked_batch_never_reaches_the_server(self, streaming_service):
        aggregation, handle = streaming_service
        with IngestClient(*handle.address) as client:
            reply = client.submit(0, ["a"], [1.0], -5.0)
            assert reply["status"] == "blocked"
            assert reply["guard"] == "schema"
            assert client.ping()["status"] == "ok"  # fold had time to run
        assert aggregation.epochs == []

    def test_rate_limit_repair_over_the_wire(self, streaming_service):
        aggregation, handle = streaming_service
        with IngestClient(*handle.address) as client:
            assert client.submit(0, ["a"], [1.0], 1.0)["status"] == "admitted"
            reply = client.submit(0, ["a", "b"], [9.0, 2.0], 1.0)
            assert reply["status"] == "repaired"
            assert reply["n_reports"] == 1
        assert wait_until(
            lambda: aggregation.snapshot()["epochs"].get("0", {}).get("count")
            == 2
        )

    def test_counts_batch_over_the_wire(self, streaming_service):
        aggregation, handle = streaming_service
        with IngestClient(*handle.address) as client:
            reply = client.submit_counts(3, [5, 7, 2], 14, 1.0)
            assert reply["status"] == "admitted"
        assert wait_until(lambda: 3 in aggregation.categorical_epochs)
        counts, n = aggregation.category_counts(3)
        assert list(counts) == [5, 7, 2] and n == 14


class TestIngestTrace:
    def test_every_decision_is_an_event(self, tmp_path):
        trace = tmp_path / "ingest.jsonl"
        aggregation = AggregationServer(streaming=True)
        sink = JsonlSink(trace)
        handle = serve_in_thread(aggregation, extra_sinks=[sink])
        try:
            with IngestClient(*handle.address) as client:
                client.submit(0, ["a"], [1.0], 1.0)
                client.submit(0, ["b"], [2.0], -1.0)  # blocked
                client.send_raw(b"garbage\n")
                client._reader.readline()
                client.ping()
        finally:
            handle.stop()
            sink.close()
        events = read_events_jsonl(trace)
        assert all(isinstance(e, IngestEvent) for e in events)
        verdicts = [e.verdict for e in events]
        assert verdicts.count("admitted") == 2  # submit + ping
        assert verdicts.count("blocked") == 2  # bad loss + wire garbage
        assert [e.seq for e in events] == sorted(e.seq for e in events)
        wire = [e for e in events if e.guard == "wire" and e.verdict == "blocked"]
        assert wire and wire[0].reason

    def test_counter_metrics_match_replies(self, streaming_service):
        _, handle = streaming_service
        service = handle.service
        with IngestClient(*handle.address) as client:
            for i in range(5):
                client.submit(i, ["a"], [float(i)], 1.0)
            client.submit(0, ["x"], [1.0], 99.0)  # blocked: loss cap 16
        summary = service.counters.ingest_summary()
        assert summary["reports_admitted"] == 5
        assert summary["reports_blocked"] == 1
        assert summary["per_guard_blocked"] == {"epoch-budget": 1}
        assert summary["internal_errors"] == 0


class _GatedServer(AggregationServer):
    """Aggregation server whose scalar fold blocks until released."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.gate = threading.Event()

    def submit_array(self, *args, **kwargs):
        self.gate.wait(timeout=30.0)
        super().submit_array(*args, **kwargs)


class TestBackpressure:
    def test_full_queue_answers_busy(self):
        aggregation = _GatedServer(streaming=True)
        handle = serve_in_thread(
            aggregation, ServiceConfig(queue_capacity=2)
        )
        try:
            with IngestClient(*handle.address) as client:
                replies = [
                    client.submit(0, [f"d{i}"], [1.0], 1.0) for i in range(5)
                ]
                statuses = [r["status"] for r in replies]
                assert "busy" in statuses  # the queue bound bit
                n_admitted = statuses.count("admitted")
                busy = next(r for r in replies if r["status"] == "busy")
                assert busy["queue_depth"] >= 2
                aggregation.gate.set()
                assert wait_until(
                    lambda: aggregation.snapshot()["epochs"]
                    .get("0", {})
                    .get("count") == n_admitted
                )
                # Backpressure is retryable: the refused batch goes
                # through once the drain side catches up.
                retry = client.submit(0, ["retry"], [1.0], 1.0)
                assert retry["status"] == "admitted"
        finally:
            handle.stop()

    def test_busy_refusal_charges_no_guard_state(self):
        # Regression: a busy answer used to charge the rate limiter and
        # budget for every device in the refused batch, so the contract
        # retry of the *same* batch came back "blocked" and the batch
        # was permanently lost under backpressure.
        aggregation = _GatedServer(streaming=True)
        handle = serve_in_thread(
            aggregation, ServiceConfig(queue_capacity=1)
        )
        try:
            with IngestClient(*handle.address) as client:
                busy_ids = None
                for i in range(20):
                    ids = [f"dev-{i}"]
                    if client.submit(0, ids, [1.0], 1.0)["status"] == "busy":
                        busy_ids = ids
                        break
                assert busy_ids is not None, "queue bound never hit"
                aggregation.gate.set()
                for _ in range(200):  # retry the same batch until drained
                    reply = client.submit(0, busy_ids, [1.0], 1.0)
                    if reply["status"] != "busy":
                        break
                    time.sleep(0.01)
                assert reply["status"] == "admitted"
        finally:
            aggregation.gate.set()
            handle.stop()


class TestStopContract:
    def test_stop_quiesces_live_connections_before_drain(self):
        # Regression: stop(drain=True) closed the *listening* socket but
        # kept serving established connections, which could enqueue new
        # batches after queue.join() — admitted, then silently dropped
        # by the drain-task cancel.  Once stop() begins, live
        # connections must get a terminal "service stopping" refusal.
        aggregation = _GatedServer(streaming=True)
        handle = serve_in_thread(
            aggregation, ServiceConfig(queue_capacity=8)
        )
        client = IngestClient(*handle.address)
        stopper = threading.Thread(target=handle.stop)
        try:
            assert client.submit(0, ["a"], [1.0], 1.0)["status"] == "admitted"
            stopper.start()  # blocks draining: the fold is gated
            assert wait_until(lambda: handle.service._stopped)
            reply = client.submit(0, ["b"], [2.0], 1.0)
            assert reply["status"] == "blocked"
            assert reply["guard"] == "service"
            assert "stopping" in reply["reason"]
        finally:
            client.close()
            aggregation.gate.set()
            stopper.join(timeout=10.0)
            handle.stop()
        assert not stopper.is_alive()
        # The admitted promise was folded; the refused batch never was.
        snap = aggregation.snapshot()
        assert snap["epochs"]["0"]["count"] == 1


class TestBitIdentity:
    def test_socket_epoch_bit_identical_to_in_process(self):
        # A fleet epoch's worth of float64 batches: what run_fleet ships
        # via submit_array, here round-tripped through JSON + TCP.
        rng = audited_generator(77)
        batches = [
            (epoch, rng.uniform(-4.0, 57.0, size=193))
            for epoch in range(3)
            for _ in range(4)
        ]
        in_process = AggregationServer(streaming=True)
        for b, (epoch, values) in enumerate(batches):
            in_process.submit_array(
                epoch,
                values,
                1.0,
                device_ids=[f"d{b}-{i}" for i in range(values.size)],
            )
        socket_fed = AggregationServer(streaming=True)
        handle = serve_in_thread(socket_fed)
        try:
            with IngestClient(*handle.address) as client:
                for b, (epoch, values) in enumerate(batches):
                    reply = client.submit(
                        epoch,
                        [f"d{b}-{i}" for i in range(values.size)],
                        [float(v) for v in values],
                        1.0,
                    )
                    assert reply["status"] == "admitted"
                assert wait_until(
                    lambda: client.snapshot()["snapshot"]["epochs"]
                    .get("2", {})
                    .get("count") == 4 * 193
                )
        finally:
            handle.stop()
        # Bit-for-bit: JSON doubles round-trip exactly and the folds ran
        # in the same order over the same chunks.
        assert socket_fed.snapshot() == in_process.snapshot()
        for epoch in range(3):
            assert socket_fed.worst_case_disclosure(
                f"d0-0"
            ) == in_process.worst_case_disclosure("d0-0")


class TestKillMidBatch:
    def test_partial_line_never_ingested(self):
        aggregation = AggregationServer(streaming=True)
        handle = serve_in_thread(aggregation)
        client = IngestClient(*handle.address)
        try:
            client.submit(0, ["a", "b"], [1.0, 2.0], 1.0)
            assert wait_until(
                lambda: aggregation.snapshot()["epochs"].get("0", {}).get(
                    "count"
                ) == 2
            )
            # A device dies mid-line: half a JSON object, no newline.
            client.send_raw(
                b'{"op": "submit", "epoch": 0, "device_ids": ["c"], "val'
            )
            time.sleep(0.1)
        finally:
            handle.kill()
            client.close()
        snap = aggregation.snapshot()
        assert snap["epochs"]["0"]["count"] == 2  # the whole first batch
        assert snap["n_devices_tracked"] == 2  # and nothing of the torn one

    def test_killed_service_folds_whole_batches_only(self):
        batch = 7
        aggregation = _GatedServer(streaming=True)
        handle = serve_in_thread(
            aggregation, ServiceConfig(queue_capacity=8)
        )
        client = IngestClient(*handle.address)
        try:
            for b in range(3):
                reply = client.submit(
                    0,
                    [f"d{b}-{i}" for i in range(batch)],
                    [float(i) for i in range(batch)],
                    1.0,
                )
                assert reply["status"] == "admitted"
        finally:
            # Kill with the first fold still gated and the rest queued.
            handle.kill()
            client.close()
        aggregation.gate.set()  # the in-flight executor fold may finish
        time.sleep(0.2)
        count = aggregation.snapshot()["epochs"].get("0", {}).get("count", 0)
        # Whole batches only: 0, 1, 2 or 3 folds — never a partial one.
        assert count % batch == 0
        assert 0 <= count <= 3 * batch


class TestRunLoad:
    def test_load_report_accounts_every_report(self, streaming_service):
        aggregation, handle = streaming_service
        report = run_load(
            *handle.address, batches=20, batch_size=32, epochs=4, seed=9
        )
        assert report.reports_admitted == 20 * 32
        assert report.n_blocked == 0
        assert report.server_metrics["internal_errors"] == 0
        assert report.reports_per_s > 0
        assert report.latency_p99_us >= report.latency_p50_us
        assert wait_until(
            lambda: sum(
                aggregation.snapshot()["epochs"][str(e)]["count"]
                for e in aggregation.epochs
            ) == 20 * 32
        )

    def test_load_is_deterministic_in_seed(self):
        # Same seed, fresh service each run: identical admission outcome
        # and identical folded state (the wire bytes are replayable).
        snaps = []
        for _ in range(2):
            aggregation = AggregationServer(streaming=True)
            handle = serve_in_thread(aggregation)
            try:
                report = run_load(
                    *handle.address, batches=5, batch_size=8, epochs=2, seed=3
                )
                assert report.reports_admitted == 5 * 8
                assert wait_until(
                    lambda: sum(
                        aggregation.snapshot()["epochs"][str(e)]["count"]
                        for e in aggregation.epochs
                    ) == 5 * 8
                )
            finally:
                handle.stop()
            snaps.append(aggregation.snapshot())
        assert snaps[0] == snaps[1]
