"""Two-sided geometric noise: the ideal is exactly LDP, the Bu-bit
realization is not, and the guards fix it — the sharpened §III-A4 story."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mechanisms import GuardedNoiseMechanism, SensorSpec
from repro.rng import FxpLaplaceConfig
from repro.rng.geometric import (
    FxpGeometricRng,
    IdealTwoSidedGeometric,
    geometric_alpha,
)

D, EPS = 8.0, 0.5
DELTA = D / 64
ALPHA = geometric_alpha(D, EPS, DELTA)
CFG = FxpLaplaceConfig(input_bits=12, output_bits=20, delta=DELTA, lam=1.0)


@pytest.fixture(scope="module")
def ideal():
    return IdealTwoSidedGeometric(ALPHA)


@pytest.fixture(scope="module")
def rng(ideal):
    return FxpGeometricRng(CFG, ideal)


class TestIdealDistribution:
    def test_alpha_formula(self):
        assert ALPHA == pytest.approx(math.exp(-EPS * DELTA / D))

    def test_pmf_normalizes(self, ideal):
        ks = np.arange(-4000, 4001)
        assert ideal.pmf(ks).sum() == pytest.approx(1.0, abs=1e-9)

    def test_tail_formula(self, ideal):
        ks = np.arange(-20000, 20001)
        p = ideal.pmf(ks)
        j = 37
        assert ideal.magnitude_tail(j) == pytest.approx(
            p[np.abs(ks) >= j].sum(), abs=1e-9
        )

    def test_ideal_is_exactly_eps_ldp(self, ideal):
        """The whole point of discrete noise: exact ε with no guards."""
        shift = int(round(D / DELTA))
        measured = ideal.exact_ldp_epsilon(shift)
        assert measured == pytest.approx(EPS, rel=1e-9)

    def test_inverse_cdf_roundtrip(self, ideal):
        for j in (0, 1, 5, 40):
            # Middle of rung j maps to j; just past the rung edge maps to j+1.
            u_mid = 1.0 - 0.5 * (
                ideal.magnitude_tail(j) + ideal.magnitude_tail(j + 1)
            )
            assert float(ideal.inverse_magnitude_cdf(np.asarray([u_mid]))[0]) == j
            u_past = 1.0 - ideal.magnitude_tail(j + 1) + 1e-12
            assert float(ideal.inverse_magnitude_cdf(np.asarray([u_past]))[0]) == j + 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IdealTwoSidedGeometric(1.0)
        with pytest.raises(ConfigurationError):
            geometric_alpha(0.0, 1.0, 0.1)


class TestFxpRealization:
    def test_pmf_valid_and_symmetric(self, rng):
        pmf = rng.exact_pmf()
        assert pmf.total == pytest.approx(1.0)
        np.testing.assert_allclose(pmf.probs, pmf.probs[::-1], atol=1e-15)

    def test_support_bounded_by_entropy(self, rng):
        # Deepest reachable rung ≈ (Bu+1)·ln2 / |ln α|.
        lo, hi = rng.exact_pmf().nonzero_bounds()
        expected = (CFG.input_bits + 1) * math.log(2) / abs(math.log(ALPHA))
        assert hi == pytest.approx(expected, rel=0.05)
        assert hi <= rng.top_code

    def test_matches_ideal_in_bulk(self, rng):
        # Per-rung mass ≈ 16 URNG codes at Bu=12, so quantization puts a
        # few percent of TV between the realization and the ideal.
        pmf = rng.exact_pmf()
        ideal_w = rng.ideal_pmf_window()
        assert pmf.total_variation(ideal_w) < 0.05

    def test_more_bits_tighter_match(self, ideal):
        tvs = []
        for bu in (10, 14):
            cfg = FxpLaplaceConfig(
                input_bits=bu, output_bits=20, delta=DELTA, lam=1.0
            )
            r = FxpGeometricRng(cfg, ideal)
            tvs.append(r.exact_pmf().total_variation(r.ideal_pmf_window()))
        assert tvs[1] < tvs[0]

    def test_sampling_consistent(self, rng):
        pmf = rng.exact_pmf()
        s = rng.sample_codes(60000)
        assert s.std() == pytest.approx(
            math.sqrt(pmf.variance()) / CFG.delta, rel=0.03
        )


class TestPrivacyStory:
    def test_naive_fxp_geometric_not_ldp(self, rng):
        """Discreteness does not save a finite-entropy implementation."""
        mech = GuardedNoiseMechanism(
            SensorSpec(0.0, D), EPS, rng, mode="baseline", name="geom/naive"
        )
        report = mech.ldp_report(epsilon_target=1e9)
        assert not report.is_finite

    def test_guarded_fxp_geometric_certified(self, rng):
        mech = GuardedNoiseMechanism(
            SensorSpec(0.0, D), EPS, rng, mode="threshold", target_loss=2 * EPS
        )
        report = mech.ldp_report()
        assert report.is_finite and report.satisfied

    def test_guarded_loss_can_beat_laplace_guard(self, rng):
        """Geometric decay has no rounding wobble, so the guarded loss sits
        right at the pointwise ratio bound."""
        mech = GuardedNoiseMechanism(
            SensorSpec(0.0, D), EPS, rng, mode="threshold", target_loss=2 * EPS
        )
        assert mech.ldp_report().worst_loss <= 2 * EPS + 1e-9
