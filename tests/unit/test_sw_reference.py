"""Software noising reference: functionality + cycle accounting."""

import numpy as np
import pytest

from repro.core import MSP430CostTable, SoftwareNoiser, SW_FXP_CYCLES, paper_cycle_counts
from repro.errors import ConfigurationError


class TestCostTable:
    def test_scaled(self):
        t = MSP430CostTable().scaled(2.0)
        assert t.alu32 == pytest.approx(8.0)

    def test_scale_positive(self):
        with pytest.raises(ConfigurationError):
            MSP430CostTable().scaled(0.0)


class TestFunctionality:
    def test_noised_output_is_integer_code(self):
        sw = SoftwareNoiser(seed=1)
        noised, _ = sw.noise_value(100, lam_shift=2, delta_shift=8)
        assert isinstance(noised, int)

    def test_noise_distribution_symmetric(self):
        sw = SoftwareNoiser(seed=2)
        samples = np.array(
            [sw.noise_value(0, lam_shift=1, delta_shift=10)[0] for _ in range(4000)]
        )
        assert abs(np.mean(samples)) < np.std(samples) / 10
        assert np.mean(samples > 0) == pytest.approx(0.5, abs=0.05)

    def test_deterministic_by_seed(self):
        a = SoftwareNoiser(seed=3)
        b = SoftwareNoiser(seed=3)
        assert [a.noise_value(5, 1, 8)[0] for _ in range(10)] == [
            b.noise_value(5, 1, 8)[0] for _ in range(10)
        ]

    def test_larger_lam_shift_wider_noise(self):
        narrow = SoftwareNoiser(seed=4)
        wide = SoftwareNoiser(seed=4)
        sn = [narrow.noise_value(0, 0, 10)[0] for _ in range(800)]
        sw_ = [wide.noise_value(0, 3, 10)[0] for _ in range(800)]
        assert np.std(sw_) > 4 * np.std(sn)


class TestCycleAccounting:
    def test_raw_estimate_within_2x_of_paper(self):
        sw = SoftwareNoiser(seed=5)
        avg = sw.average_cycles(16)
        assert SW_FXP_CYCLES / 2 <= avg <= SW_FXP_CYCLES * 2

    def test_calibrated_matches_paper(self):
        sw = SoftwareNoiser(seed=6, calibrate_to_paper=True)
        assert sw.average_cycles(16) == pytest.approx(SW_FXP_CYCLES, rel=0.05)

    def test_cycles_monotone_in_cordic_iterations(self):
        short = SoftwareNoiser(seed=7, cordic_iterations=8)
        long = SoftwareNoiser(seed=7, cordic_iterations=32)
        assert long.average_cycles(8) > short.average_cycles(8)

    def test_paper_cycle_counts(self):
        fxp, flt = paper_cycle_counts()
        assert (fxp, flt) == (4043, 1436)

    def test_per_call_cycles_positive(self):
        sw = SoftwareNoiser(seed=8)
        _, cycles = sw.noise_value(0, 1, 8)
        assert cycles > 0
