"""Cycle-level DP-Box: protocol, phases, latency, guards, budget."""

import numpy as np
import pytest

from repro.core import Command, DPBox, DPBoxConfig, DPBoxDriver, GuardMode, Phase
from repro.errors import HardwareProtocolError


def fresh_box(**overrides):
    defaults = dict(input_bits=12, range_frac_bits=6)
    defaults.update(overrides)
    return DPBox(DPBoxConfig(**defaults))


class TestInitializationPhase:
    def test_starts_in_initialization(self):
        assert fresh_box().phase is Phase.INITIALIZATION

    def test_budget_required_to_leave(self):
        box = fresh_box()
        box.issue(Command.START_NOISING)
        with pytest.raises(HardwareProtocolError):
            box.clock.tick()

    def test_initialize_moves_to_waiting(self):
        box = fresh_box()
        DPBoxDriver(box).initialize(budget=5.0)
        assert box.phase is Phase.WAITING

    def test_runtime_commands_invalid_during_init(self):
        box = fresh_box()
        box.issue(Command.SET_SENSOR_VALUE, 1.0)
        with pytest.raises(HardwareProtocolError):
            box.clock.tick()

    def test_replenish_period_must_be_integer_cycles(self):
        box = fresh_box()
        box.issue(Command.SET_RANGE_UPPER, 10.5)
        with pytest.raises(HardwareProtocolError):
            box.clock.tick()

    def test_cannot_reenter_initialization(self, dpbox_driver):
        # After leaving init, SET_EPSILON reinterprets as the runtime
        # epsilon exponent — the budget is locked.
        with pytest.raises(HardwareProtocolError):
            dpbox_driver.initialize(budget=1.0)


class TestNoisingProtocol:
    def test_latency_two_cycles_thresholding(self, dpbox_driver):
        results = [dpbox_driver.noise(4.0) for _ in range(20)]
        assert all(r.cycles == 2 for r in results)

    def test_noise_requires_configuration(self):
        box = fresh_box()
        DPBoxDriver(box).initialize(budget=5.0)
        box.issue(Command.SET_SENSOR_VALUE, 1.0)
        box.clock.tick()
        box.issue(Command.START_NOISING)
        with pytest.raises(HardwareProtocolError):
            box.clock.tick()

    def test_sensor_value_out_of_range_rejected(self, dpbox_driver):
        with pytest.raises(HardwareProtocolError):
            dpbox_driver.noise(100.0)

    def test_output_within_guard_window(self, dpbox_driver):
        rt = dpbox_driver.box._ensure_runtime()
        lo = (rt.k_m - rt.k_th) * rt.delta
        hi = (rt.k_M + rt.k_th) * rt.delta
        for _ in range(50):
            r = dpbox_driver.noise(4.0)
            assert lo - 1e-9 <= r.value <= hi + 1e-9

    def test_epsilon_property(self, dpbox_driver):
        assert dpbox_driver.box.epsilon == 0.5  # nm = 1

    def test_outputs_vary(self, dpbox_driver):
        values = {dpbox_driver.noise(4.0).value for _ in range(30)}
        assert len(values) > 3

    def test_ready_flag_cleared_during_noising(self, dpbox_driver):
        box = dpbox_driver.box
        dpbox_driver._step(Command.SET_SENSOR_VALUE, 4.0)
        dpbox_driver._step(Command.START_NOISING)
        box.issue(Command.DO_NOTHING)
        assert not box.ready  # mid-transaction
        box.clock.tick()
        box.clock.tick()
        assert box.ready


class TestGuardModes:
    def test_set_threshold_toggles_once_per_edge(self, dpbox_driver):
        box = dpbox_driver.box
        start = box.guard_mode
        box.issue(Command.SET_THRESHOLD)
        box.clock.tick()
        box.clock.tick()  # held command must NOT toggle again
        assert box.guard_mode is start.toggled()
        box.issue(Command.DO_NOTHING)
        box.clock.tick()
        box.issue(Command.SET_THRESHOLD)
        box.clock.tick()
        assert box.guard_mode is start

    def test_resample_latency_two_plus_redraws(self):
        box = fresh_box(guard_mode=GuardMode.RESAMPLE)
        drv = DPBoxDriver(box)
        drv.initialize(budget=1e6)
        drv.configure(epsilon_exponent=1, range_lower=0.0, range_upper=8.0)
        results = [drv.noise(0.0) for _ in range(200)]
        cycles = np.array([r.cycles for r in results])
        draws = np.array([r.draws for r in results])
        np.testing.assert_array_equal(cycles, 1 + draws)
        assert cycles.min() == 2

    def test_fixed_draw_mode_constant_latency(self):
        box = fresh_box(guard_mode=GuardMode.RESAMPLE, fixed_resample_draws=4)
        drv = DPBoxDriver(box)
        drv.initialize(budget=1e6)
        drv.configure(epsilon_exponent=1, range_lower=0.0, range_upper=8.0)
        results = [drv.noise(0.0) for _ in range(100)]
        assert {r.cycles for r in results} == {5}  # 1 load + 4 fixed draws

    def test_start_noising_held_renoises(self, dpbox_driver):
        # Paper: without Do Nothing the box immediately noises again.
        box = dpbox_driver.box
        dpbox_driver._step(Command.SET_SENSOR_VALUE, 4.0)
        box.issue(Command.START_NOISING)
        box.clock.tick()  # enters noising
        box.clock.tick()  # load
        box.clock.tick()  # generate -> ready, back to waiting
        first = box.last_result
        box.clock.tick()  # START still held -> begins again
        box.clock.tick()
        box.clock.tick()
        second = box.last_result
        assert second is not first


class TestEmbeddedBudget:
    def test_budget_depletes_and_caches(self):
        box = fresh_box()
        drv = DPBoxDriver(box)
        drv.initialize(budget=3.0)
        drv.configure(epsilon_exponent=1, range_lower=0.0, range_upper=8.0)
        results = [drv.noise(4.0) for _ in range(40)]
        cached = [r for r in results if r.from_cache]
        assert cached, "budget of 3.0 at ~0.5+/query must exhaust within 40"
        assert all(r.charged == 0.0 for r in cached)
        # Every cached reply replays the most recent fresh output.  (A
        # cached and a fresh reply can interleave near exhaustion when a
        # far-segment charge is unaffordable but the base charge still is.)
        last_fresh = None
        for r in results:
            if r.from_cache:
                assert last_fresh is not None and r.value == last_fresh
            else:
                last_fresh = r.value
        # Once the budget cannot cover even the base charge, everything
        # is cached: the tail of the run must be uniformly from_cache.
        assert results[-1].from_cache

    def test_replenishment_resumes_fresh_replies(self):
        box = fresh_box()
        drv = DPBoxDriver(box)
        drv.initialize(budget=1.5, replenish_period=200)
        drv.configure(epsilon_exponent=1, range_lower=0.0, range_upper=8.0)
        first = [drv.noise(4.0) for _ in range(10)]
        assert any(r.from_cache for r in first)
        # Idle long enough for the replenishment timer to fire.
        box.issue(Command.DO_NOTHING)
        box.clock.tick(250)
        after = drv.noise(4.0)
        assert not after.from_cache

    def test_charged_losses_match_segment_table(self, dpbox_driver):
        eng = dpbox_driver.box.budget_engine
        table = eng.table
        for _ in range(20):
            r = dpbox_driver.noise(4.0)
            if not r.from_cache:
                rt = dpbox_driver.box._ensure_runtime()
                k_out = round(r.value / rt.delta)
                assert r.charged == table.loss_for_output(int(k_out))


class TestReconfiguration:
    def test_epsilon_change_recalibrates(self, dpbox_driver):
        box = dpbox_driver.box
        t1 = box._ensure_runtime().k_th
        dpbox_driver.configure(epsilon_exponent=2, range_lower=0.0, range_upper=8.0)
        t2 = box._ensure_runtime().k_th
        assert t1 != t2

    def test_range_change_rescales_delta(self, dpbox_driver):
        box = dpbox_driver.box
        dpbox_driver.configure(epsilon_exponent=1, range_lower=0.0, range_upper=16.0)
        assert box._ensure_runtime().delta == pytest.approx(16.0 / 64)

    def test_invalid_range_rejected(self, dpbox_driver):
        dpbox_driver._step(Command.SET_RANGE_LOWER, 10.0)
        dpbox_driver._step(Command.SET_RANGE_UPPER, 5.0)
        dpbox_driver._step(Command.SET_SENSOR_VALUE, 7.0)
        dpbox_driver.box.issue(Command.START_NOISING)
        with pytest.raises(HardwareProtocolError):
            dpbox_driver.box.clock.tick()

    def test_calibration_cached_across_reconfig(self, dpbox_driver):
        box = dpbox_driver.box
        n_before = len(box._calibration_cache)
        dpbox_driver.configure(epsilon_exponent=1, range_lower=0.0, range_upper=8.0)
        assert len(box._calibration_cache) == n_before  # same key, no rework


class TestResolutionLimits:
    def test_small_epsilon_needs_more_bits(self):
        """Paper Section III-D: supporting small ε requires wide datapaths.

        At Bu=10 a request for ε = 2^-3 = 0.125 cannot be calibrated to
        the 2ε loss target — the box reports it as a calibration error
        instead of silently weakening the guarantee.
        """
        from repro.errors import CalibrationError

        box = fresh_box(input_bits=10, range_frac_bits=5)
        drv = DPBoxDriver(box)
        drv.initialize(budget=10.0)
        with pytest.raises(CalibrationError):
            drv.configure(epsilon_exponent=3, range_lower=0.0, range_upper=8.0)
            drv.noise(4.0)

    def test_same_epsilon_calibrates_with_more_bits(self):
        box = fresh_box(input_bits=17, range_frac_bits=5)
        drv = DPBoxDriver(box)
        drv.initialize(budget=10.0)
        drv.configure(epsilon_exponent=3, range_lower=0.0, range_upper=8.0)
        assert drv.noise(4.0).cycles >= 2


class TestCordicLogBackend:
    """DP-Box with the bit-true CORDIC logarithm unit (Section IV-B)."""

    def _driver(self):
        box = fresh_box(input_bits=12, range_frac_bits=6, use_cordic_log=True)
        drv = DPBoxDriver(box)
        drv.initialize(budget=1e6)
        drv.configure(epsilon_exponent=1, range_lower=0.0, range_upper=8.0)
        return drv

    def test_noising_works(self):
        drv = self._driver()
        results = [drv.noise(4.0) for _ in range(20)]
        assert all(r.cycles == 2 for r in results)

    def test_calibration_uses_cordic_pmf(self):
        """The guard is certified on the CORDIC datapath's own PMF."""
        drv = self._driver()
        rt = drv.box._ensure_runtime()
        from repro.privacy import exact_worst_loss_at_threshold
        noise = rt.rng.exact_pmf()
        from repro.privacy import input_grid_codes
        codes = input_grid_codes(0.0, 8.0, rt.delta, n_points=5)
        loss = exact_worst_loss_at_threshold(
            noise, codes, rt.k_th * rt.delta, "threshold"
        )
        assert loss <= drv.box.config.loss_multiple * drv.box.epsilon + 1e-9

    def test_outputs_within_window(self):
        drv = self._driver()
        rt = drv.box._ensure_runtime()
        lo = rt.origin + (rt.k_m - rt.k_th) * rt.delta
        hi = rt.origin + (rt.k_M + rt.k_th) * rt.delta
        for _ in range(30):
            assert lo - 1e-9 <= drv.noise(0.0).value <= hi + 1e-9

    def test_cordic_frac_bits_validation(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            DPBoxConfig(cordic_frac_bits=4)
