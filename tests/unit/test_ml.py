"""ML substrate: halfspace data, SVM, logistic regression, harness."""

import numpy as np
import pytest

from repro.datasets import make_halfspace_dataset
from repro.errors import ConfigurationError
from repro.ml import (
    LinearSVM,
    LogisticRegression,
    accuracy,
    table6_sweep,
    train_private_svm,
)


@pytest.fixture(scope="module")
def data():
    return make_halfspace_dataset(3000, dim=2, margin=0.05, seed=11)


class TestHalfspaceData:
    def test_features_in_unit_box(self, data):
        assert data.features.min() >= -1.0 and data.features.max() <= 1.0

    def test_labels_pm_one(self, data):
        assert set(np.unique(data.labels)) == {-1, 1}

    def test_separable_with_margin(self, data):
        scores = data.features @ data.weight + data.bias
        assert np.all(np.abs(scores) >= 0.05 - 1e-12)
        assert np.all(np.sign(scores) == data.labels)

    def test_split(self, data):
        train, test = data.split(1000)
        assert train.n == 1000 and test.n == data.n - 1000

    def test_split_validation(self, data):
        with pytest.raises(ConfigurationError):
            data.split(data.n)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_halfspace_dataset(1)


class TestLinearSVM:
    def test_learns_separable_data(self, data):
        train, test = data.split(2000)
        model = LinearSVM(seed=0).fit(train.features, train.labels)
        assert model.score(test.features, test.labels) > 0.97

    def test_predictions_pm_one(self, data):
        model = LinearSVM(seed=0).fit(data.features[:500], data.labels[:500])
        assert set(np.unique(model.predict(data.features[:100]))) <= {-1, 1}

    def test_unfitted_raises(self, data):
        with pytest.raises(ConfigurationError):
            LinearSVM().predict(data.features)

    def test_label_validation(self, data):
        with pytest.raises(ConfigurationError):
            LinearSVM().fit(data.features[:10], np.zeros(10))

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            LinearSVM().fit(np.zeros((5, 2)), np.ones(4))

    def test_deterministic(self, data):
        a = LinearSVM(seed=3).fit(data.features[:500], data.labels[:500])
        b = LinearSVM(seed=3).fit(data.features[:500], data.labels[:500])
        np.testing.assert_allclose(a.weight, b.weight)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            LinearSVM(regularization=0.0)
        with pytest.raises(ConfigurationError):
            LinearSVM(epochs=0)


class TestLogisticRegression:
    def test_learns_separable_data(self, data):
        train, test = data.split(2000)
        model = LogisticRegression().fit(train.features, train.labels)
        assert model.score(test.features, test.labels) > 0.95

    def test_unfitted_raises(self, data):
        with pytest.raises(ConfigurationError):
            LogisticRegression().predict(data.features)

    def test_label_validation(self, data):
        with pytest.raises(ConfigurationError):
            LogisticRegression().fit(data.features[:10], np.zeros(10))


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, -1]), np.array([1, -1])) == 1.0

    def test_half(self):
        assert accuracy(np.array([1, 1]), np.array([1, -1])) == 0.5

    def test_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            accuracy(np.array([1]), np.array([1, -1]))


class TestPrivateTraining:
    def test_clean_training_high_accuracy(self, data):
        r = train_private_svm(data, n_train=2000, epsilon=None)
        assert r.test_accuracy > 0.97

    def test_noised_training_degrades(self, data):
        # Mean over seeds: a single private run can get lucky on 2-D data.
        clean = train_private_svm(data, n_train=2000, epsilon=None)
        private = np.mean(
            [
                train_private_svm(data, n_train=2000, epsilon=0.25, seed=s).test_accuracy
                for s in range(3)
            ]
        )
        assert private < clean.test_accuracy - 0.01

    def test_larger_epsilon_helps(self, data):
        weak = train_private_svm(data, n_train=2000, epsilon=0.5)
        strong = train_private_svm(data, n_train=2000, epsilon=4.0)
        assert strong.test_accuracy > weak.test_accuracy

    def test_sweep_grid_shape(self, data):
        grid = table6_sweep(data, [500, 1000], [1.0, None])
        assert set(grid) == {1.0, None}
        assert set(grid[1.0]) == {500, 1000}
        for accs in grid.values():
            for v in accs.values():
                assert 0.0 <= v <= 1.0
