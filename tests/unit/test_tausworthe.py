"""taus88: bit-exactness, lane equivalence, alphabet, basic uniformity."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import Taus88, VectorTaus88, taus88_seed_streams


class TestReferenceSequence:
    def test_matches_canonical_recurrence(self):
        """Re-derive three steps by hand from the published recurrence."""
        gen = Taus88.from_state(12345, 67890, 13579)
        s1, s2, s3 = 12345, 67890, 13579
        m32 = 0xFFFFFFFF
        expected = []
        for _ in range(3):
            b = (((s1 << 13) & m32) ^ s1) >> 19
            s1 = (((s1 & 4294967294) << 12) & m32) ^ b
            b = (((s2 << 2) & m32) ^ s2) >> 25
            s2 = (((s2 & 4294967288) << 4) & m32) ^ b
            b = (((s3 << 3) & m32) ^ s3) >> 11
            s3 = (((s3 & 4294967280) << 17) & m32) ^ b
            expected.append(s1 ^ s2 ^ s3)
        assert [gen.next_u32() for _ in range(3)] == expected

    def test_outputs_are_32_bit(self):
        gen = Taus88(seed=1)
        for _ in range(100):
            assert 0 <= gen.next_u32() <= 0xFFFFFFFF

    def test_deterministic_by_seed(self):
        assert [Taus88(seed=9).next_u32() for _ in range(1)] == [
            Taus88(seed=9).next_u32() for _ in range(1)
        ]

    def test_different_seeds_differ(self):
        a = [Taus88(seed=1).next_u32() for _ in range(4)]
        b = [Taus88(seed=2).next_u32() for _ in range(4)]
        assert a != b

    def test_seed_constraints_enforced(self):
        with pytest.raises(ConfigurationError):
            Taus88.from_state(1, 67890, 13579)  # s1 < 2


class TestUniformCodes:
    def test_alphabet_never_zero(self):
        gen = Taus88(seed=3)
        codes = [gen.uniform_code(8) for _ in range(2000)]
        assert min(codes) >= 1
        assert max(codes) <= 256

    def test_full_scale_code_occurs(self):
        gen = Taus88(seed=3)
        codes = {gen.uniform_code(4) for _ in range(5000)}
        assert 16 in codes  # the remapped all-zeros code

    def test_uniform_in_unit_interval(self):
        gen = Taus88(seed=4)
        us = [gen.uniform(16) for _ in range(5000)]
        assert 0 < min(us) <= max(us) <= 1.0
        assert abs(np.mean(us) - 0.5) < 0.02

    def test_bits_validation(self):
        gen = Taus88(seed=5)
        with pytest.raises(ConfigurationError):
            gen.uniform_code(0)
        with pytest.raises(ConfigurationError):
            gen.uniform_code(33)


class TestVectorEquivalence:
    def test_lane0_matches_scalar(self):
        scalar = Taus88(seed=42)
        vec = VectorTaus88(seed=42, n_lanes=8)
        expected = [scalar.next_u32() for _ in range(5)]
        got = [int(vec._step()[0]) for _ in range(5)]
        assert got == expected

    def test_next_u32_round_robin_count(self):
        vec = VectorTaus88(seed=1, n_lanes=4)
        out = vec.next_u32(10)
        assert out.shape == (10,)

    def test_uniform_codes_alphabet(self):
        vec = VectorTaus88(seed=1, n_lanes=16)
        codes = vec.uniform_codes(10000, 10)
        assert codes.min() >= 1 and codes.max() <= 1024

    def test_uniformity_chi2ish(self):
        vec = VectorTaus88(seed=7, n_lanes=64)
        codes = vec.uniform_codes(64000, 4)  # 16 bins
        counts = np.bincount(codes - 1, minlength=16)
        expected = 64000 / 16
        chi2 = np.sum((counts - expected) ** 2 / expected)
        assert chi2 < 50  # df=15; overwhelmingly below for uniform data

    def test_lanes_are_distinct_streams(self):
        vec = VectorTaus88(seed=1, n_lanes=4)
        first_round = vec._step()
        assert len(set(int(v) for v in first_round)) == 4


class TestSeedStreams:
    def test_shape(self):
        assert taus88_seed_streams(0, 7).shape == (7, 3)

    def test_minimums_enforced(self):
        seeds = taus88_seed_streams(0, 100)
        assert (seeds[:, 0] >= 2).all()
        assert (seeds[:, 1] >= 8).all()
        assert (seeds[:, 2] >= 16).all()

    def test_rejects_zero_streams(self):
        with pytest.raises(ConfigurationError):
            taus88_seed_streams(0, 0)
