"""Vectorized quantization must match the scalar path bit-for-bit."""

import numpy as np
import pytest

from repro.errors import OverflowPolicyError
from repro.fixedpoint import (
    Fxp,
    OverflowPolicy,
    QFormat,
    dequantize_codes,
    quantization_error,
    quantize_array,
    quantize_code,
    saturate_codes,
)

FMT = QFormat(total_bits=8, frac_bits=4)


class TestScalarEquivalence:
    def test_matches_scalar_on_grid_sweep(self):
        values = np.linspace(FMT.min_value - 2, FMT.max_value + 2, 701)
        vec = quantize_array(values, FMT)
        scalar = np.array([quantize_code(float(v), FMT) for v in values])
        np.testing.assert_array_equal(vec, scalar)

    def test_matches_scalar_wrap(self):
        values = np.array([FMT.max_value + FMT.step, FMT.min_value - FMT.step])
        vec = quantize_array(values, FMT, overflow=OverflowPolicy.WRAP)
        scalar = [
            quantize_code(float(v), FMT, overflow=OverflowPolicy.WRAP) for v in values
        ]
        np.testing.assert_array_equal(vec, scalar)


class TestSaturateCodes:
    def test_clips(self):
        out = saturate_codes(np.array([1000, -1000, 5]), FMT)
        np.testing.assert_array_equal(out, [FMT.max_code, FMT.min_code, 5])

    def test_error_policy(self):
        with pytest.raises(OverflowPolicyError):
            saturate_codes(np.array([1000]), FMT, OverflowPolicy.ERROR)

    def test_dtype_int64(self):
        assert saturate_codes(np.array([1.0, 2.0]), FMT).dtype == np.int64


class TestDequantize:
    def test_roundtrip(self):
        codes = np.arange(FMT.min_code, FMT.max_code + 1)
        values = dequantize_codes(codes, FMT)
        np.testing.assert_array_equal(quantize_array(values, FMT), codes)

    def test_scaling(self):
        np.testing.assert_allclose(dequantize_codes(np.array([16]), FMT), [1.0])


class TestQuantizationError:
    def test_bounded_by_half_step(self):
        values = np.random.default_rng(0).uniform(FMT.min_value, FMT.max_value, 1000)
        err = quantization_error(values, FMT)
        assert np.all(np.abs(err) <= FMT.step / 2 + 1e-12)

    def test_zero_on_grid(self):
        values = dequantize_codes(np.arange(-5, 6), FMT)
        np.testing.assert_allclose(quantization_error(values, FMT), 0.0, atol=1e-15)

    def test_roundtrip_value_consistency(self):
        # value + (-error) reconstructs the quantized value
        values = np.array([0.11, 0.26, -0.33])
        err = quantization_error(values, FMT)
        recon = values + err
        np.testing.assert_allclose(
            recon, dequantize_codes(quantize_array(values, FMT), FMT)
        )

    def test_fxp_agrees(self):
        v = 0.27
        err = quantization_error(np.array([v]), FMT)[0]
        assert Fxp.from_float(v, FMT).to_float() == pytest.approx(v + err)
