"""Histogram query: naive numeric route vs categorical k-RR route."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mechanisms import SensorSpec, make_mechanism
from repro.queries.histogram import HistogramQuery, bucketize, histogram_via_krr

SENSOR = SensorSpec(0.0, 8.0)


class TestBucketize:
    def test_edges(self):
        idx = bucketize(np.array([0.0, 3.9, 4.0, 8.0]), SENSOR, 2)
        np.testing.assert_array_equal(idx, [0, 0, 1, 1])

    def test_out_of_range_clipped(self):
        idx = bucketize(np.array([-5.0, 50.0]), SENSOR, 4)
        np.testing.assert_array_equal(idx, [0, 3])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bucketize(np.array([1.0]), SENSOR, 1)


class TestHistogramQuery:
    @pytest.fixture(scope="class")
    def data(self):
        return np.random.default_rng(0).normal(3.0, 1.0, 4000).clip(0, 8)

    def test_frequencies_sum_to_one(self, data):
        q = HistogramQuery(SENSOR, n_buckets=8)
        assert q.frequencies(data).sum() == pytest.approx(1.0)

    def test_evaluate_is_focus_bucket(self, data):
        q = HistogramQuery(SENSOR, n_buckets=8, focus_bucket=3)
        assert q.evaluate(data) == pytest.approx(q.frequencies(data)[3])

    def test_focus_validation(self):
        with pytest.raises(ConfigurationError):
            HistogramQuery(SENSOR, n_buckets=4, focus_bucket=4)

    def test_l1_error_zero_on_identical(self, data):
        q = HistogramQuery(SENSOR, n_buckets=8)
        assert q.l1_error(data, data) == 0.0

    def test_naive_numeric_route_smears(self, data):
        q = HistogramQuery(SENSOR, n_buckets=8)
        mech = make_mechanism(
            "thresholding", SENSOR, 0.5, input_bits=12, output_bits=16, delta=8 / 64
        )
        noisy = mech.privatize(data)
        err = q.l1_error(noisy, data)
        assert err > 0.3  # λ = 16 ≫ bucket width 1: mass smeared badly


class TestKrrRoute:
    @pytest.fixture(scope="class")
    def data(self):
        return np.random.default_rng(1).normal(3.0, 1.0, 8000).clip(0, 8)

    def test_estimates_on_simplex(self, data):
        est = histogram_via_krr(
            data, SENSOR, 8, epsilon=1.0, rng=np.random.default_rng(2)
        )
        assert est.sum() == pytest.approx(1.0)
        assert est.min() >= 0

    def test_accuracy(self, data):
        q = HistogramQuery(SENSOR, n_buckets=8)
        truth = q.frequencies(data)
        errs = [
            np.abs(
                histogram_via_krr(
                    data, SENSOR, 8, epsilon=1.0, rng=np.random.default_rng(s)
                )
                - truth
            ).sum()
            for s in range(6)
        ]
        assert np.mean(errs) < 0.2

    def test_krr_beats_naive_numeric_route(self, data):
        """The categorical channel dominates for histogram questions."""
        q = HistogramQuery(SENSOR, n_buckets=8)
        truth = q.frequencies(data)
        mech = make_mechanism(
            "thresholding", SENSOR, 1.0, input_bits=12, output_bits=16, delta=8 / 64
        )
        errs_naive, errs_krr = [], []
        for seed in range(5):
            noisy = mech.privatize(data)
            errs_naive.append(np.abs(q.frequencies(noisy) - truth).sum())
            est = histogram_via_krr(
                data, SENSOR, 8, epsilon=1.0, rng=np.random.default_rng(seed)
            )
            errs_krr.append(np.abs(est - truth).sum())
        assert np.mean(errs_krr) < 0.5 * np.mean(errs_naive)

    def test_improves_with_n(self):
        rng = np.random.default_rng(4)
        full = rng.normal(3.0, 1.0, 30000).clip(0, 8)
        q = HistogramQuery(SENSOR, n_buckets=8)
        errs = []
        for n in (500, 30000):
            sample = full[:n]
            truth = q.frequencies(sample)
            est = histogram_via_krr(
                sample, SENSOR, 8, epsilon=1.0, rng=np.random.default_rng(5)
            )
            errs.append(np.abs(est - truth).sum())
        assert errs[1] < errs[0]
