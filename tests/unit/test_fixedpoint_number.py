"""Fxp scalar arithmetic: quantization, saturation, wrap, shifts."""

import pytest

from repro.errors import FixedPointError, OverflowPolicyError
from repro.fixedpoint import Fxp, OverflowPolicy, QFormat, RoundingMode, quantize_code

FMT = QFormat(total_bits=8, frac_bits=4)


class TestQuantizeCode:
    def test_exact_value(self):
        assert quantize_code(0.5, FMT) == 8

    def test_round_to_nearest(self):
        assert quantize_code(0.49, FMT) == 8

    def test_ties_away_from_zero_positive(self):
        # 0.03125 = half step above 0 -> rounds to 1 LSB
        assert quantize_code(FMT.step / 2, FMT) == 1

    def test_ties_away_from_zero_negative(self):
        assert quantize_code(-FMT.step / 2, FMT) == -1

    def test_floor_mode(self):
        assert quantize_code(0.49, FMT, rounding=RoundingMode.FLOOR) == 7

    def test_saturates_high(self):
        assert quantize_code(1000.0, FMT) == FMT.max_code

    def test_saturates_low(self):
        assert quantize_code(-1000.0, FMT) == FMT.min_code

    def test_error_policy_raises(self):
        with pytest.raises(OverflowPolicyError):
            quantize_code(1000.0, FMT, overflow=OverflowPolicy.ERROR)

    def test_wrap_policy(self):
        # max_value + one step wraps to min_value
        code = quantize_code(FMT.max_value + FMT.step, FMT, overflow=OverflowPolicy.WRAP)
        assert code == FMT.min_code


class TestConstruction:
    def test_roundtrip(self):
        x = Fxp.from_float(1.25, FMT)
        assert x.to_float() == 1.25

    def test_invalid_code_rejected(self):
        with pytest.raises(FixedPointError):
            Fxp(code=1000, fmt=FMT)

    def test_requantize_coarser(self):
        fine = QFormat(total_bits=12, frac_bits=8)
        x = Fxp.from_float(0.30078125, fine)  # 77/256
        y = x.requantize(FMT)
        assert y.to_float() == pytest.approx(0.3125)


class TestArithmetic:
    def test_add(self):
        a = Fxp.from_float(1.0, FMT)
        b = Fxp.from_float(2.0, FMT)
        assert a.add(b).to_float() == 3.0

    def test_add_saturates(self):
        a = Fxp.from_float(FMT.max_value, FMT)
        b = Fxp.from_float(1.0, FMT)
        assert a.add(b).to_float() == FMT.max_value

    def test_add_wraps(self):
        a = Fxp.from_float(FMT.max_value, FMT)
        b = Fxp(1, FMT)
        assert a.add(b, overflow=OverflowPolicy.WRAP).to_float() == FMT.min_value

    def test_sub(self):
        a = Fxp.from_float(1.0, FMT)
        b = Fxp.from_float(2.5, FMT)
        assert a.sub(b).to_float() == -1.5

    def test_mul(self):
        a = Fxp.from_float(1.5, FMT)
        b = Fxp.from_float(2.0, FMT)
        assert a.mul(b).to_float() == 3.0

    def test_mul_requantizes(self):
        a = Fxp.from_float(FMT.step, FMT)
        b = Fxp.from_float(FMT.step, FMT)
        # step*step = step²; rounds to 0 on the step grid
        assert a.mul(b).to_float() == 0.0

    def test_format_mismatch_rejected(self):
        other = QFormat(total_bits=8, frac_bits=2)
        with pytest.raises(FixedPointError):
            Fxp.from_float(1.0, FMT).add(Fxp.from_float(1.0, other))

    def test_shift_left(self):
        x = Fxp.from_float(0.5, FMT)
        assert x.shift(2).to_float() == 2.0

    def test_shift_right_floors(self):
        x = Fxp(-3, FMT)  # -3 >> 1 = -2 (floor)
        assert x.shift(-1).code == -2

    def test_shift_left_saturates(self):
        x = Fxp.from_float(FMT.max_value, FMT)
        assert x.shift(4).code == FMT.max_code

    def test_neg(self):
        assert Fxp.from_float(1.5, FMT).neg().to_float() == -1.5

    def test_neg_min_saturates(self):
        x = Fxp(FMT.min_code, FMT)
        assert x.neg().code == FMT.max_code

    def test_abs_negative(self):
        assert Fxp.from_float(-2.0, FMT).abs().to_float() == 2.0

    def test_abs_positive_identity(self):
        x = Fxp.from_float(2.0, FMT)
        assert x.abs() is x


class TestComparisons:
    def test_ordering(self):
        a = Fxp.from_float(1.0, FMT)
        b = Fxp.from_float(2.0, FMT)
        assert a < b and b > a and a <= a and b >= b

    def test_cross_format_comparison_rejected(self):
        other = QFormat(total_bits=8, frac_bits=2)
        with pytest.raises(FixedPointError):
            _ = Fxp.from_float(1.0, FMT) < Fxp.from_float(2.0, other)
