"""Analytic error predictions vs measured behaviour."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    devices_for_target_mae,
    predicted_mean_mae,
    predicted_rr_std,
    variance_bias,
)
from repro.errors import ConfigurationError
from repro.rng import IdealLaplace


class TestMeanMae:
    def test_scaling_with_n(self):
        assert predicted_mean_mae(10.0, 400) == pytest.approx(
            predicted_mean_mae(10.0, 100) / 2
        )

    def test_matches_simulation(self):
        lam, n = 8.0, 500
        rng = np.random.default_rng(0)
        lap = IdealLaplace(lam)
        errors = [abs(lap.sample(n, rng).mean()) for _ in range(400)]
        assert np.mean(errors) == pytest.approx(predicted_mean_mae(lam, n), rel=0.1)

    def test_devices_for_target_inverse(self):
        lam = 16.0
        n = devices_for_target_mae(lam, target_mae=0.5)
        assert predicted_mean_mae(lam, n) <= 0.5
        assert predicted_mean_mae(lam, max(n - 1, 1)) > 0.5 or n == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            predicted_mean_mae(0.0, 10)
        with pytest.raises(ConfigurationError):
            devices_for_target_mae(1.0, 0.0)


class TestVarianceBias:
    def test_formula(self):
        assert variance_bias(3.0) == 18.0

    def test_matches_simulation(self):
        lam = 5.0
        rng = np.random.default_rng(1)
        noise = IdealLaplace(lam).sample(200000, rng)
        assert np.var(noise) == pytest.approx(variance_bias(lam), rel=0.05)


class TestRRStd:
    def test_matches_simulation(self):
        p, n, truth = 0.8, 2000, 0.3
        rng = np.random.default_rng(2)
        ests = []
        for _ in range(400):
            bits = rng.random(n) < truth
            keep = rng.random(n) < p
            reported = np.where(keep, bits, ~bits)
            est = (reported.mean() - (1 - p)) / (2 * p - 1)
            ests.append(est)
        measured = float(np.std(ests))
        predicted = predicted_rr_std(p, n)
        assert measured <= predicted * 1.1  # conservative bound holds

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            predicted_rr_std(0.5, 100)
        with pytest.raises(ConfigurationError):
            predicted_rr_std(0.8, 0)


class TestEndToEndPrediction:
    def test_fleet_mae_tracks_prediction(self):
        """The theory predicts the measured fleet accuracy (within CLT
        slack and guard-truncation effects that only shrink the noise)."""
        from repro.aggregation import run_fleet
        from repro.mechanisms import SensorSpec

        sensor = SensorSpec(0.0, 8.0)
        eps, n_dev = 0.5, 800
        rng = np.random.default_rng(3)
        truth = rng.uniform(2, 6, size=(6, n_dev))
        result = run_fleet(
            truth,
            sensor,
            epsilon=eps,
            rng=np.random.default_rng(4),
            input_bits=12,
            output_bits=16,
            delta=8 / 64,
        )
        predicted = predicted_mean_mae(sensor.d / eps, n_dev)
        assert result.mean_abs_error < 2.5 * predicted
        assert result.mean_abs_error > predicted / 4
