"""Mechanism arms: API contracts, guards, exact certifications."""

import numpy as np
import pytest

from repro import SensorSpec, make_mechanism
from repro.errors import ConfigurationError
from repro.mechanisms import (
    ARM_NAMES,
    FxpBaselineMechanism,
    IdealLaplaceMechanism,
    ResamplingMechanism,
    ThresholdingMechanism,
)


class TestSensorSpec:
    def test_d(self):
        assert SensorSpec(2.0, 10.0).d == 8.0

    def test_midpoint(self):
        assert SensorSpec(2.0, 10.0).midpoint == 6.0

    def test_rejects_empty_range(self):
        with pytest.raises(ConfigurationError):
            SensorSpec(5.0, 5.0)

    def test_clip(self):
        s = SensorSpec(0.0, 1.0)
        np.testing.assert_allclose(s.clip(np.array([-1, 0.5, 2])), [0, 0.5, 1])

    def test_contains(self):
        s = SensorSpec(0.0, 1.0)
        np.testing.assert_array_equal(
            s.contains(np.array([-0.1, 0.0, 1.0, 1.1])), [False, True, True, False]
        )


class TestFactory:
    @pytest.mark.parametrize("arm", ARM_NAMES)
    def test_builds_all_arms(self, arm, small_sensor, small_kwargs):
        kwargs = {} if arm == "ideal" else small_kwargs
        mech = make_mechanism(arm, small_sensor, 0.5, **kwargs)
        assert mech.epsilon == 0.5

    def test_unknown_arm(self, small_sensor):
        with pytest.raises(ConfigurationError):
            make_mechanism("magic", small_sensor, 0.5)

    def test_case_insensitive(self, small_sensor):
        assert isinstance(
            make_mechanism("IDEAL", small_sensor, 0.5), IdealLaplaceMechanism
        )


class TestIdealArm:
    def test_privatize_adds_noise(self, small_ideal):
        x = np.full(1000, 4.0)
        y = small_ideal.privatize(x)
        assert y.std() > 0
        assert abs(y.mean() - 4.0) < 5.0

    def test_report_is_exact_epsilon(self, small_ideal):
        rep = small_ideal.ldp_report()
        assert rep.worst_loss == 0.5
        assert rep.satisfied

    def test_out_of_range_rejected(self, small_ideal):
        with pytest.raises(ConfigurationError):
            small_ideal.privatize(np.array([100.0]))

    def test_shape_preserved(self, small_ideal):
        x = np.full((3, 4), 2.0)
        assert small_ideal.privatize(x).shape == (3, 4)


class TestBaselineArm:
    def test_not_ldp(self, small_baseline):
        rep = small_baseline.ldp_report()
        assert not rep.is_finite
        assert not small_baseline.is_ldp()

    def test_outputs_on_grid(self, small_baseline):
        y = small_baseline.privatize(np.full(100, 4.0))
        k = y / small_baseline.delta
        np.testing.assert_allclose(k, np.round(k), atol=1e-9)

    def test_utility_close_to_ideal(self, small_baseline, small_ideal):
        # Tables II-V: the baseline's utility matches the ideal closely.
        x = np.full(20000, 4.0)
        mae_base = np.abs(small_baseline.privatize(x) - 4.0).mean()
        mae_ideal = np.abs(small_ideal.privatize(x) - 4.0).mean()
        assert mae_base == pytest.approx(mae_ideal, rel=0.05)


class TestResamplingArm:
    def test_is_ldp_at_claimed_bound(self, small_resampling):
        rep = small_resampling.ldp_report()
        assert rep.satisfied
        assert small_resampling.claimed_loss_bound == pytest.approx(1.0)

    def test_outputs_within_window(self, small_resampling):
        y = small_resampling.privatize(np.full(5000, 0.0))
        lo = small_resampling.sensor.m - small_resampling.threshold
        hi = small_resampling.sensor.M + small_resampling.threshold
        assert y.min() >= lo - 1e-9 and y.max() <= hi + 1e-9

    def test_draw_counts_geometricish(self, small_resampling):
        _, draws = small_resampling.privatize_with_counts(np.full(5000, 0.0))
        assert draws.min() >= 1
        expected = small_resampling.expected_draws(0.0)
        assert draws.mean() == pytest.approx(expected, rel=0.2)

    def test_acceptance_probability_high(self, small_resampling):
        assert small_resampling.acceptance_probability(0.0) > 0.9

    def test_loss_multiple_must_exceed_one(self, small_sensor, small_kwargs):
        with pytest.raises(ConfigurationError):
            ResamplingMechanism(small_sensor, 0.5, loss_multiple=1.0, **small_kwargs)

    def test_explicit_threshold_respected(self, small_sensor, small_kwargs):
        mech = ResamplingMechanism(
            small_sensor, 0.5, threshold=20 * small_kwargs["delta"], **small_kwargs
        )
        assert mech.threshold == 20 * small_kwargs["delta"]

    def test_paper_policy(self, small_sensor):
        mech = ResamplingMechanism(
            small_sensor,
            0.5,
            threshold_policy="paper",
            input_bits=12,
            output_bits=16,
            delta=8.0 / 64,
        )
        assert mech.ldp_report().satisfied

    def test_unknown_policy(self, small_sensor, small_kwargs):
        with pytest.raises(ConfigurationError):
            ResamplingMechanism(
                small_sensor, 0.5, threshold_policy="best", **small_kwargs
            )


class TestThresholdingArm:
    def test_is_ldp_at_claimed_bound(self, small_thresholding):
        assert small_thresholding.ldp_report().satisfied

    def test_outputs_clamped(self, small_thresholding):
        y = small_thresholding.privatize(np.full(5000, 0.0))
        lo = small_thresholding.sensor.m - small_thresholding.threshold
        hi = small_thresholding.sensor.M + small_thresholding.threshold
        assert y.min() >= lo - 1e-9 and y.max() <= hi + 1e-9

    def test_boundary_atoms_observable(self, small_thresholding):
        y = small_thresholding.privatize(np.full(30000, 0.0))
        lo = small_thresholding.window[0] * small_thresholding.delta
        observed_atom = np.mean(np.isclose(y, lo))
        assert observed_atom > 0  # Fig. 7's visible boundary spike

    def test_atom_probability_matches_exact(self, small_thresholding):
        y = small_thresholding.privatize(np.full(60000, 0.0))
        lo, hi = small_thresholding.window
        emp = np.mean(
            np.isclose(y, lo * small_thresholding.delta)
            | np.isclose(y, hi * small_thresholding.delta)
        )
        exact = small_thresholding.boundary_atom_probability(0.0)
        assert emp == pytest.approx(exact, abs=0.005)

    def test_single_draw_always(self, small_sensor, small_kwargs):
        # Thresholding never redraws; privatize of n values consumes
        # exactly n codes from the source.
        from repro.rng import ExhaustiveSource

        mech = ThresholdingMechanism(
            small_sensor, 0.5, source=ExhaustiveSource(), **small_kwargs
        )
        src = mech.rng.source
        before = src._pos
        mech.privatize(np.full(10, 4.0))
        assert src._pos == before + 10


class TestGuardedVsBaselineDistribution:
    def test_resampling_conditional_matches_truncation(self, small_resampling):
        # Empirical distribution of guarded outputs == exact truncated PMF.
        x = 0.0
        y = small_resampling.privatize(np.full(40000, x))
        k = np.round(y / small_resampling.delta).astype(int)
        lo, hi = small_resampling.window
        k_x = int(small_resampling.quantize_inputs(np.array([x]))[0])
        exact = small_resampling.noise_pmf.shifted(k_x).truncated(lo, hi)
        emp_counts = np.bincount(k - lo, minlength=hi - lo + 1)
        emp = emp_counts / emp_counts.sum()
        # Compare aggregate mass over coarse bins to keep variance low.
        splits = np.array_split(np.arange(emp.size), 16)
        for idx in splits:
            assert emp[idx].sum() == pytest.approx(exact.probs[idx].sum(), abs=0.02)


class TestPaperHintExceptionNarrowing:
    """The ``_paper_hint`` fallback must not swallow foreign exceptions.

    The hint seeds the exact threshold search; only the paper closed
    form's legitimate failures (no positive solution, exp/log out of
    float range) may fall back to the neutral hint.  A foreign exception
    raised under the hint call — a real bug, an interrupt-adjacent
    failure — must propagate, not be masked into "hint 16".
    """

    def _make(self, arm):
        from repro.mechanisms import SensorSpec, make_mechanism

        return make_mechanism(
            arm, SensorSpec(0.0, 8.0), 0.5, input_bits=14,
            threshold_policy="exact",
        )

    @pytest.mark.parametrize(
        "module, fn",
        [
            ("repro.mechanisms.resampling", "paper_resampling_threshold"),
            ("repro.mechanisms.thresholding", "paper_thresholding_threshold"),
        ],
    )
    def test_foreign_exception_propagates(self, monkeypatch, module, fn):
        def _boom(*args, **kwargs):
            raise RuntimeError("foreign failure on the draw path")

        monkeypatch.setattr(f"{module}.{fn}", _boom)
        arm = "resampling" if "resampling" in module else "thresholding"
        with pytest.raises(RuntimeError, match="foreign failure"):
            self._make(arm)

    @pytest.mark.parametrize(
        "module, fn",
        [
            ("repro.mechanisms.resampling", "paper_resampling_threshold"),
            ("repro.mechanisms.thresholding", "paper_thresholding_threshold"),
        ],
    )
    def test_calibration_error_falls_back(self, monkeypatch, module, fn):
        from repro.errors import CalibrationError

        def _no_solution(*args, **kwargs):
            raise CalibrationError("no positive threshold")

        monkeypatch.setattr(f"{module}.{fn}", _no_solution)
        arm = "resampling" if "resampling" in module else "thresholding"
        mech = self._make(arm)  # hint falls back to 16; search still runs
        assert mech.threshold > 0.0

    @pytest.mark.parametrize(
        "module, fn",
        [
            ("repro.mechanisms.resampling", "paper_resampling_threshold"),
            ("repro.mechanisms.thresholding", "paper_thresholding_threshold"),
        ],
    )
    def test_overflow_falls_back(self, monkeypatch, module, fn):
        def _overflow(*args, **kwargs):
            raise OverflowError("math range error")

        monkeypatch.setattr(f"{module}.{fn}", _overflow)
        arm = "resampling" if "resampling" in module else "thresholding"
        assert self._make(arm).threshold > 0.0
