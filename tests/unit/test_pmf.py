"""DiscretePMF algebra."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import DiscretePMF


@pytest.fixture()
def tri():
    """A little triangular PMF on codes -1..1 with step 0.5."""
    return DiscretePMF(step=0.5, min_k=-1, probs=np.array([0.25, 0.5, 0.25]))


class TestConstruction:
    def test_from_counts_exact(self):
        pmf = DiscretePMF.from_counts(1.0, 0, np.array([1, 3]), denom=4)
        np.testing.assert_allclose(pmf.probs, [0.25, 0.75])

    def test_from_counts_wrong_denominator(self):
        with pytest.raises(ConfigurationError):
            DiscretePMF.from_counts(1.0, 0, np.array([1, 2]), denom=4)

    def test_from_counts_negative(self):
        with pytest.raises(ConfigurationError):
            DiscretePMF.from_counts(1.0, 0, np.array([-1, 5]), denom=4)

    def test_from_samples(self):
        pmf = DiscretePMF.from_samples(0.5, np.array([0.0, 0.5, 0.5, -0.5]))
        assert pmf.min_k == -1
        np.testing.assert_allclose(pmf.probs, [0.25, 0.25, 0.5])

    def test_rejects_negative_probs(self):
        with pytest.raises(ConfigurationError):
            DiscretePMF(1.0, 0, np.array([0.5, -0.1]))

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ConfigurationError):
            DiscretePMF(0.0, 0, np.array([1.0]))


class TestIntrospection:
    def test_support_values(self, tri):
        np.testing.assert_allclose(tri.support_values(), [-0.5, 0.0, 0.5])

    def test_prob_at_inside(self, tri):
        assert tri.prob_at(0) == 0.5

    def test_prob_at_outside_zero(self, tri):
        assert tri.prob_at(100) == 0.0

    def test_prob_array_padding(self, tri):
        arr = tri.prob_array(-3, 3)
        np.testing.assert_allclose(arr, [0, 0, 0.25, 0.5, 0.25, 0, 0])

    def test_tails(self, tri):
        assert tri.tail_ge(0) == pytest.approx(0.75)
        assert tri.tail_le(0) == pytest.approx(0.75)
        assert tri.tail_ge(5) == 0.0
        assert tri.tail_le(-5) == 0.0

    def test_nonzero_bounds(self):
        pmf = DiscretePMF(1.0, 0, np.array([0.0, 1.0, 0.0]))
        assert pmf.nonzero_bounds() == (1, 1)

    def test_moments(self, tri):
        assert tri.mean() == pytest.approx(0.0)
        assert tri.variance() == pytest.approx(0.125)


class TestTransforms:
    def test_shifted(self, tri):
        sh = tri.shifted(4)
        assert sh.min_k == 3
        assert sh.mean() == pytest.approx(2.0)

    def test_truncated_renormalizes(self, tri):
        tr = tri.truncated(0, 1)
        assert tr.total == pytest.approx(1.0)
        np.testing.assert_allclose(tr.probs, [2 / 3, 1 / 3])

    def test_truncated_empty_window_rejected(self, tri):
        with pytest.raises(ConfigurationError):
            tri.truncated(10, 20)

    def test_clamped_accumulates_atoms(self, tri):
        cl = tri.clamped(0, 0)
        np.testing.assert_allclose(cl.probs, [1.0])

    def test_clamped_partial(self, tri):
        cl = tri.clamped(-1, 0)
        np.testing.assert_allclose(cl.probs, [0.25, 0.75])
        assert cl.total == pytest.approx(1.0)

    def test_clamped_preserves_mass(self, tri):
        assert tri.clamped(-5, 5).total == pytest.approx(tri.total)

    def test_normalized(self):
        pmf = DiscretePMF(1.0, 0, np.array([1.0, 3.0]))
        np.testing.assert_allclose(pmf.normalized().probs, [0.25, 0.75])


class TestSamplingAndDistance:
    def test_sample_values_on_grid(self, tri):
        rng = np.random.default_rng(0)
        s = tri.sample(1000, rng)
        assert set(np.unique(s)) <= {-0.5, 0.0, 0.5}

    def test_sample_frequencies(self, tri):
        rng = np.random.default_rng(1)
        s = tri.sample(20000, rng)
        assert np.mean(s == 0.0) == pytest.approx(0.5, abs=0.02)

    def test_tv_zero_to_self(self, tri):
        assert tri.total_variation(tri) == 0.0

    def test_tv_disjoint_is_one(self):
        a = DiscretePMF(1.0, 0, np.array([1.0]))
        b = DiscretePMF(1.0, 5, np.array([1.0]))
        assert a.total_variation(b) == pytest.approx(1.0)

    def test_tv_step_mismatch(self, tri):
        other = DiscretePMF(1.0, 0, np.array([1.0]))
        with pytest.raises(ConfigurationError):
            tri.total_variation(other)
