"""ProjectGraph construction: module naming, import and call resolution."""

from __future__ import annotations

import ast

from repro.lint.flow.graph import ClassInfo, FunctionInfo, ProjectGraph


def build(*files):
    """files: (path, source) pairs → ProjectGraph."""
    return ProjectGraph.build(
        [(path, src, ast.parse(src)) for path, src in files]
    )


PKG = [
    ("pkg/__init__.py", "from .core import helper\n"),
    (
        "pkg/core.py",
        "def helper():\n    return 1\n\n"
        "class Base:\n"
        "    def shared(self):\n        return 2\n",
    ),
    (
        "pkg/sub/__init__.py",
        "",
    ),
    (
        "pkg/sub/leaf.py",
        "from ..core import helper as h\n"
        "import pkg.core\n"
        "from pkg.core import Base\n\n"
        "class Child(Base):\n"
        "    def own(self):\n        return h()\n\n"
        "def caller():\n    return pkg.core.helper()\n",
    ),
]


# ----------------------------------------------------------------------
# Module naming
# ----------------------------------------------------------------------
def test_module_names_follow_init_membership():
    g = build(*PKG)
    assert set(g.modules) == {"pkg", "pkg.core", "pkg.sub", "pkg.sub.leaf"}
    assert g.by_path["pkg/sub/leaf.py"] == "pkg.sub.leaf"


def test_orphan_file_gets_bare_stem():
    g = build(("scripts/tool.py", "def f():\n    return 0\n"))
    # No __init__.py anywhere → not a package; stem is the module name.
    assert "tool" in g.modules
    assert g.modules["tool"].functions["f"].func_id == "tool:f"


# ----------------------------------------------------------------------
# Function and class tables
# ----------------------------------------------------------------------
def test_functions_and_methods_indexed():
    g = build(*PKG)
    assert isinstance(g.functions["pkg.core:helper"], FunctionInfo)
    child_own = g.functions["pkg.sub.leaf:Child.own"]
    assert child_own.class_name == "Child"
    assert child_own.name == "own"
    assert isinstance(g.classes["pkg.sub.leaf:Child"], ClassInfo)


def test_dataclass_field_order():
    g = build(
        (
            "pkg/__init__.py",
            "",
        ),
        (
            "pkg/model.py",
            "import dataclasses\n\n"
            "@dataclasses.dataclass\n"
            "class Box:\n"
            "    first: int\n"
            "    second: str = 'x'\n",
        ),
    )
    assert g.classes["pkg.model:Box"].field_order == ["first", "second"]


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def test_relative_import_resolves():
    g = build(*PKG)
    leaf = g.modules["pkg.sub.leaf"]
    assert leaf.imports["h"] == "pkg.core.helper"
    assert g.resolve_name(leaf, "h") is g.functions["pkg.core:helper"]


def test_dotted_call_resolves_through_plain_import():
    g = build(*PKG)
    leaf = g.modules["pkg.sub.leaf"]
    assert (
        g.resolve_dotted(leaf, "pkg.core.helper")
        is g.functions["pkg.core:helper"]
    )


def test_reexport_through_package_init():
    g = build(*PKG)
    # pkg/__init__.py re-exports helper; "pkg.helper" must chase it.
    assert g.lookup("pkg.helper") is g.functions["pkg.core:helper"]


def test_method_resolution_walks_bases():
    g = build(*PKG)
    shared = g.resolve_method("pkg.sub.leaf:Child", "shared")
    assert shared is g.functions["pkg.core:Base.shared"]
    assert g.resolve_method("pkg.sub.leaf:Child", "own").name == "own"
    assert g.resolve_method("pkg.sub.leaf:Child", "missing") is None


def test_function_level_imports_are_indexed():
    g = build(
        ("pkg/__init__.py", ""),
        ("pkg/util.py", "def target():\n    return 9\n"),
        (
            "pkg/late.py",
            "def run():\n"
            "    from pkg.util import target\n"
            "    return target()\n",
        ),
    )
    late = g.modules["pkg.late"]
    assert g.resolve_name(late, "target") is g.functions["pkg.util:target"]


def test_external_imports_stay_opaque():
    g = build(("pkg/__init__.py", ""), ("pkg/a.py", "import numpy as np\n"))
    a = g.modules["pkg.a"]
    assert a.imports["np"] == "numpy"
    assert g.resolve_dotted(a, "np.random.default_rng") is None
