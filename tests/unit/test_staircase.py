"""Staircase noise: continuous math and fixed-point realization."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import (
    FxpLaplaceConfig,
    FxpStaircaseRng,
    StaircaseParams,
    optimal_gamma,
)

D, EPS = 8.0, 0.5
CFG = FxpLaplaceConfig(input_bits=12, output_bits=18, delta=D / 64, lam=D / EPS)


@pytest.fixture(scope="module")
def params():
    return StaircaseParams(sensitivity=D, epsilon=EPS)


@pytest.fixture(scope="module")
def rng(params):
    return FxpStaircaseRng(CFG, params)


class TestParams:
    def test_optimal_gamma_formula(self):
        assert optimal_gamma(1.0) == pytest.approx(1 / (1 + math.exp(0.5)))

    def test_gamma_defaults_to_optimal(self, params):
        assert params.gamma == pytest.approx(optimal_gamma(EPS))

    def test_density_scale_normalizes(self, params):
        # integral = 2*d*a*(gamma + b*(1-gamma)) / (1-b) = 1
        b, g = params.b, params.gamma
        integral = 2 * D * params.density_scale * (g + b * (1 - g)) / (1 - b)
        assert integral == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StaircaseParams(sensitivity=0.0, epsilon=1.0)
        with pytest.raises(ConfigurationError):
            StaircaseParams(sensitivity=1.0, epsilon=1.0, gamma=1.5)


class TestInverseCdf:
    def test_monotone(self, params):
        u = np.linspace(0.001, 0.999, 400)
        m = params.inverse_half_cdf(u)
        assert np.all(np.diff(m) >= -1e-12)

    def test_small_u_in_first_rung(self, params):
        m = params.inverse_half_cdf(np.asarray([1e-6]))
        assert 0 <= m[0] < D

    def test_rung_boundaries(self, params):
        # u = 1 - b^k lands exactly at the start of rung k.
        b = params.b
        for k in (1, 2, 3):
            u = 1.0 - b**k
            m = float(params.inverse_half_cdf(np.asarray([u + 1e-12]))[0])
            assert m == pytest.approx(k * D, abs=1e-3)

    def test_roundtrip_against_mass(self, params):
        # Pr[M <= inverse(u)] recovered by numeric integration of the pdf.
        u = 0.9
        m = float(params.inverse_half_cdf(np.asarray([u]))[0])
        # numeric CDF of the magnitude density
        xs = np.linspace(0, m, 200001)
        b, g, a = params.b, params.gamma, params.density_scale
        k = np.floor(xs / D)
        frac = xs / D - k
        dens = 2 * a * np.where(frac < g, b**k, b ** (k + 1))
        mass = float(np.trapezoid(dens, xs))
        assert mass == pytest.approx(u, abs=1e-3)

    def test_domain_validation(self, params):
        with pytest.raises(ConfigurationError):
            params.inverse_half_cdf(np.asarray([0.0]))


class TestFxpRealization:
    def test_pmf_valid(self, rng):
        pmf = rng.exact_pmf()
        assert pmf.total == pytest.approx(1.0)
        np.testing.assert_allclose(pmf.probs, pmf.probs[::-1])

    def test_bounded_support_with_holes(self, rng):
        pmf = rng.exact_pmf()
        lo, hi = pmf.nonzero_bounds()
        assert hi <= rng.top_code
        assert int(np.sum(pmf.probs == 0)) > 0  # the same pathology

    def test_staircase_shape_visible(self, rng, params):
        # Probability drops by ~e^{-eps} from one rung's inner piece to
        # the next: compare mass at the middle of rung 0 vs rung 1.
        pmf = rng.exact_pmf()
        d_codes = int(round(D / CFG.delta))
        g_codes = int(params.gamma * d_codes)
        p0 = pmf.prob_at(g_codes // 2)
        p1 = pmf.prob_at(d_codes + g_codes // 2)
        assert p1 / p0 == pytest.approx(math.exp(-EPS), rel=0.1)

    def test_sampling_matches_pmf_std(self, rng):
        pmf = rng.exact_pmf()
        s = rng.sample(60000)
        assert s.std() == pytest.approx(math.sqrt(pmf.variance()), rel=0.03)

    def test_l1_cost_beats_laplace_slightly(self, rng):
        # Staircase is l1-optimal; its mean |noise| must not exceed the
        # Laplace mean |noise| = lam at the same eps.
        pmf = rng.exact_pmf()
        mean_abs = float(
            np.dot(np.abs(pmf.support_values()), pmf.probs)
        )
        assert mean_abs <= D / EPS + CFG.delta
