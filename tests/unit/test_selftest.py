"""BIST self-test: healthy components pass, injected faults are caught."""

import numpy as np
import pytest

from repro.core.selftest import (
    bit_bias_scan,
    cordic_check,
    monobit_check,
    noise_shape_check,
    run_selftest,
    runs_check,
)
from repro.errors import ConfigurationError
from repro.rng import (
    CordicLn,
    FxpLaplaceConfig,
    FxpLaplaceRng,
    NumpySource,
    TauswortheSource,
)
from repro.rng.urng import UniformCodeSource


class StuckBitSource(UniformCodeSource):
    """Fault model: one output bit line stuck at 1."""

    def __init__(self, inner, stuck_bit: int):
        self.inner = inner
        self.mask = 1 << stuck_bit

    def uniform_codes(self, n, bits):
        codes = self.inner.uniform_codes(n, bits)
        return np.minimum(codes | self.mask, 1 << bits)

    def random_bits(self, n):
        return self.inner.random_bits(n)


class BiasedSource(UniformCodeSource):
    """Fault model: entropy collapse — codes squeezed into the top half."""

    def __init__(self, inner):
        self.inner = inner

    def uniform_codes(self, n, bits):
        codes = self.inner.uniform_codes(n, bits)
        half = 1 << (bits - 1)
        return half + (codes - 1) // 2 + 1

    def random_bits(self, n):
        return self.inner.random_bits(n)


class ConstantSource(UniformCodeSource):
    """Fault model: the generator froze."""

    def uniform_codes(self, n, bits):
        return np.full(n, 1 << (bits - 1), dtype=np.int64)

    def random_bits(self, n):
        return np.zeros(n, dtype=np.int64)


class TestHealthyComponentsPass:
    @pytest.mark.parametrize("source_cls", [TauswortheSource, NumpySource])
    def test_urng_checks_pass(self, source_cls):
        src = source_cls()
        assert monobit_check(src).passed
        assert runs_check(src).passed
        assert bit_bias_scan(src).passed

    def test_cordic_passes(self):
        assert cordic_check(CordicLn(frac_bits=24, n_iterations=24)).passed

    def test_noise_shape_passes(self):
        cfg = FxpLaplaceConfig(input_bits=12, output_bits=16, delta=1 / 16, lam=2.0)
        rng = FxpLaplaceRng(cfg, source=NumpySource(seed=5))
        assert noise_shape_check(rng).passed

    def test_full_selftest_passes(self):
        report = run_selftest(TauswortheSource(seed=11))
        assert report.passed
        assert "PASSED" in report.describe()
        assert len(report.checks) == 5


class TestFaultsDetected:
    def test_stuck_bit_detected(self):
        faulty = StuckBitSource(NumpySource(seed=0), stuck_bit=13)
        assert not bit_bias_scan(faulty).passed

    def test_entropy_collapse_detected(self):
        faulty = BiasedSource(NumpySource(seed=1))
        report = run_selftest(faulty)
        assert not report.passed

    def test_frozen_generator_detected(self):
        report = run_selftest(ConstantSource())
        assert not report.passed
        # Both bit-level and distribution-level checks should scream.
        failing = {c.name for c in report.checks if not c.passed}
        assert "urng-runs" in failing or "urng-monobit" in failing

    def test_broken_log_unit_detected(self):
        # Starve the CORDIC of iterations: large ln error.
        assert not cordic_check(CordicLn(frac_bits=24, n_iterations=4)).passed

    def test_wrong_noise_scale_detected(self):
        # The datapath samples at twice the configured scale: URNG healthy,
        # transform corrupted — only the shape check can catch it.
        cfg_good = FxpLaplaceConfig(input_bits=12, output_bits=16, delta=1 / 16, lam=2.0)
        cfg_bad = FxpLaplaceConfig(input_bits=12, output_bits=16, delta=1 / 16, lam=4.0)

        class WrongScaleRng(FxpLaplaceRng):
            def exact_pmf(self, method="enumerate"):
                return FxpLaplaceRng(cfg_good).exact_pmf(method)

        rng = WrongScaleRng(cfg_bad, source=NumpySource(seed=2))
        assert not noise_shape_check(rng).passed


class TestValidation:
    def test_minimum_bits(self):
        with pytest.raises(ConfigurationError):
            monobit_check(NumpySource(seed=0), n_bits=100)
        with pytest.raises(ConfigurationError):
            runs_check(NumpySource(seed=0), n_bits=100)

    def test_minimum_samples(self):
        cfg = FxpLaplaceConfig(input_bits=10, output_bits=14, delta=1 / 8, lam=2.0)
        with pytest.raises(ConfigurationError):
            noise_shape_check(FxpLaplaceRng(cfg), n_samples=100)

    def test_check_result_describe(self):
        res = monobit_check(NumpySource(seed=3))
        assert "urng-monobit" in res.describe()
