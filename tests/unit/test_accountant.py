"""Budget accountant and composition."""

import pytest

from repro.errors import BudgetExhaustedError, ConfigurationError
from repro.privacy import BudgetAccountant, compose_losses


class TestCompose:
    def test_sum(self):
        assert compose_losses([0.5, 0.25, 0.25]) == 1.0

    def test_empty_is_zero(self):
        assert compose_losses([]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            compose_losses([0.5, -0.1])


class TestAccountant:
    def test_initial_state(self):
        acc = BudgetAccountant(2.0)
        assert acc.spent == 0.0
        assert acc.remaining == 2.0

    def test_spend_accumulates(self):
        acc = BudgetAccountant(2.0)
        acc.spend(0.5)
        acc.spend(0.25)
        assert acc.spent == pytest.approx(0.75)
        assert acc.remaining == pytest.approx(1.25)

    def test_history(self):
        acc = BudgetAccountant(2.0)
        acc.spend(0.5)
        acc.spend(0.3)
        assert acc.history == [0.5, 0.3]

    def test_overspend_raises(self):
        acc = BudgetAccountant(1.0)
        acc.spend(0.9)
        with pytest.raises(BudgetExhaustedError):
            acc.spend(0.2)

    def test_overspend_leaves_state_untouched(self):
        acc = BudgetAccountant(1.0)
        acc.spend(0.9)
        try:
            acc.spend(0.2)
        except BudgetExhaustedError:
            pass
        assert acc.spent == pytest.approx(0.9)

    def test_can_spend(self):
        acc = BudgetAccountant(1.0)
        assert acc.can_spend(1.0)
        acc.spend(0.6)
        assert not acc.can_spend(0.5)
        assert acc.can_spend(0.4)

    def test_exact_exhaustion_allowed(self):
        acc = BudgetAccountant(1.0)
        acc.spend(1.0)
        assert acc.remaining == 0.0

    def test_reset(self):
        acc = BudgetAccountant(1.0)
        acc.spend(0.7)
        acc.reset()
        assert acc.remaining == 1.0
        assert acc.history == []

    def test_negative_loss_rejected(self):
        with pytest.raises(ConfigurationError):
            BudgetAccountant(1.0).spend(-0.1)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            BudgetAccountant(0.0)

    def test_remaining_never_negative(self):
        acc = BudgetAccountant(1.0)
        acc.spend(1.0)
        assert acc.remaining == 0.0
