"""Fixed-point Gaussian noise and the probit approximation."""

import math

import numpy as np
import pytest
from scipy.stats import norm

from repro.errors import ConfigurationError
from repro.rng import FxpGaussianRng, FxpLaplaceConfig, gaussian_sigma, probit

D, EPS, DELTA_DP = 8.0, 0.5, 1e-5
SIGMA = gaussian_sigma(D, EPS, DELTA_DP)
CFG = FxpLaplaceConfig(input_bits=12, output_bits=20, delta=D / 16, lam=1.0)


class TestSigmaCalibration:
    def test_formula(self):
        assert SIGMA == pytest.approx(
            D * math.sqrt(2 * math.log(1.25 / DELTA_DP)) / EPS
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            gaussian_sigma(0.0, 1.0, 1e-5)
        with pytest.raises(ConfigurationError):
            gaussian_sigma(1.0, 1.0, 2.0)


class TestProbit:
    def test_matches_scipy(self):
        p = np.linspace(1e-8, 1 - 1e-8, 50001)
        assert np.max(np.abs(probit(p) - norm.ppf(p))) < 2e-8

    def test_symmetry(self):
        p = np.array([0.01, 0.2, 0.4])
        np.testing.assert_allclose(probit(p), -probit(1 - p), atol=1e-9)

    def test_median_is_zero(self):
        assert probit(np.asarray([0.5]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_domain(self):
        with pytest.raises(ConfigurationError):
            probit(np.asarray([0.0]))
        with pytest.raises(ConfigurationError):
            probit(np.asarray([1.0]))


class TestFxpGaussian:
    @pytest.fixture(scope="class")
    def rng(self):
        return FxpGaussianRng(CFG, sigma=SIGMA)

    def test_pmf_valid_and_symmetric(self, rng):
        pmf = rng.exact_pmf()
        assert pmf.total == pytest.approx(1.0)
        np.testing.assert_allclose(pmf.probs, pmf.probs[::-1])

    def test_std_matches_sigma(self, rng):
        pmf = rng.exact_pmf()
        assert math.sqrt(pmf.variance()) == pytest.approx(SIGMA, rel=0.01)

    def test_bounded_support(self, rng):
        # max magnitude ~ sigma * probit(1 - 2^-(Bu+2)) — a few sigma.
        pmf = rng.exact_pmf()
        lo, hi = pmf.nonzero_bounds()
        assert hi * CFG.delta < 6 * SIGMA
        assert hi <= rng.top_code

    def test_gaussian_tail_lighter_than_laplace(self, rng):
        # At 3 sigma the Gaussian tail is much lighter than a Laplace of
        # the same std would be.
        pmf = rng.exact_pmf()
        k3 = int(3 * SIGMA / CFG.delta)
        tail = pmf.tail_ge(k3)
        lap_tail = 0.5 * math.exp(-3 * math.sqrt(2))  # Laplace, same std
        assert tail < lap_tail

    def test_sampling_consistent(self, rng):
        s = rng.sample(60000)
        assert s.std() == pytest.approx(SIGMA, rel=0.03)
        assert abs(s.mean()) < SIGMA / 20

    def test_sigma_validation(self):
        with pytest.raises(ConfigurationError):
            FxpGaussianRng(CFG, sigma=0.0)
