"""Resampling timing channel and the fixed-draw mitigation."""

import numpy as np
import pytest

from repro.attacks import (
    exact_draw_distributions,
    run_timing_attack,
    timing_advantage,
)
from repro.errors import ConfigurationError
from repro.mechanisms import ResamplingMechanism, SensorSpec


@pytest.fixture(scope="module")
def tight_mechanism():
    """Low-resolution config: tight window, visible timing channel."""
    return ResamplingMechanism(
        SensorSpec(0.0, 8.0),
        0.5,
        loss_multiple=3.0,
        input_bits=9,
        output_bits=16,
        delta=8 / 64,
    )


class TestExactDistributions:
    def test_pmfs_normalized(self, tight_mechanism):
        d1, d2 = exact_draw_distributions(tight_mechanism, 0.0, 4.0)
        assert d1.sum() == pytest.approx(1.0)
        assert d2.sum() == pytest.approx(1.0)

    def test_edge_value_needs_more_draws(self, tight_mechanism):
        # The range edge has more rejected mass, so geometrically more draws.
        p_edge = tight_mechanism.acceptance_probability(0.0)
        p_mid = tight_mechanism.acceptance_probability(4.0)
        assert p_edge < p_mid

    def test_advantage_positive_and_growing(self, tight_mechanism):
        a1 = timing_advantage(tight_mechanism, 0.0, 4.0, n_queries=1)
        a50 = timing_advantage(tight_mechanism, 0.0, 4.0, n_queries=50)
        assert 0 < a1 < a50 <= 0.5

    def test_same_value_zero_advantage(self, tight_mechanism):
        assert timing_advantage(tight_mechanism, 4.0, 4.0, n_queries=10) == (
            pytest.approx(0.0)
        )

    def test_query_validation(self, tight_mechanism):
        with pytest.raises(ConfigurationError):
            timing_advantage(tight_mechanism, 0.0, 4.0, n_queries=0)


class TestEmpiricalAttack:
    def test_attack_beats_coin_flip(self, tight_mechanism):
        rep = run_timing_attack(
            tight_mechanism,
            0.0,
            4.0,
            n_queries=1500,
            n_trials=300,
            rng=np.random.default_rng(1),
        )
        # Optimal success = 1/2 + advantage/2; check we are clearly above
        # chance and in the ballpark of the exact prediction.
        expected = 0.5 + timing_advantage(
            tight_mechanism, 0.0, 4.0, n_queries=1500
        ) / 2
        assert rep.success_rate > 0.58
        assert abs(rep.success_rate - expected) < 0.1
        assert not rep.mitigated

    def test_mitigation_restores_coin_flip(self, tight_mechanism):
        rep = run_timing_attack(
            tight_mechanism,
            0.0,
            4.0,
            n_queries=400,
            n_trials=400,
            fixed_draws=4,
            rng=np.random.default_rng(2),
        )
        assert rep.mitigated
        assert abs(rep.success_rate - 0.5) < 0.07

    def test_report_fields(self, tight_mechanism):
        rep = run_timing_attack(
            tight_mechanism, 0.0, 4.0, n_queries=10, n_trials=20,
            rng=np.random.default_rng(3),
        )
        assert rep.accept_prob_x1 < rep.accept_prob_x2
        assert rep.n_queries == 10

    def test_trials_validation(self, tight_mechanism):
        with pytest.raises(ConfigurationError):
            run_timing_attack(tight_mechanism, 0.0, 4.0, n_trials=5)
