"""CORDIC logarithm: schedule, accuracy, scalar/vector equivalence."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import CordicLn, cordic_iteration_schedule


class TestSchedule:
    def test_contains_repeats_at_4(self):
        sched = cordic_iteration_schedule(8)
        assert sched.count(4) == 2

    def test_contains_repeats_at_13(self):
        sched = cordic_iteration_schedule(20)
        assert sched.count(13) == 2

    def test_monotone_nondecreasing(self):
        sched = cordic_iteration_schedule(30)
        assert all(b >= a for a, b in zip(sched, sched[1:]))

    def test_length(self):
        assert len(cordic_iteration_schedule(17)) == 17

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            cordic_iteration_schedule(0)


class TestMantissaLn:
    @pytest.fixture(scope="class")
    def unit(self):
        return CordicLn(frac_bits=24, n_iterations=24)

    @pytest.mark.parametrize("w", [1.0, 1.1, 1.25, 1.5, 1.75, 1.999])
    def test_accuracy(self, unit, w):
        code = int(round(w * (1 << 24)))
        code = min(code, 2 * (1 << 24) - 1)
        got = unit.ln_mantissa_code(code) * 2.0**-24
        assert got == pytest.approx(math.log(code * 2.0**-24), abs=5e-6)

    def test_ln_one_is_nearly_zero(self, unit):
        # The iterative datapath leaves a few-LSB residual at w = 1; the
        # range reducer special-cases exact powers of two (see
        # test_full_scale_code_maps_to_zero).
        assert abs(unit.ln_mantissa_code(1 << 24)) <= 16

    def test_rejects_out_of_domain(self, unit):
        with pytest.raises(ConfigurationError):
            unit.ln_mantissa_code((1 << 24) - 1)  # < 1.0
        with pytest.raises(ConfigurationError):
            unit.ln_mantissa_code(2 << 24)  # >= 2.0


class TestUniformLn:
    @pytest.fixture(scope="class")
    def unit(self):
        return CordicLn(frac_bits=24, n_iterations=24)

    def test_full_scale_code_maps_to_zero(self, unit):
        assert unit.ln_uniform_code(1 << 10, input_bits=10) == 0

    def test_smallest_code(self, unit):
        got = unit.ln_uniform(1, input_bits=10)
        assert got == pytest.approx(-10 * math.log(2.0), abs=1e-5)

    @pytest.mark.parametrize("m", [1, 2, 3, 100, 511, 512, 513, 1023, 1024])
    def test_accuracy_across_alphabet(self, unit, m):
        got = unit.ln_uniform(m, input_bits=10)
        assert got == pytest.approx(math.log(m / 1024.0), abs=5e-6)

    def test_rejects_out_of_alphabet(self, unit):
        with pytest.raises(ConfigurationError):
            unit.ln_uniform_code(0, input_bits=10)
        with pytest.raises(ConfigurationError):
            unit.ln_uniform_code(1025, input_bits=10)


class TestVectorized:
    def test_matches_scalar_everywhere(self):
        unit = CordicLn(frac_bits=20, n_iterations=18)
        codes = np.arange(1, (1 << 10) + 1, dtype=np.int64)
        vec = unit.ln_uniform_codes(codes, input_bits=10)
        scalar = np.array([unit.ln_uniform_code(int(m), 10) for m in codes])
        np.testing.assert_array_equal(vec, scalar)

    def test_max_abs_error_small(self):
        unit = CordicLn(frac_bits=24, n_iterations=24)
        assert unit.max_abs_error(input_bits=12) < 1e-5

    def test_fewer_iterations_worse(self):
        coarse = CordicLn(frac_bits=24, n_iterations=6)
        fine = CordicLn(frac_bits=24, n_iterations=24)
        assert coarse.max_abs_error(10) > fine.max_abs_error(10)

    def test_rejects_frac_bits_too_small(self):
        with pytest.raises(ConfigurationError):
            CordicLn(frac_bits=2)
