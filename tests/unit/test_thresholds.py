"""Threshold formulas (eqs. 13/15) and exact calibration."""

import math

import pytest

from repro.errors import CalibrationError, ConfigurationError
from repro.privacy import (
    calibrate_threshold_exact,
    exact_worst_loss_at_threshold,
    input_grid_codes,
    paper_resampling_threshold,
    paper_thresholding_threshold,
)
from repro.rng import FxpLaplaceConfig, FxpLaplaceRng

D, EPS, BU = 10.0, 0.5, 17
DELTA = 10 / 32


@pytest.fixture(scope="module")
def noise():
    cfg = FxpLaplaceConfig(input_bits=BU, output_bits=14, delta=DELTA, lam=D / EPS)
    return FxpLaplaceRng(cfg).exact_pmf()


@pytest.fixture(scope="module")
def codes():
    return input_grid_codes(0.0, D, DELTA, n_points=5)


class TestPaperResampling:
    def test_positive_and_on_grid(self):
        t = paper_resampling_threshold(D, DELTA, EPS, BU, n=2.0)
        assert t > 0
        assert (t / DELTA) == pytest.approx(round(t / DELTA))

    def test_monotone_in_n(self):
        t2 = paper_resampling_threshold(D, DELTA, EPS, BU, n=2.0)
        t3 = paper_resampling_threshold(D, DELTA, EPS, BU, n=3.0)
        assert t3 > t2

    def test_monotone_in_bu(self):
        t_lo = paper_resampling_threshold(D, DELTA, EPS, 14, n=2.0)
        t_hi = paper_resampling_threshold(D, DELTA, EPS, 20, n=2.0)
        assert t_hi > t_lo

    def test_below_rng_support(self):
        # The threshold must be realizable: below L = λ·Bu·ln2.
        t = paper_resampling_threshold(D, DELTA, EPS, BU, n=2.0)
        assert t < (D / EPS) * BU * math.log(2)

    def test_formula_bounds_exact_loss(self, noise, codes):
        # The paper's closed form must be confirmed by the exact analyzer.
        for n in (1.5, 2.0, 3.0):
            t = paper_resampling_threshold(D, DELTA, EPS, BU, n=n)
            loss = exact_worst_loss_at_threshold(noise, codes, t, "resample")
            assert loss <= n * EPS + 1e-9

    def test_rejects_n_at_most_one(self):
        with pytest.raises(CalibrationError):
            paper_resampling_threshold(D, DELTA, EPS, BU, n=1.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            paper_resampling_threshold(-1.0, DELTA, EPS, BU, n=2.0)


class TestPaperThresholding:
    def test_positive(self):
        assert paper_thresholding_threshold(D, DELTA, EPS, BU, n=2.0) > 0

    def test_monotone_in_n(self):
        t2 = paper_thresholding_threshold(D, DELTA, EPS, BU, n=2.0)
        t3 = paper_thresholding_threshold(D, DELTA, EPS, BU, n=3.0)
        assert t3 > t2

    def test_larger_than_resampling_threshold(self):
        # eq. 15 lacks the ln(2 sinh(a/2)) term, so it reaches further out.
        t_th = paper_thresholding_threshold(D, DELTA, EPS, BU, n=2.0)
        t_rs = paper_resampling_threshold(D, DELTA, EPS, BU, n=2.0)
        assert t_th > t_rs

    def test_bounds_boundary_atom_ratio(self, noise):
        # What eq. 15 actually guarantees: the tail-mass ratio a distance
        # d apart is bounded by exp(n·eps).
        n = 2.0
        t = paper_thresholding_threshold(D, DELTA, EPS, BU, n=n)
        k = int(t / DELTA)
        d_codes = int(round(D / DELTA))
        upper = noise.tail_ge(k)
        lower = noise.tail_ge(k + d_codes)
        assert lower > 0
        assert math.log(upper / lower) <= n * EPS + 1e-9

    def test_known_delta_interior_holes(self, noise, codes):
        # DESIGN.md §5: eq. 15 does not constrain the window interior; at
        # this Bu the exact analyzer finds holes below n_th2 and reports
        # infinite loss.  This documents the delta from the paper.
        t = paper_thresholding_threshold(D, DELTA, EPS, BU, n=2.0)
        loss = exact_worst_loss_at_threshold(noise, codes, t, "threshold")
        assert loss == math.inf

    def test_rejects_n_at_most_one(self):
        with pytest.raises(CalibrationError):
            paper_thresholding_threshold(D, DELTA, EPS, BU, n=1.0)


class TestExactCalibration:
    @pytest.mark.parametrize("mode", ["resample", "threshold"])
    def test_calibrated_threshold_meets_target(self, noise, codes, mode):
        t = calibrate_threshold_exact(noise, codes, 2 * EPS, mode=mode)
        assert exact_worst_loss_at_threshold(noise, codes, t, mode) <= 2 * EPS + 1e-9

    @pytest.mark.parametrize("mode", ["resample", "threshold"])
    def test_calibrated_threshold_is_maximal(self, noise, codes, mode):
        t = calibrate_threshold_exact(noise, codes, 2 * EPS, mode=mode)
        k = int(round(t / noise.step))
        bigger = (k + 1) * noise.step
        assert (
            exact_worst_loss_at_threshold(noise, codes, bigger, mode) > 2 * EPS + 1e-9
        )

    def test_exact_beats_paper_formula_for_resampling(self, noise, codes):
        # Exact calibration can only push the threshold further out than
        # the conservative closed form.
        t_paper = paper_resampling_threshold(D, DELTA, EPS, BU, n=2.0)
        t_exact = calibrate_threshold_exact(noise, codes, 2 * EPS, mode="resample")
        assert t_exact >= t_paper

    def test_target_too_small_raises(self, noise, codes):
        with pytest.raises(CalibrationError):
            # Quantized mechanisms cannot achieve arbitrarily small loss.
            calibrate_threshold_exact(noise, codes, 1e-6, mode="resample")

    def test_invalid_mode(self, noise, codes):
        with pytest.raises(ConfigurationError):
            calibrate_threshold_exact(noise, codes, 1.0, mode="clamp")

    def test_hint_does_not_change_answer(self, noise, codes):
        a = calibrate_threshold_exact(noise, codes, 2 * EPS, mode="resample", k_hint=0)
        b = calibrate_threshold_exact(
            noise, codes, 2 * EPS, mode="resample", k_hint=700
        )
        assert a == b
