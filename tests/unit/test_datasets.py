"""Dataset containers, synthetic generators, and the Table-I registry."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_CONFIGS,
    PAPER_DATASETS,
    SensorDataset,
    bimodal_gaussian,
    clustered_uniform,
    decaying_exponential,
    load,
    load_all,
    skewed_lognormal,
    truncated_gaussian,
)
from repro.errors import ConfigurationError
from repro.mechanisms import SensorSpec


class TestSensorDataset:
    def test_stats(self):
        ds = SensorDataset("t", np.array([1.0, 2.0, 3.0]), SensorSpec(0.0, 5.0))
        st = ds.stats()
        assert st.entries == 3 and st.mean == 2.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorDataset("t", np.array([10.0]), SensorSpec(0.0, 5.0))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorDataset("t", np.array([]), SensorSpec(0.0, 5.0))

    def test_subsample_without_replacement(self):
        ds = SensorDataset("t", np.arange(100.0), SensorSpec(0.0, 100.0))
        sub = ds.subsample(10, np.random.default_rng(0))
        assert sub.n == 10
        assert len(np.unique(sub.values)) == 10

    def test_subsample_with_replacement_when_oversized(self):
        ds = SensorDataset("t", np.arange(5.0), SensorSpec(0.0, 5.0))
        sub = ds.subsample(20, np.random.default_rng(0))
        assert sub.n == 20

    def test_stats_row_renders(self):
        ds = SensorDataset("t", np.array([1.0, 2.0]), SensorSpec(0.0, 5.0))
        assert "mean" in ds.stats().row()


GENERATORS = [
    truncated_gaussian,
    bimodal_gaussian,
    skewed_lognormal,
    decaying_exponential,
    clustered_uniform,
]


@pytest.mark.parametrize("gen", GENERATORS)
class TestGenerators:
    def test_within_bounds(self, gen):
        v = gen(2000, 0.0, 10.0, 5.0, 2.0, rng=np.random.default_rng(0))
        assert v.min() >= 0.0 and v.max() <= 10.0

    def test_moments_close(self, gen):
        v = gen(5000, 0.0, 10.0, 5.0, 2.0, rng=np.random.default_rng(1))
        assert v.mean() == pytest.approx(5.0, abs=0.5)
        assert v.std() == pytest.approx(2.0, abs=0.5)

    def test_size(self, gen):
        assert gen(123, 0.0, 1.0, 0.5, 0.1, rng=np.random.default_rng(2)).size == 123

    def test_validation(self, gen):
        with pytest.raises(ConfigurationError):
            gen(0, 0.0, 1.0, 0.5, 0.1)
        with pytest.raises(ConfigurationError):
            gen(10, 1.0, 0.0, 0.5, 0.1)


class TestShapes:
    def test_bimodal_has_two_modes(self):
        v = bimodal_gaussian(
            20000, -10, 10, 0.0, 2.0, separation=3.0, rng=np.random.default_rng(3)
        )
        hist, _ = np.histogram(v, bins=40)
        center = hist[18:22].mean()
        flanks = max(hist[10:15].mean(), hist[25:30].mean())
        assert flanks > center  # dip between the modes

    def test_skewed_is_right_skewed(self):
        v = skewed_lognormal(20000, 0, 50, 10.0, 5.0, rng=np.random.default_rng(4))
        assert np.mean(((v - v.mean()) / v.std()) ** 3) > 0.2


class TestRegistry:
    def test_seven_datasets(self):
        assert len(PAPER_DATASETS) == 7

    def test_load_all(self):
        all_ds = load_all(seed=1)
        assert set(all_ds) == set(PAPER_DATASETS)

    @pytest.mark.parametrize("cfg", DATASET_CONFIGS, ids=lambda c: c.name)
    def test_matches_published_stats(self, cfg):
        ds = load(cfg.name, seed=7)
        st = ds.stats()
        assert st.entries == cfg.entries
        assert st.minimum >= cfg.lo and st.maximum <= cfg.hi
        spread = cfg.hi - cfg.lo
        assert abs(st.mean - cfg.mean) < 0.1 * spread
        assert abs(st.std - cfg.std) < 0.15 * spread

    def test_deterministic(self):
        a = load("statlog-heart", seed=3)
        b = load("statlog-heart", seed=3)
        np.testing.assert_array_equal(a.values, b.values)

    def test_seed_changes_values(self):
        a = load("statlog-heart", seed=3)
        b = load("statlog-heart", seed=4)
        assert not np.array_equal(a.values, b.values)

    def test_entries_override(self):
        assert load("auto-mpg", entries=50).n == 50

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            load("mnist")
