"""Budget engine: Algorithm 1 semantics, caching, replenishment."""

import pytest

from repro.core import BudgetEngine, Segment, SegmentTable
from repro.errors import BudgetExhaustedError, ConfigurationError


@pytest.fixture()
def table():
    return SegmentTable(
        k_m=0,
        k_M=10,
        segments=(Segment(0, 0.5), Segment(4, 0.75), Segment(10, 1.0)),
    )


class TestCharging:
    def test_in_range_charge(self, table):
        eng = BudgetEngine(table, budget=2.0)
        d = eng.submit(5)
        assert d.charged == 0.5
        assert not d.from_cache
        assert eng.remaining == pytest.approx(1.5)

    def test_far_output_charged_more(self, table):
        eng = BudgetEngine(table, budget=2.0)
        assert eng.submit(13).charged == 0.75  # offset 3 <= 4
        assert eng.submit(-8).charged == 1.0  # offset 8 <= 10

    def test_adaptive_charging_beats_flat_worst_case(self, table):
        # Algorithm 1's point: central outputs cost less, so the budget
        # lasts longer than worst-case counting would allow.
        eng = BudgetEngine(table, budget=2.0)
        replies = [eng.submit(5) for _ in range(4)]
        assert all(not r.from_cache for r in replies)  # 4 > 2.0/1.0 worst case


class TestCaching:
    def test_cache_replays_last_fresh_output(self, table):
        eng = BudgetEngine(table, budget=1.0)
        first = eng.submit(3)
        second = eng.submit(7)
        third = eng.submit(9)  # budget (1.0) cannot cover another 0.5
        assert not first.from_cache and not second.from_cache
        assert third.from_cache
        assert third.k_out == second.k_out
        assert third.charged == 0.0

    def test_cache_counts(self, table):
        eng = BudgetEngine(table, budget=1.0)
        for k in (3, 7, 9, 2):
            eng.submit(k)
        assert eng.n_fresh_replies == 2
        assert eng.n_cached_replies == 2

    def test_no_cache_raises(self, table):
        eng = BudgetEngine(table, budget=1.0, cache_on_exhaustion=False)
        eng.submit(3)
        eng.submit(7)
        with pytest.raises(BudgetExhaustedError):
            eng.submit(9)

    def test_exhausted_before_any_output_raises(self, table):
        eng = BudgetEngine(table, budget=0.1)
        with pytest.raises(BudgetExhaustedError):
            eng.submit(3)  # 0.5 > 0.1 and nothing cached yet


class TestReplenishment:
    def test_replenish_restores_budget(self, table):
        eng = BudgetEngine(table, budget=1.0, replenish_period_cycles=100)
        eng.submit(3)
        eng.submit(7)
        assert not eng.accountant.can_spend(0.5)
        eng.advance_cycles(100)
        assert eng.accountant.can_spend(0.5)
        assert eng.n_replenishments == 1

    def test_partial_period_no_replenish(self, table):
        eng = BudgetEngine(table, budget=1.0, replenish_period_cycles=100)
        eng.submit(3)
        eng.advance_cycles(99)
        assert eng.n_replenishments == 0

    def test_multiple_periods_in_one_advance(self, table):
        eng = BudgetEngine(table, budget=1.0, replenish_period_cycles=10)
        eng.advance_cycles(35)
        assert eng.n_replenishments == 3

    def test_cycles_carry_over(self, table):
        eng = BudgetEngine(table, budget=1.0, replenish_period_cycles=10)
        eng.advance_cycles(9)
        eng.advance_cycles(1)
        assert eng.n_replenishments == 1

    def test_no_period_no_replenish(self, table):
        eng = BudgetEngine(table, budget=1.0)
        eng.advance_cycles(10**6)
        assert eng.n_replenishments == 0


class TestValidation:
    def test_budget_positive(self, table):
        with pytest.raises(ConfigurationError):
            BudgetEngine(table, budget=0.0)

    def test_period_positive(self, table):
        with pytest.raises(ConfigurationError):
            BudgetEngine(table, budget=1.0, replenish_period_cycles=0)
