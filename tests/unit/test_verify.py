"""LDP verification wrappers."""

import numpy as np
import pytest

from repro.privacy import verify_additive_mechanism, verify_family
from repro.privacy.loss import DiscreteMechanismFamily
from repro.rng import DiscretePMF


@pytest.fixture(scope="module")
def noise():
    probs = np.array([1, 2, 4, 2, 1], dtype=float)
    return DiscretePMF(step=1.0, min_k=-2, probs=probs / probs.sum())


class TestVerifyAdditive:
    def test_baseline_fails(self, noise):
        rep = verify_additive_mechanism(noise, 0.0, 2.0, epsilon=10.0)
        assert rep.satisfied is False
        assert not rep.is_finite

    def test_resample_passes_with_loose_target(self, noise):
        rep = verify_additive_mechanism(
            noise, 0.0, 1.0, epsilon=2.0, mode="resample", threshold=1.0
        )
        assert rep.is_finite
        assert rep.satisfied is True

    def test_threshold_mode(self, noise):
        rep = verify_additive_mechanism(
            noise, 0.0, 1.0, epsilon=5.0, mode="threshold", threshold=1.0
        )
        assert rep.is_finite

    def test_guarded_without_threshold_raises(self, noise):
        with pytest.raises(ValueError):
            verify_additive_mechanism(noise, 0.0, 1.0, epsilon=1.0, mode="resample")

    def test_explicit_window(self, noise):
        rep = verify_additive_mechanism(
            noise, 0.0, 1.0, epsilon=5.0, mode="threshold", window=(-1, 2)
        )
        assert rep.is_finite

    def test_explicit_input_codes(self, noise):
        rep = verify_additive_mechanism(
            noise, 0.0, 2.0, epsilon=10.0, input_codes=[0, 2]
        )
        assert not rep.is_finite

    def test_report_points_at_worst_pair(self, noise):
        rep = verify_additive_mechanism(
            noise, 0.0, 1.0, epsilon=0.1, mode="resample", threshold=1.0
        )
        assert rep.argmax_inputs is not None
        assert set(rep.argmax_inputs) <= {0.0, 1.0}


class TestVerifyFamily:
    def test_target_propagates(self, noise):
        fam = DiscreteMechanismFamily.additive(
            noise, [0, 1], window=(-1, 2), mode="resample"
        )
        rep = verify_family(fam, epsilon=0.01)
        assert rep.epsilon_target == 0.01
        assert rep.satisfied is False
