"""Ideal Laplace distribution: analytic functions and sampling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import IdealLaplace


@pytest.fixture(scope="module")
def lap():
    return IdealLaplace(lam=20.0)


class TestAnalytic:
    def test_pdf_peak(self, lap):
        assert lap.pdf(np.array(0.0)) == pytest.approx(1 / 40.0)

    def test_pdf_symmetric(self, lap):
        assert lap.pdf(np.array(7.0)) == pytest.approx(lap.pdf(np.array(-7.0)))

    def test_pdf_integrates_to_one(self, lap):
        x = np.linspace(-400, 400, 400001)
        assert np.trapezoid(lap.pdf(x), x) == pytest.approx(1.0, abs=1e-6)

    def test_cdf_limits(self, lap):
        assert lap.cdf(np.array(-1e6)) == pytest.approx(0.0)
        assert lap.cdf(np.array(0.0)) == pytest.approx(0.5)
        assert lap.cdf(np.array(1e6)) == pytest.approx(1.0)

    def test_cdf_monotone(self, lap):
        x = np.linspace(-100, 100, 1001)
        assert np.all(np.diff(lap.cdf(x)) >= 0)

    def test_inverse_cdf_roundtrip(self, lap):
        u = np.linspace(0.01, 0.99, 99)
        np.testing.assert_allclose(lap.cdf(lap.inverse_cdf(u)), u, atol=1e-12)

    def test_inverse_cdf_domain(self, lap):
        with pytest.raises(ConfigurationError):
            lap.inverse_cdf(np.array([0.0]))
        with pytest.raises(ConfigurationError):
            lap.inverse_cdf(np.array([1.0]))

    def test_interval_prob(self, lap):
        # Pr[|X| <= lam] = 1 - e^-1
        assert lap.interval_prob(-20, 20) == pytest.approx(1 - np.exp(-1))

    def test_log_pdf_consistent(self, lap):
        x = np.array([-5.0, 0.0, 13.0])
        np.testing.assert_allclose(np.exp(lap.log_pdf(x)), lap.pdf(x))

    def test_std(self, lap):
        assert lap.std() == pytest.approx(np.sqrt(2) * 20)

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            IdealLaplace(lam=0.0)


class TestSampling:
    def test_moments(self, lap):
        rng = np.random.default_rng(0)
        s = lap.sample(200000, rng)
        assert abs(s.mean()) < 0.3
        assert s.std() == pytest.approx(lap.std(), rel=0.02)

    def test_median_near_zero(self, lap):
        rng = np.random.default_rng(1)
        s = lap.sample(100000, rng)
        assert abs(np.median(s)) < 0.3

    def test_tail_mass(self, lap):
        rng = np.random.default_rng(2)
        s = lap.sample(200000, rng)
        # Pr[X > lam] = e^-1 / 2
        assert np.mean(s > 20.0) == pytest.approx(np.exp(-1) / 2, abs=0.005)

    def test_deterministic_with_rng(self, lap):
        a = lap.sample(10, np.random.default_rng(3))
        b = lap.sample(10, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)
