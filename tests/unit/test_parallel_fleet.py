"""Sharded fleet execution: worker-count bit-identity and merge shape.

The tentpole invariant, asserted directly: a fleet run sharded across W
workers is bit-identical to the same shard plan at ``workers=1`` for
the single-draw guards (thresholding / baseline / rr) under either
sampling kernel, and a ``shards=1`` run is bit-identical to the legacy
unsharded fleet (both execution paths of it).  Worker counts {1, 2, 4}
exercise the inline path, a smaller-than-shards pool, and a full pool.
"""

import numpy as np
import pytest

from repro.aggregation.fleet import run_fleet
from repro.errors import ConfigurationError
from repro.mechanisms import SensorSpec
from repro.parallel import DEFAULT_SHARDS, plan_shards, run_fleet_sharded
from repro.rng import CordicLn
from repro.runtime import CounterSink, ReleasePipeline, RingBufferSink

SENSOR = SensorSpec(0.0, 8.0)
EPS = 0.5
SEED = 42


def truth(n_epochs=3, n_devices=48, seed=0, binary=False):
    rng = np.random.default_rng(seed)
    t = rng.uniform(0.5, 7.5, size=(n_epochs, n_devices))
    if binary:
        return np.where(t > 4.0, SENSOR.M, SENSOR.m)
    return t


def run_sharded(workers, arm="thresholding", t=None, **kwargs):
    kwargs.setdefault("source_seed", SEED)
    kwargs.setdefault("shards", 4)
    if t is None:
        t = truth(binary=(arm == "rr"))
    return run_fleet_sharded(
        t, SENSOR, EPS, arm=arm, rng=np.random.default_rng(9),
        workers=workers, **kwargs
    )


def assert_bit_identical(a, b):
    assert a.server.epochs == b.server.epochs
    for epoch in a.server.epochs:
        assert np.array_equal(a.server.values(epoch), b.server.values(epoch))
        assert [r.device_id for r in a.server.reports(epoch)] == [
            r.device_id for r in b.server.reports(epoch)
        ]


class TestShardPlan:
    def test_balanced_and_exhaustive(self):
        plan = plan_shards(50, 4)
        sizes = [stop - start for start, stop in plan.slices]
        assert sum(sizes) == 50
        assert max(sizes) - min(sizes) <= 1
        assert plan.offsets[0] == 0 and plan.offsets[-1] == 50

    def test_clamped_to_devices(self):
        assert plan_shards(3, 8).n_shards == 3
        assert plan_shards(3).n_shards == 3

    def test_default_count(self):
        assert plan_shards(1000).n_shards == DEFAULT_SHARDS

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            plan_shards(0)
        with pytest.raises(ConfigurationError):
            plan_shards(10, 0)

    def test_shard_of(self):
        plan = plan_shards(10, 2)
        assert plan.shard_of(0) == 0
        assert plan.shard_of(9) == 1
        with pytest.raises(ConfigurationError):
            plan.shard_of(10)


class TestWorkerCountBitIdentity:
    @pytest.mark.parametrize("arm", ["thresholding", "baseline", "rr"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_single_draw_arms(self, arm, workers):
        assert_bit_identical(run_sharded(1, arm=arm), run_sharded(workers, arm=arm))

    @pytest.mark.parametrize("kernel", ["codebook", "live"])
    def test_kernels_with_hardware_log(self, kernel):
        kwargs = dict(log_backend=CordicLn(), kernel=kernel)
        assert_bit_identical(
            run_sharded(1, **kwargs), run_sharded(2, **kwargs)
        )

    def test_ideal_arm(self):
        assert_bit_identical(
            run_sharded(1, arm="ideal"), run_sharded(2, arm="ideal")
        )

    def test_budget_and_dropout_state(self):
        kwargs = dict(device_budget=2.5, dropout=0.2)
        a = run_sharded(1, **kwargs)
        b = run_sharded(4, **kwargs)
        assert_bit_identical(a, b)
        for dev_a, dev_b in zip(a.devices, b.devices):
            assert dev_a.n_fresh == dev_b.n_fresh
            assert dev_a.n_cached == dev_b.n_cached
            assert dev_a.remaining_budget == pytest.approx(
                dev_b.remaining_budget, abs=1e-12
            )

    def test_resampling_runs_sharded(self):
        # Resampling's redraw interleaving is batch-shaped; sharded runs
        # agree with themselves (fixed plan) but not with other plans.
        a = run_sharded(1, arm="resampling")
        b = run_sharded(2, arm="resampling")
        assert_bit_identical(a, b)


class TestTransportBitIdentity:
    """shm and pickle data planes must release identical streams."""

    @pytest.mark.parametrize("arm", ["thresholding", "baseline", "rr"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_shm_matches_pickle(self, arm, workers):
        assert_bit_identical(
            run_sharded(workers, arm=arm, shm=False),
            run_sharded(workers, arm=arm, shm=True),
        )

    def test_shm_budget_dropout_device_state(self):
        kwargs = dict(device_budget=2.5, dropout=0.2)
        a = run_sharded(2, shm=False, **kwargs)
        b = run_sharded(2, shm=True, **kwargs)
        assert_bit_identical(a, b)
        for dev_a, dev_b in zip(a.devices, b.devices):
            assert dev_a.n_fresh == dev_b.n_fresh
            assert dev_a.n_cached == dev_b.n_cached
            assert dev_a.remaining_budget == pytest.approx(
                dev_b.remaining_budget, abs=1e-12
            )

    def test_shm_streaming_matches_pickle_retaining(self):
        streaming = run_sharded(2, shm=True, streaming=True)
        retaining = run_sharded(2, shm=False)
        for epoch in retaining.server.epochs:
            ref = retaining.server.values(epoch)
            summary = streaming.server.summarize(epoch)
            assert summary.n_reports == ref.size
            assert summary.mean == pytest.approx(float(ref.mean()), rel=1e-12)

    def test_ipc_bytes_measured_and_smaller_under_shm(self):
        t = truth(n_devices=192)
        pickle_run = run_sharded(2, t=t, shm=False, measure_ipc=True)
        shm_run = run_sharded(2, t=t, shm=True, measure_ipc=True)
        assert pickle_run.ipc_bytes > 0 and shm_run.ipc_bytes > 0
        assert shm_run.ipc_bytes < pickle_run.ipc_bytes
        # Off by default: timed runs must not pay the serialization pass.
        assert run_sharded(1).ipc_bytes is None


class TestLegacyBridge:
    def test_one_shard_matches_unsharded_batched(self):
        t = truth()
        legacy = run_fleet(
            t, SENSOR, EPS, rng=np.random.default_rng(9),
            source_seed=SEED, batched=True,
        )
        bridge = run_sharded(1, t=t, shards=1)
        assert_bit_identical(legacy, bridge)

    def test_one_shard_matches_scalar_loop(self):
        t = truth()
        scalar = run_fleet(
            t, SENSOR, EPS, rng=np.random.default_rng(9),
            source_seed=SEED, batched=False,
        )
        bridge = run_sharded(1, t=t, shards=1)
        assert_bit_identical(scalar, bridge)

    def test_run_fleet_delegates(self):
        t = truth()
        via_fleet = run_fleet(
            t, SENSOR, EPS, rng=np.random.default_rng(9),
            source_seed=SEED, shards=4, workers=2,
        )
        direct = run_sharded(2, t=t)
        assert_bit_identical(via_fleet, direct)
        assert via_fleet.shard_plan.n_shards == 4

    def test_scalar_path_cannot_shard(self):
        with pytest.raises(ConfigurationError):
            run_fleet(
                truth(), SENSOR, EPS, batched=False, workers=2,
                rng=np.random.default_rng(9),
            )


class TestMerge:
    def test_events_reassembled_in_shard_order(self):
        pipeline = ReleasePipeline()
        ring = pipeline.add_sink(RingBufferSink())
        run_sharded(2, pipeline=pipeline, shards=2)
        channels = [e.channel for e in ring.events]
        n_epochs = 3
        expected = [
            f"epoch-{epoch}/shard-{s}" for s in range(2) for epoch in range(n_epochs)
        ]
        assert channels == expected
        seqs = [e.seq for e in ring.events]
        assert seqs == sorted(seqs)

    def test_counters_cover_all_reports(self):
        result = run_sharded(2, dropout=0.25)
        counters = result.counters
        total_reports = sum(
            result.server.summarize(e).n_reports for e in result.server.epochs
        )
        assert counters.n_samples == total_reports
        # One event per non-empty (epoch, shard) pair.
        assert 0 < counters.n_events <= 3 * 4

    def test_exhausted_budget_raises_typed_error_through_pool(self):
        tiny = dict(device_budget=0.1, shards=2)
        with pytest.raises(ConfigurationError):
            run_sharded(2, **tiny)

    def test_forbidden_shared_instances(self):
        from repro.rng.urng import SplitStreamSource

        with pytest.raises(ConfigurationError):
            run_sharded(1, source=SplitStreamSource(1))


class TestStreamingRuns:
    def test_streaming_bit_identical_across_workers(self):
        a = run_sharded(1, streaming=True, with_devices=False)
        b = run_sharded(4, streaming=True, with_devices=False)
        assert a.server.epochs == b.server.epochs
        for epoch in a.server.epochs:
            assert a.server.moments(epoch) == b.server.moments(epoch)
        assert a.estimated_means == b.estimated_means

    def test_streaming_matches_retaining(self):
        # Same shard plan + seed → same privatized values; the streaming
        # fold sums them in a different floating-point order (Chan's
        # merge), so means/variances agree to rounding, counts exactly.
        st = run_sharded(1, streaming=True, with_devices=False)
        rt = run_sharded(1)
        assert st.estimated_means == pytest.approx(rt.estimated_means, rel=1e-12)
        for epoch in rt.server.epochs:
            m = st.server.moments(epoch)
            summary = rt.server.summarize(epoch)
            assert m["count"] == summary.n_reports
            assert st.server.summarize(epoch).variance == pytest.approx(
                summary.variance, rel=1e-9
            )

    def test_streaming_retains_no_reports(self):
        result = run_sharded(2, streaming=True, with_devices=False)
        assert result.server.n_retained_reports == 0
        assert result.devices == []

    def test_streaming_disclosure_matches_retaining(self):
        st = run_sharded(1, streaming=True, with_devices=False, dropout=0.2)
        rt = run_sharded(1, dropout=0.2)
        for i in (0, 17, 47):
            dev = f"dev-{i:04d}"
            assert st.server.worst_case_disclosure(dev) == pytest.approx(
                rt.server.worst_case_disclosure(dev)
            )
