"""Engine-level dplint tests: suppression comments, baselines,
fingerprints, discovery, output shapes and CLI exit codes."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.lint.baseline import Baseline
from repro.lint.cli import main
from repro.lint.engine import (
    BAD_SUPPRESSION_RULE,
    SYNTAX_ERROR_RULE,
    LintConfig,
    LintEngine,
)
from repro.lint.findings import Finding, Severity
from repro.lint.registry import all_rule_ids, get_rules
from repro.lint.suppress import SuppressionIndex

MECH_PATH = "src/repro/mechanisms/m.py"

VIOLATION = textwrap.dedent(
    """
    import numpy as np

    def make_noise(n):
        rng = np.random.default_rng()
        return rng.normal(size=n)
    """
)


def lint(path, source, rules=None):
    return LintEngine(LintConfig(rule_ids=rules)).lint_source(
        path, textwrap.dedent(source)
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_all_five_rules_registered():
    assert set(all_rule_ids()) >= {f"DPL00{i}" for i in range(1, 6)}


def test_unknown_rule_id_rejected():
    with pytest.raises(ConfigurationError):
        get_rules(["DPL001", "DPL999"])


def test_rule_selection_limits_findings():
    # The fixture violates DPL001 only; selecting DPL002 sees nothing.
    assert lint(MECH_PATH, VIOLATION, ["DPL002"]) == []
    assert len(lint(MECH_PATH, VIOLATION, ["DPL001"])) == 1


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_comment_block_binds_to_next_code_line(self):
        idx = SuppressionIndex.from_source(
            "# dplint: allow[DPL002] -- justification that keeps\n"
            "# going on a second comment line\n"
            "\n"
            "x = float(y)\n"
        )
        assert idx.is_suppressed("DPL002", 4)
        assert not idx.is_suppressed("DPL002", 2)
        assert not idx.is_suppressed("DPL001", 4)

    def test_same_line_form(self):
        idx = SuppressionIndex.from_source("x = float(y)  # dplint: allow[DPL002]\n")
        assert idx.is_suppressed("DPL002", 1)

    def test_comma_list(self):
        idx = SuppressionIndex.from_source(
            "x = 1  # dplint: allow[DPL001, DPL003]\n"
        )
        assert idx.is_suppressed("DPL001", 1)
        assert idx.is_suppressed("DPL003", 1)
        assert not idx.is_suppressed("DPL002", 1)

    def test_file_scope_within_header(self):
        src = '"""doc"""\n# dplint: allow-file[DPL001] -- all simulation\n' + VIOLATION
        assert lint(MECH_PATH, src, ["DPL001"]) == []

    def test_file_scope_ignored_past_header(self):
        filler = "\n" * 20
        src = filler + "# dplint: allow-file[DPL001] -- too late\n" + VIOLATION
        findings = lint(MECH_PATH, src, ["DPL001"])
        assert [f.rule_id for f in findings] == ["DPL001"]

    def test_unknown_suppressed_id_reported(self):
        src = "x = 1  # dplint: allow[DPL042]\n"
        findings = lint(MECH_PATH, src)
        assert [f.rule_id for f in findings] == [BAD_SUPPRESSION_RULE]
        assert "DPL042" in findings[0].message

    def test_suppression_counted(self):
        engine = LintEngine(LintConfig(rule_ids=["DPL001"]))
        src = VIOLATION.replace(
            "rng = np.random.default_rng()",
            "rng = np.random.default_rng()  # dplint: allow[DPL001] -- why",
        )
        assert engine.lint_source(MECH_PATH, src) == []
        assert engine._last_suppressed == 1


# ----------------------------------------------------------------------
# Syntax errors
# ----------------------------------------------------------------------
def test_unparsable_file_reports_dpl900():
    findings = lint(MECH_PATH, "def broken(:\n")
    assert [f.rule_id for f in findings] == [SYNTAX_ERROR_RULE]
    assert findings[0].severity is Severity.ERROR


# ----------------------------------------------------------------------
# Fingerprints and baselines
# ----------------------------------------------------------------------
def make_finding(line=5, path=MECH_PATH, rule="DPL001", content="x = f()"):
    return Finding(
        rule_id=rule,
        severity=Severity.ERROR,
        path=path,
        line=line,
        col=0,
        message="m",
        source_line=content,
    )


class TestBaseline:
    def test_fingerprint_survives_line_shift(self):
        a = make_finding(line=5, content="  x = f()  ")
        b = make_finding(line=50, content="x = f()")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_distinguishes_rule_path_content(self):
        base = make_finding()
        assert base.fingerprint != make_finding(rule="DPL002").fingerprint
        assert base.fingerprint != make_finding(path="other.py").fingerprint
        assert base.fingerprint != make_finding(content="y = g()").fingerprint

    def test_round_trip_absorbs_known_findings(self, tmp_path):
        findings = [make_finding()]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).write(str(path))
        loaded = Baseline.load(str(path))
        fresh, absorbed = loaded.filter(findings)
        assert fresh == [] and absorbed == 1

    def test_new_findings_stay_fresh(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([make_finding()]).write(str(path))
        loaded = Baseline.load(str(path))
        new = make_finding(content="z = h()")
        fresh, absorbed = loaded.filter([make_finding(), new])
        assert fresh == [new] and absorbed == 1

    def test_counts_are_a_multiset(self, tmp_path):
        # Baseline holds ONE instance; a second identical finding is fresh.
        path = tmp_path / "baseline.json"
        Baseline.from_findings([make_finding(line=5)]).write(str(path))
        loaded = Baseline.load(str(path))
        fresh, absorbed = loaded.filter([make_finding(line=5), make_finding(line=9)])
        assert len(fresh) == 1 and absorbed == 1

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ConfigurationError):
            Baseline.load(str(path))


# ----------------------------------------------------------------------
# Discovery and run()
# ----------------------------------------------------------------------
class TestRun:
    def _tree(self, tmp_path):
        pkg = tmp_path / "mechanisms"
        pkg.mkdir()
        (pkg / "bad.py").write_text(VIOLATION)
        (pkg / "notes.txt").write_text("not python")
        cache = pkg / "__pycache__"
        cache.mkdir()
        (cache / "bad.cpython-312.py").write_text(VIOLATION)
        return tmp_path

    def test_discovery_skips_pycache_and_non_python(self, tmp_path):
        root = self._tree(tmp_path)
        engine = LintEngine(LintConfig(rule_ids=["DPL001"]))
        files = engine.discover([str(root)])
        assert len(files) == 1 and files[0].endswith("bad.py")

    def test_missing_path_raises(self):
        with pytest.raises(ConfigurationError):
            LintEngine().discover(["no/such/dir"])

    def test_run_produces_findings_and_json_shape(self, tmp_path):
        root = self._tree(tmp_path)
        engine = LintEngine(LintConfig(rule_ids=["DPL001"]))
        result = engine.run([str(root)])
        assert not result.ok
        assert result.counts_by_rule() == {"DPL001": 1}
        d = result.to_dict()
        assert d["tool"] == "dplint" and d["version"] == 1
        assert d["files"] == 1 and d["counts"] == {"DPL001": 1}
        f = d["findings"][0]
        assert {"rule", "severity", "path", "line", "col", "message",
                "fingerprint"} <= set(f)

    def test_run_with_baseline_is_clean(self, tmp_path):
        root = self._tree(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        engine = LintEngine(LintConfig(rule_ids=["DPL001"]))
        Baseline.from_findings(engine.run([str(root)]).all_findings).write(
            str(baseline_path)
        )
        engine2 = LintEngine(
            LintConfig(rule_ids=["DPL001"], baseline_path=str(baseline_path))
        )
        result = engine2.run([str(root)])
        assert result.ok and result.n_baselined == 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def _write_violation(self, tmp_path):
        pkg = tmp_path / "mechanisms"
        pkg.mkdir()
        target = pkg / "bad.py"
        target.write_text(VIOLATION)
        return target

    def test_exit_1_on_findings(self, tmp_path, capsys):
        target = self._write_violation(tmp_path)
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "DPL001" in out and "1 finding(s)" in out

    def test_exit_0_on_clean(self, tmp_path, capsys):
        clean = tmp_path / "mechanisms"
        clean.mkdir()
        (clean / "ok.py").write_text("VALUE = 1\n")
        assert main([str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        target = self._write_violation(tmp_path)
        assert main([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"DPL001": 1}
        assert payload["findings"][0]["rule"] == "DPL001"

    def test_write_then_use_baseline(self, tmp_path, capsys):
        target = self._write_violation(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(target), "--write-baseline", str(baseline)]) == 0
        assert main([str(target), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        target = self._write_violation(tmp_path)
        assert main([str(target), "--rules", "DPL999"]) == 2
        assert "DPL999" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("DPL001", "DPL002", "DPL003", "DPL004", "DPL005"):
            assert rid in out
