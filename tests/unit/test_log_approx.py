"""Piecewise-polynomial logarithm."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import PiecewisePolyLn


class TestMantissa:
    @pytest.fixture(scope="class")
    def unit(self):
        return PiecewisePolyLn(n_segments=8, degree=2, frac_bits=24)

    def test_accuracy(self, unit):
        w = np.linspace(1.0, 2.0, 513)[:-1]
        got = unit.ln_mantissa(w)
        np.testing.assert_allclose(got, np.log(w), atol=1e-4)

    def test_domain_enforced(self, unit):
        with pytest.raises(ConfigurationError):
            unit.ln_mantissa(np.array([0.9]))
        with pytest.raises(ConfigurationError):
            unit.ln_mantissa(np.array([2.0]))

    def test_more_segments_more_accurate(self):
        coarse = PiecewisePolyLn(n_segments=2, degree=2)
        fine = PiecewisePolyLn(n_segments=16, degree=2)
        assert fine.max_abs_error(10) < coarse.max_abs_error(10)

    def test_higher_degree_more_accurate(self):
        lin = PiecewisePolyLn(n_segments=8, degree=1)
        quad = PiecewisePolyLn(n_segments=8, degree=3)
        assert quad.max_abs_error(10) < lin.max_abs_error(10)


class TestUniformLn:
    @pytest.fixture(scope="class")
    def unit(self):
        return PiecewisePolyLn()

    def test_full_scale_is_zero(self, unit):
        assert unit.ln_uniform(1 << 10, 10) == 0.0

    def test_power_of_two_exact_multiples_of_ln2(self, unit):
        got = unit.ln_uniform(256, 10)  # 2^-2
        assert got == pytest.approx(-2 * math.log(2.0), abs=1e-6)

    @pytest.mark.parametrize("m", [1, 3, 7, 100, 767, 1023])
    def test_accuracy(self, unit, m):
        assert unit.ln_uniform(m, 10) == pytest.approx(
            math.log(m / 1024.0), abs=2e-4
        )

    def test_alphabet_validation(self, unit):
        with pytest.raises(ConfigurationError):
            unit.ln_uniform_codes(np.array([0]), 10)

    def test_max_abs_error(self, unit):
        assert unit.max_abs_error(12) < 2e-4


class TestConstruction:
    def test_rejects_zero_segments(self):
        with pytest.raises(ConfigurationError):
            PiecewisePolyLn(n_segments=0)

    def test_rejects_degree_zero(self):
        with pytest.raises(ConfigurationError):
            PiecewisePolyLn(degree=0)
