"""Per-rule fixtures for dplint: each DPL rule fires, suppresses, stays
silent on compliant code, and respects its path scope."""

from __future__ import annotations

import textwrap

from repro.lint.engine import LintConfig, LintEngine


def lint(path, source, rules=None):
    engine = LintEngine(LintConfig(rule_ids=rules))
    return engine.lint_source(path, textwrap.dedent(source))


def rule_ids(findings):
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# DPL001 — unaudited randomness
# ----------------------------------------------------------------------
class TestDPL001:
    FIRE = """
        import numpy as np

        def make_noise(n):
            rng = np.random.default_rng()
            return rng.normal(size=n)
        """

    def test_fires_on_release_path(self):
        findings = lint("src/repro/mechanisms/noisy.py", self.FIRE, ["DPL001"])
        assert rule_ids(findings) == ["DPL001"]
        assert "np.random.default_rng" in findings[0].message

    def test_fires_on_import_random(self):
        src = """
            import random

            def pick():
                return random.random()
            """
        findings = lint("src/repro/core/box.py", src, ["DPL001"])
        # One for the import, one for the call.
        assert rule_ids(findings) == ["DPL001", "DPL001"]

    def test_fires_on_from_import(self):
        src = """
            from numpy.random import default_rng
            """
        findings = lint("src/repro/privacy/mech.py", src, ["DPL001"])
        assert rule_ids(findings) == ["DPL001"]

    def test_silent_on_simulation_path(self):
        assert lint("src/repro/datasets/gen.py", self.FIRE, ["DPL001"]) == []
        assert lint("src/repro/sensors/sig.py", self.FIRE, ["DPL001"]) == []

    def test_silent_in_audited_rng_module(self):
        assert lint("src/repro/rng/urng.py", self.FIRE, ["DPL001"]) == []

    def test_silent_on_audited_generator(self):
        src = """
            from repro.rng.urng import audited_generator

            def make_noise(n):
                return audited_generator(0).normal(size=n)
            """
        assert lint("src/repro/mechanisms/noisy.py", src, ["DPL001"]) == []

    def test_suppressed_same_line(self):
        src = """
            import numpy as np

            def simulate(n):
                rng = np.random.default_rng()  # dplint: allow[DPL001] -- sim only
                return rng.normal(size=n)
            """
        assert lint("src/repro/mechanisms/noisy.py", src, ["DPL001"]) == []


# ----------------------------------------------------------------------
# DPL002 — float in fixed-point datapath
# ----------------------------------------------------------------------
class TestDPL002:
    def test_fires_on_transcendental_and_dtype(self):
        src = """
            import numpy as np

            def sample(self, codes):
                u = np.asarray(codes, dtype=float)
                return np.log(u)
            """
        findings = lint("src/repro/rng/gen.py", src, ["DPL002"])
        messages = " | ".join(f.message for f in findings)
        assert rule_ids(findings) == ["DPL002", "DPL002"]
        assert "dtype=float" in messages
        assert "np.log" in messages

    def test_fires_on_float_cast_and_astype(self):
        src = """
            def privatize(self, k):
                a = float(k)
                b = k.astype(float)
                return a + b
            """
        findings = lint("src/repro/mechanisms/m.py", src, ["DPL002"])
        assert rule_ids(findings) == ["DPL002", "DPL002"]

    def test_fires_in_datapath_hooks(self):
        src = """
            import math

            def inverse_half_cdf(self, u):
                return math.log(u)
            """
        findings = lint("src/repro/rng/stair.py", src, ["DPL002"])
        assert rule_ids(findings) == ["DPL002"]

    def test_silent_outside_datapath_functions(self):
        src = """
            import numpy as np

            def summarize(self, xs):
                return float(np.log(np.asarray(xs, dtype=float)).mean())
            """
        assert lint("src/repro/rng/gen.py", src, ["DPL002"]) == []

    def test_silent_outside_mechanisms_and_rng(self):
        src = """
            import numpy as np

            def sample(self, codes):
                return np.log(np.asarray(codes, dtype=float))
            """
        assert lint("src/repro/privacy/loss.py", src, ["DPL002"]) == []

    def test_suppressed_by_multiline_comment_block(self):
        src = """
            import numpy as np

            def sample(self, codes):
                # dplint: allow[DPL002] -- ideal float64 reference arm; the
                # fixed-point realization is certified separately.
                return np.log(codes)
            """
        assert lint("src/repro/rng/gen.py", src, ["DPL002"]) == []


# ----------------------------------------------------------------------
# DPL003 — secret-dependent branch
# ----------------------------------------------------------------------
class TestDPL003:
    def test_fires_on_tainted_while(self):
        src = """
            def privatize(self, x):
                k = x * 2
                while k > 0:
                    k = k - 1
                return k
            """
        findings = lint("src/repro/mechanisms/m.py", src, ["DPL003"])
        assert rule_ids(findings) == ["DPL003"]
        assert findings[0].severity.value == "warning"
        assert "'privatize'" in findings[0].message

    def test_fires_on_tainted_if(self):
        src = """
            def privatize(self, values):
                shifted = values + 1
                if shifted.any():
                    shifted = shifted * 2
                return shifted
            """
        findings = lint("src/repro/mechanisms/m.py", src, ["DPL003"])
        assert rule_ids(findings) == ["DPL003"]

    def test_silent_on_raise_only_validation(self):
        src = """
            def privatize(self, x):
                if x > 10:
                    raise ValueError("out of declared range")
                return x + 1
            """
        assert lint("src/repro/mechanisms/m.py", src, ["DPL003"]) == []

    def test_silent_on_untainted_branch(self):
        src = """
            def privatize(self, x, mode):
                if mode == "threshold":
                    return 0
                return 1
            """
        assert lint("src/repro/mechanisms/m.py", src, ["DPL003"]) == []

    def test_silent_outside_mechanisms(self):
        src = """
            def privatize(self, x):
                while x > 0:
                    x = x - 1
                return x
            """
        assert lint("src/repro/rng/gen.py", src, ["DPL003"]) == []

    def test_suppressed(self):
        src = """
            def privatize(self, x):
                pending = x + 1
                # dplint: allow[DPL003] -- inherent resampling channel
                while pending > 0:
                    pending = pending - 1
                return pending
            """
        assert lint("src/repro/mechanisms/m.py", src, ["DPL003"]) == []


# ----------------------------------------------------------------------
# DPL004 — release without accounting
# ----------------------------------------------------------------------
class TestDPL004:
    def test_fires_on_unaccounted_release(self):
        src = """
            def release(device, v):
                return device.mechanism.privatize(v)
            """
        findings = lint("src/repro/aggregation/agg.py", src, ["DPL004"])
        assert rule_ids(findings) == ["DPL004"]
        assert "privatize" in findings[0].message

    def test_silent_when_accounted(self):
        src = """
            def release(device, accountant, v):
                accountant.spend(0.5)
                return device.mechanism.privatize(v)
            """
        assert lint("src/repro/aggregation/agg.py", src, ["DPL004"]) == []

    def test_try_spend_counts_as_accounting(self):
        src = """
            def release(device, accountant, v):
                if not accountant.try_spend(0.5):
                    return None
                return device.mechanism.privatize(v)
            """
        assert lint("src/repro/core/box.py", src, ["DPL004"]) == []

    def test_silent_inside_mechanisms(self):
        src = """
            def helper(self, v):
                return self.privatize(v)
            """
        assert lint("src/repro/mechanisms/m.py", src, ["DPL004"]) == []

    def test_cli_in_scope(self):
        src = """
            def _cmd_noise(args, mech):
                return mech.privatize(args.values)
            """
        findings = lint("src/repro/cli.py", src, ["DPL004"])
        assert rule_ids(findings) == ["DPL004"]

    def test_suppressed(self):
        src = """
            def draw(self, v):
                # dplint: allow[DPL004] -- caller charges the shared budget
                return self.mechanism.privatize(v)
            """
        assert lint("src/repro/core/box.py", src, ["DPL004"]) == []


# ----------------------------------------------------------------------
# DPL005 — unvalidated epsilon
# ----------------------------------------------------------------------
class TestDPL005:
    def test_fires_on_unvalidated_init(self):
        src = """
            class Mech:
                def __init__(self, epsilon):
                    self.epsilon = epsilon
            """
        findings = lint("src/repro/mechanisms/m.py", src, ["DPL005"])
        assert rule_ids(findings) == ["DPL005"]
        assert "Mech.__init__" in findings[0].message

    def test_silent_on_compare_validation(self):
        src = """
            class Mech:
                def __init__(self, epsilon):
                    if epsilon <= 0:
                        raise ValueError("epsilon must be positive")
                    self.epsilon = epsilon
            """
        assert lint("src/repro/mechanisms/m.py", src, ["DPL005"]) == []

    def test_silent_on_validator_call(self):
        src = """
            class Mech:
                def __init__(self, eps):
                    _check_epsilon(eps)
                    self.eps = eps
            """
        assert lint("src/repro/privacy/m.py", src, ["DPL005"]) == []

    def test_silent_on_super_forwarding(self):
        src = """
            class Mech(Base):
                def __init__(self, sensor, epsilon):
                    super().__init__(sensor, epsilon)
                    self.extra = 1
            """
        assert lint("src/repro/mechanisms/m.py", src, ["DPL005"]) == []

    def test_fires_on_bare_dataclass_field(self):
        src = """
            import dataclasses

            @dataclasses.dataclass
            class Params:
                epsilon: float
            """
        findings = lint("src/repro/privacy/p.py", src, ["DPL005"])
        assert rule_ids(findings) == ["DPL005"]
        assert "no __post_init__" in findings[0].message

    def test_silent_on_post_init_validation(self):
        src = """
            import dataclasses

            @dataclasses.dataclass
            class Params:
                epsilon: float

                def __post_init__(self):
                    if self.epsilon <= 0:
                        raise ValueError("epsilon must be positive")
            """
        assert lint("src/repro/privacy/p.py", src, ["DPL005"]) == []

    def test_silent_outside_scope(self):
        src = """
            class Config:
                def __init__(self, epsilon):
                    self.epsilon = epsilon
            """
        assert lint("src/repro/analysis/sweep.py", src, ["DPL005"]) == []

    def test_suppressed(self):
        src = """
            class Mech:
                # dplint: allow[DPL005] -- eps validated by the factory
                def __init__(self, epsilon):
                    self.epsilon = epsilon
            """
        assert lint("src/repro/mechanisms/m.py", src, ["DPL005"]) == []


# ----------------------------------------------------------------------
# Cross-rule: the real tree stays clean (no fixture drift)
# ----------------------------------------------------------------------
def test_repo_release_tree_lints_clean():
    engine = LintEngine(LintConfig(root="src"))
    result = engine.run(["src/repro"])
    assert result.ok, "\n".join(f.render_text() for f in result.findings)
