"""Batched vs scalar fleet execution: bit-identity and event shape."""

import numpy as np
import pytest

from repro.aggregation.fleet import run_fleet
from repro.errors import ConfigurationError
from repro.mechanisms import SensorSpec
from repro.runtime import ReleasePipeline, RingBufferSink


SENSOR = SensorSpec(0.0, 8.0)


def truth(n_epochs=3, n_devices=25, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.5, 7.5, size=(n_epochs, n_devices))


def run_both(arm="thresholding", **kwargs):
    kwargs.setdefault("epsilon", 0.5)
    kwargs.setdefault("source_seed", 42)
    t = kwargs.pop("truth", truth())
    a = run_fleet(t, SENSOR, rng=np.random.default_rng(9), batched=True, **kwargs)
    b = run_fleet(t, SENSOR, rng=np.random.default_rng(9), batched=False, **kwargs)
    return a, b


def assert_bit_identical(a, b):
    assert a.server.epochs == b.server.epochs
    for epoch in a.server.epochs:
        assert np.array_equal(a.server.values(epoch), b.server.values(epoch))
        assert [r.device_id for r in a.server.reports(epoch)] == [
            r.device_id for r in b.server.reports(epoch)
        ]


class TestBitIdentity:
    @pytest.mark.parametrize("arm", ["thresholding", "baseline"])
    def test_single_draw_arms_bit_identical(self, arm):
        a, b = run_both(arm=arm)
        assert_bit_identical(a, b)

    def test_ideal_arm_bit_identical(self):
        a, b = run_both(arm="ideal")
        assert_bit_identical(a, b)

    def test_identical_under_budget_and_dropout(self):
        a, b = run_both(device_budget=2.5, dropout=0.2)
        assert_bit_identical(a, b)
        for dev_a, dev_b in zip(a.devices, b.devices):
            assert dev_a.n_fresh == dev_b.n_fresh
            assert dev_a.n_cached == dev_b.n_cached
            assert dev_a.remaining_budget == pytest.approx(
                dev_b.remaining_budget, abs=1e-12
            )

    def test_resampling_runs_on_both_paths(self):
        # Redraw interleaving differs between the paths, so outputs agree
        # only in distribution — both must still run end to end.
        a, b = run_both(arm="resampling", input_bits=12)
        assert np.isfinite(a.mean_abs_error)
        assert np.isfinite(b.mean_abs_error)


class TestEventShape:
    def test_batched_epoch_is_one_event(self):
        pipe = ReleasePipeline()
        ring = pipe.add_sink(RingBufferSink())
        t = truth(n_epochs=3, n_devices=25)
        run_fleet(
            t, SENSOR, epsilon=0.5, source_seed=1, batched=True, pipeline=pipe
        )
        assert len(ring) == 3
        assert all(e.batch == 25 for e in ring.events)
        assert [e.channel for e in ring.events] == [
            "epoch-0", "epoch-1", "epoch-2"
        ]

    def test_scalar_path_is_one_event_per_device(self):
        pipe = ReleasePipeline()
        ring = pipe.add_sink(RingBufferSink())
        t = truth(n_epochs=2, n_devices=10)
        run_fleet(
            t, SENSOR, epsilon=0.5, source_seed=1, batched=False, pipeline=pipe
        )
        assert len(ring) == 20
        assert all(e.batch == 1 for e in ring.events)
        assert ring.events[0].channel == "dev-0000"


class TestBudgetSemantics:
    def test_devices_cache_after_exhaustion(self):
        # Loss bound 1.0 per report, budget 2.0, 4 epochs: 2 fresh + 2
        # cached per device on both paths.
        t = truth(n_epochs=4, n_devices=8)
        a, b = run_both(truth=t, device_budget=2.0)
        assert_bit_identical(a, b)
        for result in (a, b):
            assert all(d.n_fresh == 2 and d.n_cached == 2 for d in result.devices)
            assert all(d.remaining_budget == 0.0 for d in result.devices)

    @pytest.mark.parametrize("batched", [True, False])
    def test_zero_budget_refused(self, batched):
        with pytest.raises(ConfigurationError):
            run_fleet(
                truth(n_epochs=1, n_devices=4),
                SENSOR,
                epsilon=0.5,
                device_budget=0.0,
                source_seed=1,
                batched=batched,
            )
