"""AggregationServer categorical path: counts, streaming memory, errors."""

import numpy as np
import pytest

from repro.aggregation import AggregationServer
from repro.errors import ConfigurationError
from repro.mechanisms import KaryRandomizedResponse
from repro.queries import estimate_frequencies
from repro.rng import SplitStreamSource


@pytest.fixture()
def oracle():
    return KaryRandomizedResponse(4, 2.0, source=SplitStreamSource(8))


class TestSubmitCounts:
    def test_counts_fold_across_batches(self):
        server = AggregationServer(streaming=True)
        server.submit_counts(0, np.array([5, 1, 0, 2]), 8, 2.0)
        server.submit_counts(0, np.array([1, 1, 1, 1]), 4, 2.0)
        counts, n = server.category_counts(0)
        assert counts.tolist() == [6, 2, 1, 3]
        assert n == 12

    def test_epochs_tracked_separately(self):
        server = AggregationServer(streaming=True)
        server.submit_counts(3, np.array([1, 0]), 1, 1.0)
        server.submit_counts(1, np.array([0, 1]), 1, 1.0)
        assert server.categorical_epochs == [1, 3]

    def test_domain_change_rejected(self):
        server = AggregationServer(streaming=True)
        server.submit_counts(0, np.array([1, 0, 0]), 1, 1.0)
        with pytest.raises(ConfigurationError):
            server.submit_counts(0, np.array([1, 0]), 1, 1.0)

    def test_invalid_submissions_rejected(self):
        server = AggregationServer(streaming=True)
        with pytest.raises(ConfigurationError):
            server.submit_counts(0, np.array([5]), 5, 1.0)  # < 2 categories
        with pytest.raises(ConfigurationError):
            server.submit_counts(0, np.array([1, 2]), 0, 1.0)  # n <= 0
        with pytest.raises(ConfigurationError):
            server.submit_counts(0, np.array([-1, 2]), 1, 1.0)  # negative

    def test_unknown_epoch_raises(self):
        server = AggregationServer(streaming=True)
        with pytest.raises(ConfigurationError):
            server.category_counts(0)

    def test_works_on_retaining_server_too(self):
        # The categorical path is streaming-native regardless of mode.
        server = AggregationServer(streaming=False)
        server.submit_counts(0, np.array([2, 3]), 5, 1.0)
        counts, n = server.category_counts(0)
        assert counts.tolist() == [2, 3] and n == 5
        assert server.n_retained_reports == 0


class TestStreamingMemoryContract:
    def test_o_epochs_memory(self, oracle):
        # Many large categorical batches: the server retains only the
        # O(d) counters per epoch, never a report.
        server = AggregationServer(streaming=True)
        rng = np.random.default_rng(0)
        for epoch in range(5):
            for _ in range(3):
                values = rng.integers(0, 4, size=2000)
                reports = oracle.report(values)
                counts = oracle.support_counts(reports)
                server.submit_counts(epoch, counts, values.size, oracle.epsilon)
        assert server.n_retained_reports == 0
        assert len(server.categorical_epochs) == 5
        _, n = server.category_counts(0)
        assert n == 6000

    def test_raw_report_queries_refused_in_streaming(self, oracle):
        server = AggregationServer(streaming=True)
        reports = oracle.report(np.array([0, 1, 2, 3]))
        server.submit_counts(
            0, oracle.support_counts(reports), 4, oracle.epsilon
        )
        with pytest.raises(ConfigurationError):
            server.values(0)
        with pytest.raises(ConfigurationError):
            server.reports(0)

    def test_count_above_counters_still_work(self):
        # Numeric count-above counters coexist with categorical counts.
        server = AggregationServer(streaming=True, count_thresholds=(0.5,))
        server.submit_array(0, np.array([0.2, 0.7, 0.9]), 1.0)
        server.submit_counts(0, np.array([1, 2]), 3, 1.0)
        assert server.count_above(0, 0.5) == 2
        with pytest.raises(ConfigurationError):
            server.count_above(0, 0.25)  # unregistered threshold


class TestFrequencyEstimates:
    def test_matches_direct_estimation(self, oracle):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 4, size=5000)
        reports = oracle.report(values)
        direct = estimate_frequencies(oracle, reports)

        server = AggregationServer(streaming=True)
        # Same counts split across three submissions.
        counts = oracle.support_counts(reports)
        a = counts // 3
        b = (counts - a) // 2
        c = counts - a - b
        server.submit_counts(0, a, 2000, oracle.epsilon)
        server.submit_counts(0, b, 1500, oracle.epsilon)
        server.submit_counts(0, c, 1500, oracle.epsilon)
        via_server = server.frequency_estimates(0, oracle)
        np.testing.assert_array_equal(via_server.counts, direct.counts)
        np.testing.assert_allclose(via_server.frequencies, direct.frequencies)

    def test_disclosure_accounting(self, oracle):
        server = AggregationServer(streaming=True)
        server.submit_counts(
            0, np.array([1, 1, 0, 0]), 2, oracle.epsilon,
            device_ids=["dev-a", "dev-b"],
        )
        server.record_claimed_losses({"dev-a": oracle.epsilon})
        assert server.worst_case_disclosure("dev-a") == pytest.approx(
            2 * oracle.epsilon
        )
        assert server.worst_case_disclosure("dev-b") == pytest.approx(oracle.epsilon)
