"""Pointwise loss conventions and LossReport semantics."""

import math

import pytest

from repro.privacy import LossReport, pointwise_loss


class TestPointwiseLoss:
    def test_finite_ratio(self):
        assert pointwise_loss(0.2, 0.1) == pytest.approx(math.log(2))

    def test_equal_probs_zero(self):
        assert pointwise_loss(0.3, 0.3) == 0.0

    def test_both_zero_is_zero(self):
        assert pointwise_loss(0.0, 0.0) == 0.0

    def test_denominator_zero_is_inf(self):
        assert pointwise_loss(0.1, 0.0) == math.inf

    def test_numerator_zero_is_neg_inf(self):
        assert pointwise_loss(0.0, 0.1) == -math.inf


class TestLossReport:
    def test_satisfied_true(self):
        rep = LossReport(worst_loss=0.4, epsilon_target=0.5)
        assert rep.satisfied is True

    def test_satisfied_false(self):
        rep = LossReport(worst_loss=0.6, epsilon_target=0.5)
        assert rep.satisfied is False

    def test_satisfied_none_without_target(self):
        assert LossReport(worst_loss=0.6).satisfied is None

    def test_satisfied_boundary_tolerance(self):
        rep = LossReport(worst_loss=0.5 + 1e-14, epsilon_target=0.5)
        assert rep.satisfied is True

    def test_infinite_not_satisfied(self):
        rep = LossReport(worst_loss=math.inf, epsilon_target=10.0)
        assert rep.satisfied is False
        assert not rep.is_finite

    def test_describe_violation_mentions_infinite(self):
        rep = LossReport(
            worst_loss=math.inf,
            epsilon_target=1.0,
            argmax_output=42.0,
            n_infinite_outputs=3,
        )
        text = rep.describe()
        assert "violated" in text and "3" in text

    def test_describe_ok(self):
        text = LossReport(worst_loss=0.4, epsilon_target=0.5).describe()
        assert "OK" in text

    def test_describe_exceeded(self):
        text = LossReport(worst_loss=0.9, epsilon_target=0.5).describe()
        assert "EXCEEDED" in text
