"""Analysis helpers: histograms, empirical loss, report rendering."""

import numpy as np
import pytest

from repro.analysis import (
    GridHistogram,
    estimate_pairwise_loss,
    overlap_fraction,
    render_series,
    render_table,
    tail_region,
)
from repro.errors import ConfigurationError


class TestGridHistogram:
    def test_from_samples(self):
        h = GridHistogram.from_samples(np.array([0.0, 0.5, 0.5, 1.0]), step=0.5)
        assert h.min_k == 0
        np.testing.assert_array_equal(h.counts, [1, 2, 1])

    def test_values(self):
        h = GridHistogram.from_samples(np.array([1.0, 2.0]), step=1.0)
        np.testing.assert_allclose(h.values(), [1.0, 2.0])

    def test_count_at_outside(self):
        h = GridHistogram.from_samples(np.array([0.0]), step=1.0)
        assert h.count_at(99) == 0

    def test_to_pmf_total(self):
        h = GridHistogram.from_samples(np.array([0.0, 1.0, 1.0]), step=1.0)
        assert h.to_pmf().total == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            GridHistogram.from_samples(np.array([]), step=1.0)


class TestTailRegion:
    def test_upper_tail_contains_small_mass(self):
        rng = np.random.default_rng(0)
        h = GridHistogram.from_samples(rng.normal(0, 10, 20000), step=1.0)
        lo, hi = tail_region(h, tail_fraction=0.05, side="upper")
        mass = sum(h.count_at(k) for k in range(lo, hi + 1)) / h.counts.sum()
        assert mass <= 0.05 + 0.01

    def test_lower_tail(self):
        rng = np.random.default_rng(1)
        h = GridHistogram.from_samples(rng.normal(0, 10, 20000), step=1.0)
        lo, hi = tail_region(h, tail_fraction=0.05, side="lower")
        assert lo == h.min_k and hi < 0

    def test_validation(self):
        h = GridHistogram.from_samples(np.array([0.0]), step=1.0)
        with pytest.raises(ConfigurationError):
            tail_region(h, tail_fraction=1.5)
        with pytest.raises(ConfigurationError):
            tail_region(h, side="middle")


class TestOverlap:
    def test_identical_full_overlap(self):
        h = GridHistogram.from_samples(np.array([0.0, 1.0, 2.0]), step=1.0)
        assert overlap_fraction(h, h) == 1.0

    def test_disjoint_zero_overlap(self):
        a = GridHistogram.from_samples(np.array([0.0]), step=1.0)
        b = GridHistogram.from_samples(np.array([5.0]), step=1.0)
        assert overlap_fraction(a, b) == 0.0

    def test_windowed(self):
        a = GridHistogram.from_samples(np.array([0.0, 5.0]), step=1.0)
        b = GridHistogram.from_samples(np.array([0.0, 9.0]), step=1.0)
        assert overlap_fraction(a, b, window=(0, 0)) == 1.0


class TestEmpiricalLoss:
    def test_guarded_mechanism_bounded(self, small_thresholding):
        est = estimate_pairwise_loss(
            small_thresholding, 0.0, 8.0, small_thresholding.delta, n_samples=30000
        )
        assert not est.suggests_violation
        # Sampling noise inflates ratios; stay within ~2x of the bound.
        assert est.max_finite_loss < 2 * small_thresholding.claimed_loss_bound

    def test_baseline_violation_detected(self, small_baseline):
        est = estimate_pairwise_loss(
            small_baseline, 0.0, 8.0, small_baseline.delta, n_samples=60000
        )
        assert est.suggests_violation

    def test_validation(self, small_baseline):
        with pytest.raises(ConfigurationError):
            estimate_pairwise_loss(small_baseline, 0.0, 8.0, 0.1, n_samples=10)


class TestReports:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            render_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        text = render_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_render_series(self):
        text = render_series("n", [1, 2], [("y", [0.1, 0.2]), ("z", [3, 4])])
        assert "n" in text and "y" in text and "z" in text
        assert len(text.splitlines()) == 4
