"""``--changed BASE_REF``: changed-files gating against a real git repo."""

from __future__ import annotations

import shutil
import subprocess
import textwrap

import pytest

from repro.lint.cli import main

pytestmark = pytest.mark.skipif(
    shutil.which("git") is None, reason="git not available"
)

VIOLATION = textwrap.dedent(
    """
    import numpy as np

    def make_noise(n):
        rng = np.random.default_rng()
        return rng.normal(size=n)
    """
)


def _git(repo, *args):
    subprocess.run(
        ["git", "-C", str(repo), *args],
        check=True,
        capture_output=True,
    )


@pytest.fixture
def repo(tmp_path, monkeypatch):
    """A committed git repo with two violating mechanism files."""
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "config", "user.email", "dev@example.com")
    _git(tmp_path, "config", "user.name", "dev")
    mech = tmp_path / "mechanisms"
    mech.mkdir()
    (mech / "a.py").write_text(VIOLATION)
    (mech / "b.py").write_text(VIOLATION)
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_only_changed_files_reported(repo, capsys):
    (repo / "mechanisms" / "b.py").write_text(VIOLATION + "\nX = 1\n")
    code = main(["--changed", "HEAD", "."])
    out = capsys.readouterr().out
    assert code == 1
    assert "mechanisms/b.py" in out
    assert "mechanisms/a.py" not in out
    assert "in 1 file(s)" in out


def test_clean_when_nothing_changed(repo, capsys):
    code = main(["--changed", "HEAD", "."])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s) in 0 file(s)" in out


def test_untracked_files_count_as_changed(repo, capsys):
    (repo / "mechanisms" / "c.py").write_text(VIOLATION)
    code = main(["--changed", "HEAD", "."])
    out = capsys.readouterr().out
    assert code == 1
    assert "mechanisms/c.py" in out
    assert "mechanisms/a.py" not in out


def test_non_python_changes_ignored(repo, capsys):
    (repo / "notes.txt").write_text("nothing to lint\n")
    code = main(["--changed", "HEAD", "."])
    assert code == 0
    assert "in 0 file(s)" in capsys.readouterr().out


def test_flow_graph_still_covers_whole_tree(repo, capsys):
    """A changed sink file is flagged even when its source module is not
    part of the diff — the restriction limits *findings*, not the graph."""
    (repo / "sensors").mkdir()
    (repo / "sensors" / "__init__.py").write_text("")
    (repo / "sensors" / "probe.py").write_text(
        "def load_reading():\n    return 42.0\n"
    )
    (repo / "aggregation").mkdir()
    (repo / "aggregation" / "__init__.py").write_text("")
    (repo / "aggregation" / "relay.py").write_text(
        "from sensors.probe import load_reading\n\n\n"
        "def forward(server):\n"
        "    server.submit(load_reading())\n"
    )
    _git(repo, "add", "-A")
    _git(repo, "commit", "-q", "-m", "flow fixture")
    # Only the sink file changes.
    (repo / "aggregation" / "relay.py").write_text(
        "from sensors.probe import load_reading\n\n\n"
        "def forward(server):\n"
        "    value = load_reading()\n"
        "    server.submit(value)\n"
    )
    code = main(["--changed", "HEAD", "--flow", "--rules", "DPL006", "."])
    out = capsys.readouterr().out
    assert code == 1
    assert "aggregation/relay.py" in out and "DPL006" in out


def test_bad_ref_is_a_configuration_error(repo, capsys):
    code = main(["--changed", "no-such-ref", "."])
    err = capsys.readouterr().err
    assert code == 2
    assert "--changed" in err


def test_changed_composes_with_sarif(repo, capsys):
    import json

    (repo / "mechanisms" / "b.py").write_text(VIOLATION + "\nX = 1\n")
    code = main(["--changed", "HEAD", "--format", "sarif", "."])
    log = json.loads(capsys.readouterr().out)
    assert code == 1
    uris = {
        r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        for r in log["runs"][0]["results"]
    }
    assert uris == {"mechanisms/b.py"}
