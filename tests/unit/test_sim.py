"""Hardware-sim substrate: clock, registers, modules."""

import pytest

from repro.sim import Clock, Module, Register


class Counter(Module):
    """Tiny module: increments a register every cycle."""

    def __init__(self, clock):
        super().__init__(clock)
        self.count = self.reg(0)

    def _combinational(self):
        self.count.set(self.count.q + 1)


class TestClock:
    def test_tick_advances_cycle(self):
        clk = Clock()
        clk.tick(5)
        assert clk.cycle == 5

    def test_elapsed_seconds(self):
        clk = Clock(frequency_hz=1e6)
        clk.tick(1000)
        assert clk.elapsed_seconds == pytest.approx(1e-3)

    def test_ticks_attached_modules(self):
        clk = Clock()
        c = Counter(clk)
        clk.tick(3)
        assert c.count.q == 3

    def test_multiple_modules_same_clock(self):
        clk = Clock()
        a, b = Counter(clk), Counter(clk)
        clk.tick(2)
        assert (a.count.q, b.count.q) == (2, 2)


class TestRegister:
    def test_write_invisible_until_latch(self):
        r = Register(0)
        r.set(5)
        assert r.q == 0
        r.latch()
        assert r.q == 5

    def test_latch_without_pending_keeps_value(self):
        r = Register(7)
        r.latch()
        assert r.q == 7

    def test_last_write_wins(self):
        r = Register(0)
        r.set(1)
        r.set(2)
        r.latch()
        assert r.q == 2

    def test_force_is_immediate(self):
        r = Register(0)
        r.force(9)
        assert r.q == 9

    def test_force_clears_pending(self):
        r = Register(0)
        r.set(5)
        r.force(9)
        r.latch()
        assert r.q == 9


class TestModuleSemantics:
    def test_register_updates_once_per_cycle(self):
        clk = Clock()
        c = Counter(clk)
        clk.tick()
        assert c.count.q == 1

    def test_combinational_sees_pre_edge_values(self):
        clk = Clock()

        class Probe(Module):
            def __init__(self, clock):
                super().__init__(clock)
                self.r = self.reg(0)
                self.seen = []

            def _combinational(self):
                self.seen.append(self.r.q)
                self.r.set(self.r.q + 1)

        p = Probe(clk)
        clk.tick(3)
        assert p.seen == [0, 1, 2]
