"""JSONL traces: round trip, exact budget-trajectory replay, trace CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.mechanisms import SensorSpec, make_mechanism
from repro.privacy import BudgetAccountant
from repro.rng import NumpySource
from repro.runtime import (
    EVENT_SCHEMA_VERSION,
    FlatCharge,
    JsonlSink,
    ReleasePipeline,
    ReplayCache,
    read_events_jsonl,
)


def device_trace(path, budget=3.0, n_reports=8):
    """Drive a budgeted device-style release loop, tracing to ``path``.

    Returns the accountant so tests can compare against ground truth.
    """
    pipe = ReleasePipeline()
    sink = pipe.add_sink(JsonlSink(path))
    mech = make_mechanism(
        "thresholding",
        SensorSpec(0.0, 8.0),
        0.5,
        input_bits=12,
        source=NumpySource(seed=11),
        pipeline=pipe,
    )
    acct = BudgetAccountant(budget)
    cache = ReplayCache()
    for i in range(n_reports):
        mech.release(
            np.asarray([float(i % 7)]),
            accounting=FlatCharge(acct, mech.claimed_loss_bound, cache),
            channel="dev-0",
        )
    sink.close()
    return acct


class TestJsonlRoundTrip:
    def test_events_survive_write_read(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        device_trace(path)
        events = read_events_jsonl(path)
        assert len(events) == 8
        assert all(e.channel == "dev-0" for e in events)
        assert [e.seq for e in events] == list(range(1, 9))

    def test_schema_version_stamped(self, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        device_trace(path, n_reports=1)
        with open(path) as fh:
            row = json.loads(fh.readline())
        assert row["schema"] == EVENT_SCHEMA_VERSION


class TestBudgetTrajectoryReplay:
    def test_trace_reconstructs_exact_trajectory(self, tmp_path):
        """remaining[i] == remaining[i-1] - charged[i], exactly."""
        path = tmp_path / "trace.jsonl"
        acct = device_trace(path, budget=3.0, n_reports=8)
        events = read_events_jsonl(path)
        remaining = 3.0
        for event in events:
            remaining -= event.charged
            assert event.budget_remaining == pytest.approx(remaining, abs=1e-12)
        # The replayed trajectory ends where the live accountant ended.
        assert acct.remaining == pytest.approx(remaining, abs=1e-12)

    def test_cache_replays_charge_nothing(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        device_trace(path, budget=3.0, n_reports=8)
        events = read_events_jsonl(path)
        # Loss bound is 1.0 (2·ε): three fresh releases, then replays.
        fresh = [e for e in events if e.cache_hits == 0]
        replays = [e for e in events if e.cache_hits > 0]
        assert len(fresh) == 3 and len(replays) == 5
        assert all(e.charged == 0.0 for e in replays)
        assert all(
            e.budget_remaining == fresh[-1].budget_remaining for e in replays
        )


class TestTraceCli:
    def test_selfcheck_passes(self, capsys):
        assert main(["trace", "--selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "all release paths OK" in out

    def test_selfcheck_writes_replayable_trace(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        assert main(["trace", "--selfcheck", "--jsonl", path]) == 0
        capsys.readouterr()
        assert main(["trace", "--replay", path]) == 0
        out = capsys.readouterr().out
        assert "0 with inconsistent arithmetic" in out

    def test_replay_respects_limit(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        device_trace(path, n_reports=8)
        assert main(["trace", "--replay", str(path), "--limit", "3"]) == 0
        assert "events          : 3" in capsys.readouterr().out

    def test_replay_single_budget_stream(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        device_trace(path, n_reports=8)
        assert main(["trace", "--replay", str(path)]) == 0
        assert "1 budget stream(s)" in capsys.readouterr().out

    def test_replay_empty_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", "--replay", str(path)]) == 1


class TestJsonlAppendMode:
    def test_append_extends_existing_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        device_trace(path, n_reports=3)
        first = read_events_jsonl(path)

        pipe = ReleasePipeline()
        sink = pipe.add_sink(JsonlSink(path, append=True))
        mech = make_mechanism(
            "thresholding",
            SensorSpec(0.0, 8.0),
            0.5,
            input_bits=12,
            source=NumpySource(seed=12),
            pipeline=pipe,
        )
        mech.release(np.asarray([1.0]), channel="shard-1")
        sink.close()

        merged = read_events_jsonl(path)
        assert len(merged) == len(first) + 1
        assert [e.to_dict() for e in merged[: len(first)]] == [
            e.to_dict() for e in first
        ]
        assert merged[-1].channel == "shard-1"

    def test_default_mode_truncates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        device_trace(path, n_reports=3)
        device_trace(path, n_reports=2)
        assert len(read_events_jsonl(path)) == 2


class TestJsonlCrashSafety:
    """Kill-a-writer semantics: flush-on-write + tolerant tail reads."""

    def test_events_visible_on_disk_before_close(self, tmp_path):
        # Flush-on-write: a reader (or a post-mortem) sees every
        # completed event even while the sink is still open.
        path = tmp_path / "live.jsonl"
        pipe = ReleasePipeline()
        pipe.add_sink(JsonlSink(path))
        mech = make_mechanism(
            "thresholding",
            SensorSpec(0.0, 8.0),
            0.5,
            input_bits=12,
            source=NumpySource(seed=31),
            pipeline=pipe,
        )
        mech.release(np.asarray([1.0]))
        mech.release(np.asarray([2.0]))
        assert len(read_events_jsonl(path)) == 2  # sink never closed

    def test_close_is_idempotent_and_reported(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        assert not sink.closed
        sink.close()
        sink.close()
        assert sink.closed

    def test_emit_after_close_is_typed_error(self, tmp_path):
        from repro.errors import ConfigurationError
        from repro.runtime.events import ReleaseEvent

        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        event = ReleaseEvent(
            seq=1,
            mechanism="Thresholding",
            epsilon=0.5,
            claimed_loss=1.0,
            guard="threshold",
            batch=1,
            draws=1,
            resample_rounds=0,
            max_rounds_used=1,
        )
        with pytest.raises(ConfigurationError, match="closed"):
            sink.emit(event)

    def test_context_manager_closes(self, tmp_path):
        with JsonlSink(tmp_path / "t.jsonl") as sink:
            assert not sink.closed
        assert sink.closed

    def test_trailing_partial_line_tolerated_and_reported(
        self, tmp_path, caplog
    ):
        import logging

        path = tmp_path / "killed.jsonl"
        device_trace(path, n_reports=3)
        with open(path, "a") as fh:  # writer killed mid-event
            fh.write('{"schema": 1, "seq": 4, "mech')
        with caplog.at_level(logging.WARNING, logger="repro.runtime.sinks"):
            events = read_events_jsonl(path)
        assert len(events) == 3  # completed events all survive
        assert any("truncated trailing line" in r.message for r in caplog.records)

    def test_midfile_corruption_still_raises(self, tmp_path):
        import json

        path = tmp_path / "corrupt.jsonl"
        device_trace(path, n_reports=3)
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = lines[1][:20] + "\n"  # damage a non-tail line
        path.write_text("".join(lines))
        with pytest.raises(json.JSONDecodeError):
            read_events_jsonl(path)


class TestCounterSinkMerge:
    @staticmethod
    def counted_trace(seed, n_reports):
        from repro.runtime import CounterSink

        pipe = ReleasePipeline()
        counter = pipe.add_sink(CounterSink())
        mech = make_mechanism(
            "thresholding",
            SensorSpec(0.0, 8.0),
            0.5,
            input_bits=12,
            source=NumpySource(seed=seed),
            pipeline=pipe,
        )
        acct = BudgetAccountant(50.0)
        cache = ReplayCache()
        for i in range(n_reports):
            mech.release(
                np.asarray([float(i % 7)]),
                accounting=FlatCharge(acct, mech.claimed_loss_bound, cache),
            )
        return counter

    def test_merge_equals_unsharded_totals(self):
        from repro.runtime import CounterSink

        a = self.counted_trace(seed=21, n_reports=3)
        b = self.counted_trace(seed=22, n_reports=5)
        merged = CounterSink().merge(a).merge(b)
        assert merged.n_events == a.n_events + b.n_events
        assert merged.n_samples == a.n_samples + b.n_samples
        assert merged.n_draws == a.n_draws + b.n_draws
        assert merged.charged_total == pytest.approx(
            a.charged_total + b.charged_total
        )
        assert merged.max_rounds_used == max(a.max_rounds_used, b.max_rounds_used)
        per = merged.per_mechanism["Thresholding"]
        assert per["samples"] == 8
        kern = merged.per_kernel["codebook"]
        assert kern["events"] == 8

    def test_merge_is_last_write_for_budget(self):
        from repro.runtime import CounterSink

        a = self.counted_trace(seed=21, n_reports=3)
        b = self.counted_trace(seed=22, n_reports=5)
        merged = CounterSink().merge(a).merge(b)
        assert merged.last_budget_remaining == b.last_budget_remaining

    def test_merge_returns_self_for_chaining(self):
        from repro.runtime import CounterSink

        total = CounterSink()
        assert total.merge(CounterSink()) is total
