"""Statistical queries and the MAE harness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.queries import (
    CountingQuery,
    MeanQuery,
    MedianQuery,
    VarianceQuery,
    mae_trials,
    measure_utility,
)
from repro.queries import PAPER_QUERIES


class TestQueries:
    def test_mean(self):
        assert MeanQuery().evaluate(np.array([1.0, 2.0, 3.0])) == 2.0

    def test_median(self):
        assert MedianQuery().evaluate(np.array([5.0, 1.0, 3.0])) == 3.0

    def test_variance(self):
        assert VarianceQuery().evaluate(np.array([1.0, 3.0])) == 1.0

    def test_counting_with_threshold(self):
        q = CountingQuery(threshold=2.0)
        assert q.evaluate(np.array([1.0, 2.0, 3.0, 4.0])) == 2.0

    def test_counting_default_midrange(self):
        q = CountingQuery()
        assert q.evaluate(np.array([0.0, 1.0, 10.0])) == 1.0  # midrange 5

    def test_counting_with_threshold_copy(self):
        q = CountingQuery().with_threshold(1.5)
        assert q.threshold == 1.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MeanQuery().evaluate(np.array([]))

    def test_absolute_error(self):
        q = MeanQuery()
        assert q.absolute_error(np.array([2.0]), np.array([5.0])) == 3.0

    def test_paper_queries_tuple(self):
        names = [q.name for q in PAPER_QUERIES]
        assert names == ["mean", "median", "variance", "counting"]


class TestMaeHarness:
    def test_mae_trials_shape(self, small_ideal):
        data = np.random.default_rng(0).uniform(0, 8, 200)
        errs = mae_trials(small_ideal, data, MeanQuery(), n_trials=7)
        assert errs.shape == (7,)
        assert np.all(errs >= 0)

    def test_measure_utility_all_queries(self, small_ideal):
        data = np.random.default_rng(1).uniform(0, 8, 300)
        res = measure_utility(small_ideal, data, PAPER_QUERIES, n_trials=5)
        assert set(res) == {"mean", "median", "variance", "counting"}
        for r in res.values():
            assert r.mae >= 0 and r.n_trials == 5

    def test_relative_error_normalization(self, small_ideal):
        data = np.random.default_rng(2).uniform(0, 8, 300)
        res = measure_utility(small_ideal, data, [MeanQuery()], n_trials=5)
        r = res["mean"]
        spread = data.max() - data.min()
        assert r.relative_error == pytest.approx(r.mae / spread)

    def test_counting_relative_error_normalized_by_n(self, small_ideal):
        data = np.random.default_rng(3).uniform(0, 8, 300)
        res = measure_utility(small_ideal, data, [CountingQuery()], n_trials=5)
        assert res["counting"].relative_error == pytest.approx(
            res["counting"].mae / 300
        )

    def test_cell_format(self, small_ideal):
        data = np.random.default_rng(4).uniform(0, 8, 100)
        res = measure_utility(small_ideal, data, [MeanQuery()], n_trials=3)
        cell = res["mean"].cell()
        assert "±" in cell and "%" in cell

    def test_mae_shrinks_with_data_size(self, small_ideal):
        rng = np.random.default_rng(5)
        small = rng.uniform(0, 8, 50)
        big = rng.uniform(0, 8, 5000)
        mae_small = mae_trials(small_ideal, small, MeanQuery(), n_trials=15).mean()
        mae_big = mae_trials(small_ideal, big, MeanQuery(), n_trials=15).mean()
        assert mae_big < mae_small

    def test_trials_validation(self, small_ideal):
        with pytest.raises(ConfigurationError):
            mae_trials(small_ideal, np.array([1.0]), MeanQuery(), n_trials=0)


class TestQuantileQuery:
    def test_median_special_case(self):
        from repro.queries import MedianQuery, QuantileQuery

        data = np.random.default_rng(0).uniform(0, 10, 501)
        assert QuantileQuery(0.5).evaluate(data) == pytest.approx(
            MedianQuery().evaluate(data)
        )

    def test_known_quantiles(self):
        from repro.queries import QuantileQuery

        data = np.arange(101, dtype=float)
        assert QuantileQuery(0.25).evaluate(data) == pytest.approx(25.0)
        assert QuantileQuery(0.9).evaluate(data) == pytest.approx(90.0)

    def test_name_embeds_q(self):
        from repro.queries import QuantileQuery

        assert QuantileQuery(0.9).name == "quantile-0.9"

    def test_validation(self):
        from repro.errors import ConfigurationError
        from repro.queries import QuantileQuery

        with pytest.raises(ConfigurationError):
            QuantileQuery(0.0)
        with pytest.raises(ConfigurationError):
            QuantileQuery(1.0)

    def test_in_utility_harness(self, small_ideal):
        from repro.queries import QuantileQuery, measure_utility

        data = np.random.default_rng(1).uniform(0, 8, 400)
        res = measure_utility(small_ideal, data, [QuantileQuery(0.9)], n_trials=5)
        assert res["quantile-0.9"].mae >= 0
