"""Segment tables (Fig. 8) built from exact loss profiles."""

import numpy as np
import pytest

from repro.core import Segment, SegmentTable, build_segment_table
from repro.errors import ConfigurationError
from repro.privacy.loss import DiscreteMechanismFamily
from repro.rng import DiscretePMF, FxpLaplaceConfig, FxpLaplaceRng


@pytest.fixture(scope="module")
def guarded_family():
    cfg = FxpLaplaceConfig(input_bits=12, output_bits=16, delta=8 / 64, lam=16.0)
    noise = FxpLaplaceRng(cfg).exact_pmf()
    # Range [0, 8] in codes 0..64, a generous guarded window.
    from repro.privacy import calibrate_threshold_exact

    codes = [0, 32, 64]
    t = calibrate_threshold_exact(noise, codes, 1.0, mode="threshold")
    k_th = int(round(t / noise.step))
    return DiscreteMechanismFamily.additive(
        noise, codes, window=(-k_th, 64 + k_th), mode="threshold"
    )


class TestSegmentTable:
    def test_offset_of(self):
        table = SegmentTable(k_m=0, k_M=10, segments=(Segment(0, 0.5), Segment(5, 1.0)))
        assert table.offset_of(5) == 0
        assert table.offset_of(12) == 2
        assert table.offset_of(-3) == 3

    def test_loss_lookup(self):
        table = SegmentTable(k_m=0, k_M=10, segments=(Segment(0, 0.5), Segment(5, 1.0)))
        assert table.loss_for_output(10) == 0.5
        assert table.loss_for_output(14) == 1.0
        assert table.loss_for_output(-5) == 1.0

    def test_loss_beyond_table_raises(self):
        table = SegmentTable(k_m=0, k_M=10, segments=(Segment(0, 0.5),))
        with pytest.raises(ConfigurationError):
            table.loss_for_output(11)

    def test_base_loss(self):
        table = SegmentTable(k_m=0, k_M=10, segments=(Segment(0, 0.4), Segment(3, 0.9)))
        assert table.base_loss == 0.4

    def test_offsets_must_ascend(self):
        with pytest.raises(ConfigurationError):
            SegmentTable(k_m=0, k_M=1, segments=(Segment(5, 1.0), Segment(2, 0.5)))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SegmentTable(k_m=0, k_M=1, segments=())

    def test_describe_rows(self):
        table = SegmentTable(k_m=0, k_M=10, segments=(Segment(0, 0.5), Segment(4, 1.0)))
        rows = table.describe(delta=0.5)
        assert len(rows) == 2
        assert "loss" in rows[0]


class TestBuildSegmentTable:
    def test_segments_cover_window(self, guarded_family):
        table = build_segment_table(guarded_family, 0.5, levels=[1.0, 1.5, 2.0])
        codes = guarded_family.output_codes
        max_off = max(table.offset_of(int(codes[0])), table.offset_of(int(codes[-1])))
        assert table.segments[-1].max_offset_codes >= max_off

    def test_losses_ascend(self, guarded_family):
        table = build_segment_table(guarded_family, 0.5, levels=[1.0, 1.5, 2.0])
        losses = [s.loss for s in table.segments]
        assert losses == sorted(losses)

    def test_segment_loss_bounds_profile(self, guarded_family):
        # Every output's profile loss is <= its segment's charged loss.
        table = build_segment_table(guarded_family, 0.5, levels=[1.0, 1.5, 2.0])
        profile = guarded_family.loss_profile()
        for j, k in enumerate(guarded_family.output_codes):
            if np.isnan(profile[j]):
                continue
            assert profile[j] <= table.loss_for_output(int(k)) + 1e-9

    def test_base_segment_is_in_range_loss(self, guarded_family):
        table = build_segment_table(guarded_family, 0.5, levels=[1.0, 2.0])
        profile = guarded_family.loss_profile()
        codes = guarded_family.output_codes
        in_range = profile[(codes >= table.k_m) & (codes <= table.k_M)]
        assert table.base_loss == pytest.approx(float(np.nanmax(in_range)))

    def test_insufficient_levels_rejected(self, guarded_family):
        with pytest.raises(ConfigurationError):
            build_segment_table(guarded_family, 0.5, levels=[1.01])

    def test_levels_must_ascend(self, guarded_family):
        with pytest.raises(ConfigurationError):
            build_segment_table(guarded_family, 0.5, levels=[2.0, 1.0])

    def test_more_levels_finer_table(self, guarded_family):
        coarse = build_segment_table(guarded_family, 0.5, levels=[2.0])
        fine = build_segment_table(
            guarded_family, 0.5, levels=[1.1, 1.25, 1.5, 1.75, 2.0]
        )
        assert len(fine.segments) >= len(coarse.segments)
