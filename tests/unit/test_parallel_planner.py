"""Execution planner: scheduling adapts to the host, streams never do.

The planner may consult ``os.cpu_count()`` and a cached throughput
calibration, but everything it decides — serial vs pool, worker count —
is outside the reproducibility key.  These tests pin the decision table
(pinned workers, single core, too-small run, pool-worthy run), the
worker-count validation/clamping, the shard passthrough, and the
plan-echo trace event.
"""

import logging
import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mechanisms import SensorSpec
from repro.parallel import (
    calibrate_throughput,
    clamp_workers,
    plan_execution,
    plan_shards,
    run_fleet_sharded,
)
from repro.parallel.planner import _MIN_SERIAL_FOR_POOL_S
from repro.runtime import ReleasePipeline, RingBufferSink

SENSOR = SensorSpec(0.0, 8.0)


@pytest.fixture
def eight_cores(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)


@pytest.fixture
def one_core(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 1)


@pytest.fixture
def fixed_throughput(monkeypatch):
    # 1e8 elements/s: est_serial = 10 * devices * epochs / 1e8 seconds.
    monkeypatch.setattr(
        "repro.parallel.planner.calibrate_throughput",
        lambda force=False: 1e8,
    )


class TestClampWorkers:
    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            clamp_workers(0)
        with pytest.raises(ConfigurationError):
            clamp_workers(-3)

    def test_within_cores_untouched(self, eight_cores):
        assert clamp_workers(1) == 1
        assert clamp_workers(8) == 8

    def test_oversubscription_clamped_with_warning(self, eight_cores, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.parallel.sharding"):
            assert clamp_workers(64) == 8
        assert any("clamping" in r.message for r in caplog.records)


class TestPlanExecution:
    def test_rejects_bad_epochs(self):
        with pytest.raises(ConfigurationError):
            plan_execution(100, 0)

    def test_pinned_workers_one_is_serial(self, eight_cores):
        plan = plan_execution(1000, 4, shards=8, workers=1)
        assert plan.mode == "serial"
        assert plan.workers == 1
        assert plan.describe() == "serial/8shards"

    def test_pinned_workers_pool(self, eight_cores):
        plan = plan_execution(1000, 4, shards=8, workers=4)
        assert plan.mode == "pool"
        assert plan.workers == 4
        assert plan.describe() == "pool:4/8shards"

    def test_pinned_workers_capped_by_shards(self, eight_cores):
        plan = plan_execution(1000, 4, shards=2, workers=8)
        assert plan.workers == 2

    def test_single_core_host_stays_serial(self, one_core, fixed_throughput):
        plan = plan_execution(10_000_000, 24)
        assert plan.mode == "serial"
        assert "single-core" in plan.reason

    def test_small_run_stays_serial(self, eight_cores, fixed_throughput):
        plan = plan_execution(1000, 1)
        assert plan.mode == "serial"
        assert plan.estimated_serial_s < _MIN_SERIAL_FOR_POOL_S
        assert "amortize" in plan.reason

    def test_large_run_gets_a_pool(self, eight_cores, fixed_throughput):
        plan = plan_execution(2_000_000, 10, shards=8)
        assert plan.mode == "pool"
        assert plan.workers == 8
        assert plan.estimated_serial_s >= _MIN_SERIAL_FOR_POOL_S

    def test_shards_are_passthrough(self, fixed_throughput, monkeypatch):
        # The shard count — the reproducibility key — must not depend on
        # anything the planner probes.
        reference = plan_shards(1234, None).n_shards
        for cores in (1, 2, 64):
            monkeypatch.setattr(os, "cpu_count", lambda c=cores: c)
            assert plan_execution(1234, 3).shards == reference
            assert plan_execution(1234, 3, shards=5).shards == 5


class TestCalibration:
    def test_cached_and_positive(self):
        first = calibrate_throughput()
        assert first > 0
        assert calibrate_throughput() == first  # cached
        assert calibrate_throughput(force=True) > 0


class TestPlanEcho:
    def _run(self, plan, sinks):
        truth = np.random.default_rng(0).uniform(1.0, 7.0, size=(2, 40))
        return run_fleet_sharded(
            truth,
            SENSOR,
            0.5,
            arm="thresholding",
            source_seed=3,
            rng=np.random.default_rng(1),
            shards=4,
            pipeline=ReleasePipeline(sinks=sinks),
            execution_plan=plan,
        )

    def test_plan_event_leads_the_trace(self):
        ring = RingBufferSink(capacity=64)
        plan = plan_execution(40, 2, shards=4, workers=1)
        self._run(plan, [ring])
        first = ring.events[0]
        assert first.mechanism == "execution-plan"
        assert first.channel == f"plan/{plan.describe()}"
        assert first.batch == 0 and first.draws == 0
        # Inert for counters: only release events carry samples/draws.
        assert sum(e.draws for e in ring.events if e.seq == first.seq) == 0

    def test_no_plan_no_echo(self):
        ring = RingBufferSink(capacity=64)
        truth = np.random.default_rng(0).uniform(1.0, 7.0, size=(2, 40))
        run_fleet_sharded(
            truth,
            SENSOR,
            0.5,
            arm="thresholding",
            source_seed=3,
            rng=np.random.default_rng(1),
            shards=4,
            pipeline=ReleasePipeline(sinks=[ring]),
        )
        assert all(e.mechanism != "execution-plan" for e in ring.events)

    def test_plan_overrides_workers_not_streams(self):
        ring_a = RingBufferSink(capacity=64)
        ring_b = RingBufferSink(capacity=64)
        serial = plan_execution(40, 2, shards=4, workers=1)
        pooled = plan_execution(40, 2, shards=4, workers=2)
        a = self._run(serial, [ring_a])
        b = self._run(pooled, [ring_b])
        for epoch in a.server.epochs:
            np.testing.assert_array_equal(
                a.server.values(epoch), b.server.values(epoch)
            )


class TestHostEdgeCases:
    """Degenerate hosts and worker counts never yield a zero-worker pool.

    ``os.cpu_count()`` is documented to return ``None`` when the count
    is undeterminable; ``workers=0`` or negative is caller error.  The
    contract: a typed :class:`ConfigurationError` for bad requests, and
    a serial (or 1-worker-clamped) plan — never ``workers=0`` — for
    degenerate hosts.
    """

    @pytest.fixture
    def unknown_cores(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)

    def test_plan_execution_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            plan_execution(1000, 4, workers=0)

    def test_plan_execution_rejects_negative_workers(self):
        with pytest.raises(ConfigurationError):
            plan_execution(1000, 4, workers=-2)

    def test_plan_shards_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            plan_shards(1000, workers=0)

    def test_clamp_on_unknown_core_count(self, unknown_cores):
        # cpu_count() is None: treat the host as single-core and clamp
        # every request down to 1 rather than oversubscribing blind.
        assert clamp_workers(1) == 1
        assert clamp_workers(16) == 1

    def test_auto_plan_on_unknown_core_count_is_serial(
        self, unknown_cores, fixed_throughput
    ):
        plan = plan_execution(1_000_000, 64)
        assert plan.mode == "serial"
        assert plan.workers == 1

    def test_pinned_workers_on_unknown_core_count_never_zero(
        self, unknown_cores
    ):
        plan = plan_execution(1_000_000, 64, workers=8)
        assert plan.workers >= 1
        # Clamped to the 1 usable core -> serial, not a 0-worker pool.
        assert plan.mode == "serial"
