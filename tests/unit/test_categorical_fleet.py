"""Sharded categorical fleet: worker-count identity, sinks, accuracy."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel import run_fleet_categorical
from repro.runtime import CounterSink, ReleasePipeline
from repro.runtime.sinks import read_events_jsonl


@pytest.fixture(scope="module")
def truth():
    rng = np.random.default_rng(12)
    return rng.integers(0, 6, size=(3, 1200))


def _run(truth, workers, **kwargs):
    kwargs.setdefault("oracle", "oue")
    kwargs.setdefault("source_seed", 77)
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("pipeline", ReleasePipeline(sinks=[]))
    kwargs.setdefault("rng", np.random.default_rng(5))
    return run_fleet_categorical(truth, 6, 2.0, workers=workers, **kwargs)


class TestWorkerCountIdentity:
    @pytest.mark.parametrize("oracle", ["krr", "oue", "olh"])
    def test_bit_identical_across_worker_counts(self, truth, oracle):
        r1 = _run(truth, workers=1, oracle=oracle, dropout=0.1)
        r2 = _run(truth, workers=2, oracle=oracle, dropout=0.1)
        for epoch in range(truth.shape[0]):
            c1, n1 = r1.server.category_counts(epoch)
            c2, n2 = r2.server.category_counts(epoch)
            np.testing.assert_array_equal(c1, c2)
            assert n1 == n2
            np.testing.assert_array_equal(
                r1.estimates[epoch].frequencies, r2.estimates[epoch].frequencies
            )

    def test_shard_count_is_reproducibility_key(self, truth):
        # Different shard counts are different runs (spawned streams).
        r4 = _run(truth, workers=1, shards=4)
        r2 = _run(truth, workers=1, shards=2)
        c4, _ = r4.server.category_counts(0)
        c2, _ = r2.server.category_counts(0)
        assert not np.array_equal(c4, c2)

    @pytest.mark.parametrize("oracle", ["krr", "oue", "olh"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_shm_transport_bit_identical(self, truth, oracle, workers):
        # The zero-copy count buffers must merge to the same histograms
        # as the pickle transport, for every oracle and worker count.
        a = _run(truth, workers=workers, oracle=oracle, shm=False)
        b = _run(truth, workers=workers, oracle=oracle, shm=True)
        for epoch in range(truth.shape[0]):
            ca, na = a.server.category_counts(epoch)
            cb, nb = b.server.category_counts(epoch)
            np.testing.assert_array_equal(ca, cb)
            assert na == nb

    def test_ipc_bytes_shrink_under_shm(self, truth):
        pickle_run = _run(truth, workers=2, shm=False, measure_ipc=True)
        shm_run = _run(truth, workers=2, shm=True, measure_ipc=True)
        assert shm_run.ipc_bytes < pickle_run.ipc_bytes
        assert _run(truth, workers=1).ipc_bytes is None


class TestAccuracyAndEstimates:
    def test_estimates_track_truth(self, truth):
        result = _run(truth, workers=1)
        assert result.mean_abs_error < 0.05
        for epoch, est in enumerate(result.estimates):
            z = np.abs(est.frequencies - result.true_frequencies[epoch])
            assert (z < 5 * est.std_errors() + 1e-9).all()

    def test_streaming_native(self, truth):
        result = _run(truth, workers=1)
        assert result.server.n_retained_reports == 0

    def test_disclosure_bound_recorded(self, truth):
        result = _run(truth, workers=1)
        # No dropout: every device reported every epoch at full epsilon.
        assert result.server.worst_case_disclosure("dev-0000") == pytest.approx(
            truth.shape[0] * 2.0
        )


class TestTraceSubstrate:
    def test_counter_merge_per_kernel_and_mechanism(self, truth):
        result = _run(truth, workers=1, oracle="krr")
        counters = result.counters
        assert isinstance(counters, CounterSink)
        # 4 shards x 3 epochs, one release event each, merged in order.
        assert counters.n_events == 12
        assert counters.n_samples == truth.size
        per = counters.per_mechanism["k-RR"]
        assert per["events"] == 12
        assert per["samples"] == truth.size
        # The oracle draw path reports no kernel; the merged per-kernel
        # table must still fold those counts instead of dropping them.
        assert counters.per_kernel["unreported"]["events"] == 12
        assert counters.per_kernel["unreported"]["draws"] == counters.n_draws

    def test_counter_merge_equals_single_counter(self, truth):
        # Merged shard counters == one counter fed the adopted stream.
        from repro.runtime import RingBufferSink

        ring = RingBufferSink(capacity=1024)
        result = _run(truth, workers=1, pipeline=ReleasePipeline(sinks=[ring]))
        single = CounterSink()
        for event in ring.events:
            single.emit(event)
        merged = result.counters.summary()
        for key in ("events", "samples", "draws", "per_mechanism", "per_kernel"):
            assert merged[key] == single.summary()[key]

    def test_jsonl_append_trace(self, truth, tmp_path):
        path = tmp_path / "cat-trace.jsonl"
        result = _run(truth, workers=1, trace_path=path)
        events = read_events_jsonl(path)
        assert len(events) == result.counters.n_events
        assert {e.mechanism for e in events} == {"OUE"}
        # Append mode: a second run extends the same file.
        result2 = _run(truth, workers=1, trace_path=path)
        events2 = read_events_jsonl(path)
        assert len(events2) == len(events) + result2.counters.n_events

    def test_events_adopted_into_target_pipeline(self, truth):
        from repro.runtime import RingBufferSink

        ring = RingBufferSink(capacity=1024)
        _run(truth, workers=1, pipeline=ReleasePipeline(sinks=[ring]))
        assert len(ring.events) == 12
        # Adoption renumbers: seq strictly increasing across shards.
        seqs = [e.seq for e in ring.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestValidation:
    def test_rejects_float_categories(self):
        with pytest.raises(ConfigurationError):
            run_fleet_categorical(np.zeros((2, 4)), 4, 1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            run_fleet_categorical(np.full((2, 4), 9), 4, 1.0)

    def test_rejects_shared_source(self):
        with pytest.raises(ConfigurationError):
            run_fleet_categorical(
                np.zeros((2, 4), dtype=np.int64), 4, 1.0, source=object()
            )

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            run_fleet_categorical(np.zeros(4, dtype=np.int64), 4, 1.0)
        with pytest.raises(ConfigurationError):
            run_fleet_categorical(
                np.zeros((2, 4), dtype=np.int64), 4, 1.0, dropout=1.0
            )
        with pytest.raises(ConfigurationError):
            run_fleet_categorical(
                np.zeros((2, 4), dtype=np.int64), 4, 1.0, workers=0
            )
