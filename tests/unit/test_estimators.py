"""Debiased estimators (library extension beyond the paper's naive ones)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.queries import debiased_count_above, debiased_mean, debiased_variance
from repro.rng import IdealLaplace


@pytest.fixture(scope="module")
def noisy_data():
    rng = np.random.default_rng(0)
    raw = rng.uniform(0, 10, 50000)
    lam = 4.0
    noisy = raw + IdealLaplace(lam).sample(raw.size, rng)
    return raw, noisy, lam


class TestDebiasedMean:
    def test_matches_plain_mean(self, noisy_data):
        _, noisy, _ = noisy_data
        assert debiased_mean(noisy) == pytest.approx(float(np.mean(noisy)))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            debiased_mean(np.array([]))


class TestDebiasedVariance:
    def test_removes_noise_variance(self, noisy_data):
        raw, noisy, lam = noisy_data
        est = debiased_variance(noisy, lam)
        assert est == pytest.approx(float(np.var(raw)), rel=0.05)

    def test_beats_naive(self, noisy_data):
        raw, noisy, lam = noisy_data
        true_var = float(np.var(raw))
        naive_err = abs(float(np.var(noisy)) - true_var)
        debiased_err = abs(debiased_variance(noisy, lam) - true_var)
        assert debiased_err < naive_err

    def test_clips_at_zero(self):
        # Tiny noisy variance with a huge lam would go negative.
        assert debiased_variance(np.array([1.0, 1.1]), lam=10.0) == 0.0

    def test_lam_validation(self):
        with pytest.raises(ConfigurationError):
            debiased_variance(np.array([1.0]), lam=0.0)


class TestDebiasedCount:
    def test_close_to_truth(self, noisy_data):
        raw, noisy, lam = noisy_data
        t = 5.0
        truth = float(np.count_nonzero(raw > t))
        est = debiased_count_above(noisy, t, lam, data_range=10.0)
        assert est == pytest.approx(truth, rel=0.05)

    def test_clipped_to_valid_counts(self, noisy_data):
        _, noisy, lam = noisy_data
        est = debiased_count_above(noisy, -100.0, lam, data_range=10.0)
        assert 0.0 <= est <= noisy.size

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            debiased_count_above(np.array([]), 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            debiased_count_above(np.array([1.0]), 0.0, -1.0)
