"""Latency statistics and the area/power/energy model (Sections III-D, V)."""

import pytest

from repro.core import (
    BASE_NOISING_CYCLES,
    BUDGET_LOGIC_OVERHEAD,
    DPBOX_BASELINE,
    DPBOX_RELAXED,
    HW_BOX_ACTIVE_CYCLES,
    HW_MCU_CYCLES,
    SW_FLOAT_CYCLES,
    SW_FXP_CYCLES,
    EnergyModel,
    LatencyStats,
    NoisingResult,
    SynthesisPoint,
    expected_latency_cycles,
)
from repro.errors import ConfigurationError
from repro.mechanisms import ResamplingMechanism, SensorSpec


def _result(cycles, draws=1):
    return NoisingResult(
        value=0.0, cycles=cycles, draws=draws, charged=0.1, from_cache=False
    )


class TestLatencyStats:
    def test_mean_and_max(self):
        stats = LatencyStats.from_results([_result(2), _result(2), _result(5)])
        assert stats.mean_cycles == pytest.approx(3.0)
        assert stats.max_cycles == 5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyStats.from_results([])

    def test_base_cycles_constant(self):
        assert BASE_NOISING_CYCLES == 2  # paper Section V

    def test_expected_latency_analytic(self):
        mech = ResamplingMechanism(
            SensorSpec(0.0, 8.0), 0.5, input_bits=12, output_bits=16, delta=8 / 64
        )
        exp = expected_latency_cycles(mech, 0.0)
        assert 2.0 <= exp < 3.0  # Fig. 11: never more than +1 cycle on average


class TestSynthesisPoints:
    def test_paper_baseline_numbers(self):
        assert DPBOX_BASELINE.gates == 10431
        assert DPBOX_BASELINE.critical_path_ns == pytest.approx(58.66)
        assert DPBOX_BASELINE.power_uw == pytest.approx(158.3)

    def test_relaxed_variant_numbers(self):
        assert DPBOX_RELAXED.gates == 9621
        assert DPBOX_RELAXED.power_uw == pytest.approx(252.0)

    def test_max_frequency_exceeds_16mhz(self):
        # Section V: the critical path is adequate for ULP frequencies.
        assert DPBOX_BASELINE.max_frequency_hz > 16e6

    def test_energy_per_cycle(self):
        # 158.3 µW / 16 MHz ≈ 9.89 pJ
        assert DPBOX_BASELINE.energy_per_cycle_pj == pytest.approx(9.89, rel=0.01)

    def test_budget_logic_overhead(self):
        with_budget = DPBOX_BASELINE.gates_with_budget_logic()
        assert with_budget == pytest.approx(10431 * 1.11, abs=1)
        assert BUDGET_LOGIC_OVERHEAD == 0.11

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SynthesisPoint(name="bad", gates=0, critical_path_ns=10, power_uw=1)


class TestEnergyModel:
    def test_reproduces_894x_ratio(self):
        model = EnergyModel()
        assert model.ratio_vs_fxp_software() == pytest.approx(894, rel=0.01)

    def test_reproduces_318x_ratio(self):
        model = EnergyModel()
        assert model.ratio_vs_float_software() == pytest.approx(318, rel=0.01)

    def test_ratios_consistent_with_cycle_counts(self):
        # Both ratios share one denominator, so their quotient equals the
        # software cycle-count quotient.
        model = EnergyModel()
        assert model.ratio_vs_fxp_software() / model.ratio_vs_float_software() == (
            pytest.approx(SW_FXP_CYCLES / SW_FLOAT_CYCLES)
        )

    def test_resampling_reduces_ratio(self):
        model = EnergyModel()
        assert model.ratio_vs_fxp_software(box_cycles=10) < model.ratio_vs_fxp_software()

    def test_paper_cycle_constants(self):
        assert SW_FXP_CYCLES == 4043
        assert SW_FLOAT_CYCLES == 1436
        assert HW_MCU_CYCLES == 4
        assert HW_BOX_ACTIVE_CYCLES == 2

    def test_latency_seconds(self):
        model = EnergyModel()
        assert model.latency_seconds(16) == pytest.approx(1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(mcu_energy_per_cycle_pj=0.0)
        with pytest.raises(ConfigurationError):
            EnergyModel().software_energy_pj(0)


class TestPipelinedVariants:
    def test_identity_at_one_stage(self):
        assert DPBOX_BASELINE.pipelined(1) is DPBOX_BASELINE

    def test_critical_path_shrinks(self):
        p2 = DPBOX_BASELINE.pipelined(2)
        assert p2.critical_path_ns < DPBOX_BASELINE.critical_path_ns

    def test_area_grows(self):
        p3 = DPBOX_BASELINE.pipelined(3)
        assert p3.gates > DPBOX_BASELINE.gates

    def test_power_grows(self):
        assert DPBOX_BASELINE.pipelined(2).power_uw > DPBOX_BASELINE.power_uw

    def test_monotone_over_stages(self):
        cps = [DPBOX_BASELINE.pipelined(s).critical_path_ns for s in (1, 2, 3, 4)]
        assert cps == sorted(cps, reverse=True)

    def test_stage_validation(self):
        with pytest.raises(ConfigurationError):
            DPBOX_BASELINE.pipelined(0)


class TestCollectLatency:
    def test_alias_of_from_results(self):
        from repro.core import collect_latency

        stats = collect_latency([_result(2), _result(4)])
        assert stats.mean_cycles == pytest.approx(3.0)
        assert stats.n == 2

    def test_p99(self):
        results = [_result(2)] * 99 + [_result(50)]
        stats = LatencyStats.from_results(results)
        assert stats.p99_cycles >= 2.0
        assert stats.max_cycles == 50
