"""Flow rules DPL006/DPL007/DPL008: true positives, negatives,
suppression and baseline interplay, engine/CLI integration."""

from __future__ import annotations

import textwrap

from repro.lint.baseline import Baseline
from repro.lint.engine import LintConfig, LintEngine
from repro.lint.findings import Severity
from repro.lint.flow.rules import FLOW_RULES, flow_rule_ids


def run_tree(tmp_path, files, rules=None, flow=True, baseline=None):
    for rel, src in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(src))
    config = LintConfig(
        rule_ids=rules,
        flow=flow,
        root=str(tmp_path),
        baseline_path=baseline,
    )
    return LintEngine(config).run([str(tmp_path)])


SENSOR_PKG = {
    "sensors/__init__.py": "",
    "sensors/probe.py": """
        def load_reading():
            return 42.0
        """,
}

DIRECT_FLOW = {
    **SENSOR_PKG,
    "aggregation/__init__.py": "",
    "aggregation/relay.py": """
        from sensors.probe import load_reading

        def forward(server):
            value = load_reading()
            server.submit(value)
        """,
}


# ----------------------------------------------------------------------
# Registry surface
# ----------------------------------------------------------------------
def test_flow_rule_catalog():
    assert flow_rule_ids() == ["DPL006", "DPL007", "DPL008"]
    assert FLOW_RULES["DPL006"].severity is Severity.ERROR
    assert FLOW_RULES["DPL007"].severity is Severity.ERROR
    assert FLOW_RULES["DPL008"].severity is Severity.WARNING


# ----------------------------------------------------------------------
# DPL006 — unprivatized flow to sink
# ----------------------------------------------------------------------
class TestDpl006:
    def test_cross_module_flow_flagged(self, tmp_path):
        result = run_tree(tmp_path, DIRECT_FLOW, rules=["DPL006"])
        assert [f.rule_id for f in result.findings] == ["DPL006"]
        f = result.findings[0]
        assert f.path == "aggregation/relay.py"
        assert f.severity is Severity.ERROR
        assert "submit" in f.message

    def test_finding_carries_flow_witness(self, tmp_path):
        files = {
            **SENSOR_PKG,
            "aggregation/__init__.py": "",
            "runtime/__init__.py": "",
            "runtime/emit.py": """
                def publish(server, payload):
                    server.submit_all(payload)
                """,
            "aggregation/relay.py": """
                from sensors.probe import load_reading
                from runtime.emit import publish

                def forward(server):
                    publish(server, load_reading())
                """,
        }
        result = run_tree(tmp_path, files, rules=["DPL006"])
        assert [f.rule_id for f in result.findings] == ["DPL006"]
        f = result.findings[0]
        assert f.path == "runtime/emit.py"  # the sink site
        # Witness: source in relay.py → call hop → sink in emit.py.
        assert len(f.flow) >= 3
        assert f.flow[0].path == "aggregation/relay.py"
        assert any("publish" in step.note for step in f.flow)
        assert f.flow[-1].path == "runtime/emit.py"
        # And the witness survives JSON serialization.
        doc = f.to_dict()
        assert doc["flow"][0]["path"] == "aggregation/relay.py"

    def test_privatize_seam_sanitizes(self, tmp_path):
        files = dict(DIRECT_FLOW)
        files["aggregation/relay.py"] = """
            from sensors.probe import load_reading

            def forward(server, mech):
                value = mech.privatize(load_reading())
                server.submit(value)
            """
        result = run_tree(tmp_path, files, rules=["DPL006"])
        assert result.findings == []

    def test_accounted_release_sanitizes(self, tmp_path):
        files = dict(DIRECT_FLOW)
        files["aggregation/relay.py"] = """
            from sensors.probe import load_reading

            def forward(server, mech, acc):
                out = mech.release(load_reading(), accounting=acc)
                server.submit(out)
            """
        result = run_tree(tmp_path, files, rules=["DPL006"])
        assert result.findings == []

    def test_release_without_accounting_not_a_seam(self, tmp_path):
        files = dict(DIRECT_FLOW)
        files["aggregation/relay.py"] = """
            from sensors.probe import load_reading

            def forward(server, mech):
                out = mech.release(load_reading())
                server.submit(out)
            """
        result = run_tree(tmp_path, files, rules=["DPL006"])
        assert [f.rule_id for f in result.findings] == ["DPL006"]

    def test_simulation_sink_not_flagged(self, tmp_path):
        files = {
            **SENSOR_PKG,
            "sim/__init__.py": "",
            "sim/relay.py": """
                from sensors.probe import load_reading

                def forward(server):
                    server.submit(load_reading())
                """,
        }
        result = run_tree(tmp_path, files, rules=["DPL006"])
        assert result.findings == []

    def test_raw_param_name_is_a_source(self, tmp_path):
        files = {
            "aggregation/__init__.py": "",
            "aggregation/direct.py": """
                def push(server, raw_value):
                    server.submit(raw_value)
                """,
        }
        result = run_tree(tmp_path, files, rules=["DPL006"])
        assert [f.rule_id for f in result.findings] == ["DPL006"]

    def test_shape_metadata_is_not_data(self, tmp_path):
        files = {
            "aggregation/__init__.py": "",
            "aggregation/meta.py": """
                def push(server, true_values):
                    n_epochs, n_devices = true_values.shape
                    server.submit(n_devices)
                """,
        }
        result = run_tree(tmp_path, files, rules=["DPL006"])
        assert result.findings == []


# ----------------------------------------------------------------------
# DPL007 — nondeterministic seed material
# ----------------------------------------------------------------------
class TestDpl007:
    def test_cpu_count_into_shard_plan_flagged(self, tmp_path):
        files = {
            "parallel/__init__.py": "",
            "parallel/plan.py": """
                import os

                def plan_shards(n, shards):
                    return [(i, shards) for i in range(shards)]

                def plan(n):
                    shards = os.cpu_count()
                    return plan_shards(n, shards)
                """,
        }
        result = run_tree(tmp_path, files, rules=["DPL007"])
        assert [f.rule_id for f in result.findings] == ["DPL007"]
        f = result.findings[0]
        assert f.severity is Severity.ERROR
        assert "cpu_count" in f.message

    def test_wall_clock_into_seed_kwarg_flagged(self, tmp_path):
        files = {
            "parallel/__init__.py": "",
            "parallel/seeds.py": """
                import time

                def go(make_source):
                    return make_source(seed=time.time())
                """,
        }
        result = run_tree(tmp_path, files, rules=["DPL007"])
        assert [f.rule_id for f in result.findings] == ["DPL007"]
        assert "seed" in result.findings[0].message

    def test_config_derived_seed_is_clean(self, tmp_path):
        files = {
            "parallel/__init__.py": "",
            "parallel/plan.py": """
                DEFAULT_SHARDS = 8

                def plan_shards(n, shards):
                    return [(i, shards) for i in range(shards)]

                def plan(n, shards=DEFAULT_SHARDS):
                    return plan_shards(n, shards)
                """,
        }
        result = run_tree(tmp_path, files, rules=["DPL007"])
        assert result.findings == []

    def test_wall_clock_benchmarking_without_seed_sink_is_clean(self, tmp_path):
        files = {
            "parallel/__init__.py": "",
            "parallel/bench.py": """
                import time

                def bench(fn):
                    start = time.perf_counter()
                    fn()
                    return time.perf_counter() - start
                """,
        }
        result = run_tree(tmp_path, files, rules=["DPL007"])
        assert result.findings == []


# ----------------------------------------------------------------------
# DPL008 — ε-arithmetic drift
# ----------------------------------------------------------------------
class TestDpl008:
    def test_epsilon_literal_arithmetic_flagged(self, tmp_path):
        files = {
            "aggregation/__init__.py": "",
            "aggregation/budget.py": """
                def half_budget(epsilon):
                    return epsilon * 0.5
                """,
        }
        result = run_tree(tmp_path, files, rules=["DPL008"])
        assert [f.rule_id for f in result.findings] == ["DPL008"]
        assert result.findings[0].severity is Severity.WARNING

    def test_epsilon_attribute_source(self, tmp_path):
        files = {
            "runtime/__init__.py": "",
            "runtime/scale.py": """
                def scale(accountant):
                    return accountant.epsilon + 1.0
                """,
        }
        result = run_tree(tmp_path, files, rules=["DPL008"])
        assert [f.rule_id for f in result.findings] == ["DPL008"]

    def test_seam_directories_exempt(self, tmp_path):
        files = {
            "privacy/__init__.py": "",
            "privacy/accounting.py": """
                def half_budget(epsilon):
                    return epsilon * 0.5
                """,
            "mechanisms/__init__.py": "",
            "mechanisms/calib.py": """
                def lam(epsilon, d):
                    return d / (epsilon / 2.0)
                """,
        }
        result = run_tree(tmp_path, files, rules=["DPL008"])
        assert result.findings == []

    def test_validation_comparison_not_flagged(self, tmp_path):
        files = {
            "aggregation/__init__.py": "",
            "aggregation/check.py": """
                def validate(epsilon):
                    if epsilon <= 0:
                        raise ValueError("epsilon must be positive")
                    return epsilon
                """,
        }
        result = run_tree(tmp_path, files, rules=["DPL008"])
        assert result.findings == []


# ----------------------------------------------------------------------
# Engine integration: suppression, baseline, selection
# ----------------------------------------------------------------------
class TestFlowIntegration:
    def test_flow_findings_respect_suppressions(self, tmp_path):
        files = dict(DIRECT_FLOW)
        files["aggregation/relay.py"] = """
            from sensors.probe import load_reading

            def forward(server):
                value = load_reading()
                server.submit(value)  # dplint: allow[DPL006] -- demo path
            """
        result = run_tree(tmp_path, files, rules=["DPL006"])
        assert result.findings == []
        assert result.n_suppressed == 1

    def test_flow_findings_baseline_round_trip(self, tmp_path):
        result = run_tree(tmp_path, DIRECT_FLOW, rules=["DPL006"])
        assert len(result.all_findings) == 1
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(result.all_findings).write(str(baseline_path))
        again = run_tree(
            tmp_path,
            {},  # tree already written
            rules=["DPL006"],
            baseline=str(baseline_path),
        )
        assert again.ok and again.n_baselined == 1

    def test_flow_disabled_by_default(self, tmp_path):
        result = run_tree(tmp_path, DIRECT_FLOW, flow=False)
        assert all(f.rule_id not in FLOW_RULES for f in result.findings)

    def test_selecting_flow_rule_implies_flow(self, tmp_path):
        # flow=False, but an explicit --rules DPL006 still runs the pass.
        result = run_tree(tmp_path, DIRECT_FLOW, rules=["DPL006"], flow=False)
        assert [f.rule_id for f in result.findings] == ["DPL006"]

    def test_per_file_selection_skips_flow(self, tmp_path):
        result = run_tree(tmp_path, DIRECT_FLOW, rules=["DPL001"], flow=True)
        assert result.findings == []
