"""Adversary models: averaging attacker and tail distinguisher."""

import numpy as np
import pytest

from repro.attacks import (
    distinguishing_outputs,
    floor_error,
    run_averaging_attack,
    run_averaging_attack_mechanism,
    run_distinguisher,
)
from repro.errors import ConfigurationError


class TestAveragingMechanismLevel:
    def test_no_budget_error_decays(self, small_thresholding):
        # Averaged over repeats: any single early estimate can be lucky.
        early, late = [], []
        for _ in range(8):
            trace = run_averaging_attack_mechanism(
                small_thresholding, 4.0, 8.0, n_requests=8000
            )
            early.append(trace.relative_errors[2])
            late.append(floor_error(trace))
        assert np.mean(late) < np.mean(early)

    def test_budget_floors_error(self, small_thresholding):
        # Averaged over repeats: a single budget-limited floor is itself a
        # random variable and can occasionally land near the truth.
        nb, wb = [], []
        for _ in range(10):
            nb.append(
                floor_error(
                    run_averaging_attack_mechanism(
                        small_thresholding, 4.0, 8.0, n_requests=8000
                    )
                )
            )
            wb.append(
                floor_error(
                    run_averaging_attack_mechanism(
                        small_thresholding, 4.0, 8.0, n_requests=8000, budget=10.0
                    )
                )
            )
        assert np.mean(wb) > np.mean(nb)

    def test_bigger_budget_lower_floor(self, small_thresholding):
        small_b = run_averaging_attack_mechanism(
            small_thresholding, 4.0, 8.0, n_requests=4000, budget=5.0
        )
        # Averaged over repeats to tame single-trace variance.
        floors_small, floors_big = [], []
        for _ in range(10):
            floors_small.append(
                floor_error(
                    run_averaging_attack_mechanism(
                        small_thresholding, 4.0, 8.0, n_requests=4000, budget=5.0
                    )
                )
            )
            floors_big.append(
                floor_error(
                    run_averaging_attack_mechanism(
                        small_thresholding, 4.0, 8.0, n_requests=4000, budget=200.0
                    )
                )
            )
        assert np.mean(floors_big) < np.mean(floors_small)
        _ = small_b

    def test_cached_count(self, small_thresholding):
        trace = run_averaging_attack_mechanism(
            small_thresholding, 4.0, 8.0, n_requests=100, budget=3.0, per_query_loss=1.0
        )
        assert trace.n_cached == 97

    def test_checkpoints_ascending(self, small_thresholding):
        trace = run_averaging_attack_mechanism(
            small_thresholding, 4.0, 8.0, n_requests=500
        )
        assert np.all(np.diff(trace.checkpoints) > 0)
        assert trace.checkpoints[-1] == 500

    def test_validation(self, small_thresholding):
        with pytest.raises(ConfigurationError):
            run_averaging_attack_mechanism(small_thresholding, 4.0, 0.0)
        with pytest.raises(ConfigurationError):
            run_averaging_attack_mechanism(
                small_thresholding, 4.0, 8.0, budget=1.0, per_query_loss=0.0
            )


class TestAveragingHardwareLevel:
    def test_attack_on_dpbox_is_floored_by_cache(self, dpbox_driver):
        trace = run_averaging_attack(dpbox_driver, 4.0, 8.0, n_requests=300)
        # Budget 100 at ~0.5+/query exhausts well before 300 requests.
        assert trace.n_cached > 0
        assert trace.estimates.size == trace.checkpoints.size


class TestDistinguisher:
    def test_baseline_has_certain_outputs(self, small_baseline):
        only1, only2, both = distinguishing_outputs(small_baseline, 0.0, 8.0)
        assert only1.size > 0 and only2.size > 0 and both.size > 0

    def test_guarded_has_none(self, small_thresholding, small_resampling):
        for mech in (small_thresholding, small_resampling):
            only1, only2, _ = distinguishing_outputs(mech, 0.0, 8.0)
            assert only1.size == 0 and only2.size == 0

    def test_report_consistency(self, small_baseline):
        rep = run_distinguisher(small_baseline, 0.0, 8.0, n_samples=6000)
        assert rep.certain_rate_x1 > 0
        assert 0 <= rep.observed_certain_fraction <= 1
        assert 0 <= rep.bayes_advantage <= 0.5

    def test_same_hypothesis_rejected(self, small_baseline):
        with pytest.raises(ConfigurationError):
            distinguishing_outputs(small_baseline, 4.0, 4.0 + 1e-6)

    def test_observed_matches_exact_rate(self, small_baseline):
        rep = run_distinguisher(small_baseline, 0.0, 8.0, n_samples=40000)
        expected = 0.5 * (rep.certain_rate_x1 + rep.certain_rate_x2)
        assert rep.observed_certain_fraction == pytest.approx(expected, abs=0.005)
