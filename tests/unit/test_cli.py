"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestVerify:
    def test_thresholding_is_ldp(self, capsys):
        code = main(
            [
                "verify",
                "--range", "0", "8",
                "--epsilon", "0.5",
                "--arm", "thresholding",
                "--input-bits", "12",
                "--expect", "ldp",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out and "threshold" in out

    def test_baseline_is_not_ldp(self, capsys):
        code = main(
            [
                "verify",
                "--range", "0", "8",
                "--arm", "baseline",
                "--input-bits", "12",
                "--expect", "not-ldp",
            ]
        )
        assert code == 0
        assert "violated" in capsys.readouterr().out

    def test_expectation_mismatch_fails(self):
        code = main(
            [
                "verify",
                "--range", "0", "8",
                "--arm", "baseline",
                "--input-bits", "12",
                "--expect", "ldp",
            ]
        )
        assert code == 1

    def test_ideal_arm(self, capsys):
        assert main(["verify", "--range", "0", "8", "--arm", "ideal"]) == 0
        assert "0.5" in capsys.readouterr().out


class TestCalibrate:
    def test_prints_both_policies(self, capsys):
        code = main(
            [
                "calibrate",
                "--range", "0", "10",
                "--epsilon", "0.5",
                "--input-bits", "14",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "resampling" in out and "thresholding" in out
        assert "exact calibration" in out


class TestNoise:
    def test_prints_pairs(self, capsys):
        code = main(
            [
                "noise",
                "--range", "0", "8",
                "--arm", "thresholding",
                "--input-bits", "12",
                "--seed", "3",
                "4.0", "2.0",
            ]
        )
        out = capsys.readouterr().out.strip().splitlines()
        assert code == 0
        assert len(out) == 3
        assert all("->" in line for line in out[:2])
        # Every release is budget-accounted (dplint DPL004).
        assert out[2].startswith("budget")
        assert "2 release(s)" in out[2]

    def test_seed_reproducible(self, capsys):
        argv = [
            "noise", "--range", "0", "8", "--arm", "thresholding",
            "--input-bits", "12", "--seed", "9", "4.0",
        ]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second

    def test_out_of_range_value_errors(self, capsys):
        code = main(
            ["noise", "--range", "0", "8", "--arm", "ideal", "99.0"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestDatasets:
    def test_lists_all_seven(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("auto-mpg", "ujiindoorloc", "statlog-heart"):
            assert name in out


class TestLatency:
    @pytest.mark.parametrize("mode", ["threshold", "resample"])
    def test_reports_cycles(self, capsys, mode):
        code = main(["latency", "--mode", mode, "--samples", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean cycles" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSelftest:
    def test_healthy_generator_passes(self, capsys):
        code = main(["selftest", "--seed", "7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASSED" in out
        assert "urng-monobit" in out


class TestOracleCommand:
    def test_frequency_estimation_runs(self, capsys):
        code = main(
            [
                "oracle", "--oracle", "oue", "--categories", "6",
                "--devices", "600", "--epochs", "2", "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "oracle: OUE" in out
        assert "bits/report" in out
        assert "retained reports: 0" in out

    def test_reproducible_for_fixed_seed(self, capsys):
        argv = [
            "oracle", "--oracle", "olh", "--categories", "8",
            "--devices", "500", "--seed", "9",
        ]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first

    def test_heavy_hitters_mode(self, capsys):
        code = main(
            [
                "oracle", "--heavy-hitters", "3", "--domain-bits", "8",
                "--devices", "4000", "--epsilon", "3", "--seed", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "heavy hitters: top-3" in out
        assert "est freq" in out
