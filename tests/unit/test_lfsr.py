"""LFSR correctness: periods, equivalence, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.rng import FibonacciLFSR, GaloisLFSR, MAXIMAL_TAPS


def _period(lfsr, limit):
    start = lfsr.state
    for i in range(1, limit + 1):
        lfsr.step()
        if lfsr.state == start:
            return i
    return None


class TestFibonacci:
    @pytest.mark.parametrize("width", [3, 4, 5, 7, 8])
    def test_maximal_period(self, width):
        lfsr = FibonacciLFSR.maximal(width, seed=1)
        assert _period(lfsr, 2**width) == 2**width - 1

    def test_never_reaches_zero_state(self):
        lfsr = FibonacciLFSR.maximal(5, seed=3)
        for _ in range(2**5):
            lfsr.step()
            assert lfsr.state != 0

    def test_deterministic(self):
        a = FibonacciLFSR.maximal(8, seed=17)
        b = FibonacciLFSR.maximal(8, seed=17)
        assert a.sequence(50) == b.sequence(50)

    def test_next_bits_msb_first(self):
        a = FibonacciLFSR.maximal(8, seed=17)
        b = FibonacciLFSR.maximal(8, seed=17)
        bits = a.sequence(8)
        value = b.next_bits(8)
        assert value == int("".join(map(str, bits)), 2)

    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigurationError):
            FibonacciLFSR(8, (8, 6, 5, 4), seed=0)

    def test_rejects_bad_taps(self):
        with pytest.raises(ConfigurationError):
            FibonacciLFSR(8, (9,), seed=1)

    def test_unknown_maximal_width(self):
        with pytest.raises(ConfigurationError):
            FibonacciLFSR.maximal(6)


class TestGalois:
    @pytest.mark.parametrize("width", [3, 4, 5, 7])
    def test_maximal_period(self, width):
        lfsr = GaloisLFSR.from_taps(width, MAXIMAL_TAPS[width], seed=1)
        assert _period(lfsr, 2**width) == 2**width - 1

    def test_balanced_output(self):
        lfsr = GaloisLFSR.from_taps(8, MAXIMAL_TAPS[8], seed=1)
        n = 2**8 - 1
        ones = sum(lfsr.step() for _ in range(n))
        # Maximal-length sequences have exactly 2^(w-1) ones per period.
        assert ones == 2**7

    def test_rejects_zero_mask(self):
        with pytest.raises(ConfigurationError):
            GaloisLFSR(8, 0, seed=1)

    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigurationError):
            GaloisLFSR(8, 0b10111001, seed=0)


class TestVectorizedStream:
    """bit_stream/draw must advance registers exactly like scalar step()."""

    @pytest.mark.parametrize("width", sorted(MAXIMAL_TAPS))
    @pytest.mark.parametrize("make", [
        lambda w, s: FibonacciLFSR.maximal(w, seed=s),
        lambda w, s: GaloisLFSR.from_taps(w, MAXIMAL_TAPS[w], seed=s),
    ], ids=["fibonacci", "galois"])
    def test_bit_stream_matches_scalar_step(self, width, make):
        n = 3 * width + 7
        vec, ref = make(width, 5), make(width, 5)
        got = list(make(width, 5).bit_stream(n))
        assert got == [ref.step() for _ in range(n)]
        vec.bit_stream(n)
        assert vec.state == ref.state  # registers coherent after the batch

    def test_interleaved_scalar_and_vector(self):
        vec = FibonacciLFSR.maximal(16, seed=77)
        ref = FibonacciLFSR.maximal(16, seed=77)
        out_v, out_r = [], []
        for chunk in (1, 5, 40, 2, 1000, 3):
            out_v.extend(vec.bit_stream(chunk))
            out_v.append(vec.step())
            out_r.extend(ref.step() for _ in range(chunk + 1))
        assert out_v == out_r

    def test_long_stream_beyond_doubling_cap(self):
        # > 2**13-bit chunks exercise the capped cascade level.
        vec = GaloisLFSR.from_taps(31, MAXIMAL_TAPS[31], seed=9)
        ref = GaloisLFSR.from_taps(31, MAXIMAL_TAPS[31], seed=9)
        stream = vec.bit_stream(40_000)
        assert list(stream) == [ref.step() for _ in range(40_000)]
        assert vec.state == ref.state

    def test_draw_matches_next_bits(self):
        a = FibonacciLFSR.maximal(17, seed=123)
        b = FibonacciLFSR.maximal(17, seed=123)
        drawn = a.draw(20, 9)
        assert drawn.tolist() == [b.next_bits(9) for _ in range(20)]

    def test_non_maximal_taps_still_exact(self):
        # The recurrence derivation must not assume maximality.
        vec = FibonacciLFSR(8, (8, 4), seed=33)
        ref = FibonacciLFSR(8, (8, 4), seed=33)
        assert list(vec.bit_stream(500)) == [ref.step() for _ in range(500)]


class TestLfsrSource:
    def test_alphabet_is_one_to_two_pow_bits(self):
        from repro.rng import LfsrSource

        src = LfsrSource(width=15, seed=6)
        codes = src.uniform_codes(4096, 10)
        assert codes.min() >= 1 and codes.max() <= 1 << 10
        assert 1 << 10 in set(codes.tolist())  # zero word remaps to top

    def test_sign_stream_independent_of_codes(self):
        from repro.rng import LfsrSource

        a = LfsrSource(width=20, seed=11)
        b = LfsrSource(width=20, seed=11)
        codes = a.uniform_codes(100, 8)
        bits_after = a.random_bits(50)
        bits_only = b.random_bits(50)
        assert bits_after.tolist() == bits_only.tolist()
        assert codes.size == 100

    @pytest.mark.parametrize("topology", ["fibonacci", "galois"])
    def test_topologies_and_validation(self, topology):
        from repro.rng import LfsrSource

        src = LfsrSource(width=23, seed=4, topology=topology)
        assert src.uniform_codes(10, 12).shape == (10,)
        with pytest.raises(ConfigurationError):
            LfsrSource(width=6)
        with pytest.raises(ConfigurationError):
            LfsrSource(topology="xor-shift")
