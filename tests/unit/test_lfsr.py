"""LFSR correctness: periods, equivalence, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.rng import FibonacciLFSR, GaloisLFSR, MAXIMAL_TAPS


def _period(lfsr, limit):
    start = lfsr.state
    for i in range(1, limit + 1):
        lfsr.step()
        if lfsr.state == start:
            return i
    return None


class TestFibonacci:
    @pytest.mark.parametrize("width", [3, 4, 5, 7, 8])
    def test_maximal_period(self, width):
        lfsr = FibonacciLFSR.maximal(width, seed=1)
        assert _period(lfsr, 2**width) == 2**width - 1

    def test_never_reaches_zero_state(self):
        lfsr = FibonacciLFSR.maximal(5, seed=3)
        for _ in range(2**5):
            lfsr.step()
            assert lfsr.state != 0

    def test_deterministic(self):
        a = FibonacciLFSR.maximal(8, seed=17)
        b = FibonacciLFSR.maximal(8, seed=17)
        assert a.sequence(50) == b.sequence(50)

    def test_next_bits_msb_first(self):
        a = FibonacciLFSR.maximal(8, seed=17)
        b = FibonacciLFSR.maximal(8, seed=17)
        bits = a.sequence(8)
        value = b.next_bits(8)
        assert value == int("".join(map(str, bits)), 2)

    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigurationError):
            FibonacciLFSR(8, (8, 6, 5, 4), seed=0)

    def test_rejects_bad_taps(self):
        with pytest.raises(ConfigurationError):
            FibonacciLFSR(8, (9,), seed=1)

    def test_unknown_maximal_width(self):
        with pytest.raises(ConfigurationError):
            FibonacciLFSR.maximal(6)


class TestGalois:
    @pytest.mark.parametrize("width", [3, 4, 5, 7])
    def test_maximal_period(self, width):
        lfsr = GaloisLFSR.from_taps(width, MAXIMAL_TAPS[width], seed=1)
        assert _period(lfsr, 2**width) == 2**width - 1

    def test_balanced_output(self):
        lfsr = GaloisLFSR.from_taps(8, MAXIMAL_TAPS[8], seed=1)
        n = 2**8 - 1
        ones = sum(lfsr.step() for _ in range(n))
        # Maximal-length sequences have exactly 2^(w-1) ones per period.
        assert ones == 2**7

    def test_rejects_zero_mask(self):
        with pytest.raises(ConfigurationError):
            GaloisLFSR(8, 0, seed=1)

    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigurationError):
            GaloisLFSR(8, 0b10111001, seed=0)
