"""Frequency-oracle arms: calibration exactness, channels, unbiasedness."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mechanisms import (
    KaryRandomizedResponse,
    OptimizedLocalHashing,
    OptimizedUnaryEncoding,
    make_oracle,
)
from repro.mechanisms.oracles import (
    calibrate_krr_thresholds,
    calibrate_oue_threshold,
    optimal_hash_range,
)
from repro.queries import estimate_frequencies, frequency_variance
from repro.rng import SplitStreamSource
from repro.runtime import ReleasePipeline


# ---------------------------------------------------------------------
# Calibration: dyadic thresholds realize the claimed channel exactly
# ---------------------------------------------------------------------
class TestCalibration:
    @pytest.mark.parametrize("eps", [0.3, 1.0, 2.0, 4.0])
    @pytest.mark.parametrize("bits", [12, 16, 20])
    def test_oue_threshold_realizes_at_most_eps(self, eps, bits):
        t = calibrate_oue_threshold(eps, bits)
        total = 1 << bits
        realized = math.log((total - t) / t)
        assert realized <= eps + 1e-12
        # Tightness: one step looser would exceed the target.
        if t > 1:
            assert math.log((total - (t - 1)) / (t - 1)) > eps

    @pytest.mark.parametrize("eps", [0.5, 1.0, 2.0, 3.5])
    @pytest.mark.parametrize("g", [2, 3, 5, 16, 64])
    def test_krr_thresholds_exactly_symmetric(self, eps, g):
        t, c = calibrate_krr_thresholds(eps, g, 16)
        total = 1 << 16
        # The nonzero-offset codes split into g-1 EQUAL blocks.
        assert (total - t) % (g - 1) == 0
        assert (total - t) // (g - 1) == c
        assert math.log(t / c) <= eps + 1e-9
        assert t > c >= 1

    def test_krr_rejects_unresolvable_domain(self):
        with pytest.raises(ConfigurationError):
            calibrate_krr_thresholds(1.0, 1 << 12, 10)

    def test_oue_rejects_tiny_epsilon_on_coarse_grid(self):
        with pytest.raises(ConfigurationError):
            calibrate_oue_threshold(1e-6, 2)

    def test_positive_epsilon_required(self):
        for fn in (
            lambda: calibrate_oue_threshold(0.0, 16),
            lambda: calibrate_krr_thresholds(-1.0, 4, 16),
            lambda: optimal_hash_range(0.0),
        ):
            with pytest.raises(ConfigurationError):
                fn()

    def test_optimal_hash_range(self):
        assert optimal_hash_range(math.log(3.0)) == 4  # e^eps + 1 = 4
        assert optimal_hash_range(0.01) == 2


# ---------------------------------------------------------------------
# Channel realization: empirical flips match the dyadic thresholds
# ---------------------------------------------------------------------
class TestRealizedChannels:
    def test_krr_keep_rate(self):
        d, eps, n = 5, 1.5, 60000
        o = KaryRandomizedResponse(d, eps, source=SplitStreamSource(2))
        values = np.zeros(n, dtype=np.int64)
        reports = o.report(values)
        p, q = o.estimator_params()
        kept = float(np.mean(reports == 0))
        assert kept == pytest.approx(p, abs=0.01)
        # Each nonzero report value appears with probability exactly q.
        for v in range(1, d):
            assert float(np.mean(reports == v)) == pytest.approx(q, abs=0.01)

    def test_oue_per_bit_probabilities(self):
        d, eps, n = 4, 2.0, 50000
        o = OptimizedUnaryEncoding(d, eps, source=SplitStreamSource(3))
        values = np.zeros(n, dtype=np.int64)  # one-hot bit 0 set
        reports = o.report(values)
        p, q = o.estimator_params()
        assert p == 0.5
        assert float(reports[:, 0].mean()) == pytest.approx(0.5, abs=0.01)
        for j in range(1, d):
            assert float(reports[:, j].mean()) == pytest.approx(q, abs=0.01)

    def test_olh_keep_rate(self):
        d, eps, n = 20, 2.0, 60000
        o = OptimizedLocalHashing(d, eps, source=SplitStreamSource(4))
        values = np.full(n, 7, dtype=np.int64)
        encoded = o.encode(values)
        reports = o.perturb(encoded)
        p_keep = o.t_keep / float(1 << o.bits)
        assert float(np.mean(reports == encoded)) == pytest.approx(p_keep, abs=0.01)

    def test_exact_epsilon_at_most_claim(self):
        for kind in ("krr", "oue", "olh"):
            for eps in (0.5, 1.0, 2.0):
                o = make_oracle(kind, 8, eps, source=SplitStreamSource(0))
                assert o.exact_epsilon() <= eps + 1e-9
                assert o.claimed_loss_bound == eps


# ---------------------------------------------------------------------
# Unbiasedness: estimates land within error bars of the truth
# ---------------------------------------------------------------------
class TestUnbiasedness:
    @pytest.mark.parametrize("kind", ["krr", "oue", "olh"])
    def test_estimates_within_error_bars(self, kind):
        rng = np.random.default_rng(6)
        d, n, eps = 8, 40000, 2.0
        true = rng.choice(d, size=n, p=np.r_[0.5, np.full(7, 0.5 / 7)])
        f_true = np.bincount(true, minlength=d) / n
        o = make_oracle(kind, d, eps, source=SplitStreamSource(21))
        est = estimate_frequencies(o, o.report(true))
        z = np.abs(est.frequencies - f_true) / est.std_errors()
        assert z.max() < 5.0

    def test_variance_formula_matches_empirical(self):
        # Repeated trials of a fixed dataset: the spread of f_hat_0 must
        # match the closed form within Monte Carlo tolerance.
        d, n, eps, trials = 4, 2000, 1.0, 60
        values = np.zeros(n, dtype=np.int64)
        estimates = []
        for t in range(trials):
            o = KaryRandomizedResponse(d, eps, source=SplitStreamSource(100 + t))
            est = estimate_frequencies(o, o.report(values))
            estimates.append(est.frequencies[0])
        p, q = KaryRandomizedResponse(
            d, eps, source=SplitStreamSource(0)
        ).estimator_params()
        predicted = frequency_variance(n, p, q, 1.0)
        observed = float(np.var(estimates))
        assert observed == pytest.approx(predicted, rel=0.6)


# ---------------------------------------------------------------------
# OLH public randomness: pure function of the global user index
# ---------------------------------------------------------------------
class TestOlhUserIndexing:
    def test_hash_independent_of_batch_layout(self):
        o = OptimizedLocalHashing(16, 2.0, source=SplitStreamSource(5))
        values = np.arange(16, dtype=np.int64) % 16
        whole = o.encode(values, user_offset=100)
        split = np.concatenate(
            [o.encode(values[:9], user_offset=100), o.encode(values[9:], user_offset=109)]
        )
        np.testing.assert_array_equal(whole, split)

    def test_explicit_index_arrays(self):
        o = OptimizedLocalHashing(16, 2.0, source=SplitStreamSource(5))
        values = np.array([3, 5, 11], dtype=np.int64)
        idx = np.array([40, 2, 977], dtype=np.int64)
        enc = o.encode(values, user_offset=idx)
        for j in range(3):
            assert enc[j] == o.encode(values[j : j + 1], user_offset=int(idx[j]))[0]
        # support counting accepts the same index array
        counts = o.support_counts(enc, user_offset=idx)
        assert counts.sum() >= 3  # every true value supports itself

    def test_mismatched_index_array_rejected(self):
        o = OptimizedLocalHashing(8, 1.0, source=SplitStreamSource(5))
        with pytest.raises(ConfigurationError):
            o.encode(np.array([1, 2]), user_offset=np.array([0, 1, 2]))


# ---------------------------------------------------------------------
# Interface hygiene
# ---------------------------------------------------------------------
class TestInterface:
    def test_make_oracle_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_oracle("rappor", 4, 1.0)

    def test_category_validation(self):
        o = KaryRandomizedResponse(4, 1.0, source=SplitStreamSource(0))
        with pytest.raises(ConfigurationError):
            o.encode(np.array([4]))
        with pytest.raises(ConfigurationError):
            o.encode(np.array([-1]))
        with pytest.raises(ConfigurationError):
            o.encode(np.array([0.5]))
        with pytest.raises(ConfigurationError):
            o.encode(np.array([], dtype=np.int64))

    def test_oue_shape_validation(self):
        o = OptimizedUnaryEncoding(4, 1.0, source=SplitStreamSource(0))
        with pytest.raises(ConfigurationError):
            o.perturb_request(np.zeros((3, 5), dtype=np.int64))
        with pytest.raises(ConfigurationError):
            o.support_counts(np.zeros((3, 5), dtype=np.int64))

    def test_report_bits(self):
        assert KaryRandomizedResponse(16, 1.0).report_bits == 4
        assert OptimizedUnaryEncoding(16, 1.0).report_bits == 16
        olh = OptimizedLocalHashing(1024, 2.0)
        assert olh.report_bits == math.ceil(math.log2(olh.g))

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            KaryRandomizedResponse(1, 1.0)
        with pytest.raises(ConfigurationError):
            OptimizedUnaryEncoding(4, 0.0)
        with pytest.raises(ConfigurationError):
            OptimizedLocalHashing(4, 1.0, g=1)

    def test_reports_are_release_events(self):
        # Every oracle report is one pipeline release with the right
        # batch size and mechanism label.
        from repro.runtime import RingBufferSink

        ring = RingBufferSink()
        pipe = ReleasePipeline(sinks=[ring])
        o = make_oracle("krr", 4, 1.0, source=SplitStreamSource(0), pipeline=pipe)
        o.report(np.array([0, 1, 2, 3, 0]))
        assert len(ring.events) == 1
        ev = ring.events[0]
        assert ev.mechanism == "k-RR"
        assert ev.batch == 5
        assert ev.guard == "none"
