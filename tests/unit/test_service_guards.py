"""Pre-admission guard chain: ALLOW / WARN / BLOCK / REPAIR semantics.

Unit tests for each guard's decision table and the chain's trichotomy
fold (admitted / repaired-with-delta / blocked-with-reason).  The
property-level "no silent drops" statement lives in
``tests/property/test_service_guard_properties.py``.
"""

import pytest

from repro.errors import ConfigurationError
from repro.service import (
    EpochBudgetGuard,
    GuardChain,
    RateLimitGuard,
    SchemaGuard,
    Verdict,
    default_chain,
)


def submit(epoch=0, ids=("a", "b"), values=(1.0, 2.0), loss=1.0, **extra):
    req = {
        "op": "submit",
        "epoch": epoch,
        "device_ids": list(ids),
        "values": list(values),
        "claimed_loss": loss,
    }
    req.update(extra)
    return req


class TestSchemaGuard:
    def test_clean_batch_allows(self):
        d = SchemaGuard().check(submit())
        assert d.verdict is Verdict.ALLOW
        assert d.request["values"] == [1.0, 2.0]

    def test_numeric_string_value_repaired_with_delta(self):
        d = SchemaGuard().check(submit(values=("3.25", 2.0)))
        assert d.verdict is Verdict.REPAIR
        assert d.request["values"] == [3.25, 2.0]
        assert any("3.25" in entry for entry in d.delta)

    def test_integral_float_epoch_repaired(self):
        d = SchemaGuard().check(submit(epoch=3.0))
        assert d.verdict is Verdict.REPAIR
        assert d.request["epoch"] == 3

    def test_unknown_field_dropped_with_delta(self):
        d = SchemaGuard().check(submit(debug="x"))
        assert d.verdict is Verdict.REPAIR
        assert "debug" not in d.request
        assert any("debug" in entry for entry in d.delta)

    def test_strict_mode_blocks_coercibles(self):
        guard = SchemaGuard(coerce=False)
        assert guard.check(submit(values=("3.25",), ids=("a",))).verdict \
            is Verdict.BLOCK
        assert guard.check(submit(epoch=3.0)).verdict is Verdict.BLOCK
        assert guard.check(submit(debug="x")).verdict is Verdict.BLOCK

    @pytest.mark.parametrize(
        "mutation",
        [
            {"epoch": -1},
            {"epoch": "zero"},
            {"values": []},
            {"values": [float("nan")]},
            {"values": [float("inf"), 1.0]},
            {"values": ["not a number", 1.0]},
            {"device_ids": ["a"]},  # length mismatch vs 2 values
            {"device_ids": ["a", ""]},
            {"device_ids": ["a", 7]},
            {"claimed_loss": 0.0},
            {"claimed_loss": -1.0},
            {"claimed_loss": float("nan")},
            {"claimed_loss": "much"},
        ],
    )
    def test_malformed_blocks_with_reason(self, mutation):
        req = submit()
        req.update(mutation)
        if "device_ids" in mutation:
            req["values"] = [1.0, 2.0]
        d = SchemaGuard().check(req)
        assert d.verdict is Verdict.BLOCK
        assert d.reason

    def test_oversized_batch_blocks(self):
        guard = SchemaGuard(max_batch=4)
        d = guard.check(
            submit(ids=[f"d{i}" for i in range(5)], values=[1.0] * 5)
        )
        assert d.verdict is Verdict.BLOCK
        assert "max_batch" in d.reason

    def test_counts_batch(self):
        guard = SchemaGuard()
        ok = guard.check(
            {"op": "submit_counts", "epoch": 0, "counts": [1, 2, 3],
             "n_reports": 6, "claimed_loss": 1.0}
        )
        assert ok.verdict is Verdict.ALLOW
        bad = guard.check(
            {"op": "submit_counts", "epoch": 0, "counts": [1, -2, 3],
             "n_reports": 6, "claimed_loss": 1.0}
        )
        assert bad.verdict is Verdict.BLOCK

    def test_unknown_op_blocks(self):
        d = SchemaGuard().check({"op": "exfiltrate"})
        assert d.verdict is Verdict.BLOCK


class TestEpochBudgetGuard:
    def test_epoch_beyond_horizon_blocks(self):
        g = EpochBudgetGuard(epoch_horizon=10)
        assert g.check(submit(epoch=11)).verdict is Verdict.BLOCK
        assert g.check(submit(epoch=10)).verdict is Verdict.ALLOW

    def test_absurd_loss_blocks(self):
        g = EpochBudgetGuard(max_claimed_loss=4.0)
        assert g.check(submit(loss=4.5)).verdict is Verdict.BLOCK

    def test_high_loss_warns(self):
        g = EpochBudgetGuard(max_claimed_loss=4.0)  # warn level 2.0
        d = g.check(submit(loss=3.0))
        assert d.verdict is Verdict.WARN
        assert "warning level" in d.reason

    def test_device_budget_tracks_cumulative_loss(self):
        g = EpochBudgetGuard(device_budget=2.0)
        for epoch in (0, 1):
            req = submit(epoch=epoch, loss=1.0)
            d = g.check(req)
            assert d.verdict is Verdict.ALLOW
            d.commit(req)
        d = g.check(submit(epoch=2, loss=1.0))
        assert d.verdict is Verdict.BLOCK
        assert "past budget" in d.reason

    def test_check_charges_nothing_until_commit(self):
        # The busy-retry contract: a check whose batch the queue refused
        # must not have consumed budget — same batch, still admissible.
        g = EpochBudgetGuard(device_budget=1.0)
        assert g.check(submit(loss=1.0)).verdict is Verdict.ALLOW
        assert g.check(submit(loss=1.0)).verdict is Verdict.ALLOW
        assert g._spent == {}

    def test_spend_map_lru_bounded(self):
        g = EpochBudgetGuard(device_budget=10.0, max_devices_tracked=2)
        for name in ("a", "b", "c"):
            req = submit(ids=(name,), values=(1.0,), loss=1.0)
            g.check(req).commit(req)
        assert set(g._spent) == {"b", "c"}  # least-recently-charged evicted


class TestRateLimitGuard:
    def test_under_limit_allows(self):
        g = RateLimitGuard(per_epoch_limit=1)
        first = submit()
        d = g.check(first)
        assert d.verdict is Verdict.ALLOW
        d.commit(first)
        # Same devices, different epoch: a fresh budget.
        assert g.check(submit(epoch=1)).verdict is Verdict.ALLOW

    def test_uncommitted_check_consumes_no_allowance(self):
        # A queue-refused (busy) batch never reached the server, so its
        # devices' per-epoch allowance must still be intact on retry.
        g = RateLimitGuard(per_epoch_limit=1)
        assert g.check(submit()).verdict is Verdict.ALLOW
        assert g.check(submit()).verdict is Verdict.ALLOW
        assert g._seen == {}

    def test_duplicate_device_repaired_with_recorded_drop(self):
        g = RateLimitGuard(per_epoch_limit=1)
        first = submit()
        g.check(first).commit(first)
        d = g.check(submit(ids=("a", "c"), values=(9.0, 4.0)))
        assert d.verdict is Verdict.REPAIR
        assert d.request["device_ids"] == ["c"]
        assert d.request["values"] == [4.0]
        assert len(d.delta) == 1 and "'a'" in d.delta[0]

    def test_in_batch_duplicates_count(self):
        g = RateLimitGuard(per_epoch_limit=1)
        d = g.check(submit(ids=("a", "a"), values=(1.0, 2.0)))
        assert d.verdict is Verdict.REPAIR
        assert d.request["values"] == [1.0]

    def test_fully_over_limit_blocks_instead_of_empty_repair(self):
        g = RateLimitGuard(per_epoch_limit=1)
        first = submit()
        g.check(first).commit(first)
        d = g.check(submit())
        assert d.verdict is Verdict.BLOCK
        assert "rate limit" in d.reason

    def test_counts_batches_not_rate_limited(self):
        g = RateLimitGuard(per_epoch_limit=1)
        req = {"op": "submit_counts", "epoch": 0, "counts": [1, 2],
               "n_reports": 3, "claimed_loss": 1.0}
        assert g.check(req).verdict is Verdict.ALLOW
        assert g.check(req).verdict is Verdict.ALLOW

    def test_epoch_state_bounded(self):
        g = RateLimitGuard(per_epoch_limit=1, max_epochs_tracked=2)
        for epoch in range(5):
            req = submit(epoch=epoch)
            g.check(req).commit(req)
        assert len(g._seen) <= 2


class TestGuardChain:
    def test_empty_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            GuardChain([])

    def test_block_stops_the_chain(self):
        chain = default_chain(max_claimed_loss=4.0)
        outcome = chain.check(submit(loss=100.0))
        assert outcome.verdict == "blocked"
        assert outcome.guard == "epoch-budget"
        assert not outcome.admitted

    def test_repairs_accumulate_across_guards(self):
        chain = default_chain()
        chain.check(submit()).commit()  # land device "a" for epoch 0
        outcome = chain.check(
            submit(ids=("a", "c"), values=("5.5", 1.0))
        )
        assert outcome.verdict == "repaired"
        assert outcome.admitted
        # Schema coercion delta AND rate-limit drop delta both recorded.
        assert any("5.5" in e for e in outcome.delta)
        assert any("rate limit" in e for e in outcome.delta)
        assert outcome.request["device_ids"] == ["c"]

    def test_unapplied_check_leaves_state_untouched(self):
        # The high-severity backpressure bug: a batch refused at the
        # queue (busy) must not have charged rate/budget state, or its
        # own retry becomes "every report over rate limit".
        chain = default_chain()
        assert chain.check(submit()).verdict == "admitted"  # refused, no commit
        retry = chain.check(submit())
        assert retry.verdict == "admitted"
        retry.commit()
        assert chain.check(submit()).verdict == "blocked"

    def test_commit_is_once_only(self):
        outcome = default_chain().check(submit())
        outcome.commit()
        with pytest.raises(ConfigurationError):
            outcome.commit()

    def test_blocked_outcome_cannot_commit(self):
        outcome = default_chain(max_claimed_loss=4.0).check(submit(loss=100.0))
        assert outcome.verdict == "blocked"
        with pytest.raises(ConfigurationError):
            outcome.commit()

    def test_budget_charges_only_surviving_reports(self):
        chain = default_chain(device_budget=2.0)
        chain.check(submit(ids=("a",), values=(1.0,))).commit()
        # "a" is at its 1/epoch limit: the repair drops its report, so
        # its budget must not be charged for a report never folded.
        outcome = chain.check(submit(ids=("a", "b"), values=(9.0, 2.0)))
        assert outcome.verdict == "repaired"
        assert outcome.request["device_ids"] == ["b"]
        outcome.commit()
        # spent(a) is still 1.0, so a fresh-epoch report fits budget 2.0.
        assert chain.check(submit(epoch=1, ids=("a",), values=(1.0,))).verdict \
            == "admitted"

    def test_clean_admission_carries_no_delta(self):
        outcome = default_chain().check(submit())
        assert outcome.verdict == "admitted"
        assert outcome.delta == ()
        assert outcome.guard == "chain"

    def test_warnings_recorded_on_admission(self):
        chain = default_chain(max_claimed_loss=4.0)
        outcome = chain.check(submit(loss=3.0))
        assert outcome.verdict == "admitted"
        assert outcome.warnings and "warning level" in outcome.warnings[0]

    def test_repair_must_record_delta(self):
        from repro.service.guards import Guard

        class BadGuard(Guard):
            name = "bad"

            def check(self, request):
                return self.repair(dict(request), [])

        with pytest.raises(ConfigurationError):
            BadGuard().check(submit())
