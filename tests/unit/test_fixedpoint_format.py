"""QFormat: ranges, steps, representability."""

import pytest

from repro.errors import ConfigurationError
from repro.fixedpoint import DPBOX_NOISE_FORMAT, QFormat


class TestConstruction:
    def test_basic_signed(self):
        fmt = QFormat(total_bits=8, frac_bits=4)
        assert fmt.signed
        assert fmt.int_bits == 3

    def test_unsigned_int_bits(self):
        fmt = QFormat(total_bits=8, frac_bits=4, signed=False)
        assert fmt.int_bits == 4

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            QFormat(total_bits=0, frac_bits=0)

    def test_rejects_one_bit_signed(self):
        with pytest.raises(ConfigurationError):
            QFormat(total_bits=1, frac_bits=0, signed=True)

    def test_one_bit_unsigned_allowed(self):
        fmt = QFormat(total_bits=1, frac_bits=0, signed=False)
        assert fmt.max_code == 1

    def test_frozen(self):
        fmt = QFormat(total_bits=8, frac_bits=4)
        with pytest.raises(Exception):
            fmt.total_bits = 10


class TestRanges:
    def test_signed_code_range(self):
        fmt = QFormat(total_bits=8, frac_bits=0)
        assert fmt.min_code == -128
        assert fmt.max_code == 127

    def test_unsigned_code_range(self):
        fmt = QFormat(total_bits=8, frac_bits=0, signed=False)
        assert fmt.min_code == 0
        assert fmt.max_code == 255

    def test_step(self):
        assert QFormat(total_bits=8, frac_bits=4).step == 1 / 16

    def test_negative_frac_bits_coarse_grid(self):
        fmt = QFormat(total_bits=8, frac_bits=-2)
        assert fmt.step == 4.0

    def test_value_range(self):
        fmt = QFormat(total_bits=4, frac_bits=2)
        assert fmt.min_value == -2.0
        assert fmt.max_value == 1.75

    def test_num_codes(self):
        assert QFormat(total_bits=10, frac_bits=0).num_codes == 1024


class TestRepresentable:
    def test_on_grid_in_range(self):
        fmt = QFormat(total_bits=8, frac_bits=4)
        assert fmt.representable(0.25)

    def test_off_grid(self):
        fmt = QFormat(total_bits=8, frac_bits=4)
        assert not fmt.representable(0.3)

    def test_out_of_range(self):
        fmt = QFormat(total_bits=8, frac_bits=4)
        assert not fmt.representable(100.0)

    def test_extremes_representable(self):
        fmt = QFormat(total_bits=8, frac_bits=4)
        assert fmt.representable(fmt.min_value)
        assert fmt.representable(fmt.max_value)


class TestDescribe:
    def test_signed_notation(self):
        assert QFormat(total_bits=20, frac_bits=12).describe() == "sQ7.12"

    def test_unsigned_notation(self):
        assert QFormat(total_bits=8, frac_bits=8, signed=False).describe() == "uQ0.8"


class TestDpboxFormat:
    def test_is_20_bit(self):
        assert DPBOX_NOISE_FORMAT.total_bits == 20

    def test_signed(self):
        assert DPBOX_NOISE_FORMAT.signed
