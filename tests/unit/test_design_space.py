"""Datapath design-space exploration (Section III-D sizing claims)."""

import pytest

from repro.core import design_point, minimum_input_bits
from repro.errors import CalibrationError, ConfigurationError


class TestDesignPoint:
    def test_feasible_point(self):
        p = design_point(10.0, 0.5, input_bits=14, range_frac_bits=6)
        assert p.threshold > 0
        assert p.worst_loss_bound == 1.0

    def test_infeasible_raises(self):
        with pytest.raises(CalibrationError):
            design_point(10.0, 0.0625, input_bits=6, range_frac_bits=6)

    def test_resample_reports_acceptance(self):
        p = design_point(10.0, 0.5, input_bits=14, range_frac_bits=6, mode="resample")
        assert p.edge_acceptance is not None
        assert 0.5 < p.edge_acceptance <= 1.0

    def test_threshold_mode_no_acceptance(self):
        p = design_point(10.0, 0.5, input_bits=14, range_frac_bits=6)
        assert p.edge_acceptance is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            design_point(0.0, 0.5, input_bits=12)


class TestMinimumInputBits:
    def test_monotone_in_epsilon(self):
        """Section III-D's direction: smaller eps needs wider datapaths."""
        widths = [
            minimum_input_bits(10.0, eps, range_frac_bits=6).input_bits
            for eps in (1.0, 0.25, 0.0625)
        ]
        assert widths == sorted(widths)
        assert widths[-1] > widths[0]

    def test_returned_point_is_minimal(self):
        p = minimum_input_bits(10.0, 0.25, range_frac_bits=6)
        with pytest.raises(CalibrationError):
            design_point(10.0, 0.25, input_bits=p.input_bits - 1, range_frac_bits=6)

    def test_acceptance_floor_costs_bits(self):
        cheap = minimum_input_bits(10.0, 0.5, range_frac_bits=6, mode="resample")
        efficient = minimum_input_bits(
            10.0, 0.5, range_frac_bits=6, mode="resample", min_acceptance=0.95
        )
        assert efficient.input_bits >= cheap.input_bits
        assert efficient.edge_acceptance is not None
        assert efficient.edge_acceptance >= 0.95

    def test_unreachable_target_raises(self):
        with pytest.raises(CalibrationError):
            minimum_input_bits(10.0, 0.01, range_frac_bits=6, max_bits=8)

    def test_acceptance_floor_needs_resample_mode(self):
        with pytest.raises(ConfigurationError):
            minimum_input_bits(10.0, 0.5, min_acceptance=0.9, mode="threshold")

    def test_finer_sensor_resolution_needs_more_bits(self):
        coarse = minimum_input_bits(10.0, 0.25, range_frac_bits=5).input_bits
        fine = minimum_input_bits(10.0, 0.25, range_frac_bits=8).input_bits
        assert fine >= coarse
