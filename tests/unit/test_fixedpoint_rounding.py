"""Rounding modes."""

import numpy as np
import pytest

from repro.fixedpoint import RoundingMode, round_scaled


class TestNearest:
    def test_half_away_positive(self):
        assert round_scaled(2.5, RoundingMode.NEAREST) == 3.0

    def test_half_away_negative(self):
        assert round_scaled(-2.5, RoundingMode.NEAREST) == -3.0

    def test_plain(self):
        assert round_scaled(2.4, RoundingMode.NEAREST) == 2.0


class TestNearestEven:
    def test_ties_to_even_up(self):
        assert round_scaled(1.5, RoundingMode.NEAREST_EVEN) == 2.0

    def test_ties_to_even_down(self):
        assert round_scaled(2.5, RoundingMode.NEAREST_EVEN) == 2.0


class TestDirected:
    def test_floor_negative(self):
        assert round_scaled(-1.2, RoundingMode.FLOOR) == -2.0

    def test_ceil_negative(self):
        assert round_scaled(-1.2, RoundingMode.CEIL) == -1.0

    def test_truncate_negative(self):
        assert round_scaled(-1.8, RoundingMode.TRUNCATE) == -1.0

    def test_truncate_positive(self):
        assert round_scaled(1.8, RoundingMode.TRUNCATE) == 1.0


class TestArrayBehaviour:
    def test_array_in_array_out(self):
        out = round_scaled(np.array([0.4, 0.6, -0.5]), RoundingMode.NEAREST)
        assert isinstance(out, np.ndarray)
        np.testing.assert_array_equal(out, [0.0, 1.0, -1.0])

    def test_scalar_in_scalar_out(self):
        out = round_scaled(0.4)
        assert isinstance(out, float)

    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_integers_are_fixed_points(self, mode):
        np.testing.assert_array_equal(
            round_scaled(np.array([-3.0, 0.0, 7.0]), mode), [-3.0, 0.0, 7.0]
        )
