"""Multi-sensor shared budget observed through the event stream.

Satellite coverage for the pipeline refactor: N channels drawing on one
budget, caching after exhaustion, and replenishment ordering — all
asserted from emitted :class:`~repro.runtime.ReleaseEvent`s rather than
box internals.
"""

import numpy as np
import pytest

from repro.core import GuardMode
from repro.core.multisensor import ChannelConfig, MultiSensorDPBox
from repro.errors import BudgetExhaustedError
from repro.mechanisms import SensorSpec
from repro.runtime import ReleasePipeline, RingBufferSink


def make_box(budget=2.0, cache_on_exhaustion=True, n_channels=2):
    pipe = ReleasePipeline()
    ring = pipe.add_sink(RingBufferSink())
    box = MultiSensorDPBox(
        [
            ChannelConfig(
                name=f"s{i}",
                sensor=SensorSpec(0.0, 8.0),
                epsilon=0.5,
                guard_mode=GuardMode.THRESHOLD,
                input_bits=12,
            )
            for i in range(n_channels)
        ],
        budget=budget,
        cache_on_exhaustion=cache_on_exhaustion,
        pipeline=pipe,
    )
    return box, ring


def drain(box, n_requests=16):
    """Alternate requests over all channels until ``n_requests`` served."""
    names = box.channel_names
    return [
        box.request(names[i % len(names)], 2.0 + (i % 3)) for i in range(n_requests)
    ]


class TestSharedBudgetEvents:
    def test_one_event_per_request_with_channel(self):
        box, ring = make_box()
        drain(box, 6)
        assert len(ring) == 6
        assert [e.channel for e in ring.events] == ["s0", "s1"] * 3

    def test_events_reconstruct_shared_trajectory(self):
        """All channels debit ONE budget; events prove it additively."""
        box, ring = make_box(budget=2.0)
        drain(box, 16)
        remaining = 2.0
        for event in ring.events:
            remaining -= event.charged
            assert event.budget_remaining == pytest.approx(remaining, abs=1e-12)
        assert box.remaining_budget == pytest.approx(remaining, abs=1e-12)
        # Both channels charged against the same pool before it drained.
        spenders = {e.channel for e in ring.events if e.charged > 0}
        assert spenders == {"s0", "s1"}

    def test_total_disclosed_loss_matches_events(self):
        box, ring = make_box(budget=2.0)
        drain(box, 16)
        assert box.total_disclosed_loss() == pytest.approx(
            sum(e.charged for e in ring.events), abs=1e-12
        )


class TestCachingAfterExhaustion:
    def test_cache_hits_charge_nothing(self):
        box, ring = make_box(budget=2.0)
        replies = drain(box, 16)
        events = ring.events
        hits = [e for e in events if e.cache_hits]
        assert hits, "budget never drained into the cache"
        assert all(e.charged == 0.0 for e in hits)
        # A replay leaves the shared budget exactly where it was.  (The
        # budget can still move *between* hits: segment charging is
        # output-adaptive, so a cheap central draw on one channel may be
        # affordable after another channel's tail draw was refused.)
        for i, event in enumerate(events):
            if event.cache_hits:
                assert event.budget_remaining == events[i - 1].budget_remaining
        # Replies and events agree on which requests were replays.
        assert [r.from_cache for r in replies] == [
            bool(e.cache_hits) for e in ring.events
        ]

    def test_replayed_value_is_channels_last_fresh_release(self):
        box, ring = make_box(budget=2.0)
        replies = drain(box, 16)
        last_fresh = {}
        for reply in replies:
            if not reply.from_cache:
                last_fresh[reply.channel] = reply.value
            else:
                assert reply.value == last_fresh[reply.channel]

    def test_exhaustion_without_cache_emits_then_raises(self):
        box, ring = make_box(budget=2.0, cache_on_exhaustion=False)
        with pytest.raises(BudgetExhaustedError):
            drain(box, 32)
        event = ring.events[-1]
        assert event.exhausted
        assert event.budget_remaining is None  # refused before any charge
        assert event.channel in box.channel_names


class TestReplenishmentOrdering:
    def test_charging_resumes_only_after_replenish(self):
        box, ring = make_box(budget=2.0)
        drain(box, 12)
        # The cheapest segment costs 0.5, so at most 4 of the 12
        # requests were fresh — the budget has drained into the cache.
        assert any(e.cache_hits for e in ring.events)
        n_before = len(ring)
        box.replenish()
        assert box.remaining_budget == 2.0  # replenish emits nothing
        assert len(ring) == n_before
        reply = box.request("s0", 3.0)
        event = ring.events[-1]
        assert not reply.from_cache
        assert event.charged > 0.0
        assert event.budget_remaining == pytest.approx(
            2.0 - event.charged, abs=1e-12
        )

    def test_trajectory_restarts_from_full_budget(self):
        box, ring = make_box(budget=2.0)
        drain(box, 12)
        box.replenish()
        start = len(ring)
        drain(box, 8)
        remaining = 2.0
        for event in ring.events[start:]:
            remaining -= event.charged
            assert event.budget_remaining == pytest.approx(remaining, abs=1e-12)
