"""Pseudo-rules DPL900/DPL901/DPL902 through the engine's run() path,
their baseline interaction, and the atomic baseline write."""

from __future__ import annotations

import os
import textwrap

import pytest

from repro.lint.baseline import Baseline
from repro.lint.engine import (
    BAD_SUPPRESSION_RULE,
    STALE_SUPPRESSION_RULE,
    SYNTAX_ERROR_RULE,
    LintConfig,
    LintEngine,
)
from repro.lint.findings import Severity


def run_tree(tmp_path, files, rules=None, flow=True, baseline=None):
    for rel, src in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(src))
    config = LintConfig(
        rule_ids=rules,
        flow=flow,
        root=str(tmp_path),
        baseline_path=baseline,
    )
    return LintEngine(config).run([str(tmp_path)])


# ----------------------------------------------------------------------
# DPL900 — syntax errors, via the full run() path
# ----------------------------------------------------------------------
class TestDpl900:
    FILES = {"mechanisms/broken.py": "def broken(:\n"}

    def test_reported_from_run(self, tmp_path):
        result = run_tree(tmp_path, self.FILES)
        assert [f.rule_id for f in result.findings] == [SYNTAX_ERROR_RULE]
        assert result.findings[0].severity is Severity.ERROR
        assert result.findings[0].path == "mechanisms/broken.py"

    def test_baseline_absorbs_it(self, tmp_path):
        first = run_tree(tmp_path, self.FILES)
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(first.all_findings).write(str(baseline_path))
        again = run_tree(tmp_path, {}, baseline=str(baseline_path))
        assert again.ok and again.n_baselined == 1

    def test_unparsable_file_does_not_break_flow_pass(self, tmp_path):
        """The flow graph is built from the files that *do* parse."""
        files = {
            **self.FILES,
            "sensors/__init__.py": "",
            "sensors/probe.py": "def load_reading():\n    return 1.0\n",
            "aggregation/__init__.py": "",
            "aggregation/relay.py": """
                from sensors.probe import load_reading

                def forward(server):
                    server.submit(load_reading())
                """,
        }
        result = run_tree(tmp_path, files)
        ids = {f.rule_id for f in result.findings}
        assert SYNTAX_ERROR_RULE in ids and "DPL006" in ids


# ----------------------------------------------------------------------
# DPL901 — suppression naming an unknown rule
# ----------------------------------------------------------------------
class TestDpl901:
    FILES = {"mechanisms/m.py": "x = 1  # dplint: allow[DPL042]\n"}

    def test_reported_from_run(self, tmp_path):
        result = run_tree(tmp_path, self.FILES)
        assert [f.rule_id for f in result.findings] == [BAD_SUPPRESSION_RULE]
        assert "DPL042" in result.findings[0].message

    def test_flow_rule_ids_are_known(self, tmp_path):
        """allow[DPL006..8] must not trip DPL901 even with flow off."""
        files = {
            "mechanisms/m.py": (
                "x = 1  # dplint: allow[DPL006] -- forwarded demo value\n"
            )
        }
        result = run_tree(tmp_path, files, flow=False)
        assert all(
            f.rule_id != BAD_SUPPRESSION_RULE for f in result.findings
        )

    def test_baseline_absorbs_it(self, tmp_path):
        first = run_tree(tmp_path, self.FILES)
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(first.all_findings).write(str(baseline_path))
        again = run_tree(tmp_path, {}, baseline=str(baseline_path))
        assert again.ok and again.n_baselined == 1


# ----------------------------------------------------------------------
# DPL902 — stale suppressions
# ----------------------------------------------------------------------
STALE = {
    "mechanisms/m.py": """
        def f(x):
            return x + 1  # dplint: allow[DPL002] -- obsolete
        """,
}


class TestDpl902:
    def test_unused_release_suppression_flagged(self, tmp_path):
        result = run_tree(tmp_path, STALE, flow=True)
        assert [f.rule_id for f in result.findings] == [STALE_SUPPRESSION_RULE]
        f = result.findings[0]
        assert f.severity is Severity.WARNING
        assert "allow[DPL002]" in f.message and "suppresses nothing" in f.message

    def test_file_scope_site_reported_on_line_one(self, tmp_path):
        files = {
            "mechanisms/m.py": (
                "# dplint: allow-file[DPL002] -- file-wide, obsolete\n"
                "def f(x):\n"
                "    return x + 1\n"
            )
        }
        result = run_tree(tmp_path, files, flow=True)
        assert [f.rule_id for f in result.findings] == [STALE_SUPPRESSION_RULE]
        assert result.findings[0].line == 1
        assert "file scope" in result.findings[0].message

    def test_used_suppression_not_stale(self, tmp_path):
        files = {
            "mechanisms/m.py": """
                import numpy as np

                def make_noise(n):
                    rng = np.random.default_rng()  # dplint: allow[DPL001] -- test rig
                    return rng.normal(size=n)
                """,
        }
        result = run_tree(tmp_path, files, flow=True)
        assert all(
            f.rule_id != STALE_SUPPRESSION_RULE for f in result.findings
        )

    def test_off_without_flow(self, tmp_path):
        result = run_tree(tmp_path, STALE, flow=False)
        assert result.findings == []

    def test_off_under_rule_subset(self, tmp_path):
        # With only DPL006 selected, allow[DPL002] looks unused merely
        # because DPL002 never ran; the check must stay silent.
        result = run_tree(tmp_path, STALE, rules=["DPL006"], flow=True)
        assert result.findings == []

    def test_simulation_files_exempt(self, tmp_path):
        files = {"datasets/gen.py": STALE["mechanisms/m.py"]}
        result = run_tree(tmp_path, files, flow=True)
        assert result.findings == []

    def test_unknown_id_left_to_dpl901(self, tmp_path):
        files = {"mechanisms/m.py": "x = 1  # dplint: allow[DPL042]\n"}
        result = run_tree(tmp_path, files, flow=True)
        assert [f.rule_id for f in result.findings] == [BAD_SUPPRESSION_RULE]

    def test_dpl902_itself_suppressible(self, tmp_path):
        files = {
            "mechanisms/m.py": """
                def f(x):
                    return x + 1  # dplint: allow[DPL002,DPL902] -- kept on purpose
                """,
        }
        result = run_tree(tmp_path, files, flow=True)
        assert result.findings == []
        assert result.n_suppressed >= 1


# ----------------------------------------------------------------------
# Atomic baseline write
# ----------------------------------------------------------------------
class TestAtomicBaselineWrite:
    def _baseline(self):
        from repro.lint.findings import Finding

        return Baseline.from_findings(
            [
                Finding(
                    rule_id="DPL001",
                    severity=Severity.ERROR,
                    path="mechanisms/m.py",
                    line=3,
                    col=0,
                    message="m",
                    source_line="rng = np.random.default_rng()",
                )
            ]
        )

    def test_write_replaces_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("{\"stale\": true}")
        self._baseline().write(str(target))
        assert len(Baseline.load(str(target))) == 1
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_failed_replace_preserves_original(self, tmp_path, monkeypatch):
        target = tmp_path / "baseline.json"
        original = '{"version": 1, "tool": "dplint", "entries": []}\n'
        target.write_text(original)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            self._baseline().write(str(target))
        # The committed file is untouched and the temp file was removed.
        assert target.read_text() == original
        leftovers = [p for p in tmp_path.iterdir() if p != target]
        assert leftovers == []
