"""Sensor front end: ADC, signal models, composed node."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sensors import (
    ADC,
    SensorNode,
    heart_rate,
    occupancy,
    power_draw,
    temperature_walk,
)


class TestADC:
    @pytest.fixture(scope="class")
    def adc(self):
        return ADC(n_bits=10, v_min=0.0, v_max=10.0)

    def test_lsb(self, adc):
        assert adc.lsb == pytest.approx(10 / 1024)

    def test_codes_in_alphabet(self, adc):
        codes = adc.sample(np.linspace(-5, 15, 101))
        assert codes.min() >= 0 and codes.max() <= 1023

    def test_saturation(self, adc):
        assert adc.sample(np.array([-100.0]))[0] == 0
        assert adc.sample(np.array([100.0]))[0] == 1023

    def test_quantization_error_bounded(self, adc):
        v = np.random.default_rng(0).uniform(0.01, 9.99, 2000)
        err = adc.digitize(v) - v
        assert np.abs(err).max() <= adc.lsb * 0.5 + 1e-12

    def test_monotone(self, adc):
        v = np.linspace(0, 10, 500)
        codes = adc.sample(v)
        assert np.all(np.diff(codes) >= 0)

    def test_offset_error_shifts_codes(self):
        clean = ADC(n_bits=10, v_min=0.0, v_max=10.0)
        offset = ADC(n_bits=10, v_min=0.0, v_max=10.0, offset=0.5)
        v = np.full(10, 5.0)
        assert offset.sample(v).mean() > clean.sample(v).mean()

    def test_gain_error_scales(self):
        gained = ADC(n_bits=10, v_min=0.0, v_max=10.0, gain_error=0.1)
        assert gained.digitize(np.array([5.0]))[0] == pytest.approx(5.5, abs=0.02)

    def test_input_noise(self):
        noisy = ADC(n_bits=12, v_min=0.0, v_max=10.0, noise_std=0.2)
        rng = np.random.default_rng(1)
        reads = noisy.digitize(np.full(4000, 5.0), rng)
        assert reads.std() == pytest.approx(0.2, rel=0.1)

    def test_to_physical_validation(self, adc):
        with pytest.raises(ConfigurationError):
            adc.to_physical(np.array([5000]))

    def test_sensor_spec(self, adc):
        spec = adc.sensor_spec
        assert (spec.m, spec.M) == (0.0, 10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ADC(n_bits=0, v_min=0, v_max=1)
        with pytest.raises(ConfigurationError):
            ADC(n_bits=8, v_min=1, v_max=1)
        with pytest.raises(ConfigurationError):
            ADC(n_bits=8, v_min=0, v_max=1, noise_std=-1)


class TestSignals:
    def test_temperature_bounded(self):
        t = temperature_walk(2000, lo=15, hi=30, seed=0)
        assert t.min() >= 15 and t.max() <= 30

    def test_temperature_deterministic(self):
        np.testing.assert_array_equal(
            temperature_walk(100, seed=5), temperature_walk(100, seed=5)
        )

    def test_temperature_mean_reverting(self):
        t = temperature_walk(20000, start=29.0, lo=15, hi=30, seed=1)
        assert abs(t[-5000:].mean() - 22.5) < 3.0

    def test_heart_rate_physiological(self):
        hr = heart_rate(5000, seed=2)
        assert hr.min() >= 35 and hr.max() <= 205

    def test_heart_rate_has_bursts(self):
        hr = heart_rate(5000, exercise_prob=0.02, seed=3)
        assert hr.max() > 100  # at least one exercise episode

    def test_heart_rate_circadian_shape(self):
        hr = heart_rate(288 * 4, exercise_prob=0.0, circadian_amplitude=10, seed=4)
        day = hr.reshape(4, 288).mean(axis=0)
        assert day[144] > day[0]  # midday above midnight

    def test_power_nonnegative_and_spiky(self):
        p = power_draw(5000, seed=5)
        assert p.min() >= 0
        assert p.max() > 800  # appliances fired

    def test_occupancy_binary_markov(self):
        occ = occupancy(5000, seed=6)
        assert set(np.unique(occ)) <= {0, 1}
        transitions = np.count_nonzero(np.diff(occ) != 0)
        assert 0 < transitions < 2000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            temperature_walk(0)
        with pytest.raises(ConfigurationError):
            temperature_walk(10, start=40.0)
        with pytest.raises(ConfigurationError):
            occupancy(10, p_arrive=0.0)


class TestSensorNode:
    @pytest.fixture(scope="class")
    def node(self):
        adc = ADC(n_bits=10, v_min=35.0, v_max=205.0)
        return SensorNode(
            adc, epsilon=0.5, input_bits=12, output_bits=16, delta=170 / 64
        )

    def test_node_is_private(self, node):
        assert node.is_private()

    def test_raw_vs_private(self, node):
        hr = heart_rate(200, seed=7)
        raw = node.read_raw(hr)
        private = node.read_private(hr)
        assert np.abs(raw - hr).max() <= node.adc.lsb
        # Private readings carry real noise.
        assert np.abs(private - hr).mean() > 10 * node.adc.lsb

    def test_digitization_enforces_declared_range(self, node):
        wild = np.array([-100.0, 500.0])
        raw = node.read_raw(wild)
        assert raw.min() >= 35.0 and raw.max() <= 205.0
        node.read_private(wild)  # must not raise: physics clamps first

    def test_mechanism_range_must_match_adc(self):
        from repro.mechanisms import SensorSpec, make_mechanism

        adc = ADC(n_bits=10, v_min=0.0, v_max=10.0)
        wrong = make_mechanism(
            "thresholding", SensorSpec(0.0, 8.0), 0.5, input_bits=12,
            output_bits=16, delta=8 / 64,
        )
        with pytest.raises(ConfigurationError):
            SensorNode(adc, epsilon=0.5, mechanism=wrong)
