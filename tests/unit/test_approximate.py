"""Approximate (ε, δ)-LDP analysis."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.privacy import delta_at_epsilon, epsilon_at_delta, hockey_stick_divergence
from repro.privacy.loss import DiscreteMechanismFamily
from repro.rng import DiscretePMF, FxpLaplaceConfig, FxpLaplaceRng


@pytest.fixture(scope="module")
def naive_family():
    cfg = FxpLaplaceConfig(input_bits=12, output_bits=16, delta=8 / 64, lam=16.0)
    noise = FxpLaplaceRng(cfg).exact_pmf()
    return DiscreteMechanismFamily.additive(noise, [0, 64])


@pytest.fixture(scope="module")
def guarded_family():
    cfg = FxpLaplaceConfig(input_bits=12, output_bits=16, delta=8 / 64, lam=16.0)
    noise = FxpLaplaceRng(cfg).exact_pmf()
    from repro.privacy import calibrate_threshold_exact

    t = calibrate_threshold_exact(noise, [0, 64], 1.0, mode="threshold")
    k = int(round(t / noise.step))
    return DiscreteMechanismFamily.additive(
        noise, [0, 64], window=(-k, 64 + k), mode="threshold"
    )


class TestHockeyStick:
    def test_identical_distributions_zero(self):
        p = np.array([0.5, 0.5])
        assert hockey_stick_divergence(p, p, 0.0) == 0.0

    def test_disjoint_at_eps_zero_is_one(self):
        assert hockey_stick_divergence(
            np.array([1.0, 0.0]), np.array([0.0, 1.0]), 0.0
        ) == 1.0

    def test_hand_computed(self):
        p1 = np.array([0.8, 0.2])
        p2 = np.array([0.5, 0.5])
        # eps = 0: sum max(0, p1-p2) = 0.3
        assert hockey_stick_divergence(p1, p2, 0.0) == pytest.approx(0.3)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            hockey_stick_divergence(np.array([1.0]), np.array([0.5, 0.5]), 0.0)


class TestDeltaAtEpsilon:
    def test_monotone_decreasing_in_epsilon(self, naive_family):
        deltas = [delta_at_epsilon(naive_family, e) for e in (0.0, 0.5, 1.0, 2.0)]
        assert deltas == sorted(deltas, reverse=True)

    def test_naive_has_positive_floor(self, naive_family):
        # No finite epsilon absorbs the revealing outputs: delta floors at
        # the certain-identification mass.
        assert delta_at_epsilon(naive_family, 32.0) > 0.0

    def test_floor_equals_certainty_mass(self, naive_family):
        # For huge eps, only the outputs with P(y|x2) = 0 contribute.
        mat = naive_family.matrix
        worst = 0.0
        for i in range(mat.shape[0]):
            for j in range(mat.shape[0]):
                mass = mat[i][(mat[i] > 0) & (mat[j] == 0)].sum()
                worst = max(worst, float(mass))
        assert delta_at_epsilon(naive_family, 40.0) == pytest.approx(worst, abs=1e-12)

    def test_guarded_reaches_zero_delta(self, guarded_family):
        eps = guarded_family.worst_case_loss().worst_loss
        assert delta_at_epsilon(guarded_family, eps + 1e-9) == pytest.approx(0.0)

    def test_validation(self, naive_family):
        with pytest.raises(ConfigurationError):
            delta_at_epsilon(naive_family, -1.0)


class TestEpsilonAtDelta:
    def test_guarded_pure_dp(self, guarded_family):
        eps = epsilon_at_delta(guarded_family, delta=0.0)
        exact = guarded_family.worst_case_loss().worst_loss
        assert eps == pytest.approx(exact, abs=1e-4)

    def test_naive_unreachable_at_tiny_delta(self, naive_family):
        floor = delta_at_epsilon(naive_family, 40.0)
        assert epsilon_at_delta(naive_family, delta=floor / 10) is None

    def test_naive_reachable_above_floor(self, naive_family):
        floor = delta_at_epsilon(naive_family, 40.0)
        eps = epsilon_at_delta(naive_family, delta=2 * floor)
        assert eps is not None and math.isfinite(eps)

    def test_delta_tradeoff_monotone(self, naive_family):
        floor = delta_at_epsilon(naive_family, 40.0)
        e_loose = epsilon_at_delta(naive_family, delta=min(10 * floor, 0.5))
        e_tight = epsilon_at_delta(naive_family, delta=2 * floor)
        assert e_loose is not None and e_tight is not None
        assert e_loose <= e_tight + 1e-6

    def test_validation(self, naive_family):
        with pytest.raises(ConfigurationError):
            epsilon_at_delta(naive_family, delta=1.0)


class TestConsistencyWithPureAnalysis:
    def test_delta_zero_iff_pure_ldp(self, guarded_family, naive_family):
        g_eps = guarded_family.worst_case_loss().worst_loss
        assert delta_at_epsilon(guarded_family, g_eps) <= 1e-12
        n_rep = naive_family.worst_case_loss()
        assert not n_rep.is_finite
        assert delta_at_epsilon(naive_family, 50.0) > 0

    def test_small_pmf_sanity(self):
        noise = DiscretePMF(1.0, -1, np.array([0.25, 0.5, 0.25]))
        fam = DiscreteMechanismFamily.additive(noise, [0, 1])
        # y=-1 only from x=0 (mass .25), y=2 only from x=1 (mass .25).
        assert delta_at_epsilon(fam, 100.0) == pytest.approx(0.25)
