"""Aggregation substrate: reports, devices, server, fleet harness."""

import numpy as np
import pytest

from repro.aggregation import AggregationServer, Device, Report, run_fleet
from repro.errors import ConfigurationError
from repro.mechanisms import SensorSpec, make_mechanism

SENSOR = SensorSpec(0.0, 8.0)
KW = dict(input_bits=12, output_bits=16, delta=8 / 64)


def make_device(device_id="dev-1", budget=None):
    return Device(device_id, make_mechanism("thresholding", SENSOR, 0.5, **KW), budget)


class TestReport:
    def test_valid(self):
        r = Report(device_id="d", epoch=0, value=1.0, claimed_loss=0.5)
        assert r.value == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Report(device_id="", epoch=0, value=1.0, claimed_loss=0.5)
        with pytest.raises(ConfigurationError):
            Report(device_id="d", epoch=-1, value=1.0, claimed_loss=0.5)
        with pytest.raises(ConfigurationError):
            Report(device_id="d", epoch=0, value=1.0, claimed_loss=0.0)


class TestDevice:
    def test_report_carries_noised_value(self):
        dev = make_device()
        r = dev.report(4.0, epoch=0)
        assert r.device_id == "dev-1"
        assert r.claimed_loss == pytest.approx(1.0)  # 2·ε

    def test_reports_vary(self):
        dev = make_device()
        values = {dev.report(4.0, epoch=0).value for _ in range(20)}
        assert len(values) > 3

    def test_budget_caps_fresh_reports(self):
        dev = make_device(budget=3.0)
        replies = [dev.report(4.0, epoch=e) for e in range(10)]
        assert dev.n_fresh == 3  # 3.0 / 1.0 per report
        assert dev.n_cached == 7
        cached_values = {r.value for r in replies[3:]}
        assert len(cached_values) == 1  # replayed

    def test_replenish(self):
        dev = make_device(budget=1.0)
        dev.report(4.0, epoch=0)
        dev.report(4.0, epoch=1)
        assert dev.n_cached == 1
        dev.replenish()
        dev.report(4.0, epoch=2)
        assert dev.n_fresh == 2

    def test_budget_exhausted_without_cache_raises(self):
        dev = make_device(budget=0.5)  # below one report's loss
        with pytest.raises(ConfigurationError):
            dev.report(4.0, epoch=0)

    def test_no_budget_unlimited(self):
        dev = make_device(budget=None)
        for e in range(20):
            dev.report(4.0, epoch=e)
        assert dev.n_fresh == 20
        assert dev.remaining_budget is None


class TestServer:
    @pytest.fixture()
    def loaded_server(self):
        server = AggregationServer(noise_scale=16.0)
        rng = np.random.default_rng(0)
        dev_values = rng.uniform(0, 8, 200)
        mech = make_mechanism("thresholding", SENSOR, 0.5, **KW)
        for epoch in range(3):
            noised = mech.privatize(dev_values)
            for i, v in enumerate(noised):
                server.submit(
                    Report(device_id=f"d{i}", epoch=epoch, value=float(v), claimed_loss=1.0)
                )
        return server, dev_values

    def test_epochs_listed(self, loaded_server):
        server, _ = loaded_server
        assert server.epochs == [0, 1, 2]

    def test_summary_counts(self, loaded_server):
        server, _ = loaded_server
        s = server.summarize(0)
        assert s.n_reports == 200 and s.n_devices == 200

    def test_mean_estimate_close(self, loaded_server):
        server, dev_values = loaded_server
        s = server.summarize(0)
        # λ=16, N=200 → std of mean ≈ 1.6
        assert s.mean == pytest.approx(dev_values.mean(), abs=6.0)

    def test_debiased_variance_closer(self, loaded_server):
        server, dev_values = loaded_server
        s = server.summarize(0)
        assert s.variance_debiased is not None
        true_var = float(dev_values.var())
        assert abs(s.variance_debiased - true_var) < abs(s.variance - true_var)

    def test_count_above(self, loaded_server):
        server, _ = loaded_server
        c = server.count_above(0, threshold=4.0)
        assert 0 <= c <= 200

    def test_unknown_epoch(self, loaded_server):
        server, _ = loaded_server
        with pytest.raises(ConfigurationError):
            server.reports(99)

    def test_worst_case_disclosure_composition(self):
        server = AggregationServer()
        for epoch in range(5):
            server.submit(
                Report(device_id="d0", epoch=epoch, value=float(epoch), claimed_loss=0.5)
            )
        assert server.worst_case_disclosure("d0") == pytest.approx(2.5)
        assert server.worst_case_disclosure("ghost") == 0.0

    def test_disclosure_bound_is_conservative_for_replays(self):
        server = AggregationServer()
        # The same cached value replayed across epochs still counts —
        # the server cannot verify the device's cache claims.
        for epoch in range(4):
            server.submit(
                Report(device_id="d0", epoch=epoch, value=7.0, claimed_loss=1.0)
            )
        assert server.worst_case_disclosure("d0") == pytest.approx(4.0)


class TestFleet:
    def test_fleet_estimates_track_truth(self):
        rng = np.random.default_rng(1)
        truth = rng.normal(4.0, 0.5, size=(4, 400)).clip(0, 8)
        result = run_fleet(
            truth, SENSOR, epsilon=0.5, rng=np.random.default_rng(2), **KW
        )
        assert len(result.estimated_means) == 4
        assert result.mean_abs_error < 2.0

    def test_dropout_tolerated(self):
        rng = np.random.default_rng(3)
        truth = rng.normal(4.0, 0.5, size=(3, 100)).clip(0, 8)
        result = run_fleet(
            truth,
            SENSOR,
            epsilon=0.5,
            dropout=0.5,
            rng=np.random.default_rng(4),
            **KW,
        )
        for e in result.server.epochs:
            n = result.server.summarize(e).n_reports
            assert 0 < n < 100

    def test_device_budgets_enforced(self):
        truth = np.full((10, 20), 4.0)
        result = run_fleet(
            truth,
            SENSOR,
            epsilon=0.5,
            device_budget=3.0,
            rng=np.random.default_rng(5),
            **KW,
        )
        for dev in result.devices:
            assert dev.n_fresh <= 3
            # The device's own accountant is the authoritative bound...
            assert dev.remaining_budget is not None
            actual = 3.0 - dev.remaining_budget
            assert actual <= 3.0 + 1e-9
            # ...and the server's conservative bound can only exceed it
            # (it cannot distinguish cached replays from fresh reports).
            server_bound = result.server.worst_case_disclosure(dev.device_id)
            assert server_bound >= actual - 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_fleet(np.zeros(5), SENSOR, 0.5)
        with pytest.raises(ConfigurationError):
            run_fleet(np.zeros((2, 3)), SENSOR, 0.5, dropout=1.0)
