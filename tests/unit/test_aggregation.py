"""Aggregation substrate: reports, devices, server, fleet harness."""

import numpy as np
import pytest

from repro.aggregation import AggregationServer, Device, Report, run_fleet
from repro.errors import ConfigurationError
from repro.mechanisms import SensorSpec, make_mechanism

SENSOR = SensorSpec(0.0, 8.0)
KW = dict(input_bits=12, output_bits=16, delta=8 / 64)


def make_device(device_id="dev-1", budget=None):
    return Device(device_id, make_mechanism("thresholding", SENSOR, 0.5, **KW), budget)


class TestReport:
    def test_valid(self):
        r = Report(device_id="d", epoch=0, value=1.0, claimed_loss=0.5)
        assert r.value == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Report(device_id="", epoch=0, value=1.0, claimed_loss=0.5)
        with pytest.raises(ConfigurationError):
            Report(device_id="d", epoch=-1, value=1.0, claimed_loss=0.5)
        with pytest.raises(ConfigurationError):
            Report(device_id="d", epoch=0, value=1.0, claimed_loss=0.0)


class TestDevice:
    def test_report_carries_noised_value(self):
        dev = make_device()
        r = dev.report(4.0, epoch=0)
        assert r.device_id == "dev-1"
        assert r.claimed_loss == pytest.approx(1.0)  # 2·ε

    def test_reports_vary(self):
        dev = make_device()
        values = {dev.report(4.0, epoch=0).value for _ in range(20)}
        assert len(values) > 3

    def test_budget_caps_fresh_reports(self):
        dev = make_device(budget=3.0)
        replies = [dev.report(4.0, epoch=e) for e in range(10)]
        assert dev.n_fresh == 3  # 3.0 / 1.0 per report
        assert dev.n_cached == 7
        cached_values = {r.value for r in replies[3:]}
        assert len(cached_values) == 1  # replayed

    def test_replenish(self):
        dev = make_device(budget=1.0)
        dev.report(4.0, epoch=0)
        dev.report(4.0, epoch=1)
        assert dev.n_cached == 1
        dev.replenish()
        dev.report(4.0, epoch=2)
        assert dev.n_fresh == 2

    def test_budget_exhausted_without_cache_raises(self):
        dev = make_device(budget=0.5)  # below one report's loss
        with pytest.raises(ConfigurationError):
            dev.report(4.0, epoch=0)

    def test_no_budget_unlimited(self):
        dev = make_device(budget=None)
        for e in range(20):
            dev.report(4.0, epoch=e)
        assert dev.n_fresh == 20
        assert dev.remaining_budget is None


class TestServer:
    @pytest.fixture()
    def loaded_server(self):
        server = AggregationServer(noise_scale=16.0)
        rng = np.random.default_rng(0)
        dev_values = rng.uniform(0, 8, 200)
        mech = make_mechanism("thresholding", SENSOR, 0.5, **KW)
        for epoch in range(3):
            noised = mech.privatize(dev_values)
            for i, v in enumerate(noised):
                server.submit(
                    Report(device_id=f"d{i}", epoch=epoch, value=float(v), claimed_loss=1.0)
                )
        return server, dev_values

    def test_epochs_listed(self, loaded_server):
        server, _ = loaded_server
        assert server.epochs == [0, 1, 2]

    def test_summary_counts(self, loaded_server):
        server, _ = loaded_server
        s = server.summarize(0)
        assert s.n_reports == 200 and s.n_devices == 200

    def test_mean_estimate_close(self, loaded_server):
        server, dev_values = loaded_server
        s = server.summarize(0)
        # λ=16, N=200 → std of mean ≈ 1.6
        assert s.mean == pytest.approx(dev_values.mean(), abs=6.0)

    def test_debiased_variance_closer(self, loaded_server):
        server, dev_values = loaded_server
        s = server.summarize(0)
        assert s.variance_debiased is not None
        true_var = float(dev_values.var())
        assert abs(s.variance_debiased - true_var) < abs(s.variance - true_var)

    def test_count_above(self, loaded_server):
        server, _ = loaded_server
        c = server.count_above(0, threshold=4.0)
        assert 0 <= c <= 200

    def test_unknown_epoch(self, loaded_server):
        server, _ = loaded_server
        with pytest.raises(ConfigurationError):
            server.reports(99)

    def test_worst_case_disclosure_composition(self):
        server = AggregationServer()
        for epoch in range(5):
            server.submit(
                Report(device_id="d0", epoch=epoch, value=float(epoch), claimed_loss=0.5)
            )
        assert server.worst_case_disclosure("d0") == pytest.approx(2.5)
        assert server.worst_case_disclosure("ghost") == 0.0

    def test_disclosure_bound_is_conservative_for_replays(self):
        server = AggregationServer()
        # The same cached value replayed across epochs still counts —
        # the server cannot verify the device's cache claims.
        for epoch in range(4):
            server.submit(
                Report(device_id="d0", epoch=epoch, value=7.0, claimed_loss=1.0)
            )
        assert server.worst_case_disclosure("d0") == pytest.approx(4.0)


class TestFleet:
    def test_fleet_estimates_track_truth(self):
        rng = np.random.default_rng(1)
        truth = rng.normal(4.0, 0.5, size=(4, 400)).clip(0, 8)
        result = run_fleet(
            truth, SENSOR, epsilon=0.5, rng=np.random.default_rng(2), **KW
        )
        assert len(result.estimated_means) == 4
        assert result.mean_abs_error < 2.0

    def test_dropout_tolerated(self):
        rng = np.random.default_rng(3)
        truth = rng.normal(4.0, 0.5, size=(3, 100)).clip(0, 8)
        result = run_fleet(
            truth,
            SENSOR,
            epsilon=0.5,
            dropout=0.5,
            rng=np.random.default_rng(4),
            **KW,
        )
        for e in result.server.epochs:
            n = result.server.summarize(e).n_reports
            assert 0 < n < 100

    def test_device_budgets_enforced(self):
        truth = np.full((10, 20), 4.0)
        result = run_fleet(
            truth,
            SENSOR,
            epsilon=0.5,
            device_budget=3.0,
            rng=np.random.default_rng(5),
            **KW,
        )
        for dev in result.devices:
            assert dev.n_fresh <= 3
            # The device's own accountant is the authoritative bound...
            assert dev.remaining_budget is not None
            actual = 3.0 - dev.remaining_budget
            assert actual <= 3.0 + 1e-9
            # ...and the server's conservative bound can only exceed it
            # (it cannot distinguish cached replays from fresh reports).
            server_bound = result.server.worst_case_disclosure(dev.device_id)
            assert server_bound >= actual - 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_fleet(np.zeros(5), SENSOR, 0.5)
        with pytest.raises(ConfigurationError):
            run_fleet(np.zeros((2, 3)), SENSOR, 0.5, dropout=1.0)


class TestTypedEpochErrors:
    def test_values_unknown_epoch_typed(self):
        server = AggregationServer()
        with pytest.raises(ConfigurationError):
            server.values(7)

    def test_summarize_unknown_epoch_typed(self):
        server = AggregationServer()
        with pytest.raises(ConfigurationError):
            server.summarize(7)

    def test_streaming_unknown_epoch_typed(self):
        server = AggregationServer(streaming=True)
        server.submit(Report(device_id="d0", epoch=0, value=1.0, claimed_loss=0.5))
        with pytest.raises(ConfigurationError):
            server.summarize(7)
        with pytest.raises(ConfigurationError):
            server.count_above(7, 0.0)


class TestSubmitArray:
    def test_retain_mode_materializes_reports(self):
        server = AggregationServer()
        server.submit_array(
            0, np.asarray([1.0, 2.0, 3.0]), 0.5, device_ids=["a", "b", "c"]
        )
        reports = server.reports(0)
        assert [r.device_id for r in reports] == ["a", "b", "c"]
        assert [r.value for r in reports] == [1.0, 2.0, 3.0]
        assert all(r.claimed_loss == 0.5 for r in reports)
        assert np.array_equal(server.values(0), [1.0, 2.0, 3.0])

    def test_retain_mode_requires_device_ids(self):
        server = AggregationServer()
        with pytest.raises(ConfigurationError):
            server.submit_array(0, np.asarray([1.0]), 0.5)

    def test_length_mismatch_rejected(self):
        server = AggregationServer()
        with pytest.raises(ConfigurationError):
            server.submit_array(0, np.asarray([1.0, 2.0]), 0.5, device_ids=["a"])

    def test_worst_case_disclosure_counts_array_submissions(self):
        server = AggregationServer()
        server.submit(Report(device_id="a", epoch=0, value=1.0, claimed_loss=0.5))
        server.submit_array(1, np.asarray([2.0, 3.0]), 0.5, device_ids=["a", "b"])
        server.submit_array(2, np.asarray([4.0]), 0.5, device_ids=["a"])
        assert server.worst_case_disclosure("a") == pytest.approx(1.5)
        assert server.worst_case_disclosure("b") == pytest.approx(0.5)
        assert server.worst_case_disclosure("ghost") == 0.0


class TestStreamingServer:
    @staticmethod
    def fill(server, n_epochs=3, n_devices=50):
        rng = np.random.default_rng(5)
        batches = rng.normal(4.0, 2.0, size=(n_epochs, n_devices))
        for epoch in range(n_epochs):
            server.submit_array(epoch, batches[epoch, :30], 0.5)
            server.submit_array(epoch, batches[epoch, 30:], 0.5)
        return batches

    def test_memory_is_o_epochs_not_o_reports(self):
        # The acceptance check: a streaming server retains zero reports
        # no matter how many arrive; a retaining server keeps them all.
        streaming = AggregationServer(streaming=True)
        self.fill(streaming)
        assert streaming.n_retained_reports == 0

        retain = AggregationServer()
        rng = np.random.default_rng(5)
        for epoch in range(3):
            retain.submit_array(
                epoch,
                rng.normal(size=50),
                0.5,
                device_ids=[f"d{i}" for i in range(50)],
            )
        assert retain.n_retained_reports == 150

    def test_moments_match_raw_statistics(self):
        server = AggregationServer(noise_scale=2.0, streaming=True)
        batches = self.fill(server)
        for epoch in range(batches.shape[0]):
            vals = batches[epoch]
            s = server.summarize(epoch)
            assert s.n_reports == vals.size
            assert s.mean == pytest.approx(vals.mean(), rel=1e-12)
            assert s.variance == pytest.approx(vals.var(), rel=1e-9)
            assert s.variance_debiased == pytest.approx(
                max(vals.var() - 2 * 2.0**2, 0.0), rel=1e-9
            )
            assert np.isnan(s.median)
            m = server.moments(epoch)
            assert m["min"] == vals.min() and m["max"] == vals.max()

    def test_registered_count_above(self):
        server = AggregationServer(streaming=True, count_thresholds=(4.0,))
        batches = self.fill(server)
        assert server.count_above(0, 4.0) == int((batches[0] > 4.0).sum())
        with pytest.raises(ConfigurationError):
            server.count_above(0, 1.0)

    def test_raw_report_queries_raise_typed(self):
        server = AggregationServer(streaming=True)
        self.fill(server)
        with pytest.raises(ConfigurationError):
            server.values(0)
        with pytest.raises(ConfigurationError):
            server.reports(0)

    def test_moments_accessor_is_streaming_only(self):
        server = AggregationServer()
        with pytest.raises(ConfigurationError):
            server.moments(0)

    def test_bulk_disclosure_recording(self):
        server = AggregationServer(streaming=True)
        self.fill(server)
        server.record_claimed_losses({"d0": 1.5, "d1": 0.5})
        server.record_claimed_losses({"d0": 0.5})
        assert server.worst_case_disclosure("d0") == pytest.approx(2.0)
        assert server.worst_case_disclosure("d1") == pytest.approx(0.5)

    def test_mean_trend_streaming(self):
        server = AggregationServer(streaming=True)
        batches = self.fill(server)
        trend = server.mean_trend()
        assert trend == pytest.approx([b.mean() for b in batches], rel=1e-12)
