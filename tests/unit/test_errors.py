"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    BudgetExhaustedError,
    CalibrationError,
    ConfigurationError,
    FixedPointError,
    HardwareProtocolError,
    OverflowPolicyError,
    PrivacyError,
    PrivacyViolationError,
    ReproError,
    UncalibratableConfigError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            FixedPointError,
            OverflowPolicyError,
            PrivacyError,
            PrivacyViolationError,
            BudgetExhaustedError,
            CalibrationError,
            HardwareProtocolError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_privacy_subtree(self):
        assert issubclass(PrivacyViolationError, PrivacyError)
        assert issubclass(BudgetExhaustedError, PrivacyError)
        assert issubclass(CalibrationError, PrivacyError)

    def test_fixed_point_subtree(self):
        assert issubclass(OverflowPolicyError, FixedPointError)

    def test_uncalibratable_config_is_both(self):
        # The DP-Box refuses an uncalibratable (epsilon, range) command:
        # catchable as a calibration failure *and* as a protocol fault.
        assert issubclass(UncalibratableConfigError, CalibrationError)
        assert issubclass(UncalibratableConfigError, HardwareProtocolError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise BudgetExhaustedError("out of budget")
