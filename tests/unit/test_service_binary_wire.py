"""Binary columnar wire (v2): negotiation, round-trips, and frame abuse.

The binary wire is negotiated per connection and shares the admission
path with JSONL, so two things must hold under hostility:

* a malformed-but-complete frame is a *content* decision — ``blocked``
  reply, connection stays usable;
* a frame the server cannot finish reading (oversized length prefix,
  mid-frame disconnect) closes the connection cleanly — and in every
  case **nothing partially folds**: the aggregation state either
  contains a whole batch or none of it.
"""

import json
import struct
import time

import numpy as np
import pytest

from repro.aggregation import AggregationServer
from repro.service import IngestClient, ServiceConfig
from repro.service.client import run_load
from repro.service.protocol import (
    _HEADER,
    _MAGIC,
    DTYPE_F64,
    MAX_FRAME_BYTES,
    OP_SUBMIT,
    WireError,
    encode_binary_submit,
    frame_prefix,
)
from repro.service.server import serve_in_thread


@pytest.fixture
def service():
    aggregation = AggregationServer(streaming=True)
    handle = serve_in_thread(aggregation, ServiceConfig(allow_shutdown=True))
    try:
        yield aggregation, handle
    finally:
        handle.stop()


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _read_reply(client):
    line = client._reader.readline()
    if not line:
        return None  # connection closed by the server
    return json.loads(line)


def _submit_frame(epoch=0, ids=("a", "b"), values=(1.0, 2.0), loss=1.0):
    return encode_binary_submit(epoch, list(ids), np.asarray(values, float), loss)


class TestNegotiation:
    def test_hello_switches_to_binary(self, service):
        _, handle = service
        with IngestClient(*handle.address) as client:
            reply = client.request({"op": "hello", "wire": "binary", "version": 2})
            assert reply == {"status": "ok", "wire": "binary", "version": 2}

    def test_client_knob_negotiates(self, service):
        _, handle = service
        with IngestClient(*handle.address, wire="binary") as client:
            assert client.wire == "binary"
            assert client.ping() == {"status": "ok", "pong": True}

    @pytest.mark.parametrize(
        "req",
        [
            {"op": "hello", "wire": "msgpack", "version": 2},
            {"op": "hello", "wire": "binary", "version": 3},
        ],
    )
    def test_unsupported_negotiation_blocked_stays_jsonl(self, service, req):
        _, handle = service
        with IngestClient(*handle.address) as client:
            reply = client.request(req)
            assert reply["status"] == "blocked"
            # The connection survives and still speaks JSONL.
            assert client.ping() == {"status": "ok", "pong": True}

    def test_bare_hello_reaffirms_jsonl(self, service):
        _, handle = service
        with IngestClient(*handle.address) as client:
            reply = client.request({"op": "hello"})
            assert reply == {"status": "ok", "wire": "jsonl", "version": 1}

    def test_jsonl_clients_untouched(self, service):
        """A client that never negotiates sees the v1 wire verbatim."""
        _, handle = service
        with IngestClient(*handle.address) as client:
            reply = client.submit(0, ["a", "b"], [1.0, 2.0], 1.0)
            assert reply["status"] == "admitted"
            assert reply["n_reports"] == 2


class TestBinaryRoundTrip:
    def test_submit(self, service):
        aggregation, handle = service
        with IngestClient(*handle.address, wire="binary") as client:
            reply = client.submit(0, ["a", "b", "c"], [1.0, 2.0, 3.0], 1.0)
            assert reply["status"] == "admitted"
            assert reply["n_reports"] == 3
            metrics = client.metrics()["metrics"]
        assert metrics["reports_admitted"] == 3
        assert metrics["internal_errors"] == 0

    def test_submit_counts(self, service):
        _, handle = service
        with IngestClient(*handle.address, wire="binary") as client:
            reply = client.submit_counts(0, [3, 1, 4], 8, 1.0)
            assert reply["status"] == "admitted"

    def test_socket_snapshots_bitwise_identical_across_wires(self):
        snapshots = {}
        for wire in ("jsonl", "binary"):
            aggregation = AggregationServer(streaming=True)
            handle = serve_in_thread(aggregation, ServiceConfig())
            try:
                report = run_load(
                    *handle.address, batches=6, batch_size=32, wire=wire
                )
            finally:
                handle.stop()
            assert report.n_blocked == 0
            assert report.server_metrics["internal_errors"] == 0
            snapshots[wire] = json.dumps(aggregation.snapshot(), sort_keys=True)
        assert snapshots["jsonl"] == snapshots["binary"]

    def test_wire_bytes_accounted(self, service):
        _, handle = service
        report = run_load(*handle.address, batches=4, batch_size=16, wire="binary")
        assert report.wire == "binary"
        assert report.wire_bytes_sent > 0
        assert report.wire_bytes_per_report == pytest.approx(
            report.wire_bytes_sent / report.reports_admitted
        )


class TestFrameAbuse:
    """Each abuse case: BLOCK or clean close — never a partial fold."""

    def _negotiated(self, handle):
        return IngestClient(*handle.address, wire="binary")

    def test_oversized_length_prefix_blocks_and_closes(self, service):
        aggregation, handle = service
        with self._negotiated(handle) as client:
            client.send_raw(struct.pack("<I", MAX_FRAME_BYTES + 1))
            reply = _read_reply(client)
            assert reply["status"] == "blocked"
            assert "exceeds" in reply["reason"]
            # The server cannot resync past an unread payload: closed.
            assert client._reader.readline() == b""
        assert aggregation.snapshot()["epochs"] == {}

    def test_truncated_frame_disconnect_never_folds(self, service):
        aggregation, handle = service
        client = self._negotiated(handle)
        # Claim 64 payload bytes, deliver 10, vanish mid-frame.
        client.send_raw(struct.pack("<I", 64) + b"\x00" * 10)
        client.close()
        # The server survives and nothing was folded.
        with IngestClient(*handle.address) as probe:
            assert probe.ping() == {"status": "ok", "pong": True}
            assert probe.metrics()["metrics"]["reports_admitted"] == 0
        assert aggregation.snapshot()["epochs"] == {}

    def test_partial_length_prefix_disconnect(self, service):
        aggregation, handle = service
        client = self._negotiated(handle)
        client.send_raw(b"\x01")  # one byte of a four-byte prefix
        client.close()
        with IngestClient(*handle.address) as probe:
            assert probe.ping() == {"status": "ok", "pong": True}
        assert aggregation.snapshot()["epochs"] == {}

    def test_wrong_dtype_tag_blocked_connection_survives(self, service):
        aggregation, handle = service
        with self._negotiated(handle) as client:
            good = _submit_frame()
            header = bytearray(good[4:])
            header[3] = 7  # dtype tag nobody speaks
            payload = bytes(header)
            client.send_raw(frame_prefix(payload) + payload)
            reply = _read_reply(client)
            assert reply["status"] == "blocked"
            assert "dtype" in reply["reason"]
            # Frame was fully consumed: the connection keeps working.
            assert client.submit(0, ["a"], [1.0], 1.0)["status"] == "admitted"
        assert wait_until(
            lambda: aggregation.snapshot()["n_devices_tracked"] == 1
        )

    def test_bad_magic_blocked_connection_survives(self, service):
        _, handle = service
        with self._negotiated(handle) as client:
            good = _submit_frame()
            payload = b"XX" + good[6:]
            client.send_raw(frame_prefix(payload) + payload)
            reply = _read_reply(client)
            assert reply["status"] == "blocked"
            assert "magic" in reply["reason"]
            assert client.ping() == {"status": "ok", "pong": True}

    def test_short_payload_blocked(self, service):
        _, handle = service
        with self._negotiated(handle) as client:
            payload = b"\x00" * (_HEADER.size - 4)
            client.send_raw(frame_prefix(payload) + payload)
            assert _read_reply(client)["status"] == "blocked"
            assert client.ping() == {"status": "ok", "pong": True}

    def test_body_length_mismatch_blocked(self, service):
        aggregation, handle = service
        with self._negotiated(handle) as client:
            # Header says 4 reports; body carries 2 values and no ids.
            header = _HEADER.pack(_MAGIC, OP_SUBMIT, DTYPE_F64, 4, 3, 0, 1.0)
            payload = header + np.asarray([1.0, 2.0]).tobytes()
            client.send_raw(frame_prefix(payload) + payload)
            reply = _read_reply(client)
            assert reply["status"] == "blocked"
            assert client.ping() == {"status": "ok", "pong": True}
        assert aggregation.snapshot()["epochs"] == {}

    def test_good_batch_folds_whole_bad_tail_folds_nothing(self, service):
        """A valid frame followed by a mid-frame disconnect: the valid
        batch folds completely, the torn one not at all."""
        aggregation, handle = service
        client = self._negotiated(handle)
        good = _submit_frame(ids=("a", "b"), values=(1.0, 2.0))
        client.send_raw(good)
        assert _read_reply(client)["status"] == "admitted"
        torn = _submit_frame(ids=("c", "d"), values=(3.0, 4.0))
        client.send_raw(torn[: len(torn) // 2])
        client.close()
        with IngestClient(*handle.address) as probe:
            assert probe.ping() == {"status": "ok", "pong": True}
            assert probe.metrics()["metrics"]["reports_admitted"] == 2
        assert wait_until(
            lambda: aggregation.snapshot()["n_devices_tracked"] == 2
        )


class TestClientNegotiationFailure:
    def test_client_raises_when_server_refuses(self, service, monkeypatch):
        _, handle = service
        monkeypatch.setattr(
            "repro.service.client.BINARY_WIRE_VERSION", 99, raising=True
        )
        with pytest.raises(WireError, match="negotiation failed"):
            IngestClient(*handle.address, wire="binary")
