"""Multi-sensor DP-Box with shared budget."""

import numpy as np
import pytest

from repro.core import ChannelConfig, GuardMode, MultiSensorDPBox
from repro.errors import BudgetExhaustedError, ConfigurationError
from repro.mechanisms import SensorSpec


def make_box(budget=5.0, **kwargs):
    return MultiSensorDPBox(
        [
            ChannelConfig("temp", SensorSpec(0.0, 40.0), 0.5, input_bits=12),
            ChannelConfig(
                "power",
                SensorSpec(0.0, 4000.0),
                0.25,
                guard_mode=GuardMode.RESAMPLE,
                input_bits=12,
            ),
        ],
        budget=budget,
        **kwargs,
    )


class TestConstruction:
    def test_channel_names(self):
        assert make_box().channel_names == ["temp", "power"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiSensorDPBox(
                [
                    ChannelConfig("a", SensorSpec(0, 1), 0.5, input_bits=12),
                    ChannelConfig("a", SensorSpec(0, 2), 0.5, input_bits=12),
                ],
                budget=1.0,
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiSensorDPBox([], budget=1.0)

    def test_unknown_channel(self):
        with pytest.raises(ConfigurationError):
            make_box().request("humidity", 0.5)

    def test_channel_config_validation(self):
        with pytest.raises(ConfigurationError):
            ChannelConfig("x", SensorSpec(0, 1), epsilon=0.0)


class TestSharedBudget:
    def test_both_channels_draw_one_budget(self):
        box = make_box(budget=2.0)
        r1 = box.request("temp", 20.0)
        r2 = box.request("power", 1000.0)
        assert not r1.from_cache and not r2.from_cache
        assert box.total_disclosed_loss() == pytest.approx(r1.charged + r2.charged)

    def test_exhaustion_affects_all_channels(self):
        box = make_box(budget=2.0)
        # Give the second channel one fresh (cacheable) reply first.
        first_power = box.request("power", 1000.0)
        assert not first_power.from_cache
        # Burn the rest of the shared budget on the first channel...
        replies = [box.request("temp", 20.0) for _ in range(20)]
        assert any(r.from_cache for r in replies)
        remaining = box.remaining_budget
        # ...and the other channel sees the same depleted budget.
        power = [box.request("power", 1000.0) for _ in range(20)]
        assert sum(r.charged for r in power) <= remaining + 1e-9
        assert any(r.from_cache for r in power)

    def test_total_loss_never_exceeds_budget(self):
        box = make_box(budget=3.0)
        rng = np.random.default_rng(0)
        for _ in range(60):
            ch = "temp" if rng.random() < 0.5 else "power"
            x = 20.0 if ch == "temp" else 1000.0
            box.request(ch, x)
        assert box.total_disclosed_loss() <= 3.0 + 1e-9

    def test_cache_is_per_channel(self):
        box = make_box(budget=4.0)
        p_first = box.request("power", 1000.0)
        t_first = box.request("temp", 20.0)
        assert not p_first.from_cache and not t_first.from_cache
        # Burn the budget, then both channels reply from their own caches.
        for _ in range(30):
            box.request("temp", 20.0)
            box.request("power", 1000.0)
        t_cached = box.request("temp", 20.0)
        p_cached = box.request("power", 1000.0)
        assert t_cached.from_cache and p_cached.from_cache
        assert t_cached.channel == "temp" and p_cached.channel == "power"
        # Cached values come from each channel's own history (different
        # grids make cross-channel replay detectable).
        assert t_cached.value != p_cached.value

    def test_no_cache_raises(self):
        box = make_box(budget=0.3, cache_on_exhaustion=False)
        with pytest.raises(BudgetExhaustedError):
            for _ in range(10):
                box.request("temp", 20.0)

    def test_replenish(self):
        box = make_box(budget=1.2)
        for _ in range(8):
            box.request("temp", 20.0)
        spent_before = 1.2 - box.remaining_budget
        assert spent_before > 0  # at least the first request charged
        box.replenish()
        assert box.remaining_budget == 1.2
        # Max segment charge is loss_multiple·ε = 1.0 < 1.2, so the next
        # request is always affordable after replenishment.
        assert not box.request("temp", 20.0).from_cache


class TestCrossSensorComposition:
    def test_shared_budget_halves_per_sensor_disclosure(self):
        """Two sensors measuring the same quantity: with a shared budget
        the adversary's total collected loss about it is B, not 2B."""
        sensors = [
            ChannelConfig(f"s{i}", SensorSpec(0.0, 10.0), 0.5, input_bits=12)
            for i in range(2)
        ]
        shared = MultiSensorDPBox(sensors, budget=4.0)
        for _ in range(20):
            shared.request("s0", 5.0)
            shared.request("s1", 5.0)
        assert shared.total_disclosed_loss() <= 4.0 + 1e-9

        # Per-sensor budgets of the same size leak twice as much.
        separate = [
            MultiSensorDPBox([sensors[i]], budget=4.0) for i in range(2)
        ]
        for _ in range(20):
            separate[0].request("s0", 5.0)
            separate[1].request("s1", 5.0)
        total_separate = sum(b.total_disclosed_loss() for b in separate)
        assert total_separate > shared.total_disclosed_loss() * 1.5
