"""Frequency estimation and PEM heavy hitters: the server-side stages."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mechanisms import make_oracle
from repro.queries import (
    FrequencyEstimate,
    aggregate_reports,
    estimate_frequencies,
    estimate_from_counts,
    frequency_variance,
    ideal_oracle_variance,
    pem_heavy_hitters,
)
from repro.rng import SplitStreamSource


class TestVarianceFormulas:
    def test_closed_form_value(self):
        # f=0: Var = q(1-q) / (n (p-q)^2).
        v = frequency_variance(100, 0.5, 0.25)
        assert v == pytest.approx(0.25 * 0.75 / (100 * 0.25**2))

    def test_f_interpolates(self):
        lo = frequency_variance(100, 0.5, 0.25, f=0.0)
        hi = frequency_variance(100, 0.5, 0.25, f=1.0)
        mid = frequency_variance(100, 0.5, 0.25, f=0.5)
        assert mid == pytest.approx((lo + hi) / 2)

    def test_ideal_oracle_variance(self):
        import math

        eps, n = 2.0, 1000
        e = math.exp(eps)
        assert ideal_oracle_variance(n, eps) == pytest.approx(
            4 * e / (n * (e - 1) ** 2)
        )
        # The realized OUE channel approaches the ideal from above.
        o = make_oracle("oue", 8, eps, source=SplitStreamSource(0))
        p, q = o.estimator_params()
        realized = frequency_variance(n, p, q, 0.0)
        assert realized >= ideal_oracle_variance(n, eps) * 0.95

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            frequency_variance(0, 0.5, 0.25)
        with pytest.raises(ConfigurationError):
            frequency_variance(10, 0.25, 0.5)  # p <= q
        with pytest.raises(ConfigurationError):
            frequency_variance(10, 0.5, 0.25, f=1.5)
        with pytest.raises(ConfigurationError):
            ideal_oracle_variance(10, 0.0)


class TestFrequencyEstimate:
    def _estimate(self):
        return FrequencyEstimate(
            frequencies=np.array([0.6, 0.5, -0.1]),
            counts=np.array([60, 50, 2]),
            n=100,
            p=0.5,
            q=0.1,
        )

    def test_plug_in_variances(self):
        est = self._estimate()
        assert est.variances[0] == pytest.approx(
            frequency_variance(100, 0.5, 0.1, 0.6)
        )
        # Negative estimates clip to 0 for the plug-in.
        assert est.variances[2] == pytest.approx(
            frequency_variance(100, 0.5, 0.1, 0.0)
        )
        np.testing.assert_allclose(est.std_errors(), np.sqrt(est.variances))

    def test_normalized_is_distribution(self):
        norm = self._estimate().normalized()
        assert norm.min() >= 0.0
        assert norm.sum() == pytest.approx(1.0)

    def test_top_k(self):
        est = self._estimate()
        assert est.top_k(2).tolist() == [0, 1]
        assert est.top_k(10).tolist() == [0, 1, 2]
        with pytest.raises(ConfigurationError):
            est.top_k(0)


class TestEstimationPipeline:
    def test_aggregate_then_estimate_equals_direct(self):
        o = make_oracle("oue", 5, 2.0, source=SplitStreamSource(9))
        values = np.random.default_rng(2).integers(0, 5, size=4000)
        reports = o.report(values)
        counts, n = aggregate_reports(o, reports)
        assert n == 4000
        via_counts = estimate_from_counts(o, counts, n)
        direct = estimate_frequencies(o, reports)
        np.testing.assert_array_equal(via_counts.frequencies, direct.frequencies)
        assert direct.oracle == "OUE"

    def test_estimator_inverts_channel_exactly(self):
        # With counts set to the exact expectation, the estimate must
        # recover the true frequency exactly (unbiasedness, no noise).
        o = make_oracle("krr", 4, 2.0, source=SplitStreamSource(0))
        p, q = o.estimator_params()
        f = np.array([0.4, 0.3, 0.2, 0.1])
        n = 1_000_000
        expected_counts = np.round(n * (f * p + (1 - f) * q)).astype(np.int64)
        est = estimate_from_counts(o, expected_counts, n)
        np.testing.assert_allclose(est.frequencies, f, atol=1e-5)

    def test_count_shape_validation(self):
        o = make_oracle("krr", 4, 2.0, source=SplitStreamSource(0))
        with pytest.raises(ConfigurationError):
            estimate_from_counts(o, np.array([1, 2, 3]), 10)
        with pytest.raises(ConfigurationError):
            estimate_from_counts(o, np.array([1, 2, 3, 4]), 0)


class TestHeavyHitters:
    def _population(self, rng, domain_bits, n, heavy, probs):
        pop = rng.integers(0, 1 << domain_bits, size=n)
        mask = rng.random(n)
        cum = np.cumsum(probs)
        for i, h in enumerate(heavy):
            pop[(mask >= cum[i] - probs[i]) & (mask < cum[i])] = h
        return pop

    def test_recovers_planted_hitters(self):
        rng = np.random.default_rng(4)
        heavy = [511, 64, 1000, 3]
        pop = self._population(
            rng, 10, 50000, heavy, np.array([0.15, 0.12, 0.10, 0.08])
        )
        result = pem_heavy_hitters(pop, 10, epsilon=3.0, k=6, seed=123)
        assert set(heavy) <= set(result.items.tolist())
        # Frequencies sorted descending, with error bars attached.
        assert result.frequencies.shape == result.std_errors.shape
        assert (np.diff(result.frequencies) <= 1e-12).all()

    def test_deterministic_for_fixed_seed(self):
        rng = np.random.default_rng(4)
        pop = self._population(rng, 8, 8000, [17], np.array([0.2]))
        a = pem_heavy_hitters(pop, 8, epsilon=2.0, k=3, seed=55)
        b = pem_heavy_hitters(pop, 8, epsilon=2.0, k=3, seed=55)
        np.testing.assert_array_equal(a.items, b.items)
        np.testing.assert_array_equal(a.frequencies, b.frequencies)

    def test_level_plan(self):
        rng = np.random.default_rng(4)
        pop = self._population(rng, 9, 9000, [5], np.array([0.3]))
        result = pem_heavy_hitters(pop, 9, epsilon=2.0, k=2, eta=4, seed=1)
        assert [lv.prefix_bits for lv in result.levels] == [4, 8, 9]
        # Every user reports exactly once across the cascade.
        assert sum(lv.n_users for lv in result.levels) == 9000

    def test_each_level_is_one_release(self):
        from repro.runtime import ReleasePipeline, RingBufferSink

        ring = RingBufferSink()
        pipe = ReleasePipeline(sinks=[ring])
        rng = np.random.default_rng(4)
        pop = self._population(rng, 6, 3000, [9], np.array([0.3]))
        result = pem_heavy_hitters(
            pop, 6, epsilon=2.0, k=2, eta=2, seed=1, pipeline=pipe
        )
        assert len(ring.events) == len(result.levels)
        assert [e.channel for e in ring.events] == [
            f"pem/level{j}" for j in range(len(result.levels))
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pem_heavy_hitters(np.array([1, 2]), 4, 1.0, k=0)
        with pytest.raises(ConfigurationError):
            pem_heavy_hitters(np.array([1.5]), 4, 1.0, k=1)
        with pytest.raises(ConfigurationError):
            pem_heavy_hitters(np.array([99]), 4, 1.0, k=1)  # out of domain
        with pytest.raises(ConfigurationError):
            pem_heavy_hitters(np.array([1]), 8, 1.0, k=1, eta=2)  # too few users
