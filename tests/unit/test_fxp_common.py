"""FxpMechanismBase: grids, quantization, verification codes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mechanisms import FxpBaselineMechanism, SensorSpec


@pytest.fixture(scope="module")
def mech():
    return FxpBaselineMechanism(
        SensorSpec(0.0, 8.0), 0.5, input_bits=12, output_bits=16, delta=8 / 64
    )


class TestGrid:
    def test_range_endpoints_snap(self, mech):
        assert mech.k_m == 0
        assert mech.k_M == 64

    def test_default_delta_is_d_over_128(self):
        m = FxpBaselineMechanism(SensorSpec(0.0, 8.0), 0.5, input_bits=12)
        assert m.delta == pytest.approx(8.0 / 128)

    def test_collapsing_range_rejected(self):
        with pytest.raises(ConfigurationError):
            FxpBaselineMechanism(
                SensorSpec(0.0, 0.01), 0.5, input_bits=12, delta=8.0
            )


class TestQuantizeInputs:
    def test_round_to_nearest(self, mech):
        # delta = 0.125; 1.06 -> code 8 (1.0), 1.07 -> code 9 (1.125)
        codes = mech.quantize_inputs(np.array([1.06, 1.07]))
        np.testing.assert_array_equal(codes, [8, 9])

    def test_clamped_to_range_codes(self, mech):
        codes = mech.quantize_inputs(np.array([0.0, 8.0]))
        np.testing.assert_array_equal(codes, [0, 64])

    def test_out_of_range_rejected(self, mech):
        with pytest.raises(ConfigurationError):
            mech.quantize_inputs(np.array([9.0]))

    def test_shape_preserved(self, mech):
        codes = mech.quantize_inputs(np.full((2, 3), 4.0))
        assert codes.shape == (2, 3)


class TestVerificationCodes:
    def test_includes_endpoints(self, mech):
        codes = mech.verification_codes()
        assert codes[0] == 0 and codes[-1] == 64

    def test_sorted_unique(self, mech):
        codes = list(mech.verification_codes())
        assert codes == sorted(set(codes))

    def test_configurable_density(self):
        dense = FxpBaselineMechanism(
            SensorSpec(0.0, 8.0),
            0.5,
            input_bits=12,
            output_bits=16,
            delta=8 / 64,
            n_verify_inputs=17,
        )
        assert len(dense.verification_codes()) == 17


class TestNoisePmfCache:
    def test_cached_identity(self, mech):
        assert mech.noise_pmf is mech.noise_pmf

    def test_claimed_bound_default_epsilon(self, mech):
        assert mech.claimed_loss_bound == 0.5
