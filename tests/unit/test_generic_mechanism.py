"""GuardedNoiseMechanism over staircase/Gaussian noise."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mechanisms import GuardedNoiseMechanism, SensorSpec
from repro.rng import (
    FxpGaussianRng,
    FxpLaplaceConfig,
    FxpStaircaseRng,
    StaircaseParams,
    gaussian_sigma,
)

D, EPS = 8.0, 0.5
SENSOR = SensorSpec(0.0, D)
CFG = FxpLaplaceConfig(input_bits=12, output_bits=18, delta=D / 64, lam=D / EPS)


@pytest.fixture(scope="module")
def staircase_rng():
    return FxpStaircaseRng(CFG, StaircaseParams(sensitivity=D, epsilon=EPS))


@pytest.fixture(scope="module")
def gaussian_rng():
    return FxpGaussianRng(CFG, sigma=gaussian_sigma(D, EPS, 1e-5))


@pytest.fixture(scope="module", params=["staircase", "gaussian"])
def noise_rng(request, staircase_rng, gaussian_rng):
    return staircase_rng if request.param == "staircase" else gaussian_rng


class TestBaselinePathology:
    def test_naive_arm_not_ldp(self, noise_rng):
        mech = GuardedNoiseMechanism(SENSOR, EPS, noise_rng, mode="baseline")
        rep = mech.ldp_report(epsilon_target=1e6)
        assert not rep.is_finite  # Section III-A4: the problem generalizes


class TestGuards:
    @pytest.mark.parametrize("mode", ["resample", "threshold"])
    def test_guarded_arm_certified(self, noise_rng, mode):
        mech = GuardedNoiseMechanism(
            SENSOR, EPS, noise_rng, mode=mode, target_loss=2 * EPS
        )
        rep = mech.ldp_report()
        assert rep.is_finite and rep.satisfied

    def test_outputs_within_window(self, noise_rng):
        mech = GuardedNoiseMechanism(
            SENSOR, EPS, noise_rng, mode="threshold", target_loss=2 * EPS
        )
        y = mech.privatize(np.full(4000, 0.0))
        lo, hi = np.array(mech.window) * mech.delta
        assert y.min() >= lo - 1e-9 and y.max() <= hi + 1e-9

    def test_resample_outputs_within_window(self, noise_rng):
        mech = GuardedNoiseMechanism(
            SENSOR, EPS, noise_rng, mode="resample", target_loss=2 * EPS
        )
        y = mech.privatize(np.full(4000, D))
        lo, hi = np.array(mech.window) * mech.delta
        assert y.min() >= lo - 1e-9 and y.max() <= hi + 1e-9

    def test_guarded_needs_target(self, noise_rng):
        with pytest.raises(ConfigurationError):
            GuardedNoiseMechanism(SENSOR, EPS, noise_rng, mode="threshold")

    def test_unknown_mode(self, noise_rng):
        with pytest.raises(ConfigurationError):
            GuardedNoiseMechanism(SENSOR, EPS, noise_rng, mode="clip")

    def test_custom_name(self, noise_rng):
        mech = GuardedNoiseMechanism(
            SENSOR, EPS, noise_rng, mode="baseline", name="custom"
        )
        assert mech.name == "custom"


class TestUtilityOrdering:
    def test_staircase_l1_beats_gaussian(self, staircase_rng, gaussian_rng):
        # At the same nominal eps (Gaussian paying delta>0 on top), the
        # staircase adds far less absolute noise.
        st = GuardedNoiseMechanism(
            SENSOR, EPS, staircase_rng, mode="threshold", target_loss=2 * EPS
        )
        ga = GuardedNoiseMechanism(
            SENSOR, EPS, gaussian_rng, mode="threshold", target_loss=2 * EPS
        )
        x = np.full(8000, D / 2)
        st_mae = np.abs(st.privatize(x) - D / 2).mean()
        ga_mae = np.abs(ga.privatize(x) - D / 2).mean()
        assert st_mae < ga_mae
