"""Exact loss analysis: hand-computable families, modes, segments."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.privacy import DiscreteMechanismFamily, input_grid_codes
from repro.rng import DiscretePMF


@pytest.fixture()
def geometric_noise():
    """Two-sided geometric-ish noise on codes -2..2 (hand-checkable)."""
    probs = np.array([1, 2, 4, 2, 1], dtype=float)
    return DiscretePMF(step=1.0, min_k=-2, probs=probs / probs.sum())


class TestInputGrid:
    def test_endpoints_included(self):
        codes = input_grid_codes(0.0, 8.0, 1.0, n_points=5)
        assert codes[0] == 0 and codes[-1] == 8

    def test_off_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            input_grid_codes(0.1, 8.0, 1.0)

    def test_degenerate_range_rejected(self):
        with pytest.raises(ConfigurationError):
            input_grid_codes(5.0, 5.0, 1.0)

    def test_two_points_minimum(self):
        with pytest.raises(ConfigurationError):
            input_grid_codes(0.0, 8.0, 1.0, n_points=1)


class TestBaselineFamily:
    def test_hand_computed_loss(self, geometric_noise):
        # Inputs 0 and 1; worst reachable-by-both ratio is 4:1 (log 4)...
        # but outputs reachable by only one input make the loss infinite.
        fam = DiscreteMechanismFamily.additive(geometric_noise, [0, 1])
        rep = fam.worst_case_loss()
        assert rep.worst_loss == math.inf
        # y = -2 is only reachable from x=0; y = 3 only from x=1.
        assert rep.n_infinite_outputs == 2

    def test_profile_nan_for_unreachable(self, geometric_noise):
        fam = DiscreteMechanismFamily.additive(
            geometric_noise, [0, 1], window=(-5, 5), mode="baseline"
        )
        profile = fam.loss_profile()
        values = fam.output_values()
        assert np.isnan(profile[values == -5.0][0])

    def test_finite_interior_ratio(self, geometric_noise):
        fam = DiscreteMechanismFamily.additive(geometric_noise, [0, 1])
        profile = fam.loss_profile()
        vals = fam.output_values()
        # At y=0: p(y|0)=4/10, p(y|1)=2/10 -> loss ln2.
        idx = np.where(vals == 0.0)[0][0]
        assert profile[idx] == pytest.approx(math.log(2))

    def test_rows_sum_to_one_enforced(self, geometric_noise):
        with pytest.raises(ConfigurationError):
            DiscreteMechanismFamily(
                delta=1.0,
                input_codes=np.array([0, 1]),
                out_min_k=0,
                matrix=np.array([[0.5, 0.4], [0.5, 0.5]]),
            )

    def test_needs_two_inputs(self, geometric_noise):
        with pytest.raises(ConfigurationError):
            DiscreteMechanismFamily.additive(geometric_noise, [3])


class TestResampleFamily:
    def test_common_window_no_infinite_loss(self, geometric_noise):
        fam = DiscreteMechanismFamily.additive(
            geometric_noise, [0, 1], window=(-1, 2), mode="resample"
        )
        rep = fam.worst_case_loss()
        assert rep.is_finite

    def test_hand_computed_resample_loss(self, geometric_noise):
        # window [-1, 2]: x=0 keeps mass {2,4,2,1}/9, x=1 keeps {1,2,4,2}/9.
        fam = DiscreteMechanismFamily.additive(
            geometric_noise, [0, 1], window=(-1, 2), mode="resample"
        )
        rep = fam.worst_case_loss()
        # worst ratio at y=-1: (2/9)/(1/9) = 2 (and symmetric at y=2).
        assert rep.worst_loss == pytest.approx(math.log(2))

    def test_rows_renormalized(self, geometric_noise):
        fam = DiscreteMechanismFamily.additive(
            geometric_noise, [0, 1], window=(-1, 2), mode="resample"
        )
        np.testing.assert_allclose(fam.matrix.sum(axis=1), 1.0)

    def test_window_required(self, geometric_noise):
        with pytest.raises(ConfigurationError):
            DiscreteMechanismFamily.additive(geometric_noise, [0, 1], mode="resample")


class TestThresholdFamily:
    def test_atoms_accumulate(self, geometric_noise):
        fam = DiscreteMechanismFamily.additive(
            geometric_noise, [0, 1], window=(-1, 2), mode="threshold"
        )
        # For x=0 the lower atom collects p(-2)+p(-1) = 3/10.
        vals = fam.output_values()
        low = fam.matrix[0][vals == -1.0][0]
        assert low == pytest.approx(0.3)

    def test_hand_computed_threshold_loss(self, geometric_noise):
        fam = DiscreteMechanismFamily.additive(
            geometric_noise, [0, 1], window=(-1, 2), mode="threshold"
        )
        rep = fam.worst_case_loss()
        # Lower atom: x=0 gives 3/10, x=1 gives 1/10 -> ln 3 (worst).
        assert rep.worst_loss == pytest.approx(math.log(3))

    def test_mass_preserved(self, geometric_noise):
        fam = DiscreteMechanismFamily.additive(
            geometric_noise, [0, 1], window=(-1, 2), mode="threshold"
        )
        np.testing.assert_allclose(fam.matrix.sum(axis=1), 1.0)


class TestSegments:
    def test_loss_by_segment_partitions(self, geometric_noise):
        fam = DiscreteMechanismFamily.additive(
            geometric_noise, [0, 1], window=(-2, 3), mode="threshold"
        )
        losses = fam.loss_by_segment([0])
        assert len(losses) == 2
        profile = fam.loss_profile()
        finite = profile[~np.isnan(profile)]
        assert max(losses) == pytest.approx(float(np.max(finite)))

    def test_unknown_mode_rejected(self, geometric_noise):
        with pytest.raises(ConfigurationError):
            DiscreteMechanismFamily.additive(
                geometric_noise, [0, 1], window=(0, 1), mode="clip"
            )
