"""Uniform code sources: interface contracts."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import ExhaustiveSource, NumpySource, TauswortheSource


@pytest.mark.parametrize("source_cls", [TauswortheSource, NumpySource])
class TestCommonContract:
    def test_codes_in_alphabet(self, source_cls):
        src = source_cls()
        codes = src.uniform_codes(5000, 6)
        assert codes.min() >= 1 and codes.max() <= 64

    def test_codes_dtype(self, source_cls):
        src = source_cls()
        assert src.uniform_codes(10, 8).dtype == np.int64

    def test_random_bits_binary(self, source_cls):
        src = source_cls()
        bits = src.random_bits(2000)
        assert set(np.unique(bits)) <= {0, 1}

    def test_random_bits_balanced(self, source_cls):
        src = source_cls()
        bits = src.random_bits(20000)
        assert abs(bits.mean() - 0.5) < 0.02

    def test_uniforms_in_half_open_interval(self, source_cls):
        src = source_cls()
        us = src.uniforms(5000, 10)
        assert us.min() > 0 and us.max() <= 1.0


class TestNumpySource:
    def test_seeded_reproducible(self):
        a = NumpySource(seed=5).uniform_codes(100, 12)
        b = NumpySource(seed=5).uniform_codes(100, 12)
        np.testing.assert_array_equal(a, b)

    def test_bits_validation(self):
        with pytest.raises(ConfigurationError):
            NumpySource(seed=0).uniform_codes(10, 0)


class TestExhaustiveSource:
    def test_full_sweep_covers_alphabet_once(self):
        src = ExhaustiveSource()
        codes = src.uniform_codes(2**8, 8)
        assert sorted(codes) == list(range(1, 257))

    def test_wraps_to_fresh_sweep(self):
        src = ExhaustiveSource()
        first = src.uniform_codes(2**6, 6)
        second = src.uniform_codes(2**6, 6)
        np.testing.assert_array_equal(first, second)

    def test_partial_then_continue(self):
        src = ExhaustiveSource()
        a = src.uniform_codes(10, 6)
        b = src.uniform_codes(10, 6)
        np.testing.assert_array_equal(a, np.arange(1, 11))
        np.testing.assert_array_equal(b, np.arange(11, 21))

    def test_bits_alternate(self):
        src = ExhaustiveSource()
        bits = src.random_bits(6)
        np.testing.assert_array_equal(bits, [0, 1, 0, 1, 0, 1])

    def test_bit_block(self):
        src = ExhaustiveSource(bit_block=3)
        np.testing.assert_array_equal(src.random_bits(8), [0, 0, 0, 1, 1, 1, 0, 0])

    def test_bit_block_continues_across_calls(self):
        src = ExhaustiveSource(bit_block=2)
        np.testing.assert_array_equal(src.random_bits(3), [0, 0, 1])
        np.testing.assert_array_equal(src.random_bits(3), [1, 0, 0])

    def test_double_sweep_pairs_codes_with_both_signs(self):
        src = ExhaustiveSource(bit_block=16)
        codes = src.uniform_codes(32, 4)
        bits = src.random_bits(32)
        pairs = set(zip(codes.tolist(), bits.tolist()))
        assert len(pairs) == 32  # every (code, sign) exactly once
