"""Unit tests for the release pipeline core (repro.runtime)."""

import numpy as np
import pytest

from repro.errors import (
    BudgetExhaustedError,
    ConfigurationError,
    ResampleExhaustedError,
)
from repro.mechanisms import SensorSpec, make_mechanism
from repro.privacy import BudgetAccountant
from repro.rng import NumpySource
from repro.runtime import (
    CounterSink,
    FlatCharge,
    NoCharge,
    ReleasePipeline,
    ReleaseRequest,
    ReplayCache,
    RingBufferSink,
    default_pipeline,
    set_default_pipeline,
)


def scripted_draw(*batches):
    """A draw callable that replays scripted noise values in order."""
    queue = [float(v) for batch in batches for v in batch]

    def draw(n):
        out = np.array(queue[:n])
        del queue[:n]
        return out

    return draw


def make_request(codes, draw, **kw):
    kw.setdefault("mechanism", "test")
    kw.setdefault("epsilon", 0.5)
    kw.setdefault("claimed_loss", 1.0)
    return ReleaseRequest(codes=np.asarray(codes, dtype=float), draw=draw, **kw)


class TestGuards:
    def test_none_guard_adds_noise(self):
        pipe = ReleasePipeline()
        req = make_request([1.0, 2.0], scripted_draw([10.0, -10.0]))
        out = pipe.release(req)
        assert np.array_equal(out.values, [11.0, -8.0])
        assert np.array_equal(out.rounds, [1, 1])

    def test_threshold_guard_clamps(self):
        pipe = ReleasePipeline()
        req = make_request(
            [0.0, 0.0],
            scripted_draw([100.0, -100.0]),
            guard="threshold",
            window=(-5.0, 5.0),
        )
        out = pipe.release(req)
        assert np.array_equal(out.values, [5.0, -5.0])
        assert out.event.draws == 2  # clamping never redraws

    def test_resample_guard_redraws_out_of_window_lanes(self):
        pipe = ReleasePipeline()
        # Sample 0 lands inside immediately; sample 1 needs two redraws.
        draw = scripted_draw([1.0, 99.0], [99.0], [2.0])
        req = make_request(
            [0.0, 0.0], draw, guard="resample", window=(-5.0, 5.0)
        )
        out = pipe.release(req)
        assert np.array_equal(out.values, [1.0, 2.0])
        assert np.array_equal(out.rounds, [1, 3])
        assert out.event.draws == 4
        assert out.event.resample_rounds == 2
        assert out.event.max_rounds_used == 3

    def test_resample_exhaustion_raises_and_emits(self):
        pipe = ReleasePipeline()
        ring = pipe.add_sink(RingBufferSink())
        req = make_request(
            [0.0],
            lambda n: np.full(n, 99.0),
            guard="resample",
            window=(-5.0, 5.0),
            max_rounds=4,
        )
        with pytest.raises(ResampleExhaustedError):
            pipe.release(req)
        assert len(ring) == 1
        event = ring.events[0]
        assert event.exhausted
        assert event.draws == 4

    def test_guard_without_window_rejected(self):
        pipe = ReleasePipeline()
        req = make_request([0.0], scripted_draw([1.0]), guard="threshold")
        with pytest.raises(ConfigurationError):
            pipe.release(req)

    def test_unknown_guard_rejected(self):
        pipe = ReleasePipeline()
        req = make_request([0.0], scripted_draw([1.0]), guard="bogus")
        with pytest.raises(ConfigurationError):
            pipe.release(req)


class TestChargePolicies:
    def test_nocharge_is_unaccounted(self):
        out = NoCharge().charge(np.array([3.0, 4.0]))
        assert out.budget_remaining is None
        assert not out.cache_hits.any()
        assert out.charged.sum() == 0.0

    def test_flat_charge_then_cache_replay(self):
        pipe = ReleasePipeline()
        acct = BudgetAccountant(2.0)
        cache = ReplayCache()
        req = make_request(
            [1.0, 2.0, 3.0, 4.0], scripted_draw([0.0, 0.0, 0.0, 0.0])
        )
        out = pipe.release(req, accounting=FlatCharge(acct, 1.0, cache))
        # Two affordable, then the cached second release replays.
        assert np.array_equal(out.values, [1.0, 2.0, 2.0, 2.0])
        assert np.array_equal(out.cache_hits, [False, False, True, True])
        assert np.array_equal(out.charged, [1.0, 1.0, 0.0, 0.0])
        assert out.budget_remaining == 0.0
        assert out.event.cache_hits == 2
        assert out.event.charged == 2.0

    def test_flat_charge_refused_without_cache(self):
        pipe = ReleasePipeline()
        ring = pipe.add_sink(RingBufferSink())
        req = make_request([1.0], scripted_draw([0.0]))
        with pytest.raises(BudgetExhaustedError):
            pipe.release(req, accounting=FlatCharge(BudgetAccountant(0.1), 1.0))
        assert ring.events[-1].exhausted

    def test_decode_applies_after_charge(self):
        pipe = ReleasePipeline()
        req = make_request([1.0, 2.0], scripted_draw([0.0, 0.0]))
        req.decode = lambda k: k * 10.0
        out = pipe.release(req)
        assert np.array_equal(out.values, [10.0, 20.0])
        assert np.array_equal(out.codes, [1.0, 2.0])


class TestSinksAndEmission:
    def test_every_sink_sees_every_event(self):
        counters = CounterSink()
        ring = RingBufferSink()
        pipe = ReleasePipeline(sinks=[counters, ring])
        for _ in range(3):
            pipe.release(make_request([0.0], scripted_draw([1.0])))
        assert counters.n_events == 3
        assert len(ring) == 3
        assert [e.seq for e in ring.events] == [1, 2, 3]

    def test_capture_is_temporary(self):
        pipe = ReleasePipeline()
        with pipe.capture() as ring:
            pipe.release(make_request([0.0], scripted_draw([1.0])))
            assert len(ring) == 1
        pipe.release(make_request([0.0], scripted_draw([1.0])))
        assert len(ring) == 1  # detached after the with-block
        assert pipe.sinks == []

    def test_ring_buffer_bounded(self):
        ring = RingBufferSink(capacity=2)
        pipe = ReleasePipeline(sinks=[ring])
        for _ in range(5):
            pipe.release(make_request([0.0], scripted_draw([1.0])))
        assert len(ring) == 2
        assert [e.seq for e in ring.events] == [4, 5]

    def test_default_pipeline_roundtrip(self):
        previous = set_default_pipeline(ReleasePipeline())
        try:
            assert default_pipeline() is not previous
        finally:
            set_default_pipeline(previous)
        assert default_pipeline() is previous


class TestMechanismIntegration:
    def test_privatize_emits_one_event_per_call(self):
        pipe = ReleasePipeline()
        ring = pipe.add_sink(RingBufferSink())
        mech = make_mechanism(
            "thresholding",
            SensorSpec(0.0, 8.0),
            0.5,
            input_bits=12,
            source=NumpySource(seed=5),
            pipeline=pipe,
        )
        values = mech.privatize(np.linspace(0.0, 8.0, 16))
        assert values.shape == (16,)
        assert len(ring) == 1
        event = ring.events[0]
        assert event.mechanism == mech.name
        assert event.epsilon == 0.5
        assert event.batch == 16
        assert event.draws == 16  # thresholding is single-draw
        assert event.guard == "threshold"

    def test_resampling_counts_match_event(self):
        pipe = ReleasePipeline()
        ring = pipe.add_sink(RingBufferSink())
        mech = make_mechanism(
            "resampling",
            SensorSpec(0.0, 8.0),
            0.5,
            input_bits=12,
            source=NumpySource(seed=5),
            pipeline=pipe,
        )
        _, counts = mech.privatize_with_counts(np.full(32, 0.25))
        event = ring.events[-1]
        assert int(counts.sum()) == event.draws
        assert int(counts.max()) == event.max_rounds_used
