"""Fixed-point Laplace RNG: exact PMF (eq. 11), bounded support, holes."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import (
    CordicLn,
    ExhaustiveSource,
    FxpLaplaceConfig,
    FxpLaplaceRng,
    NumpySource,
)


class TestConfig:
    def test_max_magnitude_formula(self, fig4_config):
        # L = λ·Bu·ln2 (Section III-A2)
        assert fig4_config.max_magnitude_real == pytest.approx(20 * 17 * math.log(2))

    def test_top_code(self, fig4_config):
        expected = math.floor(fig4_config.max_magnitude_real / fig4_config.delta + 0.5)
        assert fig4_config.top_code == expected

    def test_no_saturation_for_fig4(self, fig4_config):
        assert not fig4_config.saturates

    def test_saturation_detected(self):
        cfg = FxpLaplaceConfig(input_bits=17, output_bits=6, delta=10 / 32, lam=20.0)
        assert cfg.saturates
        assert cfg.top_code == cfg.max_code

    def test_for_mechanism_defaults(self):
        cfg = FxpLaplaceConfig.for_mechanism(sensor_range=10.0, epsilon=0.5)
        assert cfg.lam == 20.0
        assert cfg.delta == pytest.approx(10 / 32)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FxpLaplaceConfig(input_bits=1, output_bits=12, delta=1.0, lam=1.0)
        with pytest.raises(ConfigurationError):
            FxpLaplaceConfig(input_bits=12, output_bits=12, delta=-1.0, lam=1.0)
        with pytest.raises(ConfigurationError):
            FxpLaplaceConfig.for_mechanism(sensor_range=0.0, epsilon=0.5)


class TestExactPmf:
    def test_sums_to_one(self, fig4_pmf):
        assert fig4_pmf.total == pytest.approx(1.0, abs=1e-15)

    def test_symmetric(self, fig4_pmf):
        np.testing.assert_allclose(fig4_pmf.probs, fig4_pmf.probs[::-1])

    def test_bounded_support(self, fig4_rng, fig4_pmf):
        lo, hi = fig4_pmf.nonzero_bounds()
        assert hi == fig4_rng.config.top_code
        assert lo == -fig4_rng.config.top_code

    def test_tail_holes_exist(self, fig4_pmf):
        # Section III-A3: some bins inside the support window have zero
        # probability — the second cause of infinite privacy loss.
        assert int(np.sum(fig4_pmf.probs == 0.0)) > 0

    def test_no_holes_near_center(self, fig4_pmf):
        center = fig4_pmf.prob_array(-40, 40)
        assert np.all(center > 0)

    def test_analytic_matches_enumeration(self, fig4_rng):
        enum = fig4_rng.exact_pmf("enumerate")
        analytic = fig4_rng.exact_pmf("analytic")
        assert enum.total_variation(analytic) < 1e-12

    def test_probabilities_are_multiples_of_resolution(self, fig4_rng, fig4_pmf):
        # Paper: probabilities are multiples of 2^-(Bu+1).
        unit = 2.0 ** -(fig4_rng.config.input_bits + 1)
        ratios = fig4_pmf.probs / unit
        np.testing.assert_allclose(ratios, np.round(ratios), atol=1e-9)

    def test_matches_exhaustive_sampling_exactly(self):
        cfg = FxpLaplaceConfig(input_bits=10, output_bits=12, delta=0.25, lam=2.0)
        rng = FxpLaplaceRng(cfg, source=ExhaustiveSource(bit_block=1 << 10))
        # A double sweep covers every (code, sign) pair exactly once.
        codes = rng.sample_codes(2 * (1 << 10))
        counts = np.bincount(codes + cfg.top_code, minlength=2 * cfg.top_code + 1)
        pmf = rng.exact_pmf()
        np.testing.assert_allclose(counts / counts.sum(), pmf.probs, atol=1e-12)

    def test_std_close_to_ideal(self, fig4_pmf):
        assert math.sqrt(fig4_pmf.variance()) == pytest.approx(
            math.sqrt(2) * 20, rel=0.02
        )

    def test_saturating_config_accumulates_at_top(self):
        cfg = FxpLaplaceConfig(input_bits=12, output_bits=6, delta=0.25, lam=2.0)
        pmf = FxpLaplaceRng(cfg).exact_pmf()
        assert pmf.total == pytest.approx(1.0)
        assert pmf.max_k == cfg.max_code

    def test_analytic_handles_saturation(self):
        cfg = FxpLaplaceConfig(input_bits=12, output_bits=6, delta=0.25, lam=2.0)
        rng = FxpLaplaceRng(cfg)
        assert rng.exact_pmf("enumerate").total_variation(rng.exact_pmf("analytic")) < 1e-12

    def test_analytic_rejected_for_hw_log(self):
        cfg = FxpLaplaceConfig(input_bits=10, output_bits=12, delta=0.25, lam=2.0)
        rng = FxpLaplaceRng(cfg, log_backend=CordicLn(frac_bits=20, n_iterations=16))
        with pytest.raises(ConfigurationError):
            rng.exact_pmf("analytic")

    def test_unknown_method(self, fig4_rng):
        with pytest.raises(ConfigurationError):
            fig4_rng.exact_pmf("guess")


class TestSampling:
    def test_sample_matches_pmf_statistically(self, fig4_rng, fig4_pmf):
        s = FxpLaplaceRng(fig4_rng.config, source=NumpySource(seed=0)).sample(100000)
        assert s.std() == pytest.approx(math.sqrt(fig4_pmf.variance()), rel=0.02)
        assert abs(s.mean()) < 0.5

    def test_samples_on_grid(self, fig4_rng):
        s = FxpLaplaceRng(fig4_rng.config, source=NumpySource(seed=1)).sample(1000)
        k = s / fig4_rng.config.delta
        np.testing.assert_allclose(k, np.round(k), atol=1e-9)

    def test_samples_within_support(self, fig4_rng):
        s = FxpLaplaceRng(fig4_rng.config, source=NumpySource(seed=2)).sample_codes(50000)
        assert np.abs(s).max() <= fig4_rng.config.top_code


class TestCordicBackend:
    def test_cordic_pmf_close_to_exact_log_pmf(self):
        cfg = FxpLaplaceConfig(input_bits=12, output_bits=12, delta=0.25, lam=2.0)
        exact = FxpLaplaceRng(cfg).exact_pmf()
        cordic = FxpLaplaceRng(
            cfg, log_backend=CordicLn(frac_bits=24, n_iterations=24)
        ).exact_pmf()
        # A high-precision CORDIC log moves only edge codes between bins.
        assert exact.total_variation(cordic) < 5e-3


class TestIdealBins:
    def test_ideal_bin_probs_sum_to_one(self, fig4_rng):
        assert fig4_rng.ideal_bin_probs().total == pytest.approx(1.0)

    def test_center_agreement_with_fxp(self, fig4_rng, fig4_pmf):
        # Fig. 4(a): near the mode the FxP RNG matches the ideal closely.
        ideal = fig4_rng.ideal_bin_probs()
        center = slice(fig4_pmf.probs.size // 2 - 20, fig4_pmf.probs.size // 2 + 21)
        fxp_center = fig4_pmf.probs[center]
        ideal_center = ideal.prob_array(fig4_pmf.min_k, fig4_pmf.max_k)[center]
        np.testing.assert_allclose(fxp_center, ideal_center, rtol=0.02)
