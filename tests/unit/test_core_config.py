"""DP-Box configuration and command encodings."""

import pytest

from repro.core import Command, DPBoxConfig, GuardMode, validate_epsilon_exponent
from repro.errors import ConfigurationError


class TestCommands:
    def test_three_bit_encodings(self):
        for cmd in Command:
            assert 0 <= int(cmd) < 8

    def test_encodings_distinct(self):
        assert len({int(c) for c in Command}) == len(Command)

    def test_all_seven_commands_present(self):
        assert len(Command) == 7


class TestGuardMode:
    def test_toggle(self):
        assert GuardMode.RESAMPLE.toggled() is GuardMode.THRESHOLD
        assert GuardMode.THRESHOLD.toggled() is GuardMode.RESAMPLE

    def test_double_toggle_identity(self):
        for mode in GuardMode:
            assert mode.toggled().toggled() is mode


class TestConfig:
    def test_defaults_valid(self):
        cfg = DPBoxConfig()
        assert cfg.output_bits == 20  # the paper's datapath width

    def test_delta_for_range(self):
        cfg = DPBoxConfig(range_frac_bits=5)
        assert cfg.delta_for_range(10.0) == pytest.approx(10 / 32)

    def test_delta_rejects_bad_range(self):
        with pytest.raises(ConfigurationError):
            DPBoxConfig().delta_for_range(0.0)

    def test_segment_levels_must_ascend(self):
        with pytest.raises(ConfigurationError):
            DPBoxConfig(segment_levels=(2.0, 1.0))

    def test_segment_levels_capped_by_loss_multiple(self):
        with pytest.raises(ConfigurationError):
            DPBoxConfig(loss_multiple=2.0, segment_levels=(1.0, 3.0))

    def test_loss_multiple_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            DPBoxConfig(loss_multiple=1.0)

    def test_bit_width_bounds(self):
        with pytest.raises(ConfigurationError):
            DPBoxConfig(input_bits=1)
        with pytest.raises(ConfigurationError):
            DPBoxConfig(output_bits=2)

    def test_negative_fixed_draws_rejected(self):
        with pytest.raises(ConfigurationError):
            DPBoxConfig(fixed_resample_draws=-1)

    def test_frozen(self):
        cfg = DPBoxConfig()
        with pytest.raises(Exception):
            cfg.input_bits = 5


class TestEpsilonExponent:
    def test_valid_range(self):
        for nm in range(0, 9):
            validate_epsilon_exponent(nm)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            validate_epsilon_exponent(-1)
        with pytest.raises(ConfigurationError):
            validate_epsilon_exponent(9)
