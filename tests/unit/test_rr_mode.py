"""DP-Box randomized-response mode (zero threshold)."""

import numpy as np
import pytest

from repro import SensorSpec, make_mechanism
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def rr():
    return make_mechanism(
        "rr", SensorSpec(0.0, 1.0), 2.0, input_bits=12, output_bits=16, delta=1 / 64
    )


class TestChannel:
    def test_channel_rows_sum_to_one(self, rr):
        np.testing.assert_allclose(rr.channel_matrix().sum(axis=1), 1.0)

    def test_flip_prob_below_half(self, rr):
        assert 0 < rr.flip_probability < 0.5

    def test_exact_epsilon_finite(self, rr):
        eps = rr.exact_epsilon()
        assert np.isfinite(eps) and eps > 0

    def test_exact_epsilon_matches_channel(self, rr):
        ch = rr.channel_matrix()
        expected = max(
            abs(np.log(ch[0, 0] / ch[1, 0])), abs(np.log(ch[0, 1] / ch[1, 1]))
        )
        assert rr.exact_epsilon() == pytest.approx(expected)

    def test_smaller_epsilon_more_flips(self):
        strong = make_mechanism(
            "rr", SensorSpec(0.0, 1.0), 1.0, input_bits=12, output_bits=16, delta=1 / 64
        )
        weak = make_mechanism(
            "rr", SensorSpec(0.0, 1.0), 4.0, input_bits=12, output_bits=16, delta=1 / 64
        )
        assert strong.flip_probability > weak.flip_probability

    def test_tiny_epsilon_approaches_coin_flip(self):
        # As epsilon shrinks the channel approaches a fair coin: flip
        # probability just below 1/2 and near-zero effective epsilon.
        rr = make_mechanism(
            "rr",
            SensorSpec(0.0, 1.0),
            0.01,
            input_bits=12,
            output_bits=18,
            delta=1 / 64,
        )
        assert 0.45 < rr.flip_probability < 0.5
        assert rr.exact_epsilon() < 0.1


class TestPrivatization:
    def test_outputs_binary(self, rr):
        y = rr.privatize(np.array([0.0, 1.0, 0.0, 1.0]))
        assert set(np.unique(y)) <= {0.0, 1.0}

    def test_bits_interface(self, rr):
        out = rr.privatize_bits(np.array([0, 1, 1, 0]))
        assert set(np.unique(out)) <= {0, 1}

    def test_rejects_non_binary_values(self, rr):
        with pytest.raises(ConfigurationError):
            rr.privatize(np.array([0.5]))

    def test_rejects_non_binary_bits(self, rr):
        with pytest.raises(ConfigurationError):
            rr.privatize_bits(np.array([2]))

    def test_empirical_flip_rate_matches_exact(self, rr):
        bits = np.zeros(40000, dtype=int)
        noisy = rr.privatize_bits(bits)
        assert noisy.mean() == pytest.approx(rr._flip_from_m, abs=0.01)

    def test_frequency_estimator(self, rr):
        truth = 0.3
        bits = (np.random.default_rng(0).random(60000) < truth).astype(int)
        est = rr.estimate_frequency(rr.privatize_bits(bits))
        assert est == pytest.approx(truth, abs=0.02)

    def test_estimator_mae_shrinks_with_n(self, rr):
        # Fig. 14: accuracy improves with dataset size.
        rng = np.random.default_rng(1)
        maes = []
        for n in (200, 20000):
            errs = []
            for _ in range(20):
                bits = (rng.random(n) < 0.4).astype(int)
                est = rr.estimate_frequency(rr.privatize_bits(bits))
                errs.append(abs(est - bits.mean()))
            maes.append(np.mean(errs))
        assert maes[1] < maes[0]


class TestCategoricalReHoming:
    """The CategoricalMechanism re-homing is bit-identical (regression).

    Golden values were captured on the pre-refactor scalar path (before
    DpBoxRandomizedResponse implemented the encode/perturb protocol);
    the release path is unchanged, so fixed seeds must reproduce them
    exactly, bit for bit.
    """

    GOLDEN_IN = [0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 1, 1]
    GOLDEN_OUT = [0, 0, 1, 0, 0, 0, 0, 1, 0, 1, 0, 1, 1, 0, 1, 1]

    def _mechanism(self, seed):
        from repro.rng import SplitStreamSource

        return make_mechanism(
            "rr", SensorSpec(0.0, 1.0), 2.0, input_bits=14,
            source=SplitStreamSource(seed),
        )

    def test_privatize_bits_golden(self):
        m = self._mechanism(20260808)
        out = m.privatize_bits(np.array(self.GOLDEN_IN))
        np.testing.assert_array_equal(out, np.array(self.GOLDEN_OUT))

    def test_privatize_endpoints_golden(self):
        m = self._mechanism(7)
        out = m.privatize(np.array([1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0]))
        np.testing.assert_array_equal(
            out, np.array([0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0])
        )

    def test_exact_channel_golden(self):
        m = self._mechanism(0)
        assert m._flip_from_m == 0.18536376953125
        assert m._flip_from_M == 0.1824951171875
        assert m.exact_epsilon() == pytest.approx(1.4960182530894193, abs=1e-12)
        est = m.estimate_frequency(np.array(self.GOLDEN_OUT))
        assert est == pytest.approx(0.40112967075407935, abs=1e-12)

    def test_report_equals_privatize_bits(self):
        # The protocol composition (encode -> perturb) and the legacy
        # entry point consume the same stream, so they agree exactly.
        bits = np.array(self.GOLDEN_IN)
        out_report = self._mechanism(11).report(bits)
        out_legacy = self._mechanism(11).privatize_bits(bits)
        np.testing.assert_array_equal(out_report, out_legacy)

    def test_categorical_metadata(self):
        m = self._mechanism(0)
        assert m.n_categories == 2
        assert m.report_bits == 1
        p, q = m.estimator_params()
        assert p == 1.0 - m._flip_from_M
        assert q == m._flip_from_m
        counts = m.support_counts(np.array(self.GOLDEN_OUT))
        assert counts.tolist() == [9, 7]

    def test_encode_rejects_non_bits(self):
        with pytest.raises(ConfigurationError):
            self._mechanism(0).encode(np.array([0, 2]))
