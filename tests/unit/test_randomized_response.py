"""Classic randomized response and the debiasing estimator."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.privacy import (
    RandomizedResponse,
    debias_frequency,
    rr_epsilon_from_keep_prob,
    rr_keep_prob_from_epsilon,
)


class TestEpsilonMapping:
    def test_roundtrip(self):
        for eps in (0.1, 0.5, 1.0, 2.0):
            p = rr_keep_prob_from_epsilon(eps)
            assert rr_epsilon_from_keep_prob(p) == pytest.approx(eps)

    def test_known_value(self):
        # eps = ln 3 <-> p = 3/4
        assert rr_keep_prob_from_epsilon(math.log(3)) == pytest.approx(0.75)

    def test_keep_prob_bounds(self):
        with pytest.raises(ConfigurationError):
            rr_epsilon_from_keep_prob(0.5)
        with pytest.raises(ConfigurationError):
            rr_epsilon_from_keep_prob(1.0)

    def test_epsilon_positive(self):
        with pytest.raises(ConfigurationError):
            rr_keep_prob_from_epsilon(0.0)


class TestDebias:
    def test_identity_at_truth(self):
        # If observed equals the expected noisy frequency, debias recovers f.
        p = 0.8
        for f in (0.0, 0.3, 0.5, 1.0):
            observed = p * f + (1 - p) * (1 - f)
            assert debias_frequency(observed, p) == pytest.approx(f)

    def test_clipping(self):
        assert debias_frequency(0.0, 0.9) == 0.0
        assert debias_frequency(1.0, 0.9) == 1.0

    def test_invalid_keep_prob(self):
        with pytest.raises(ConfigurationError):
            debias_frequency(0.5, 0.4)


class TestMechanism:
    def test_flip_rate_matches_epsilon(self):
        rr = RandomizedResponse(epsilon=1.0, rng=np.random.default_rng(0))
        bits = np.zeros(50000, dtype=int)
        noisy = rr.privatize(bits)
        flip_rate = noisy.mean()
        assert flip_rate == pytest.approx(1 - rr.keep_prob, abs=0.01)

    def test_estimator_consistent(self):
        rr = RandomizedResponse(epsilon=1.0, rng=np.random.default_rng(1))
        true_f = 0.3
        bits = (np.random.default_rng(2).random(100000) < true_f).astype(int)
        est = rr.estimate_frequency(rr.privatize(bits))
        assert est == pytest.approx(true_f, abs=0.02)

    def test_estimator_improves_with_n(self):
        rng = np.random.default_rng(3)
        errors = []
        for n in (200, 20000):
            rr = RandomizedResponse(epsilon=1.0, rng=np.random.default_rng(4))
            trial_errs = []
            for _ in range(30):
                bits = (rng.random(n) < 0.4).astype(int)
                est = rr.estimate_frequency(rr.privatize(bits))
                trial_errs.append(abs(est - bits.mean()))
            errors.append(np.mean(trial_errs))
        assert errors[1] < errors[0]

    def test_rejects_non_binary(self):
        rr = RandomizedResponse(epsilon=1.0)
        with pytest.raises(ConfigurationError):
            rr.privatize(np.array([0, 1, 2]))

    def test_is_eps_ldp_exactly(self):
        # The 2x2 channel ratio equals e^eps by construction.
        rr = RandomizedResponse(epsilon=0.7)
        p = rr.keep_prob
        assert math.log(p / (1 - p)) == pytest.approx(0.7)
