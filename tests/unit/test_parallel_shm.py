"""Shared-memory arena lifecycle: leaks are the failure mode that matters.

POSIX shared memory persists past process death — a crashed worker or a
coordinator that skips its ``finally`` leaves ``/dev/shm`` segments
behind until reboot.  These tests pin the guarantees the arena makes:
every block is unlinked on the normal path, on the worker-crash path
(``BrokenProcessPool``), and on the in-worker-exception path; a forked
child's interpreter shutdown never unlinks the coordinator's blocks
(the pid-guarded finalizer); and the ref/attach plumbing round-trips
arrays bit-exactly.
"""

import os

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory

from repro.errors import ConfigurationError
from repro.mechanisms import SensorSpec
from repro.parallel import run_fleet_sharded
from repro.parallel.shm import ShmArena, ShmArrayRef, attach_array, detach_all

SENSOR = SensorSpec(0.0, 8.0)


def _attachable(name: str) -> bool:
    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


def _leaked(before):
    """Names under /dev/shm that appeared since ``before`` and remain."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("needs /dev/shm to observe leaks")
    return set(os.listdir("/dev/shm")) - before


def _shm_snapshot():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("needs /dev/shm to observe leaks")
    return set(os.listdir("/dev/shm"))


class TestArenaBasics:
    def test_share_round_trips_bit_exact(self):
        with ShmArena() as arena:
            data = np.random.default_rng(0).standard_normal((7, 13))
            ref = arena.share(data)
            np.testing.assert_array_equal(arena.view(ref), data)
            np.testing.assert_array_equal(attach_array(ref), data)
        detach_all()

    def test_pack_is_one_block_many_refs(self):
        with ShmArena() as arena:
            arrays = [
                np.arange(5, dtype=np.int64),
                np.full((3, 4), 2.5),
                np.array([True, False, True]),
            ]
            refs = arena.pack(arrays)
            assert len({r.name for r in refs}) == 1
            assert len(arena.block_names) == 1
            for ref, original in zip(refs, arrays):
                np.testing.assert_array_equal(arena.view(ref), original)

    def test_sub_ref_addresses_a_slice(self):
        with ShmArena() as arena:
            data = np.arange(24, dtype=np.float64)
            ref = arena.share(data)
            window = ref.sub(6, (4,))
            np.testing.assert_array_equal(arena.view(window), data[6:10])

    def test_close_unlinks_and_is_idempotent(self):
        arena = ShmArena()
        ref = arena.share(np.zeros(4))
        assert _attachable(ref.name)
        arena.close()
        assert not _attachable(ref.name)
        assert arena.closed
        arena.close()  # second close is a no-op

    def test_worker_writes_are_visible_to_creator(self):
        # The output-buffer contract: another attachment's writes land in
        # the creator's view (same physical pages).
        with ShmArena() as arena:
            ref = arena.allocate((8,), np.float64)
            out = attach_array(ref)
            out[...] = np.arange(8.0)
            np.testing.assert_array_equal(arena.view(ref), np.arange(8.0))
        detach_all()

    def test_allocate_is_zero_initialized(self):
        with ShmArena() as arena:
            ref = arena.allocate((64,), np.int64)
            assert not arena.view(ref).any()


class TestForkSafety:
    def test_forked_child_close_does_not_unlink(self):
        # Pool workers inherit the arena object over fork; their exit
        # (normal or not) must never unlink the coordinator's blocks.
        arena = ShmArena()
        ref = arena.share(np.arange(6.0))
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child exits before reporting
            arena.close()
            os._exit(0)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        assert _attachable(ref.name), "child shutdown unlinked a live block"
        arena.close()
        assert not _attachable(ref.name)


def _fleet_kwargs(**overrides):
    kwargs = dict(
        arm="thresholding",
        source_seed=7,
        shards=4,
        rng=np.random.default_rng(3),
        shm=True,
    )
    kwargs.update(overrides)
    return kwargs


class TestRunnerCleanup:
    def test_normal_run_leaves_no_blocks(self):
        before = _shm_snapshot()
        truth = np.random.default_rng(0).uniform(1.0, 7.0, size=(3, 40))
        run_fleet_sharded(truth, SENSOR, 0.5, workers=2, **_fleet_kwargs())
        assert not _leaked(before)

    def test_inline_shm_run_leaves_no_blocks(self):
        before = _shm_snapshot()
        truth = np.random.default_rng(0).uniform(1.0, 7.0, size=(3, 40))
        run_fleet_sharded(truth, SENSOR, 0.5, workers=1, **_fleet_kwargs())
        assert not _leaked(before)

    def test_worker_exception_leaves_no_blocks(self):
        # A budget too small for even one release raises a typed error
        # from inside the worker; the finally must still unlink.
        before = _shm_snapshot()
        truth = np.random.default_rng(0).uniform(1.0, 7.0, size=(3, 40))
        with pytest.raises(ConfigurationError):
            run_fleet_sharded(
                truth,
                SENSOR,
                0.5,
                workers=2,
                **_fleet_kwargs(device_budget=1e-9),
            )
        assert not _leaked(before)

    def test_killed_worker_leaves_no_blocks(self, monkeypatch):
        # Hard worker death (os._exit skips every handler in the child)
        # surfaces as BrokenProcessPool; the coordinator's finally must
        # still unlink every named block.
        from repro.parallel import runner as runner_module

        monkeypatch.setattr(runner_module, "run_shard", _exit_hard)
        before = _shm_snapshot()
        truth = np.random.default_rng(0).uniform(1.0, 7.0, size=(3, 40))
        with pytest.raises(BrokenProcessPool):
            run_fleet_sharded(truth, SENSOR, 0.5, workers=2, **_fleet_kwargs())
        assert not _leaked(before)


def _exit_hard(task):  # pragma: no cover - runs (briefly) in the worker
    os._exit(17)
