"""Categorical LDP mechanisms: k-RR and one-hot RAPPOR."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.privacy.categorical import KRandomizedResponse, OneHotRappor


@pytest.fixture(scope="module")
def truth():
    rng = np.random.default_rng(0)
    return rng.choice(4, size=40000, p=[0.5, 0.25, 0.15, 0.1])


class TestKRR:
    def test_channel_rows_sum_to_one(self):
        ch = KRandomizedResponse(5, 1.0).channel_matrix()
        np.testing.assert_allclose(ch.sum(axis=1), 1.0)

    def test_exact_epsilon_matches_configured(self):
        for eps in (0.5, 1.0, 2.0):
            krr = KRandomizedResponse(4, eps)
            assert krr.exact_epsilon() == pytest.approx(eps)

    def test_binary_case_reduces_to_warner(self):
        krr = KRandomizedResponse(2, 1.0)
        assert krr.keep_prob == pytest.approx(math.exp(1) / (math.exp(1) + 1))

    def test_reports_valid_categories(self, truth):
        krr = KRandomizedResponse(4, 1.0, rng=np.random.default_rng(1))
        out = krr.privatize(truth)
        assert out.min() >= 0 and out.max() < 4

    def test_keep_rate_matches(self, truth):
        krr = KRandomizedResponse(4, 1.0, rng=np.random.default_rng(2))
        out = krr.privatize(truth)
        assert np.mean(out == truth) == pytest.approx(krr.keep_prob, abs=0.01)

    def test_frequency_estimation(self, truth):
        krr = KRandomizedResponse(4, 1.0, rng=np.random.default_rng(3))
        est = krr.estimate_frequencies(krr.privatize(truth))
        true_f = np.bincount(truth, minlength=4) / truth.size
        np.testing.assert_allclose(est, true_f, atol=0.02)

    def test_estimates_on_simplex(self, truth):
        krr = KRandomizedResponse(4, 0.2, rng=np.random.default_rng(4))
        est = krr.estimate_frequencies(krr.privatize(truth[:100]))
        assert est.sum() == pytest.approx(1.0)
        assert est.min() >= 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            KRandomizedResponse(1, 1.0)
        with pytest.raises(ConfigurationError):
            KRandomizedResponse(3, 0.0)
        with pytest.raises(ConfigurationError):
            KRandomizedResponse(3, 1.0).privatize(np.array([3]))
        with pytest.raises(ConfigurationError):
            KRandomizedResponse(3, 1.0).privatize(np.array([0.5]))


class TestOneHotRappor:
    def test_exact_epsilon_matches_configured(self):
        for eps in (0.5, 1.0, 2.0):
            rap = OneHotRappor(4, eps)
            assert rap.exact_epsilon() == pytest.approx(eps)

    def test_bit_matrix_shape(self, truth):
        rap = OneHotRappor(4, 1.0, rng=np.random.default_rng(5))
        bits = rap.privatize_bits(truth[:100])
        assert bits.shape == (100, 4)
        assert set(np.unique(bits)) <= {0, 1}

    def test_frequency_estimation(self, truth):
        rap = OneHotRappor(4, 2.0, rng=np.random.default_rng(6))
        est = rap.estimate_frequencies(rap.privatize_bits(truth))
        true_f = np.bincount(truth, minlength=4) / truth.size
        np.testing.assert_allclose(est, true_f, atol=0.03)

    def test_both_estimators_converge_with_n(self, truth):
        true_f = np.bincount(truth, minlength=4) / truth.size
        for mech_cls in (KRandomizedResponse, OneHotRappor):
            errs = []
            for n in (500, 20000):
                mech = mech_cls(4, 1.0, rng=np.random.default_rng(9))
                sample = truth[:n]
                if mech_cls is KRandomizedResponse:
                    est = mech.estimate_frequencies(mech.privatize(sample))
                else:
                    est = mech.estimate_frequencies(mech.privatize_bits(sample))
                errs.append(np.abs(est - true_f).sum())
            assert errs[1] < errs[0], mech_cls.__name__

    def test_high_epsilon_tightens_both(self, truth):
        # The two constructions are close in efficiency at k=4; assert
        # the robust fact: at ε=4 both estimate well, and both improve
        # over their own ε=1 error.
        true_f = np.bincount(truth, minlength=4) / truth.size
        sample = truth[:2000]
        for mech_cls in (KRandomizedResponse, OneHotRappor):
            per_eps = {}
            for eps in (1.0, 4.0):
                errs = []
                for seed in range(8):
                    mech = mech_cls(4, eps, rng=np.random.default_rng(seed))
                    if mech_cls is KRandomizedResponse:
                        est = mech.estimate_frequencies(mech.privatize(sample))
                    else:
                        est = mech.estimate_frequencies(mech.privatize_bits(sample))
                    errs.append(np.abs(est - true_f).sum())
                per_eps[eps] = float(np.median(errs))
            assert per_eps[4.0] < per_eps[1.0], mech_cls.__name__
            assert per_eps[4.0] < 0.08

    def test_bit_matrix_validation(self):
        rap = OneHotRappor(4, 1.0)
        with pytest.raises(ConfigurationError):
            rap.estimate_frequencies(np.zeros((10, 3)))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OneHotRappor(1, 1.0)
        with pytest.raises(ConfigurationError):
            OneHotRappor(3, -1.0)
