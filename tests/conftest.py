"""Shared fixtures.

Expensive objects (exact PMFs, calibrated mechanisms, DP-Box instances)
are session-scoped: they are immutable or are only read by the tests that
share them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DPBox, DPBoxConfig, DPBoxDriver, GuardMode, SensorSpec, make_mechanism
from repro.rng import FxpLaplaceConfig, FxpLaplaceRng


# ---------------------------------------------------------------------------
# Paper running example: Lap(20) from Fig. 4 (d=10, eps=0.5, Bu=17, By=12,
# delta=10/2**5).
# ---------------------------------------------------------------------------
@pytest.fixture(scope="session")
def fig4_config() -> FxpLaplaceConfig:
    return FxpLaplaceConfig(input_bits=17, output_bits=12, delta=10 / 2**5, lam=20.0)


@pytest.fixture(scope="session")
def fig4_rng(fig4_config) -> FxpLaplaceRng:
    return FxpLaplaceRng(fig4_config)


@pytest.fixture(scope="session")
def fig4_pmf(fig4_rng):
    return fig4_rng.exact_pmf()


# ---------------------------------------------------------------------------
# A small, fast configuration used wherever exactness matters more than
# realism: Bu=12 keeps enumeration and calibration cheap.
# ---------------------------------------------------------------------------
@pytest.fixture(scope="session")
def small_sensor() -> SensorSpec:
    return SensorSpec(0.0, 8.0)


@pytest.fixture(scope="session")
def small_kwargs() -> dict:
    return dict(input_bits=12, output_bits=16, delta=8.0 / 64)


@pytest.fixture(scope="session")
def small_baseline(small_sensor, small_kwargs):
    return make_mechanism("baseline", small_sensor, 0.5, **small_kwargs)


@pytest.fixture(scope="session")
def small_resampling(small_sensor, small_kwargs):
    return make_mechanism("resampling", small_sensor, 0.5, **small_kwargs)


@pytest.fixture(scope="session")
def small_thresholding(small_sensor, small_kwargs):
    return make_mechanism("thresholding", small_sensor, 0.5, **small_kwargs)


@pytest.fixture(scope="session")
def small_ideal(small_sensor):
    return make_mechanism("ideal", small_sensor, 0.5)


# ---------------------------------------------------------------------------
# A configured DP-Box (threshold mode, locked budget) shared by read-only
# tests; tests that exercise budget exhaustion build their own.
# ---------------------------------------------------------------------------
@pytest.fixture()
def dpbox_driver():
    box = DPBox(DPBoxConfig(input_bits=12, range_frac_bits=6))
    driver = DPBoxDriver(box)
    driver.initialize(budget=100.0, replenish_period=None)
    driver.configure(
        epsilon_exponent=1,
        range_lower=0.0,
        range_upper=8.0,
        mode=GuardMode.THRESHOLD,
    )
    return driver


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20180601)
