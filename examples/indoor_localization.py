#!/usr/bin/env python3
"""Fleet analytics over privatized WiFi-localization data.

The UJIIndoorLoc scenario from the paper's evaluation: thousands of
devices each report a longitude-like coordinate.  No device wants to
reveal where it actually is, but the fleet operator wants aggregate
statistics (mean position, spread, how many devices are in the east
wing).  Each device privatizes locally; the operator only ever sees
noised values.

The script compares all four evaluation arms on the same data — the
Tables II–V experiment in miniature — and prints the LDP verdict next to
each arm's utility, reproducing the paper's punchline: the baseline is
as accurate as the ideal *and leaks*, while the guards are as accurate
*and private*.
"""

import numpy as np

from repro import ARM_NAMES, make_mechanism
from repro.analysis import render_table
from repro.datasets import load
from repro.queries import CountingQuery, MeanQuery, VarianceQuery, measure_utility


def main() -> None:
    fleet = load("ujiindoorloc", seed=7).subsample(4000, np.random.default_rng(0))
    print(f"fleet: {fleet.n} devices, coordinate {fleet.stats().row()}\n")

    epsilon = 0.5
    queries = [MeanQuery(), VarianceQuery(), CountingQuery()]
    rows = []
    for arm in ARM_NAMES:
        kwargs = {} if arm == "ideal" else {"input_bits": 14}
        mech = make_mechanism(arm, fleet.sensor, epsilon, **kwargs)
        report = mech.ldp_report()
        utility = measure_utility(mech, fleet.values, queries, n_trials=8)
        rows.append(
            [
                mech.name,
                "Y" if report.satisfied else "N",
                utility["mean"].cell(),
                utility["variance"].cell(),
                utility["counting"].cell(),
            ]
        )

    print(
        render_table(
            ["arm", "LDP?", "mean MAE", "variance MAE", "counting MAE"],
            rows,
            title=f"fleet analytics at ε = {epsilon} (8 trials)",
        )
    )
    print(
        "\nNote the FxP baseline: utility indistinguishable from ideal, "
        "but LDP? = N — the paper's core observation."
    )


if __name__ == "__main__":
    main()
