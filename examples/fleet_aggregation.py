#!/usr/bin/env python3
"""End-to-end local-DP system: a device fleet and an untrusted server.

The paper's Fig. 2(b), running: hundreds of devices each privatize their
reading on-device (the only data that ever leaves them), an untrusted
aggregation server collects the reports per epoch and answers statistical
queries.  Shows:

* per-epoch aggregate estimates tracking ground truth despite per-device
  noise ~20× larger than the signal,
* the debiased variance estimator beating the naive one,
* straggler tolerance,
* on-device budgets capping any device's lifetime disclosure, and the
  server's conservative composition bound sitting above the device-side
  truth.
"""

import numpy as np

from repro.aggregation import run_fleet
from repro.analysis import render_series
from repro.mechanisms import SensorSpec


def main() -> None:
    rng = np.random.default_rng(42)
    sensor = SensorSpec(15.0, 30.0)  # city-wide temperature sensors, °C
    n_devices, n_epochs = 600, 8

    # Ground truth: a daily temperature arc plus per-device offsets.
    arc = 21.0 + 3.0 * np.sin(np.linspace(0, np.pi, n_epochs))
    offsets = rng.normal(0.0, 0.8, n_devices)
    truth = np.clip(arc[:, None] + offsets[None, :], 15.0, 30.0)

    result = run_fleet(
        truth,
        sensor,
        epsilon=0.5,
        arm="thresholding",
        device_budget=10.0,
        dropout=0.15,
        rng=rng,
    )

    print(
        render_series(
            "epoch",
            result.server.epochs,
            [
                ("true mean °C", [f"{v:.2f}" for v in result.true_means]),
                ("estimated mean °C", [f"{v:.2f}" for v in result.estimated_means]),
            ],
            title=f"fleet of {n_devices} devices, ε=0.5 per report, 15% stragglers",
        )
    )
    print(f"\nmean absolute error of the epoch means: {result.mean_abs_error:.3f} °C")

    summary = result.server.summarize(0)
    true_var = float(truth[0].var())
    print(
        f"variance, epoch 0: true {true_var:.2f}, naive {summary.variance:.1f}, "
        f"debiased {summary.variance_debiased:.2f}"
    )

    worst_dev = max(result.devices, key=lambda d: 10.0 - (d.remaining_budget or 0.0))
    actual = 10.0 - (worst_dev.remaining_budget or 0.0)
    bound = result.server.worst_case_disclosure(worst_dev.device_id)
    print(
        f"\nper-device disclosure: worst actual {actual:.2f} "
        f"(on-device accountant) <= server bound {bound:.2f} — "
        "no device exceeds its lifetime budget of 10.0"
    )


if __name__ == "__main__":
    main()
