#!/usr/bin/env python3
"""A smart-home hub privatizing several sensors under one budget.

Paper Section IV: "If there is more than one sensor, there also may need
to be a hardware mechanism for sharing the budget between all sensors
since the readings of different sensors could be combined to compromise
privacy."  This example runs a three-channel DP-Box front end:

* thermostat (°C), energy meter (W), and occupancy (binary via RR),
* one shared privacy budget across all channels,
* per-channel caching once the budget runs dry, and a daily replenish.

It also demonstrates why sharing matters: two sensors observing the same
quantity leak additively under per-sensor budgets, but not under a
shared one.
"""

import numpy as np

from repro import GuardMode, SensorSpec, make_mechanism
from repro.core import ChannelConfig, MultiSensorDPBox


def main() -> None:
    rng = np.random.default_rng(7)

    hub = MultiSensorDPBox(
        [
            ChannelConfig("thermostat", SensorSpec(5.0, 35.0), epsilon=0.5),
            ChannelConfig(
                "energy-meter",
                SensorSpec(0.0, 4000.0),
                epsilon=1.0,
                guard_mode=GuardMode.RESAMPLE,
            ),
        ],
        budget=24.0,
    )
    occupancy = make_mechanism(
        "rr", SensorSpec(0.0, 1.0), 2.0, input_bits=14, delta=1 / 128
    )

    # A day of readings.
    temps = rng.normal(21.5, 1.0, 48).clip(5, 35)
    watts = rng.gamma(2.0, 400.0, 48).clip(0, 4000)
    present = (rng.random(48) < 0.6).astype(int)

    # Interleaved, as a real hub would poll its sensors.
    t_replies, w_replies = [], []
    for t, w in zip(temps, watts):
        t_replies.append(hub.request("thermostat", float(t)))
        w_replies.append(hub.request("energy-meter", float(w)))
    occ_noisy = occupancy.privatize_bits(present)

    fresh = sum(1 for r in t_replies + w_replies if not r.from_cache)
    cached = sum(1 for r in t_replies + w_replies if r.from_cache)
    print(f"shared budget 24.0: {fresh} fresh replies, {cached} cached replies")
    print(f"total disclosed loss: {hub.total_disclosed_loss():.3f} (never exceeds 24)")
    print(f"remaining: {hub.remaining_budget:.3f}\n")

    # Aggregate over fresh replies only — cached repeats carry no new
    # information (that is the point of the cache).
    t_vals = np.array([r.value for r in t_replies if not r.from_cache])
    w_vals = np.array([r.value for r in w_replies if not r.from_cache])
    print(f"true mean temperature   : {temps.mean():6.2f} C")
    print(f"private mean temperature: {t_vals.mean():6.2f} C ({t_vals.size} fresh replies)")
    print(f"true mean power         : {watts.mean():7.1f} W")
    print(f"private mean power      : {w_vals.mean():7.1f} W ({w_vals.size} fresh replies)")
    print(
        f"occupancy rate          : true {present.mean():.2f}, "
        f"private estimate {occupancy.estimate_frequency(occ_noisy):.2f}"
    )
    print(
        "(single-home means are noisy by design — strong local privacy on a "
        "handful of readings; fleet-scale aggregation is where LDP shines, "
        "see indoor_localization.py)\n"
    )

    # Nightly replenishment.
    hub.replenish()
    print(f"after replenishment: budget back to {hub.remaining_budget}")

    # Why the budget must be shared: two sensors on the same quantity.
    twin_a = ChannelConfig("winA", SensorSpec(5.0, 35.0), epsilon=0.5)
    twin_b = ChannelConfig("winB", SensorSpec(5.0, 35.0), epsilon=0.5)
    shared = MultiSensorDPBox([twin_a, twin_b], budget=4.0)
    for _ in range(30):
        shared.request("winA", 22.0)
        shared.request("winB", 22.0)
    print(
        f"\ntwin sensors, shared budget 4.0 -> adversary collects "
        f"{shared.total_disclosed_loss():.2f} of loss about the room"
    )
    split_a = MultiSensorDPBox([twin_a], budget=4.0)
    split_b = MultiSensorDPBox([twin_b], budget=4.0)
    for _ in range(30):
        split_a.request("winA", 22.0)
        split_b.request("winB", 22.0)
    leaked = split_a.total_disclosed_loss() + split_b.total_disclosed_loss()
    print(
        f"twin sensors, per-sensor budgets 4.0 each -> adversary collects "
        f"{leaked:.2f} (composition across sensors!)"
    )


if __name__ == "__main__":
    main()
