#!/usr/bin/env python3
"""Quickstart: privatize a sensor reading and prove it is private.

Demonstrates the three core moves of the library in ~30 lines of API:

1. build a local-DP mechanism for a sensor range,
2. show the naive fixed-point baseline is NOT private (exact analysis),
3. privatize readings with a guarded mechanism and run aggregate queries.
"""

import numpy as np

from repro import SensorSpec, make_mechanism
from repro.queries import MeanQuery, measure_utility


def main() -> None:
    # A blood-pressure sensor: readings always lie in [94, 200] mmHg.
    sensor = SensorSpec(94.0, 200.0)
    epsilon = 0.5

    # --- 1. The naive fixed-point implementation fails -----------------
    baseline = make_mechanism("baseline", sensor, epsilon)
    report = baseline.ldp_report()
    print("naive fixed-point Laplace:", report.describe())
    assert not report.is_finite, "the paper's negative result"

    # --- 2. Thresholding restores the guarantee ------------------------
    mech = make_mechanism("thresholding", sensor, epsilon)
    report = mech.ldp_report()
    print("thresholding DP-Box arm:  ", report.describe())
    assert report.satisfied

    # --- 3. Privatize and query ----------------------------------------
    rng = np.random.default_rng(0)
    true_readings = rng.normal(131.0, 18.0, size=2000).clip(94, 200)
    noisy = mech.privatize(true_readings)
    print(f"\ntrue mean    = {true_readings.mean():.2f} mmHg")
    print(f"private mean = {noisy.mean():.2f} mmHg  (each reading is {mech.claimed_loss_bound:.2g}-LDP)")

    utility = measure_utility(mech, true_readings, [MeanQuery()], n_trials=10)
    print(f"mean-query MAE over 10 trials: {utility['mean'].cell()}")


if __name__ == "__main__":
    main()
