#!/usr/bin/env python3
"""A sensitive yes/no survey via DP-Box randomized response.

Section VI-E: with its threshold set to zero, DP-Box degenerates into
Warner randomized response and can privatize *categorical* data.  Here a
population answers a sensitive binary question; each respondent's bit
passes through the zero-threshold DP-Box; the analyst debiases the noisy
tally.  The script sweeps the population size to reproduce the Fig.-14
trend (estimate error shrinks with N while each answer stays private).
"""

import numpy as np

from repro import SensorSpec, make_mechanism
from repro.analysis import render_series


def main() -> None:
    true_rate = 0.23  # fraction answering "yes" in truth
    epsilon = 2.0

    rr = make_mechanism(
        "rr", SensorSpec(0.0, 1.0), epsilon, input_bits=14, delta=1 / 128
    )
    print(
        f"DP-Box RR mode: flip probability {rr.flip_probability:.3f}, "
        f"exact channel ε = {rr.exact_epsilon():.3f}"
    )
    print(f"per-answer plausible deniability: report=yes could be a flip "
          f"with odds 1:{np.exp(rr.exact_epsilon()):.1f}\n")

    rng = np.random.default_rng(1)
    sizes = [100, 300, 1000, 3000, 10000, 30000]
    maes = []
    for n in sizes:
        errs = []
        for _ in range(20):
            answers = (rng.random(n) < true_rate).astype(int)
            noisy = rr.privatize_bits(answers)
            est = rr.estimate_frequency(noisy)
            errs.append(abs(est - answers.mean()))
        maes.append(float(np.mean(errs)))

    print(
        render_series(
            "respondents",
            sizes,
            [("MAE of yes-rate estimate", maes)],
            title=f"randomized-response survey accuracy (true rate {true_rate})",
        )
    )
    assert maes[-1] < maes[0], "accuracy must improve with population size"
    print("\nEach individual answer is protected; only the aggregate converges.")


if __name__ == "__main__":
    main()
