#!/usr/bin/env python3
"""Training a classifier on locally-privatized sensor features.

Section VI-F / Table VI: a cloud service trains an SVM, but devices only
ever upload LDP-noised feature vectors.  The script sweeps training-set
size × privacy level and prints the Table-VI grid: accuracy approaches
the clean model as data grows, and the privacy tax (smaller ε) is paid
in sample complexity, not in any individual's exposure.
"""

from repro.analysis import render_table
from repro.datasets import make_halfspace_dataset
from repro.ml import table6_sweep


def main() -> None:
    data = make_halfspace_dataset(9000, dim=2, margin=0.05, seed=3)
    train_sizes = [1000, 2000, 4000, 8000]
    epsilons = [0.5, 1.0, 2.0, None]  # None = no privacy

    grid = table6_sweep(data, train_sizes, epsilons, arm="thresholding")

    rows = []
    for eps in epsilons:
        label = "no DP" if eps is None else f"ε = {eps}"
        rows.append([label] + [f"{grid[eps][n]:.1%}" for n in train_sizes])
    print(
        render_table(
            ["privacy"] + [f"n={n}" for n in train_sizes],
            rows,
            title="SVM accuracy on a clean test set (features privatized at training time)",
        )
    )

    for n in train_sizes:
        assert grid[None][n] >= grid[0.5][n], "privacy can only cost accuracy"
    print(
        "\nAccuracy rises with training-set size for every ε, and the gap "
        "to the clean model is the price of local privacy (Table VI)."
    )


if __name__ == "__main__":
    main()
