#!/usr/bin/env python3
"""A wearable heart monitor built on the cycle-level DP-Box.

This is the paper's motivating deployment: an ultra-low-power wearable
whose blood-pressure readings are noised *in hardware* before any
software — trusted or not — can see them.  The script drives the DP-Box
through its real command interface:

* initialization phase: lock the privacy budget and replenishment period;
* runtime: configure ε = 2^-1 and the sensor range, then stream readings;
* watch the budget deplete, the cache take over, and the replenishment
  timer restore service;
* report latency statistics (paper Fig. 11 territory).
"""

import numpy as np

from repro import DPBox, DPBoxConfig, DPBoxDriver, GuardMode
from repro.core import Command, LatencyStats
from repro.datasets import load


def main() -> None:
    heart = load("statlog-heart", seed=42)
    print(f"dataset: {heart.name} — {heart.stats().row()}")

    config = DPBoxConfig(
        input_bits=14,
        range_frac_bits=6,
        guard_mode=GuardMode.THRESHOLD,
        loss_multiple=2.0,
    )
    box = DPBox(config)
    driver = DPBoxDriver(box)

    # Secure-boot window: the budget is locked until power-cycle.
    driver.initialize(budget=12.0, replenish_period=5000)
    driver.configure(
        epsilon_exponent=1,  # ε = 0.5
        range_lower=heart.sensor.m,
        range_upper=heart.sensor.M,
    )

    # Stream readings through the box.
    results = [driver.noise(float(x)) for x in heart.values[:60]]
    fresh = [r for r in results if not r.from_cache]
    cached = [r for r in results if r.from_cache]
    print(f"\nstreamed {len(results)} readings:")
    print(f"  fresh replies : {len(fresh)} (budget-charged)")
    print(f"  cached replies: {len(cached)} (budget exhausted -> replay)")
    print(f"  budget left   : {box.budget_engine.remaining:.3f}")

    stats = LatencyStats.from_results(results)
    print(f"  latency       : mean {stats.mean_cycles:.2f} cycles, max {stats.max_cycles}")

    # Idle past the replenishment period; service resumes.
    box.issue(Command.DO_NOTHING)
    box.clock.tick(6000)
    after = driver.noise(float(heart.values[0]))
    print(f"\nafter replenishment: fresh reply again? {not after.from_cache}")

    # Switch to resampling and compare latency.
    driver.configure(
        epsilon_exponent=1,
        range_lower=heart.sensor.m,
        range_upper=heart.sensor.M,
        mode=GuardMode.RESAMPLE,
    )
    res = [driver.noise(float(x)) for x in heart.values[:60]]
    stats_rs = LatencyStats.from_results(res)
    print(
        f"resampling mode : mean {stats_rs.mean_cycles:.2f} cycles "
        f"(one extra cycle per redraw), max {stats_rs.max_cycles}"
    )

    # Aggregate utility: the clinic's view of the population.
    noisy = np.array([r.value for r in results if not r.from_cache])
    print(f"\ntrue mean BP    = {heart.values[:len(results)].mean():.1f}")
    print(f"private mean BP = {noisy.mean():.1f} (from {noisy.size} fresh replies)")


if __name__ == "__main__":
    main()
