"""Shared machinery for the fixed-point mechanism arms.

All three fixed-point arms (naive baseline, resampling, thresholding)
share the same front end: sensor readings are quantized onto the noise
grid ``Δ`` (the sensor ADC step is assumed to be a multiple of ``Δ``, as
in the DP-Box datapath), a signed noise code is drawn from the
:class:`~repro.rng.laplace_fxp.FxpLaplaceRng`, and the sum is produced.
They differ only in the *guard* applied afterwards, which is what
:class:`FxpMechanismBase` leaves abstract.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..privacy.definitions import LossReport
from ..privacy.loss import DiscreteMechanismFamily, input_grid_codes
from ..rng.laplace_fxp import FxpLaplaceConfig, FxpLaplaceRng
from ..rng.pmf import DiscretePMF
from ..rng.urng import UniformCodeSource
from ..runtime import ReleasePipeline, ReleaseRequest
from .base import LocalMechanism, SensorSpec

__all__ = ["FxpMechanismBase", "DEFAULT_INPUT_BITS", "DEFAULT_OUTPUT_BITS"]

#: Paper running-example URNG width (Fig. 4 uses Bu = 17).
DEFAULT_INPUT_BITS = 17
#: Signed output width; 20 matches the synthesized DP-Box datapath.
DEFAULT_OUTPUT_BITS = 20


class FxpMechanismBase(LocalMechanism):
    """Base class: quantized sensor + fixed-point Laplace noise."""

    def __init__(
        self,
        sensor: SensorSpec,
        epsilon: float,
        input_bits: int = DEFAULT_INPUT_BITS,
        output_bits: int = DEFAULT_OUTPUT_BITS,
        delta: Optional[float] = None,
        source: Optional[UniformCodeSource] = None,
        log_backend=None,
        n_verify_inputs: int = 9,
        pipeline: Optional[ReleasePipeline] = None,
        kernel: str = "auto",
    ):
        super().__init__(sensor, epsilon, pipeline=pipeline)
        if delta is None:
            # Default grid: 7 fractional bits of the sensor range — fine
            # enough that quantization is negligible next to the noise,
            # coarse enough that exact PMFs stay small.
            delta = sensor.d / 128.0
        config = FxpLaplaceConfig(
            input_bits=input_bits,
            output_bits=output_bits,
            delta=delta,
            lam=sensor.d / epsilon,
        )
        self.rng = FxpLaplaceRng(
            config, source=source, log_backend=log_backend, kernel=kernel
        )
        self.n_verify_inputs = n_verify_inputs
        self._noise_pmf: Optional[DiscretePMF] = None
        # Sensor range endpoints must land on the grid; snap them once and
        # validate the snap is exact enough to be a pure representation
        # choice, not a data change.
        self.k_m = self._snap(sensor.m, "lower range bound")
        self.k_M = self._snap(sensor.M, "upper range bound")
        if self.k_M <= self.k_m:
            raise ConfigurationError("sensor range collapses on the noise grid")

    # ------------------------------------------------------------------
    def _snap(self, value: float, what: str) -> int:
        k = int(round(value / self.delta))
        if abs(k * self.delta - value) > 0.5 * self.delta + 1e-12:
            raise ConfigurationError(f"{what} cannot be represented on the grid")
        return k

    @property
    def delta(self) -> float:
        """Noise/output quantization step ``Δ``."""
        return self.rng.config.delta

    @property
    def noise_pmf(self) -> DiscretePMF:
        """Exact signed noise PMF (cached)."""
        if self._noise_pmf is None:
            self._noise_pmf = self.rng.exact_pmf()
        return self._noise_pmf

    def verification_codes(self) -> Sequence[int]:
        """Sensor grid codes used for the exact LDP certification."""
        return input_grid_codes(
            self.k_m * self.delta,
            self.k_M * self.delta,
            self.delta,
            n_points=self.n_verify_inputs,
        )

    def quantize_inputs(self, x: np.ndarray) -> np.ndarray:
        """Sensor readings → grid codes (round to nearest, clamped to range)."""
        x = self._check_inputs(x)
        k = np.floor(x / self.delta + 0.5).astype(np.int64)
        return np.clip(k, self.k_m, self.k_M)

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def _family(self) -> DiscreteMechanismFamily:
        """The conditional-distribution family this arm induces."""
        raise NotImplementedError

    def ldp_report(self, epsilon_target: Optional[float] = None) -> LossReport:
        target = self.claimed_loss_bound if epsilon_target is None else epsilon_target
        return self._family().worst_case_loss(epsilon_target=target)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _noised_codes(self, k_x: np.ndarray) -> np.ndarray:
        """One round of ``x + n`` in grid codes."""
        return k_x + self.rng.sample_codes(k_x.size).reshape(k_x.shape)

    def _build_request(
        self,
        x: np.ndarray,
        guard: str,
        window=None,
        max_rounds: Optional[int] = None,
    ) -> ReleaseRequest:
        """Common fixed-point release description.

        Clip/quantize happens here (the pipeline's clip stage); the draw
        callable is the audited fixed-point Laplace RNG; decode maps
        output codes back to sensor units on the ``Δ`` grid.
        """
        delta = self.delta
        request = ReleaseRequest(
            mechanism=self.name,
            epsilon=self.epsilon,
            claimed_loss=self.claimed_loss_bound,
            codes=self.quantize_inputs(x).reshape(-1),
            draw=self.rng.sample_codes,
            # Fused fast path: bit-identical to codes + draw(n) with
            # identical source consumption (see sample_codes_add).
            draw_add=self.rng.sample_codes_add,
            guard=guard,
            window=window,
            decode=lambda k: k * delta,
            kernel=self.rng.kernel,
        )
        if max_rounds is not None:
            request.max_rounds = max_rounds
        return request

    @staticmethod
    def _round_threshold_code(threshold: float, delta: float) -> int:
        k = int(math.floor(threshold / delta + 1e-9))
        if k < 1:
            raise ConfigurationError("threshold must be at least one grid step")
        return k
