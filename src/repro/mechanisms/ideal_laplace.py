"""Ideal continuous Laplace mechanism — the evaluation's gold standard."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..privacy.definitions import LossReport
from ..privacy.laplace_mechanism import IdealLaplaceMechanismCore
from ..runtime import ReleaseRequest
from .base import LocalMechanism, SensorSpec

__all__ = ["IdealLaplaceMechanism"]


class IdealLaplaceMechanism(LocalMechanism):
    """``y = x + Lap(d/ε)`` over float64 — provably exactly ε-LDP.

    This mechanism cannot exist in real hardware (paper Section III-A4),
    but it is the yardstick every discrete arm is compared against in
    Tables II–V.
    """

    name = "Ideal"

    def __init__(
        self,
        sensor: SensorSpec,
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
        pipeline=None,
    ):
        super().__init__(sensor, epsilon, pipeline=pipeline)
        self._core = IdealLaplaceMechanismCore(sensor.m, sensor.M, epsilon, rng)

    def release_request(self, x: np.ndarray) -> ReleaseRequest:
        """Ideal arm: real-valued "codes" (no grid), no guard.

        The ideal mechanism has no fixed-point datapath, so its pipeline
        codes are the float readings themselves and decode is identity.
        """
        x = self._check_inputs(x)
        return ReleaseRequest(
            mechanism=self.name,
            epsilon=self.epsilon,
            claimed_loss=self.claimed_loss_bound,
            codes=x.reshape(-1),
            draw=self._core.sample_noise,
            guard="none",
        )

    def ldp_report(self, epsilon_target: Optional[float] = None) -> LossReport:
        """Analytic: the continuous Laplace mechanism's loss is exactly ε."""
        target = self.epsilon if epsilon_target is None else epsilon_target
        return LossReport(
            worst_loss=self.epsilon,
            epsilon_target=target,
            argmax_inputs=(self.sensor.m, self.sensor.M),
        )
