"""The categorical LDP protocol seam: encode → perturb → report.

The LDP frequency-oracle literature (Qin et al., PAPERS.md) factors
every categorical protocol into four stages: the *client* encodes its
value and perturbs the encoding, the *server* aggregates the perturbed
reports into per-category support counts and estimates frequencies with
an unbiased linear inversion.  :class:`CategoricalMechanism` is the
client half of that contract plus the exact channel parameters the
server half (:mod:`repro.queries.frequency`) needs:

* :meth:`~CategoricalMechanism.encode` — value → encoded codes;
* :meth:`~CategoricalMechanism.perturb` — encoded codes → reports,
  **through the release pipeline** (clip→draw→guard→charge→cache→emit),
  so every categorical report is a :class:`~repro.runtime.ReleaseEvent`
  with budget charging and dplint-audited randomness for free;
* :meth:`~CategoricalMechanism.support_counts` — reports → per-category
  support counts ``c_v`` (the aggregate stage);
* :meth:`~CategoricalMechanism.estimator_params` — the exact channel
  probabilities ``(p, q)`` with ``p = Pr[support v | true v]`` and
  ``q = Pr[support v | true v' != v]``, from which the estimate stage
  inverts ``f̂_v = (c_v/n - q)/(p - q)`` unbiasedly.

Every mechanism here reports its *realized* channel: perturbation
probabilities are dyadic rationals ``t / 2**bits`` realized exactly by
comparing URNG codes against integer thresholds, and the advertised
``exact_epsilon`` is computed from those realized probabilities — the
same finite-precision honesty the paper demands of the Laplace datapath.

:class:`~repro.mechanisms.rr_mode.DpBoxRandomizedResponse` is re-homed
onto this protocol (binary special case, DP-Box hardware channel);
:mod:`repro.mechanisms.oracles` provides the OUE/OLH/k-RR arms.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..runtime import ReleaseOutcome, ReleasePipeline, ReleaseRequest, default_pipeline

__all__ = ["CategoricalMechanism", "check_categories"]


def check_categories(values: np.ndarray, n_categories: int) -> np.ndarray:
    """Validate a 1-D integer category vector in ``0..n_categories-1``."""
    values = np.asarray(values)
    if values.size == 0:
        raise ConfigurationError("empty category input")
    if not np.issubdtype(values.dtype, np.integer):
        raise ConfigurationError("categories must be integers")
    values = values.reshape(-1).astype(np.int64)
    if values.min() < 0 or values.max() >= n_categories:
        raise ConfigurationError(f"categories must be in 0..{n_categories - 1}")
    return values


class CategoricalMechanism(abc.ABC):
    """Client side of the four-stage categorical LDP protocol.

    Subclasses implement the encode and perturb stages (the perturb
    stage must route its randomness through a
    :class:`~repro.runtime.ReleaseRequest`) plus the channel metadata
    the server-side stages consume.  :meth:`report` composes the two
    client stages; the aggregate/estimate stages live in
    :mod:`repro.queries.frequency` and operate on any object satisfying
    this interface.

    ``user_offset`` threads the *global* user index through encode and
    support counting: protocols with per-user public randomness (OLH's
    per-user hash) derive it from that index, so sharded fleet execution
    stays worker-count bit-identical — the hash of device ``i`` never
    depends on which shard or process privatizes it.
    """

    #: Short name used in result tables ("OUE", "OLH", ...).
    name: str = "categorical"

    #: Domain size ``d`` (set by subclass constructors).
    n_categories: int = 0

    # Subclass constructors also set ``self.epsilon`` (the per-report
    # privacy claim) after validating it — validation lives with the
    # concrete constructors, which dplint DPL005 watches.

    # -- pipeline plumbing (mirrors LocalMechanism; standalone oracles
    # -- are not LocalMechanisms, they have no sensor range) -----------
    @property
    def pipeline(self) -> ReleasePipeline:
        """The release pipeline this mechanism perturbs through."""
        pipe = getattr(self, "_pipeline", None)
        return pipe if pipe is not None else default_pipeline()

    @pipeline.setter
    def pipeline(self, value: Optional[ReleasePipeline]) -> None:
        self._pipeline = value

    # -- the client stages ---------------------------------------------
    @abc.abstractmethod
    def encode(self, values: np.ndarray, user_offset: int = 0) -> np.ndarray:
        """Encode true categories into the protocol's input alphabet.

        Returns one encoded row per user: shape ``(n,)`` for index
        encodings (RR, OLH), ``(n, d)`` for unary encodings (OUE).
        """

    @abc.abstractmethod
    def perturb_request(
        self, encoded: np.ndarray, user_offset: int = 0
    ) -> ReleaseRequest:
        """Describe the perturbation of ``encoded`` as a pipeline release."""

    def perturb(
        self,
        encoded: np.ndarray,
        accounting=None,
        channel: Optional[str] = None,
        user_offset: int = 0,
    ) -> np.ndarray:
        """Perturb encoded rows through the pipeline; returns reports."""
        encoded = np.asarray(encoded)
        request = self.perturb_request(encoded, user_offset=user_offset)
        if channel is not None:
            request.channel = channel
        outcome = self.pipeline.release(request, accounting=accounting)
        return self._reports_from_outcome(outcome, encoded)

    def report(
        self,
        values: np.ndarray,
        accounting=None,
        channel: Optional[str] = None,
        user_offset: int = 0,
    ) -> np.ndarray:
        """encode ∘ perturb: true categories → privatized reports."""
        encoded = self.encode(values, user_offset=user_offset)
        return self.perturb(
            encoded, accounting=accounting, channel=channel, user_offset=user_offset
        )

    def _reports_from_outcome(
        self, outcome: ReleaseOutcome, encoded: np.ndarray
    ) -> np.ndarray:
        """Reshape pipeline output back to per-user report rows."""
        return np.asarray(outcome.values).reshape(encoded.shape)

    # -- server-side metadata ------------------------------------------
    @abc.abstractmethod
    def support_counts(
        self, reports: np.ndarray, user_offset: int = 0
    ) -> np.ndarray:
        """Per-category support counts ``c_v`` of a report batch.

        ``c_v`` counts the reports that *support* category ``v`` under
        the protocol's support predicate (bit ``v`` set for OUE, report
        equal to the user's hash of ``v`` for OLH, report equal to ``v``
        for RR).  Counts are exact integers, so folding shard batches is
        associative — the sharded aggregation path is bit-identical for
        any worker count.
        """

    @abc.abstractmethod
    def estimator_params(self) -> Tuple[float, float]:
        """Exact realized ``(p, q)`` of the support channel.

        ``p = Pr[report supports v | true value v]`` and ``q = Pr[report
        supports v | true value != v]`` — the two numbers that make
        ``f̂_v = (c_v/n - q)/(p - q)`` unbiased for the *realized*
        (finite-precision) channel, not the ideal one.
        """

    @property
    @abc.abstractmethod
    def report_bits(self) -> int:
        """Bits on the wire per report (the ULP radio-budget axis)."""

    @abc.abstractmethod
    def exact_epsilon(self) -> float:
        """Exact ε of the realized channel (≤ the configured claim)."""

    # -- shared conveniences -------------------------------------------
    @property
    def claimed_loss_bound(self) -> float:
        """Per-report loss claim (the configured ε)."""
        return self.epsilon

    def n_reports(self, reports: np.ndarray) -> int:
        """Number of user reports in a report batch."""
        reports = np.asarray(reports)
        return int(reports.shape[0])
