"""Resampling mechanism (paper Section III-B1).

When the noised output falls outside the common window
``[m - n_th1, M + n_th1]`` the noise is redrawn until it lands inside.
Because the window is *common to every input*, no output value can rule
any input out, and choosing ``n_th1`` small enough also bounds the finite
likelihood ratios — restoring ε-LDP on fixed-point hardware at the cost
of occasional extra RNG cycles.

The threshold is chosen either by the paper's closed form (eq. 13) or by
exact calibration against the target loss ``n·ε`` (the default; see
DESIGN.md §5).  :meth:`ResamplingMechanism.privatize_with_counts` exposes
the per-sample draw counts, which is exactly the data the DP-Box latency
evaluation (Fig. 11) needs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..privacy.loss import DiscreteMechanismFamily
from ..privacy.thresholds import (
    calibrate_threshold_exact,
    paper_resampling_threshold,
)
from .base import SensorSpec
from .fxp_common import FxpMechanismBase

__all__ = ["ResamplingMechanism"]

#: Hard cap on redraw rounds; with any sane threshold the acceptance
#: probability is > 0.9, so 64 rounds failing indicates a config bug.
_MAX_ROUNDS = 64


class ResamplingMechanism(FxpMechanismBase):
    """Fixed-point Laplace with redraw-until-in-window guarding."""

    name = "Resampling"

    def __init__(
        self,
        sensor: SensorSpec,
        epsilon: float,
        loss_multiple: float = 2.0,
        threshold: Optional[float] = None,
        threshold_policy: str = "exact",
        **kwargs,
    ):
        super().__init__(sensor, epsilon, **kwargs)
        if loss_multiple <= 1.0:
            raise ConfigurationError("loss_multiple must exceed 1")
        self.loss_multiple = loss_multiple
        if threshold is not None:
            self.threshold = float(threshold)
        elif threshold_policy == "paper":
            self.threshold = paper_resampling_threshold(
                sensor.d, self.delta, epsilon, self.rng.config.input_bits, loss_multiple
            )
        elif threshold_policy == "exact":
            hint = self._paper_hint()
            self.threshold = calibrate_threshold_exact(
                self.noise_pmf,
                self.verification_codes(),
                loss_multiple * epsilon,
                mode="resample",
                k_hint=hint,
            )
        else:
            raise ConfigurationError(f"unknown threshold_policy {threshold_policy!r}")
        self.k_th = self._round_threshold_code(self.threshold, self.delta)
        #: Output window in grid codes: common to all inputs.
        self.window = (self.k_m - self.k_th, self.k_M + self.k_th)

    def _paper_hint(self) -> int:
        try:
            t = paper_resampling_threshold(
                self.sensor.d,
                self.delta,
                self.epsilon,
                self.rng.config.input_bits,
                self.loss_multiple,
            )
            return int(round(t / self.delta))
        except Exception:
            return 16

    # ------------------------------------------------------------------
    @property
    def claimed_loss_bound(self) -> float:
        """Resampling guarantees ``n·ε``, not ε (paper Section III-B1)."""
        return self.loss_multiple * self.epsilon

    def acceptance_probability(self, x: float) -> float:
        """Exact probability a single draw lands inside the window."""
        k_x = int(self.quantize_inputs(np.asarray([x]))[0])
        shifted = self.noise_pmf.shifted(k_x)
        lo, hi = self.window
        return float(shifted.prob_array(lo, hi).sum())

    def expected_draws(self, x: float) -> float:
        """Expected RNG draws per output (geometric: ``1/p_accept``)."""
        return 1.0 / self.acceptance_probability(x)

    # ------------------------------------------------------------------
    def privatize_with_counts(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Privatize and also return per-sample draw counts."""
        k_x = self.quantize_inputs(x)
        flat = k_x.reshape(-1)
        out = np.empty_like(flat)
        draws = np.zeros(flat.size, dtype=np.int64)
        pending = np.arange(flat.size)
        lo, hi = self.window
        for _ in range(_MAX_ROUNDS):
            # dplint: allow[DPL003] -- the resampling loop's iteration count
            # IS the paper's timing side channel (Fig. 12); it is modeled
            # deliberately and measured by repro.attacks.timing.
            if pending.size == 0:
                break
            k_y = flat[pending] + self.rng.sample_codes(pending.size)
            draws[pending] += 1
            good = (k_y >= lo) & (k_y <= hi)
            out[pending[good]] = k_y[good]
            pending = pending[~good]
        if pending.size:
            raise ConfigurationError(
                f"{pending.size} samples failed to accept after {_MAX_ROUNDS} "
                "rounds; the resampling window is misconfigured"
            )
        return (out.reshape(k_x.shape) * self.delta, draws.reshape(k_x.shape))

    def privatize(self, x: np.ndarray) -> np.ndarray:
        return self.privatize_with_counts(x)[0]

    # ------------------------------------------------------------------
    def _family(self) -> DiscreteMechanismFamily:
        return DiscreteMechanismFamily.additive(
            self.noise_pmf,
            self.verification_codes(),
            window=self.window,
            mode="resample",
        )
