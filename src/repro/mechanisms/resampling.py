"""Resampling mechanism (paper Section III-B1).

When the noised output falls outside the common window
``[m - n_th1, M + n_th1]`` the noise is redrawn until it lands inside.
Because the window is *common to every input*, no output value can rule
any input out, and choosing ``n_th1`` small enough also bounds the finite
likelihood ratios — restoring ε-LDP on fixed-point hardware at the cost
of occasional extra RNG cycles.

The threshold is chosen either by the paper's closed form (eq. 13) or by
exact calibration against the target loss ``n·ε`` (the default; see
DESIGN.md §5).  :meth:`ResamplingMechanism.privatize_with_counts` exposes
the per-sample draw counts, which is exactly the data the DP-Box latency
evaluation (Fig. 11) needs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import CalibrationError, ConfigurationError
from ..privacy.loss import DiscreteMechanismFamily
from ..privacy.thresholds import (
    calibrate_threshold_exact,
    paper_resampling_threshold,
)
from ..runtime import DEFAULT_MAX_ROUNDS, ReleaseRequest
from .base import SensorSpec
from .fxp_common import FxpMechanismBase

__all__ = ["ResamplingMechanism"]

#: Hard cap on redraw rounds; with any sane threshold the acceptance
#: probability is > 0.9, so exhausting this indicates a config bug —
#: the pipeline raises :class:`repro.errors.ResampleExhaustedError` and
#: emits an ``exhausted=True`` event when it happens.
_MAX_ROUNDS = DEFAULT_MAX_ROUNDS


class ResamplingMechanism(FxpMechanismBase):
    """Fixed-point Laplace with redraw-until-in-window guarding."""

    name = "Resampling"

    def __init__(
        self,
        sensor: SensorSpec,
        epsilon: float,
        loss_multiple: float = 2.0,
        threshold: Optional[float] = None,
        threshold_policy: str = "exact",
        **kwargs,
    ):
        super().__init__(sensor, epsilon, **kwargs)
        if loss_multiple <= 1.0:
            raise ConfigurationError("loss_multiple must exceed 1")
        self.loss_multiple = loss_multiple
        if threshold is not None:
            self.threshold = float(threshold)
        elif threshold_policy == "paper":
            self.threshold = paper_resampling_threshold(
                sensor.d, self.delta, epsilon, self.rng.config.input_bits, loss_multiple
            )
        elif threshold_policy == "exact":
            hint = self._paper_hint()
            self.threshold = calibrate_threshold_exact(
                self.noise_pmf,
                self.verification_codes(),
                loss_multiple * epsilon,
                mode="resample",
                k_hint=hint,
            )
        else:
            raise ConfigurationError(f"unknown threshold_policy {threshold_policy!r}")
        self.k_th = self._round_threshold_code(self.threshold, self.delta)
        #: Output window in grid codes: common to all inputs.
        self.window = (self.k_m - self.k_th, self.k_M + self.k_th)

    def _paper_hint(self) -> int:
        try:
            t = paper_resampling_threshold(
                self.sensor.d,
                self.delta,
                self.epsilon,
                self.rng.config.input_bits,
                self.loss_multiple,
            )
            return int(round(t / self.delta))
        except (CalibrationError, ValueError, OverflowError):
            # The paper closed form has no positive solution (or its
            # exp/log left the float range) for this configuration; the
            # hint only seeds the exact search, so fall back to a
            # neutral starting point.  Anything else — a typed config
            # error, an interrupt — is a real bug and must propagate.
            return 16

    # ------------------------------------------------------------------
    @property
    def claimed_loss_bound(self) -> float:
        """Resampling guarantees ``n·ε``, not ε (paper Section III-B1)."""
        return self.loss_multiple * self.epsilon

    def acceptance_probability(self, x: float) -> float:
        """Exact probability a single draw lands inside the window."""
        k_x = int(self.quantize_inputs(np.asarray([x]))[0])
        shifted = self.noise_pmf.shifted(k_x)
        lo, hi = self.window
        return float(shifted.prob_array(lo, hi).sum())

    def expected_draws(self, x: float) -> float:
        """Expected RNG draws per output (geometric: ``1/p_accept``)."""
        return 1.0 / self.acceptance_probability(x)

    # ------------------------------------------------------------------
    def release_request(self, x: np.ndarray) -> ReleaseRequest:
        return self._build_request(
            x, guard="resample", window=self.window, max_rounds=_MAX_ROUNDS
        )

    def privatize_with_counts(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Privatize and also return per-sample draw counts.

        The counts are the pipeline's per-sample round counts — the same
        numbers carried on the emitted :class:`~repro.runtime.ReleaseEvent`
        (``draws`` / ``max_rounds_used``), exposed here array-shaped for
        the exact Fig. 11/12 analyses.
        """
        x = np.asarray(x)
        outcome = self.release(x)
        return outcome.values, outcome.rounds.reshape(x.shape)

    # ------------------------------------------------------------------
    def _family(self) -> DiscreteMechanismFamily:
        return DiscreteMechanismFamily.additive(
            self.noise_pmf,
            self.verification_codes(),
            window=self.window,
            mode="resample",
        )
