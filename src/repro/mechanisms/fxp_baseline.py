"""Naive fixed-point Laplace mechanism — the paper's broken baseline.

This arm adds fixed-point Laplace noise with **no guard**.  Its utility is
essentially indistinguishable from the ideal mechanism (paper Tables
II–V, "FxP HW Baseline"), but its exact worst-case privacy loss is
infinite: outputs beyond ``x ± L`` and the zero-probability tail holes
let an adversary rule inputs out with certainty (Sections III-A3, VI-A).
"""

from __future__ import annotations

import numpy as np

from ..privacy.loss import DiscreteMechanismFamily
from .fxp_common import FxpMechanismBase

__all__ = ["FxpBaselineMechanism"]


class FxpBaselineMechanism(FxpMechanismBase):
    """``y = quantize(x) + n_fxp`` with no resampling or thresholding."""

    name = "FxP baseline"

    def privatize(self, x: np.ndarray) -> np.ndarray:
        k_x = self.quantize_inputs(x)
        return self._noised_codes(k_x) * self.delta

    def _family(self) -> DiscreteMechanismFamily:
        return DiscreteMechanismFamily.additive(
            self.noise_pmf, self.verification_codes(), mode="baseline"
        )
