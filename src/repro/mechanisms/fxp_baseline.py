"""Naive fixed-point Laplace mechanism — the paper's broken baseline.

This arm adds fixed-point Laplace noise with **no guard**.  Its utility is
essentially indistinguishable from the ideal mechanism (paper Tables
II–V, "FxP HW Baseline"), but its exact worst-case privacy loss is
infinite: outputs beyond ``x ± L`` and the zero-probability tail holes
let an adversary rule inputs out with certainty (Sections III-A3, VI-A).
"""

from __future__ import annotations

import numpy as np

from ..privacy.loss import DiscreteMechanismFamily
from ..runtime import ReleaseRequest
from .fxp_common import FxpMechanismBase

__all__ = ["FxpBaselineMechanism"]


class FxpBaselineMechanism(FxpMechanismBase):
    """``y = quantize(x) + n_fxp`` with no resampling or thresholding."""

    name = "FxP baseline"

    def release_request(self, x: np.ndarray) -> ReleaseRequest:
        return self._build_request(x, guard="none")

    def _family(self) -> DiscreteMechanismFamily:
        return DiscreteMechanismFamily.additive(
            self.noise_pmf, self.verification_codes(), mode="baseline"
        )
