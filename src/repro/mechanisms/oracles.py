"""LDP frequency-oracle arms: OUE, OLH and k-ary RR on the pipeline.

The three standard frequency oracles from the LDP survey (Qin et al.,
PAPERS.md), realized in *exact finite precision*: every perturbation
probability is a dyadic rational ``t / 2**bits`` implemented by
comparing audited URNG codes against an integer threshold, and the
channel the estimators invert is the realized one, not the ideal one —
the same honesty the paper demands of the fixed-point Laplace datapath.

* :class:`KaryRandomizedResponse` — generalized RR over ``d``
  categories.  The perturbation is *additive noise on Z_d*: report
  ``(v + o) mod d`` with ``o = 0`` with keep probability ``t0/2**B``
  and ``o`` exactly uniform over ``1..d-1`` otherwise (the threshold
  calibration forces ``2**B - t0`` to be divisible by ``d - 1``, so the
  realized channel is exactly symmetric).  ``ceil(log2 d)`` bits per
  report.
* :class:`OptimizedUnaryEncoding` (OUE) — one-hot encode; transmit each
  bit through an asymmetric binary channel with ``Pr[1→1] = 1/2``
  (exactly: a ``2**(B-1)`` threshold) and ``Pr[0→1] = q̂``.  ``d`` bits
  per report, and the variance-optimal unary encoding.
* :class:`OptimizedLocalHashing` (OLH) — hash the value into
  ``g ≈ e^ε + 1`` buckets with a per-user public hash, then k-ary RR
  over the ``g`` buckets.  ``ceil(log2 g)`` bits per report — OUE's
  variance at a tiny fraction of its payload.

All three implement :class:`~repro.mechanisms.categorical.
CategoricalMechanism`: their perturbation is one
:class:`~repro.runtime.ReleaseRequest` with ``modulus=g`` (categorical
alphabets are cyclic groups; k-ary RR *is* additive noise on Z_g), so
ReleaseEvents, charge policies and the dplint randomness audit apply
unchanged.

OLH's per-user hash is *public* randomness: it is derived
deterministically from ``(hash_seed, global user index)`` via a
splitmix64 key schedule feeding a ``((a·v + b) mod P) mod g`` universal
hash (P = 2^31 - 1), so the server — and any shard of a sharded fleet —
can recompute it without communication, and sharded execution is
worker-count bit-identical.  The marginal collision probability over the
hash family is ``1/g`` up to the usual O(g/P) universal-hash bias, which
is the ``q`` the estimator uses.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..rng.urng import SplitStreamSource, UniformCodeSource
from ..runtime import ReleaseRequest
from .categorical import CategoricalMechanism, check_categories

__all__ = [
    "DEFAULT_ORACLE_BITS",
    "KaryRandomizedResponse",
    "OptimizedUnaryEncoding",
    "OptimizedLocalHashing",
    "make_oracle",
    "ORACLE_NAMES",
    "calibrate_oue_threshold",
    "calibrate_krr_thresholds",
    "optimal_hash_range",
]

#: URNG width the oracle thresholds quantize against.  16 bits puts the
#: dyadic rounding error of the realized channel below 2^-16 — far under
#: every estimator's sampling noise — while keeping thresholds exact.
DEFAULT_ORACLE_BITS = 16

#: Oracle arm names accepted by :func:`make_oracle`.
ORACLE_NAMES = ("krr", "oue", "olh")

_HASH_PRIME = (1 << 31) - 1  # Mersenne prime; a·v + b stays well in int64
_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


# ---------------------------------------------------------------------
# Dyadic threshold calibration
# ---------------------------------------------------------------------
def calibrate_oue_threshold(epsilon: float, bits: int) -> int:
    """Smallest 0→1 threshold ``t`` with realized ε ≤ the target.

    The OUE channel's worst log-ratio is ``ln((1-q̂)/q̂)`` with
    ``q̂ = t/2**bits`` (the 1-bit channel is exactly symmetric at 1/2,
    so it contributes nothing extra), which is decreasing in ``t``; the
    smallest compliant ``t`` is ``ceil(2**bits / (e^ε + 1))`` — the
    realized channel is then at least as private as claimed and as
    useful as the grid allows.
    """
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be positive")
    if not 2 <= bits <= 30:
        raise ConfigurationError("oracle bits must be in 2..30")
    total = 1 << bits
    t = int(math.ceil(total / (math.exp(epsilon) + 1.0)))
    if t >= total // 2:
        raise ConfigurationError(
            f"epsilon={epsilon:g} needs a 0->1 probability >= 1/2 on a "
            f"{bits}-bit grid; increase bits or epsilon"
        )
    return max(t, 1)


def calibrate_krr_thresholds(epsilon: float, g: int, bits: int) -> Tuple[int, int]:
    """Exact-symmetric k-RR thresholds ``(t_keep, c_other)`` on Z_g.

    Splits the ``2**bits`` URNG codes into ``t_keep`` codes that keep
    the value and ``g - 1`` *equal* blocks of ``c_other`` codes, one per
    nonzero offset — equality is forced by requiring ``2**bits - t_keep``
    divisible by ``g - 1``, so the realized channel is exactly the
    symmetric k-ary RR channel with ``p = t_keep/2**bits`` and
    ``q = c_other/2**bits`` and realized ε = ``ln(t_keep/c_other)``.
    Starting from the ideal ``2**bits · e^ε/(e^ε + g - 1)`` the keep
    threshold steps down in ``g - 1`` strides until the realized ε meets
    the target.
    """
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be positive")
    if g < 2:
        raise ConfigurationError("need at least two categories")
    if not 2 <= bits <= 30:
        raise ConfigurationError("oracle bits must be in 2..30")
    total = 1 << bits
    if g - 1 >= total:
        raise ConfigurationError(
            f"{g} categories cannot be resolved by a {bits}-bit URNG grid"
        )
    e = math.exp(epsilon)
    t = int(math.floor(total * e / (e + g - 1.0)))
    # Snap down to the divisibility class, then step down (g-1 at a
    # time, which grows the per-offset block) until t/c_other <= e^eps.
    # Snap down into the divisibility class: shrink t until g-1 divides
    # the remaining code mass (lowering t only makes the channel more
    # private, never less).
    t -= ((g - 1) - (total - t) % (g - 1)) % (g - 1)
    # dplint: allow[DPL003] -- calibration-time search over the *public*
    # (epsilon, g, bits) triple; no per-user data flows into this loop.
    while t > 0:
        c_other = (total - t) // (g - 1)
        # dplint: allow[DPL003] -- same public calibration arithmetic.
        if c_other >= 1 and t <= e * c_other * (1.0 + 1e-12):
            break
        t -= g - 1
    c_other = (total - t) // (g - 1) if t > 0 else 0
    if t < 1 or c_other < 1 or t <= c_other:
        raise ConfigurationError(
            f"no exact-symmetric k-RR channel with p > q for epsilon="
            f"{epsilon:g}, g={g} on a {bits}-bit grid; increase bits"
        )
    return t, c_other


def optimal_hash_range(epsilon: float) -> int:
    """OLH's variance-optimal hash range ``g = round(e^ε + 1)`` (≥ 2)."""
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be positive")
    return max(2, int(round(math.exp(epsilon) + 1.0)))


# ---------------------------------------------------------------------
# Per-user public hashing (OLH)
# ---------------------------------------------------------------------
def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (uint64 in, uint64 out)."""
    z = (x + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
    z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
    z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
    return z ^ (z >> np.uint64(31))


def _resolve_user_indices(n: int, user_offset) -> np.ndarray:
    """Global user indices for a batch of ``n`` reports.

    ``user_offset`` is either an int (the batch is the contiguous block
    of global users starting there — the common case) or an explicit
    array of ``n`` global indices (a dropout-thinned shard slice, where
    the reporting devices are not contiguous).
    """
    if isinstance(user_offset, (int, np.integer)):
        return int(user_offset) + np.arange(n, dtype=np.int64)
    idx = np.asarray(user_offset, dtype=np.int64).reshape(-1)
    if idx.size != n:
        raise ConfigurationError(
            f"user index array has {idx.size} entries for {n} reports"
        )
    return idx


def _user_hash_params(
    hash_seed: int, user_indices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic per-user ``(a, b)`` universal-hash coefficients.

    A pure function of ``(hash_seed, global user index)`` — public
    randomness shared with the server, independent of the privatization
    stream and of shard/worker layout.
    """
    base = _splitmix64(
        np.uint64(hash_seed & 0xFFFFFFFFFFFFFFFF)
        ^ (np.asarray(user_indices, dtype=np.uint64) + np.uint64(1))
    )
    a = (base >> np.uint64(33)).astype(np.int64) % (_HASH_PRIME - 1) + 1
    b = _splitmix64(base).astype(np.int64) % _HASH_PRIME
    return a, b


# ---------------------------------------------------------------------
# The oracle arms
# ---------------------------------------------------------------------
class _CodeThresholdOracle(CategoricalMechanism):
    """Shared plumbing: URNG source, bits, pipeline, claim bookkeeping."""

    def __init__(
        self,
        n_categories: int,
        epsilon: float,
        source: Optional[UniformCodeSource] = None,
        bits: int = DEFAULT_ORACLE_BITS,
        pipeline=None,
    ):
        if n_categories < 2:
            raise ConfigurationError("need at least two categories")
        if epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        self.n_categories = int(n_categories)
        self.epsilon = float(epsilon)
        self.bits = int(bits)
        self.source = source if source is not None else SplitStreamSource(None)
        self._pipeline = pipeline

    def _request(
        self,
        codes: np.ndarray,
        draw: Callable[[int], np.ndarray],
        modulus: int,
        decode=None,
    ) -> ReleaseRequest:
        return ReleaseRequest(
            mechanism=self.name,
            epsilon=self.epsilon,
            claimed_loss=self.claimed_loss_bound,
            codes=np.asarray(codes, dtype=np.int64).reshape(-1),
            draw=draw,
            guard="none",
            modulus=modulus,
            decode=decode,
        )


class KaryRandomizedResponse(_CodeThresholdOracle):
    """Generalized (k-ary) randomized response as a frequency oracle."""

    name = "k-RR"

    def __init__(self, n_categories, epsilon, **kwargs):
        super().__init__(n_categories, epsilon, **kwargs)
        self.t_keep, self.c_other = calibrate_krr_thresholds(
            self.epsilon, self.n_categories, self.bits
        )

    # -- client stages --------------------------------------------------
    def encode(self, values: np.ndarray, user_offset: int = 0) -> np.ndarray:
        """Identity encoding: the category index itself."""
        return check_categories(values, self.n_categories)

    def _draw_offsets(self, n: int) -> np.ndarray:
        """Additive Z_g offsets: 0 with keep prob, else exactly uniform."""
        u = self.source.uniform_codes(n, self.bits)
        # Codes 1..t_keep keep; the remaining (g-1)*c_other codes split
        # into g-1 equal blocks, one per nonzero offset.
        return np.where(u <= self.t_keep, 0, 1 + (u - self.t_keep - 1) % self.c_other_span)

    @property
    def c_other_span(self) -> int:
        """Nonzero offset count ``g - 1`` (the modular split width)."""
        return self.n_categories - 1

    def perturb_request(self, encoded, user_offset: int = 0) -> ReleaseRequest:
        return self._request(encoded, self._draw_offsets, modulus=self.n_categories)

    # -- server-side metadata ------------------------------------------
    def support_counts(self, reports, user_offset: int = 0) -> np.ndarray:
        reports = check_categories(reports, self.n_categories)
        return np.bincount(reports, minlength=self.n_categories).astype(np.int64)

    def estimator_params(self) -> Tuple[float, float]:
        scale = float(1 << self.bits)
        return self.t_keep / scale, self.c_other / scale

    @property
    def report_bits(self) -> int:
        return max(1, int(math.ceil(math.log2(self.n_categories))))

    def exact_epsilon(self) -> float:
        return math.log(self.t_keep / self.c_other)


class OptimizedUnaryEncoding(_CodeThresholdOracle):
    """OUE: one-hot encoding, per-bit asymmetric binary channels."""

    name = "OUE"

    def __init__(self, n_categories, epsilon, **kwargs):
        super().__init__(n_categories, epsilon, **kwargs)
        #: 1-bits transmit with probability exactly 1/2.
        self.t_one = 1 << (self.bits - 1)
        #: 0→1 threshold: realized q̂ = t_zero / 2**bits.
        self.t_zero = calibrate_oue_threshold(self.epsilon, self.bits)

    # -- client stages --------------------------------------------------
    def encode(self, values: np.ndarray, user_offset: int = 0) -> np.ndarray:
        """One-hot rows: shape ``(n, d)`` 0/1 int64."""
        values = check_categories(values, self.n_categories)
        onehot = np.zeros((values.size, self.n_categories), dtype=np.int64)
        onehot[np.arange(values.size), values] = 1
        return onehot

    def perturb_request(self, encoded, user_offset: int = 0) -> ReleaseRequest:
        encoded = np.asarray(encoded, dtype=np.int64)
        if encoded.ndim != 2 or encoded.shape[1] != self.n_categories:
            raise ConfigurationError(
                f"OUE expects an (n, {self.n_categories}) one-hot matrix"
            )
        flat = encoded.reshape(-1)
        # Per-position flip thresholds: a 1-bit flips with probability
        # exactly 1/2, a 0-bit with q̂.  The draw closes over them; all
        # randomness still comes from the audited URNG codes.
        thresholds = np.where(flat == 1, self.t_one, self.t_zero)

        def draw(n: int) -> np.ndarray:
            u = self.source.uniform_codes(n, self.bits)
            return (u <= thresholds[:n]).astype(np.int64)

        return self._request(flat, draw, modulus=2)

    # -- server-side metadata ------------------------------------------
    def support_counts(self, reports, user_offset: int = 0) -> np.ndarray:
        reports = np.asarray(reports)
        if reports.ndim != 2 or reports.shape[1] != self.n_categories:
            raise ConfigurationError(
                f"OUE reports must be an (n, {self.n_categories}) bit matrix"
            )
        return reports.sum(axis=0).astype(np.int64)

    def estimator_params(self) -> Tuple[float, float]:
        return 0.5, self.t_zero / float(1 << self.bits)

    @property
    def report_bits(self) -> int:
        return self.n_categories

    def exact_epsilon(self) -> float:
        total = 1 << self.bits
        return math.log((total - self.t_zero) / self.t_zero)


class OptimizedLocalHashing(_CodeThresholdOracle):
    """OLH: per-user public hash into g buckets, then k-ary RR on Z_g."""

    name = "OLH"

    #: User-block size for the vectorized support-count pass; bounds the
    #: (block × d) hash matrix working set.
    _SUPPORT_BLOCK = 4096

    def __init__(
        self,
        n_categories,
        epsilon,
        g: Optional[int] = None,
        hash_seed: int = 0x01F5,
        **kwargs,
    ):
        super().__init__(n_categories, epsilon, **kwargs)
        self.g = optimal_hash_range(self.epsilon) if g is None else int(g)
        if self.g < 2:
            raise ConfigurationError("hash range g must be >= 2")
        self.hash_seed = int(hash_seed)
        self.t_keep, self.c_other = calibrate_krr_thresholds(
            self.epsilon, self.g, self.bits
        )

    # -- hashing --------------------------------------------------------
    def hash_values(self, values: np.ndarray, user_indices: np.ndarray) -> np.ndarray:
        """``h_i(v)`` for aligned arrays of values and global user indices."""
        a, b = _user_hash_params(self.hash_seed, user_indices)
        return ((a * np.asarray(values, dtype=np.int64) + b) % _HASH_PRIME) % self.g

    def _hash_matrix(self, user_indices: np.ndarray) -> np.ndarray:
        """``(len(users), d)`` matrix of every user's hash of every value."""
        a, b = _user_hash_params(self.hash_seed, user_indices)
        v = np.arange(self.n_categories, dtype=np.int64)
        return ((a[:, None] * v[None, :] + b[:, None]) % _HASH_PRIME) % self.g

    # -- client stages --------------------------------------------------
    def encode(self, values: np.ndarray, user_offset: int = 0) -> np.ndarray:
        """Per-user hashed bucket ``h_i(v_i)``, shape ``(n,)``."""
        values = check_categories(values, self.n_categories)
        idx = _resolve_user_indices(values.size, user_offset)
        return self.hash_values(values, idx)

    def _draw_offsets(self, n: int) -> np.ndarray:
        u = self.source.uniform_codes(n, self.bits)
        return np.where(u <= self.t_keep, 0, 1 + (u - self.t_keep - 1) % (self.g - 1))

    def perturb_request(self, encoded, user_offset: int = 0) -> ReleaseRequest:
        encoded = np.asarray(encoded, dtype=np.int64)
        if encoded.min(initial=0) < 0 or encoded.max(initial=0) >= self.g:
            raise ConfigurationError(f"OLH encoded buckets must be in 0..{self.g - 1}")
        return self._request(encoded, self._draw_offsets, modulus=self.g)

    # -- server-side metadata ------------------------------------------
    def support_counts(self, reports, user_offset: int = 0) -> np.ndarray:
        """``c_v = #{i : y_i == h_i(v)}``, blocked over users."""
        reports = np.asarray(reports, dtype=np.int64).reshape(-1)
        indices = _resolve_user_indices(reports.size, user_offset)
        counts = np.zeros(self.n_categories, dtype=np.int64)
        for start in range(0, reports.size, self._SUPPORT_BLOCK):
            stop = min(start + self._SUPPORT_BLOCK, reports.size)
            h = self._hash_matrix(indices[start:stop])
            counts += (h == reports[start:stop, None]).sum(axis=0)
        return counts

    def estimator_params(self) -> Tuple[float, float]:
        # p is the realized keep probability; q is the hash-marginal
        # support probability 1/g of a *different* true value (pairwise
        # uniformity of the per-user hash family).
        return self.t_keep / float(1 << self.bits), 1.0 / self.g

    @property
    def report_bits(self) -> int:
        return max(1, int(math.ceil(math.log2(self.g))))

    def exact_epsilon(self) -> float:
        return math.log(self.t_keep / self.c_other)


# ---------------------------------------------------------------------
def make_oracle(
    kind: str, n_categories: int, epsilon: float, **kwargs
) -> CategoricalMechanism:
    """Build a frequency-oracle arm by name (``krr``/``oue``/``olh``)."""
    kind = kind.lower()
    if kind == "krr":
        return KaryRandomizedResponse(n_categories, epsilon, **kwargs)
    if kind == "oue":
        return OptimizedUnaryEncoding(n_categories, epsilon, **kwargs)
    if kind == "olh":
        return OptimizedLocalHashing(n_categories, epsilon, **kwargs)
    raise ConfigurationError(
        f"unknown oracle {kind!r}; choose from {', '.join(ORACLE_NAMES)}"
    )
