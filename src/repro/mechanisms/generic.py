"""Guarded additive mechanisms over arbitrary fixed-point noise.

The resampling/thresholding guards and the exact LDP certification are
not Laplace-specific: they work for any discrete symmetric noise on the
``Δ`` grid.  :class:`GuardedNoiseMechanism` wraps any generator with the
:class:`~repro.rng.inversion.FxpInversionRng` interface (staircase,
Gaussian, or a custom distribution) in the same
:class:`~repro.mechanisms.base.LocalMechanism` API the evaluation harness
uses — which is what the noise-distribution ablation bench runs on.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..privacy.definitions import LossReport
from ..privacy.loss import DiscreteMechanismFamily, input_grid_codes
from ..privacy.thresholds import calibrate_threshold_exact
from ..rng.pmf import DiscretePMF
from ..runtime import DEFAULT_MAX_ROUNDS, ReleaseRequest
from .base import LocalMechanism, SensorSpec

__all__ = ["GuardedNoiseMechanism"]

#: Resample round cap; exhaustion raises ResampleExhaustedError via the
#: pipeline (with an ``exhausted=True`` event) instead of falling through.
_MAX_ROUNDS = DEFAULT_MAX_ROUNDS


class GuardedNoiseMechanism(LocalMechanism):
    """Additive mechanism with a pluggable noise generator and guard.

    Parameters
    ----------
    sensor:
        Declared sensor range (must sit on the noise grid).
    epsilon:
        The nominal privacy parameter the noise was scaled for (used for
        reporting; the enforced bound is ``target_loss``).
    noise_rng:
        Any object with ``sample_codes(n)``, ``exact_pmf()`` and a
        ``config.delta`` (e.g. :class:`~repro.rng.staircase.FxpStaircaseRng`).
    mode:
        ``"baseline"``, ``"resample"`` or ``"threshold"``.
    target_loss:
        Worst-case loss bound used for exact threshold calibration
        (ignored for the baseline).
    """

    def __init__(
        self,
        sensor: SensorSpec,
        epsilon: float,
        noise_rng,
        mode: str = "threshold",
        target_loss: Optional[float] = None,
        n_verify_inputs: int = 9,
        name: Optional[str] = None,
        pipeline=None,
    ):
        super().__init__(sensor, epsilon, pipeline=pipeline)
        if mode not in ("baseline", "resample", "threshold"):
            raise ConfigurationError(f"unknown mode {mode!r}")
        self.mode = mode
        self.noise_rng = noise_rng
        self.name = name or f"{type(noise_rng).__name__}/{mode}"
        self.delta = float(noise_rng.config.delta)
        self.k_m = self._snap(sensor.m)
        self.k_M = self._snap(sensor.M)
        self.n_verify_inputs = n_verify_inputs
        self._noise_pmf: Optional[DiscretePMF] = None
        self.window: Optional[Tuple[int, int]] = None
        self.threshold: Optional[float] = None
        if mode != "baseline":
            if target_loss is None:
                raise ConfigurationError("guarded modes need a target_loss")
            self.target_loss = float(target_loss)
            self.threshold = calibrate_threshold_exact(
                self.noise_pmf,
                self._verification_codes(),
                self.target_loss,
                mode=mode,
            )
            k_th = int(round(self.threshold / self.delta))
            self.window = (self.k_m - k_th, self.k_M + k_th)
        else:
            self.target_loss = float(target_loss) if target_loss else epsilon

    # ------------------------------------------------------------------
    def _snap(self, value: float) -> int:
        k = int(round(value / self.delta))
        if abs(k * self.delta - value) > 0.5 * self.delta + 1e-12:
            raise ConfigurationError("range bound not representable on the grid")
        return k

    def _verification_codes(self):
        return input_grid_codes(
            self.k_m * self.delta,
            self.k_M * self.delta,
            self.delta,
            n_points=self.n_verify_inputs,
        )

    @property
    def noise_pmf(self) -> DiscretePMF:
        """Exact noise PMF (cached)."""
        if self._noise_pmf is None:
            self._noise_pmf = self.noise_rng.exact_pmf()
        return self._noise_pmf

    @property
    def claimed_loss_bound(self) -> float:
        return self.target_loss

    # ------------------------------------------------------------------
    def release_request(self, x: np.ndarray) -> ReleaseRequest:
        x = self._check_inputs(x)
        k_x = np.clip(
            np.floor(x / self.delta + 0.5).astype(np.int64), self.k_m, self.k_M
        )
        guard = {"baseline": "none", "threshold": "threshold", "resample": "resample"}[
            self.mode
        ]
        delta = self.delta
        return ReleaseRequest(
            mechanism=self.name,
            epsilon=self.epsilon,
            claimed_loss=self.claimed_loss_bound,
            codes=k_x.reshape(-1),
            draw=self.noise_rng.sample_codes,
            # Fused fast path when the RNG offers one (FxpLaplaceRng
            # does); bit-identical to codes + draw(n) by contract.
            draw_add=getattr(self.noise_rng, "sample_codes_add", None),
            guard=guard,
            window=self.window,
            max_rounds=_MAX_ROUNDS,
            decode=lambda k: k * delta,
        )

    def _family(self) -> DiscreteMechanismFamily:
        codes = self._verification_codes()
        if self.mode == "baseline":
            return DiscreteMechanismFamily.additive(self.noise_pmf, codes)
        return DiscreteMechanismFamily.additive(
            self.noise_pmf, codes, window=self.window, mode=self.mode
        )

    def ldp_report(self, epsilon_target: Optional[float] = None) -> LossReport:
        target = self.claimed_loss_bound if epsilon_target is None else epsilon_target
        return self._family().worst_case_loss(epsilon_target=target)
