"""Thresholding mechanism (paper Section III-B2).

The noised output is clamped into ``[m - n_th2, M + n_th2]``: everything
beyond the window is rounded *to* the window boundary, creating visible
probability atoms at the two extremes (paper Fig. 7).  One noise draw
always suffices, so thresholding is the energy-efficient guard; the
boundary atoms change the output distribution, which shifts utility in a
data-dependent way relative to resampling (Section VI-B).

Threshold selection:

* ``threshold_policy="paper"`` — eq. (15), which bounds the loss ratio of
  the two *boundary atoms* by ``n·ε``.  Note (DESIGN.md §5): at low URNG
  resolution the clamped window interior can still contain
  zero-probability holes that eq. (15) does not see; the exact analyzer
  reports infinite loss in that case.
* ``threshold_policy="exact"`` (default) — the largest threshold whose
  exactly computed worst-case loss (atoms *and* interior) is ``<= n·ε``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import CalibrationError, ConfigurationError
from ..privacy.loss import DiscreteMechanismFamily
from ..privacy.thresholds import (
    calibrate_threshold_exact,
    paper_thresholding_threshold,
)
from ..runtime import ReleaseRequest
from .base import SensorSpec
from .fxp_common import FxpMechanismBase

__all__ = ["ThresholdingMechanism"]


class ThresholdingMechanism(FxpMechanismBase):
    """Fixed-point Laplace with clamp-to-window guarding."""

    name = "Thresholding"

    def __init__(
        self,
        sensor: SensorSpec,
        epsilon: float,
        loss_multiple: float = 2.0,
        threshold: Optional[float] = None,
        threshold_policy: str = "exact",
        **kwargs,
    ):
        super().__init__(sensor, epsilon, **kwargs)
        if loss_multiple <= 1.0:
            raise ConfigurationError("loss_multiple must exceed 1")
        self.loss_multiple = loss_multiple
        if threshold is not None:
            self.threshold = float(threshold)
        elif threshold_policy == "paper":
            self.threshold = paper_thresholding_threshold(
                sensor.d, self.delta, epsilon, self.rng.config.input_bits, loss_multiple
            )
        elif threshold_policy == "exact":
            self.threshold = calibrate_threshold_exact(
                self.noise_pmf,
                self.verification_codes(),
                loss_multiple * epsilon,
                mode="threshold",
                k_hint=self._paper_hint(),
            )
        else:
            raise ConfigurationError(f"unknown threshold_policy {threshold_policy!r}")
        self.k_th = self._round_threshold_code(self.threshold, self.delta)
        #: Output window in grid codes; outputs clamp to its edges.
        self.window = (self.k_m - self.k_th, self.k_M + self.k_th)

    def _paper_hint(self) -> int:
        try:
            t = paper_thresholding_threshold(
                self.sensor.d,
                self.delta,
                self.epsilon,
                self.rng.config.input_bits,
                self.loss_multiple,
            )
            return int(round(t / self.delta))
        except (CalibrationError, ValueError, OverflowError):
            # Same contract as the resampling hint: only the closed
            # form's legitimate "no solution in float range" failures
            # fall back to a neutral search start; foreign exceptions
            # propagate instead of being masked.
            return 16

    # ------------------------------------------------------------------
    @property
    def claimed_loss_bound(self) -> float:
        """Thresholding guarantees ``n·ε`` (paper Section III-B2)."""
        return self.loss_multiple * self.epsilon

    def boundary_atom_probability(self, x: float) -> float:
        """Exact probability the output clamps (either side) for input x."""
        k_x = int(self.quantize_inputs(np.asarray([x]))[0])
        shifted = self.noise_pmf.shifted(k_x)
        lo, hi = self.window
        return float(shifted.tail_le(lo - 1) + shifted.tail_ge(hi + 1))

    # ------------------------------------------------------------------
    def release_request(self, x: np.ndarray) -> ReleaseRequest:
        return self._build_request(x, guard="threshold", window=self.window)

    def _family(self) -> DiscreteMechanismFamily:
        return DiscreteMechanismFamily.additive(
            self.noise_pmf,
            self.verification_codes(),
            window=self.window,
            mode="threshold",
        )
