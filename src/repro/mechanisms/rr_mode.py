"""DP-Box randomized-response mode (paper Section VI-E).

"The proposed DP-box can be reconfigured to support the randomized
response mechanism by setting the threshold zero" — with binary data
``x ∈ {m, M}``, the thresholded output clamps into ``[m, M]`` and is
quantized to the nearer endpoint, which is exactly Warner randomized
response with flip probability ``q = Pr[x + n crosses the midpoint]``.

:class:`DpBoxRandomizedResponse` computes the induced 2x2 channel
*exactly* from the fixed-point noise PMF, reports the exact ε it
provides, and exposes the debiased frequency estimator used in Fig. 14.

It is also the binary arm of the categorical oracle protocol
(:class:`~repro.mechanisms.categorical.CategoricalMechanism`): encode
maps a bit to its sensor endpoint, perturb is the zero-threshold DP-Box
release (unchanged — the re-homing is bit-identical), and the exact 2x2
channel supplies the ``(p, q)`` the frequency estimators invert.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..privacy.definitions import LossReport, pointwise_loss
from ..privacy.randomized_response import debias_frequency
from ..runtime import ReleaseOutcome, ReleaseRequest
from .base import SensorSpec
from .categorical import CategoricalMechanism
from .fxp_common import FxpMechanismBase

__all__ = ["DpBoxRandomizedResponse"]


class DpBoxRandomizedResponse(FxpMechanismBase, CategoricalMechanism):
    """Binary randomized response realized by a zero-threshold DP-Box."""

    name = "DP-Box RR"

    #: Binary domain: the two sensor endpoints.
    n_categories = 2

    def __init__(self, sensor: SensorSpec, epsilon: float, **kwargs):
        super().__init__(sensor, epsilon, **kwargs)
        d_codes = self.k_M - self.k_m
        if d_codes < 2:
            raise ConfigurationError("binary range collapses on the noise grid")
        #: Midpoint crossing code: output >= midpoint reports M.
        self._k_mid = self.k_m + (d_codes + 1) // 2
        self._flip_from_m, self._flip_from_M = self._exact_flip_probs()

    # ------------------------------------------------------------------
    def _exact_flip_probs(self) -> Tuple[float, float]:
        """Exact flip probability for each of the two true values."""
        pmf = self.noise_pmf
        # x = m: reported as M when m + n >= midpoint.
        flip_m = pmf.shifted(self.k_m).tail_ge(self._k_mid)
        # x = M: reported as m when M + n < midpoint.
        flip_M = pmf.shifted(self.k_M).tail_le(self._k_mid - 1)
        if flip_m >= 0.5 or flip_M >= 0.5:
            raise ConfigurationError(
                "flip probability >= 1/2: the configured epsilon is too small "
                "for a useful randomized response"
            )
        return float(flip_m), float(flip_M)

    @property
    def flip_probability(self) -> float:
        """Worst-side flip probability (the utility-relevant one)."""
        return max(self._flip_from_m, self._flip_from_M)

    @property
    def keep_probability(self) -> float:
        """Worst-side keep probability."""
        return 1.0 - self.flip_probability

    def exact_epsilon(self) -> float:
        """Exact ε of the induced 2x2 channel."""
        return self.ldp_report().worst_loss

    # ------------------------------------------------------------------
    # Categorical-protocol client stages (encode -> perturb).  The
    # perturb stage is the *unchanged* zero-threshold DP-Box release, so
    # re-homing onto CategoricalMechanism is bit-identical by
    # construction (regression-locked in tests/unit/test_rr_mode.py).
    # ------------------------------------------------------------------
    def encode(self, values: np.ndarray, user_offset: int = 0) -> np.ndarray:
        """Encode 0/1 data onto the sensor endpoints (0 → m, 1 → M)."""
        bits = np.asarray(values)
        if not np.all((bits == 0) | (bits == 1)):
            raise ConfigurationError("RR mode expects 0/1 data")
        return np.where(bits == 1, self.sensor.M, self.sensor.m)

    def perturb_request(self, encoded, user_offset: int = 0) -> ReleaseRequest:
        """The perturbation IS the zero-threshold DP-Box release."""
        return self.release_request(np.asarray(encoded, dtype=float))

    def _reports_from_outcome(
        self, outcome: ReleaseOutcome, encoded: np.ndarray
    ) -> np.ndarray:
        """Quantize released endpoint values back to 0/1 reports."""
        reported = np.asarray(outcome.values, dtype=float).reshape(
            np.asarray(encoded).shape
        )
        return (reported >= (self._k_mid * self.delta) - 0.5 * self.delta).astype(int)

    def privatize_bits(self, bits: np.ndarray) -> np.ndarray:
        """Privatize 0/1 data (0 → m, 1 → M) and return 0/1 reports."""
        return self.perturb(self.encode(bits))

    def support_counts(self, reports, user_offset: int = 0) -> np.ndarray:
        """Per-endpoint support counts ``[#0-reports, #1-reports]``."""
        reports = np.asarray(reports).reshape(-1)
        ones = int(np.count_nonzero(reports))
        return np.array([reports.size - ones, ones], dtype=np.int64)

    def estimator_params(self) -> Tuple[float, float]:
        """Exact realized channel ``(p, q)`` for the 1-endpoint."""
        return 1.0 - self._flip_from_M, self._flip_from_m

    @property
    def report_bits(self) -> int:
        """One bit on the wire per report."""
        return 1

    def release_request(self, x: np.ndarray) -> ReleaseRequest:
        """RR release: threshold-0 window ``[k_m, k_M]``, endpoint decode.

        Sensor readings arrive as real values; they are immediately
        mapped to the two integer endpoint codes k_m/k_M and all noise
        arithmetic in the pipeline is on integer codes.  Decode
        quantizes the clamped output to the nearer endpoint — the
        categorical RR output alphabet.
        """
        x = np.asarray(x, dtype=float)
        is_m = np.isclose(x, self.sensor.m)
        is_M = np.isclose(x, self.sensor.M)
        if not np.all(is_m | is_M):
            raise ConfigurationError("RR mode expects binary values in {m, M}")
        k_x = np.where(is_M, self.k_M, self.k_m).astype(np.int64).reshape(-1)
        request = self._build_request(
            np.where(is_M, self.sensor.M, self.sensor.m),
            guard="threshold",
            window=(self.k_m, self.k_M),
        )
        request.codes = k_x
        k_mid, m, M = self._k_mid, self.sensor.m, self.sensor.M
        request.decode = lambda k: np.where(k >= k_mid, M, m)
        return request

    def estimate_frequency(self, noisy_bits: np.ndarray) -> float:
        """Debiased estimate of the true 1-frequency from noisy reports.

        Uses the average of the two exact flip probabilities as the
        channel symmetrization (they differ only by one grid step's worth
        of tie handling).
        """
        keep = 1.0 - 0.5 * (self._flip_from_m + self._flip_from_M)
        return debias_frequency(float(np.mean(noisy_bits)), keep)

    # ------------------------------------------------------------------
    def channel_matrix(self) -> np.ndarray:
        """Exact 2x2 channel: rows = true (m, M), cols = reported (m, M)."""
        return np.array(
            [
                [1.0 - self._flip_from_m, self._flip_from_m],
                [self._flip_from_M, 1.0 - self._flip_from_M],
            ]
        )

    def ldp_report(self, epsilon_target: Optional[float] = None) -> LossReport:
        target = self.epsilon if epsilon_target is None else epsilon_target
        ch = self.channel_matrix()
        losses = [
            abs(pointwise_loss(ch[0, j], ch[1, j])) for j in range(2)
        ]
        worst = max(losses)
        j = int(np.argmax(losses))
        return LossReport(
            worst_loss=float(worst),
            epsilon_target=target,
            argmax_output=float(self.sensor.m if j == 0 else self.sensor.M),
            argmax_inputs=(self.sensor.m, self.sensor.M),
            n_infinite_outputs=0 if math.isfinite(worst) else 1,
        )
