"""Local-privacy mechanism arms used throughout the evaluation.

The four numeric arms of paper Tables II–V plus the categorical
randomized-response mode, all behind one :class:`LocalMechanism` API.
:func:`make_mechanism` builds an arm by table name.
"""

from typing import Optional

from ..errors import ConfigurationError
from .base import LocalMechanism, SensorSpec
from .categorical import CategoricalMechanism
from .fxp_baseline import FxpBaselineMechanism
from .generic import GuardedNoiseMechanism
from .fxp_common import DEFAULT_INPUT_BITS, DEFAULT_OUTPUT_BITS, FxpMechanismBase
from .ideal_laplace import IdealLaplaceMechanism
from .oracles import (
    DEFAULT_ORACLE_BITS,
    KaryRandomizedResponse,
    OptimizedLocalHashing,
    OptimizedUnaryEncoding,
    ORACLE_NAMES,
    make_oracle,
)
from .resampling import ResamplingMechanism
from .rr_mode import DpBoxRandomizedResponse
from .thresholding import ThresholdingMechanism

__all__ = [
    "LocalMechanism",
    "SensorSpec",
    "CategoricalMechanism",
    "FxpBaselineMechanism",
    "GuardedNoiseMechanism",
    "FxpMechanismBase",
    "IdealLaplaceMechanism",
    "ResamplingMechanism",
    "ThresholdingMechanism",
    "DpBoxRandomizedResponse",
    "KaryRandomizedResponse",
    "OptimizedUnaryEncoding",
    "OptimizedLocalHashing",
    "make_oracle",
    "ORACLE_NAMES",
    "DEFAULT_ORACLE_BITS",
    "DEFAULT_INPUT_BITS",
    "DEFAULT_OUTPUT_BITS",
    "make_mechanism",
    "ARM_NAMES",
]

#: Canonical evaluation-arm names, in paper table order.
ARM_NAMES = ("ideal", "baseline", "resampling", "thresholding")


def make_mechanism(
    arm: str,
    sensor: SensorSpec,
    epsilon: float,
    loss_multiple: float = 2.0,
    **kwargs,
) -> LocalMechanism:
    """Build an evaluation arm by name.

    ``arm`` is one of ``"ideal"``, ``"baseline"``, ``"resampling"``,
    ``"thresholding"`` or ``"rr"``.  Extra keyword arguments are passed to
    the mechanism constructor (bit widths, Δ, URNG source, ...).
    """
    arm = arm.lower()
    if arm == "ideal":
        rng = kwargs.pop("rng", None)
        pipeline = kwargs.pop("pipeline", None)
        if kwargs:
            raise ConfigurationError(f"unsupported options for ideal arm: {kwargs}")
        return IdealLaplaceMechanism(sensor, epsilon, rng=rng, pipeline=pipeline)
    if arm == "baseline":
        return FxpBaselineMechanism(sensor, epsilon, **kwargs)
    if arm == "resampling":
        return ResamplingMechanism(sensor, epsilon, loss_multiple=loss_multiple, **kwargs)
    if arm == "thresholding":
        return ThresholdingMechanism(sensor, epsilon, loss_multiple=loss_multiple, **kwargs)
    if arm == "rr":
        return DpBoxRandomizedResponse(sensor, epsilon, **kwargs)
    raise ConfigurationError(f"unknown mechanism arm {arm!r}")
