"""Uniform interface for local privacy mechanisms.

Every experiment arm in the paper's evaluation — ideal Laplace, naive
fixed-point baseline, resampling, thresholding, randomized response —
implements :class:`LocalMechanism`: privatize a batch of sensor readings
and report (exactly, where the mechanism is discrete) whether the result
is ε-LDP.  The utility/latency harnesses and DP-Box are written against
this interface only.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..privacy.definitions import LossReport
from ..runtime import ReleaseOutcome, ReleasePipeline, ReleaseRequest, default_pipeline

__all__ = ["SensorSpec", "LocalMechanism"]


@dataclasses.dataclass(frozen=True)
class SensorSpec:
    """Static description of a sensor: the declared data range ``[m, M]``.

    LDP noise scaling depends only on the range length ``d = M - m``
    (paper Section II-B) — no other knowledge of the sensor is needed,
    which is what lets DP-Box be sensor-agnostic.
    """

    m: float
    M: float

    def __post_init__(self) -> None:
        if not self.M > self.m:
            raise ConfigurationError(f"need M > m, got [{self.m}, {self.M}]")

    @property
    def d(self) -> float:
        """Range length ``M - m`` (the mechanism's sensitivity)."""
        return self.M - self.m

    @property
    def midpoint(self) -> float:
        """Center of the range (used by the default counting predicate)."""
        return 0.5 * (self.m + self.M)

    def clip(self, x: np.ndarray) -> np.ndarray:
        """Clamp readings into the declared range."""
        return np.clip(np.asarray(x, dtype=float), self.m, self.M)

    def contains(self, x: np.ndarray) -> np.ndarray:
        """Element-wise membership test."""
        x = np.asarray(x, dtype=float)
        return (x >= self.m) & (x <= self.M)


class LocalMechanism(abc.ABC):
    """A randomized map from a sensor reading to a privatized report."""

    #: Short name used in result tables ("Ideal", "FxP baseline", ...).
    name: str = "mechanism"

    def __init__(
        self,
        sensor: SensorSpec,
        epsilon: float,
        pipeline: Optional[ReleasePipeline] = None,
    ):
        if epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        self.sensor = sensor
        self.epsilon = epsilon
        self._pipeline = pipeline

    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> ReleasePipeline:
        """The release pipeline this mechanism emits through.

        Defaults to the process-wide pipeline so every release is
        observable; inject one per box/experiment for isolated traces.
        """
        return self._pipeline if self._pipeline is not None else default_pipeline()

    @pipeline.setter
    def pipeline(self, value: Optional[ReleasePipeline]) -> None:
        self._pipeline = value

    @abc.abstractmethod
    def release_request(self, x: np.ndarray) -> ReleaseRequest:
        """Describe one release of ``x`` (clipped codes, draw, guard)."""

    def release(
        self,
        x: np.ndarray,
        accounting=None,
        channel: Optional[str] = None,
    ) -> ReleaseOutcome:
        """Privatize through the pipeline, returning the full outcome.

        ``accounting`` is a charge policy from
        :mod:`repro.runtime.accounting` (``None`` = unaccounted); the
        emitted :class:`~repro.runtime.ReleaseEvent` is on the outcome.
        """
        x = np.asarray(x, dtype=float)
        request = self.release_request(x)
        if channel is not None:
            request.channel = channel
        outcome = self.pipeline.release(request, accounting=accounting)
        outcome.values = np.asarray(outcome.values, dtype=float).reshape(x.shape)
        return outcome

    def privatize(self, x: np.ndarray) -> np.ndarray:
        """Privatize a batch of readings (shape preserved)."""
        return self.release(x).values

    @abc.abstractmethod
    def ldp_report(self, epsilon_target: Optional[float] = None) -> LossReport:
        """Exact (or analytic) worst-case privacy-loss certification.

        ``epsilon_target`` defaults to the mechanism's own claimed bound.
        """

    # ------------------------------------------------------------------
    @property
    def claimed_loss_bound(self) -> float:
        """The per-query loss bound this mechanism claims to provide."""
        return self.epsilon

    def is_ldp(self) -> bool:
        """Convenience: does the exact analysis confirm the claim?"""
        return bool(self.ldp_report().satisfied)

    def _check_inputs(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if np.any(~self.sensor.contains(x)):
            raise ConfigurationError(
                "sensor readings outside the declared range "
                f"[{self.sensor.m}, {self.sensor.M}]"
            )
        return x
