"""The dplint engine: file discovery, parsing, rule dispatch, filtering.

Pipeline per file: read → parse (`ast`) → run every selected rule →
drop findings suppressed by ``# dplint: allow[...]`` comments → (at the
run level) subtract the committed baseline.  Unparsable files and
suppressions naming unknown rule ids surface as findings themselves
(``DPL900`` / ``DPL901``) so they cannot silently disable analysis.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import ConfigurationError
from .baseline import Baseline
from .findings import Finding, Severity
from .paths import PathPolicy
from .registry import FileContext, Rule, all_rule_ids, get_rules
from .suppress import SuppressionIndex

__all__ = ["LintConfig", "LintResult", "LintEngine", "SYNTAX_ERROR_RULE",
           "BAD_SUPPRESSION_RULE"]

#: Pseudo-rule id for files the parser rejects.
SYNTAX_ERROR_RULE = "DPL900"
#: Pseudo-rule id for suppressions naming unknown rules.
BAD_SUPPRESSION_RULE = "DPL901"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


@dataclasses.dataclass
class LintConfig:
    """Options of one lint run."""

    rule_ids: Optional[Sequence[str]] = None
    baseline_path: Optional[str] = None
    #: Root that findings' paths are reported relative to (default: cwd).
    root: Optional[str] = None


@dataclasses.dataclass
class LintResult:
    """Outcome of a lint run."""

    findings: List[Finding]
    n_files: int
    n_suppressed: int
    n_baselined: int
    #: Every finding before baseline subtraction (for --write-baseline).
    all_findings: List[Finding] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "tool": "dplint",
            "files": self.n_files,
            "suppressed": self.n_suppressed,
            "baselined": self.n_baselined,
            "counts": self.counts_by_rule(),
            "findings": [f.to_dict() for f in self.findings],
        }


class LintEngine:
    """Runs the registered rules over a set of paths."""

    def __init__(self, config: Optional[LintConfig] = None):
        self.config = config or LintConfig()
        self.rules: List[Rule] = get_rules(self.config.rule_ids)
        self.policy = PathPolicy()
        self._known_ids = set(all_rule_ids()) | {
            SYNTAX_ERROR_RULE,
            BAD_SUPPRESSION_RULE,
        }

    # ------------------------------------------------------------------
    # File discovery
    # ------------------------------------------------------------------
    def discover(self, paths: Iterable[str]) -> List[str]:
        files: List[str] = []
        for raw in paths:
            p = pathlib.Path(raw)
            if not p.exists():
                raise ConfigurationError(f"lint path does not exist: {raw}")
            if p.is_file():
                if p.suffix == ".py":
                    files.append(str(p))
                continue
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = [
                    d
                    for d in sorted(dirnames)
                    if d not in _SKIP_DIRS
                    and not d.startswith(".")
                    and not d.endswith(".egg-info")
                ]
                for fn in sorted(filenames):
                    if fn.endswith(".py"):
                        files.append(os.path.join(dirpath, fn))
        return sorted(set(files))

    def _display_path(self, path: str) -> str:
        root = self.config.root or os.getcwd()
        try:
            rel = os.path.relpath(path, root)
        except ValueError:  # pragma: no cover - windows drive mismatch
            return path
        return rel.replace(os.sep, "/") if not rel.startswith("..") else path

    # ------------------------------------------------------------------
    # Per-file analysis
    # ------------------------------------------------------------------
    def lint_source(self, display_path: str, source: str) -> List[Finding]:
        """Run the rules over one in-memory module (suppression-aware)."""
        self._last_suppressed = 0
        try:
            tree = ast.parse(source, filename=display_path)
        except SyntaxError as exc:
            return [
                Finding(
                    rule_id=SYNTAX_ERROR_RULE,
                    severity=Severity.ERROR,
                    path=display_path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    source_line="",
                )
            ]
        suppressions = SuppressionIndex.from_source(source)
        ctx = FileContext(display_path, source, tree, self.policy)
        findings: List[Finding] = []
        for rule in self.rules:
            for finding in rule.check(ctx):
                if suppressions.is_suppressed(finding.rule_id, finding.line):
                    self._last_suppressed += 1
                else:
                    findings.append(finding)
        unknown = suppressions.declared_ids() - self._known_ids
        for rid in sorted(unknown):
            findings.append(
                Finding(
                    rule_id=BAD_SUPPRESSION_RULE,
                    severity=Severity.ERROR,
                    path=display_path,
                    line=1,
                    col=0,
                    message=f"suppression names unknown rule id {rid!r}",
                    source_line="",
                )
            )
        findings.sort(key=Finding.sort_key)
        return findings

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, paths: Sequence[str]) -> LintResult:
        files = self.discover(paths)
        all_findings: List[Finding] = []
        n_suppressed = 0
        for path in files:
            display = self._display_path(path)
            source = pathlib.Path(path).read_text(encoding="utf-8")
            found = self.lint_source(display, source)
            n_suppressed += self._last_suppressed
            all_findings.extend(found)
        all_findings.sort(key=Finding.sort_key)
        if self.config.baseline_path:
            baseline = Baseline.load(self.config.baseline_path)
            fresh, absorbed = baseline.filter(all_findings)
        else:
            fresh, absorbed = list(all_findings), 0
        return LintResult(
            findings=fresh,
            n_files=len(files),
            n_suppressed=n_suppressed,
            n_baselined=absorbed,
            all_findings=all_findings,
        )
