"""The dplint engine: file discovery, parsing, rule dispatch, filtering.

Pipeline per file: read → parse (`ast`) → run every selected rule →
drop findings suppressed by ``# dplint: allow[...]`` comments.  At the
run level, two whole-project passes follow: the cross-module flow
analysis (DPL006-DPL008, when enabled) walks a graph built from *all*
parsed files so a flow entering a file outside the lint selection is
still seen, and the stale-suppression check (DPL902) flags release-code
annotations that no finding consumed.  The committed baseline is
subtracted last.  Unparsable files and suppressions naming unknown rule
ids surface as findings themselves (``DPL900`` / ``DPL901``) so they
cannot silently disable analysis.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import pathlib
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .baseline import Baseline
from .findings import Finding, Severity
from .flow import ProjectGraph, run_flow_analysis
from .flow.rules import FLOW_RULES
from .paths import PathPolicy
from .registry import FileContext, Rule, all_rule_ids, get_rules
from .suppress import SuppressionIndex

__all__ = [
    "LintConfig",
    "LintResult",
    "LintEngine",
    "SYNTAX_ERROR_RULE",
    "BAD_SUPPRESSION_RULE",
    "STALE_SUPPRESSION_RULE",
]

#: Pseudo-rule id for files the parser rejects.
SYNTAX_ERROR_RULE = "DPL900"
#: Pseudo-rule id for suppressions naming unknown rules.
BAD_SUPPRESSION_RULE = "DPL901"
#: Pseudo-rule id for suppressions that suppress nothing (stale).
STALE_SUPPRESSION_RULE = "DPL902"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


@dataclasses.dataclass
class LintConfig:
    """Options of one lint run."""

    rule_ids: Optional[Sequence[str]] = None
    baseline_path: Optional[str] = None
    #: Root that findings' paths are reported relative to (default: cwd).
    root: Optional[str] = None
    #: Run the cross-module flow analysis (DPL006-DPL008).
    flow: bool = False
    #: When set (absolute paths), only these files produce findings;
    #: the rest of the tree still feeds the flow graph.  Used by
    #: ``--changed`` for fast CI runs.
    restrict_to: Optional[FrozenSet[str]] = None


@dataclasses.dataclass
class LintResult:
    """Outcome of a lint run."""

    findings: List[Finding]
    n_files: int
    n_suppressed: int
    n_baselined: int
    #: Every finding before baseline subtraction (for --write-baseline).
    all_findings: List[Finding] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "tool": "dplint",
            "files": self.n_files,
            "suppressed": self.n_suppressed,
            "baselined": self.n_baselined,
            "counts": self.counts_by_rule(),
            "findings": [f.to_dict() for f in self.findings],
        }


class LintEngine:
    """Runs the registered rules over a set of paths."""

    def __init__(self, config: Optional[LintConfig] = None):
        self.config = config or LintConfig()
        self.policy = PathPolicy()
        self._known_ids = (
            set(all_rule_ids())
            | set(FLOW_RULES)
            | {SYNTAX_ERROR_RULE, BAD_SUPPRESSION_RULE, STALE_SUPPRESSION_RULE}
        )
        ids = self.config.rule_ids
        if ids is None:
            self.rules: List[Rule] = get_rules(None)
            self.flow_rule_ids: Optional[List[str]] = None  # all flow rules
            self.flow_enabled = self.config.flow
        else:
            ids = list(ids)
            selectable = set(all_rule_ids()) | set(FLOW_RULES)
            unknown = sorted(set(ids) - selectable)
            if unknown:
                raise ConfigurationError(
                    f"unknown rule id(s): {', '.join(unknown)}; "
                    f"known: {', '.join(sorted(selectable))}"
                )
            self.flow_rule_ids = [rid for rid in ids if rid in FLOW_RULES]
            self.rules = get_rules([rid for rid in ids if rid not in FLOW_RULES])
            # Selecting a flow rule implies the flow pass, with or
            # without --flow; selecting only per-file rules disables it.
            self.flow_enabled = bool(self.flow_rule_ids)

    # ------------------------------------------------------------------
    # File discovery
    # ------------------------------------------------------------------
    def discover(self, paths: Iterable[str]) -> List[str]:
        files: List[str] = []
        for raw in paths:
            p = pathlib.Path(raw)
            if not p.exists():
                raise ConfigurationError(f"lint path does not exist: {raw}")
            if p.is_file():
                if p.suffix == ".py":
                    files.append(str(p))
                continue
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = [
                    d
                    for d in sorted(dirnames)
                    if d not in _SKIP_DIRS
                    and not d.startswith(".")
                    and not d.endswith(".egg-info")
                ]
                for fn in sorted(filenames):
                    if fn.endswith(".py"):
                        files.append(os.path.join(dirpath, fn))
        return sorted(set(files))

    def _display_path(self, path: str) -> str:
        root = self.config.root or os.getcwd()
        try:
            rel = os.path.relpath(path, root)
        except ValueError:  # pragma: no cover - windows drive mismatch
            return path
        return rel.replace(os.sep, "/") if not rel.startswith("..") else path

    # ------------------------------------------------------------------
    # Per-file analysis
    # ------------------------------------------------------------------
    def lint_source(self, display_path: str, source: str) -> List[Finding]:
        """Run the per-file rules over one in-memory module.

        This is the single-file public API (used by editor integrations
        and most tests): suppression-aware per-file rules plus the
        DPL900/DPL901 pseudo-rules.  Whole-project passes (flow rules,
        DPL902) need the full tree and only run under :meth:`run`.
        """
        self._last_suppressed = 0
        parsed = self._parse(display_path, source)
        if isinstance(parsed, Finding):
            return [parsed]
        suppressions = SuppressionIndex.from_source(source)
        findings = self._run_file_rules(display_path, source, parsed, suppressions)
        findings.extend(self._bad_suppression_findings(display_path, suppressions))
        findings.sort(key=Finding.sort_key)
        return findings

    def _parse(self, display_path: str, source: str):
        try:
            return ast.parse(source, filename=display_path)
        except SyntaxError as exc:
            return Finding(
                rule_id=SYNTAX_ERROR_RULE,
                severity=Severity.ERROR,
                path=display_path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
                source_line="",
            )

    def _run_file_rules(
        self,
        display_path: str,
        source: str,
        tree: ast.Module,
        suppressions: SuppressionIndex,
    ) -> List[Finding]:
        ctx = FileContext(display_path, source, tree, self.policy)
        findings: List[Finding] = []
        for rule in self.rules:
            for finding in rule.check(ctx):
                if suppressions.is_suppressed(finding.rule_id, finding.line):
                    self._last_suppressed += 1
                else:
                    findings.append(finding)
        return findings

    def _bad_suppression_findings(
        self, display_path: str, suppressions: SuppressionIndex
    ) -> List[Finding]:
        findings = []
        unknown = suppressions.declared_ids() - self._known_ids
        for rid in sorted(unknown):
            findings.append(
                Finding(
                    rule_id=BAD_SUPPRESSION_RULE,
                    severity=Severity.ERROR,
                    path=display_path,
                    line=1,
                    col=0,
                    message=f"suppression names unknown rule id {rid!r}",
                    source_line="",
                )
            )
        return findings

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, paths: Sequence[str]) -> LintResult:
        files = self.discover(paths)
        restrict = self.config.restrict_to
        selected = {
            path
            for path in files
            if restrict is None or os.path.abspath(path) in restrict
        }
        all_findings: List[Finding] = []
        n_suppressed = 0
        #: (display, source, tree) of every parsed file — the flow graph
        #: sees the whole tree even when findings are restricted.
        parsed: List[Tuple[str, str, ast.Module]] = []
        index_by_display: Dict[str, SuppressionIndex] = {}
        source_by_display: Dict[str, str] = {}
        selected_displays = set()
        for path in files:
            display = self._display_path(path)
            source = pathlib.Path(path).read_text(encoding="utf-8")
            in_selection = path in selected
            if in_selection:
                selected_displays.add(display)
            result = self._parse(display, source)
            if isinstance(result, Finding):
                if in_selection:
                    all_findings.append(result)
                continue
            suppressions = SuppressionIndex.from_source(source)
            parsed.append((display, source, result))
            index_by_display[display] = suppressions
            source_by_display[display] = source
            if not in_selection:
                continue
            self._last_suppressed = 0
            all_findings.extend(
                self._run_file_rules(display, source, result, suppressions)
            )
            all_findings.extend(
                self._bad_suppression_findings(display, suppressions)
            )
            n_suppressed += self._last_suppressed
        if self.flow_enabled:
            graph = ProjectGraph.build(parsed, self.policy)
            for finding in run_flow_analysis(graph, self.flow_rule_ids):
                if finding.path not in selected_displays:
                    continue
                suppressions = index_by_display.get(finding.path)
                if suppressions is not None and suppressions.is_suppressed(
                    finding.rule_id, finding.line
                ):
                    n_suppressed += 1
                else:
                    all_findings.append(finding)
            stale, stale_suppressed = self._stale_suppression_findings(
                selected_displays, index_by_display, source_by_display
            )
            all_findings.extend(stale)
            n_suppressed += stale_suppressed
        all_findings.sort(key=Finding.sort_key)
        if self.config.baseline_path:
            baseline = Baseline.load(self.config.baseline_path)
            fresh, absorbed = baseline.filter(all_findings)
        else:
            fresh, absorbed = list(all_findings), 0
        return LintResult(
            findings=fresh,
            n_files=len(selected),
            n_suppressed=n_suppressed,
            n_baselined=absorbed,
            all_findings=all_findings,
        )

    def _stale_suppression_findings(
        self,
        selected_displays,
        index_by_display: Dict[str, SuppressionIndex],
        source_by_display: Dict[str, str],
    ) -> Tuple[List[Finding], int]:
        """DPL902: release-code suppressions no finding ever consumed.

        Only meaningful when the complete analysis ran: with a rule
        subset (or without the flow pass) an annotation can look unused
        simply because its rule did not run, so the check stays off.
        Simulation files are also exempt — the documented convention is
        that they may carry ``allow[...]`` annotations as documentation
        even where the hazard rules stay silent.
        """
        if self.config.rule_ids is not None:
            return [], 0
        findings: List[Finding] = []
        n_suppressed = 0
        for display in sorted(selected_displays):
            if not self.policy.is_release(display):
                continue
            suppressions = index_by_display.get(display)
            if suppressions is None:
                continue
            lines = source_by_display.get(display, "").splitlines()
            for line, rid in suppressions.unused_sites():
                if rid not in self._known_ids:
                    continue  # DPL901's domain
                report_line = max(1, line)
                finding = Finding(
                    rule_id=STALE_SUPPRESSION_RULE,
                    severity=Severity.WARNING,
                    path=display,
                    line=report_line,
                    col=0,
                    message=(
                        f"stale suppression: allow[{rid}] "
                        f"{'(file scope) ' if line == 0 else ''}"
                        f"suppresses nothing; delete it"
                    ),
                    source_line=(
                        lines[report_line - 1].strip()
                        if report_line <= len(lines)
                        else ""
                    ),
                )
                if suppressions.is_suppressed(STALE_SUPPRESSION_RULE, report_line):
                    n_suppressed += 1
                else:
                    findings.append(finding)
        return findings, n_suppressed
