"""dplint — AST-based DP-safety static analysis for this codebase.

The paper's core claim is that LDP guarantees die at the implementation
layer without any test failing: bounded/holed fixed-point noise,
unaudited randomness, and data-dependent guard loops all break ε-LDP
structurally.  This package mechanically enforces the invariants the
paper proves, as lint rules over the source tree:

========  ======================  ==========================================
rule      name                    paper invariant
========  ======================  ==========================================
DPL001    unaudited-randomness    release noise must come from the audited
                                  URNG abstraction (Section III-A)
DPL002    float-in-fxp-path       fixed-point datapaths stay on integer
                                  codes (Section III-A4, finite precision)
DPL003    secret-dependent-branch guard control flow must not depend on the
                                  secret (Section VI-D timing channel)
DPL004    release-without-        every release debits the budget
          accounting              (Section II-A composition, Fig. 13)
DPL005    unvalidated-epsilon     constructors reject eps <= 0
                                  (Section II-B calibration)
DPL006    unprivatized-flow-      no raw value reaches a sink without a
          to-sink                 privatization seam (Section II threat
                                  model) — cross-module flow analysis
DPL007    nondet-seed-material    shard plans / stream splits seeded only
                                  from configuration (bit-identity)
DPL008    epsilon-arithmetic-     ε-literal arithmetic stays inside the
          drift                   calibration seam (Section II-B)
========  ======================  ==========================================

DPL006-DPL008 run on a whole-project taint analysis (``--flow``; see
:mod:`repro.lint.flow`).  Usage: ``python -m repro lint [paths]
[--flow] [--format json|text|sarif] [--changed REF]`` or the
``repro-lint`` console script; see ``docs/lint.md`` for the suppression
(``# dplint: allow[DPL001] -- why``) and baseline workflows.
"""

from .baseline import Baseline, DEFAULT_BASELINE_NAME
from .engine import (
    BAD_SUPPRESSION_RULE,
    LintConfig,
    LintEngine,
    LintResult,
    STALE_SUPPRESSION_RULE,
    SYNTAX_ERROR_RULE,
)
from .findings import Finding, FlowStep, Severity
from .flow import FLOW_RULES, flow_rule_ids, render_sarif, run_flow_analysis
from .paths import PathPolicy
from .registry import FileContext, Rule, all_rule_ids, get_rules, register
from .suppress import SuppressionIndex

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "BAD_SUPPRESSION_RULE",
    "SYNTAX_ERROR_RULE",
    "STALE_SUPPRESSION_RULE",
    "LintConfig",
    "LintEngine",
    "LintResult",
    "Finding",
    "FlowStep",
    "Severity",
    "PathPolicy",
    "FileContext",
    "Rule",
    "all_rule_ids",
    "get_rules",
    "register",
    "SuppressionIndex",
    "FLOW_RULES",
    "flow_rule_ids",
    "render_sarif",
    "run_flow_analysis",
]
