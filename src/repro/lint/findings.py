"""Finding and severity model for the dplint static-analysis pass.

A :class:`Finding` is one rule violation pinned to a file/line/column.
Its :attr:`~Finding.fingerprint` deliberately hashes the *content* of the
offending line rather than its number, so baselined findings survive
unrelated edits that merely shift code up or down.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any, Dict

__all__ = ["Severity", "FlowStep", "Finding"]


class Severity(enum.Enum):
    """How bad a finding is.

    Both severities fail a lint run; the distinction exists so reports
    can separate proven invariant violations (``ERROR``) from heuristic
    hazards that need a human judgement call (``WARNING``).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclasses.dataclass(frozen=True)
class FlowStep:
    """One hop of a cross-module dataflow witness (source → … → sink).

    Flow-analysis findings (DPL006-DPL008) attach a tuple of these so a
    reviewer — or a SARIF viewer, via ``codeFlows`` — can walk the path
    instead of reverse-engineering it from the sink line alone.
    """

    path: str
    line: int
    note: str

    def to_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "line": self.line, "note": self.note}


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    #: The stripped text of the offending source line (fingerprint input).
    source_line: str = ""
    #: Dataflow witness steps (flow-analysis findings only, else empty).
    flow: "tuple" = ()

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + path + line *content*."""
        payload = f"{self.rule_id}|{self.path}|{self.source_line.strip()}"
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.flow:
            doc["flow"] = [step.to_dict() for step in self.flow]
        return doc

    def render_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )
