"""``# dplint: allow[...]`` suppression comments.

Two forms are recognized:

* **Line suppressions** — ``# dplint: allow[DPL001]`` (or a comma list,
  ``allow[DPL001,DPL003]``) at the end of a line suppresses matching
  findings on that line.  A comment-only line suppresses the next *code*
  line instead (blank lines and the remainder of the justification
  comment block are skipped), for code too long to annotate in place::

      # dplint: allow[DPL002] -- ideal float64 reference arm; the
      # fixed-point realization is certified separately.
      magnitude = -self.lam * np.log(u)

* **File suppressions** — ``# dplint: allow-file[DPL001]`` anywhere in
  the first :data:`FILE_SCOPE_LINES` lines suppresses the rule for the
  whole module (for e.g. dataset synthesizers that are all simulation
  randomness).

Anything after the closing bracket is free-form justification; writing
one is the expected style.  Unknown rule ids inside the brackets are kept
verbatim so the engine can report them as lint errors of their own
(:data:`repro.lint.engine.BAD_SUPPRESSION_RULE`).
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Set, Tuple

__all__ = ["SuppressionIndex", "FILE_SCOPE_LINES"]

#: ``allow-file`` must appear within this many lines of the top.
FILE_SCOPE_LINES = 15

_LINE_RE = re.compile(r"#\s*dplint:\s*allow\[([A-Za-z0-9_,\s]+)\]")
_FILE_RE = re.compile(r"#\s*dplint:\s*allow-file\[([A-Za-z0-9_,\s]+)\]")


def _split_ids(raw: str) -> List[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


class SuppressionIndex:
    """All suppressions declared in one source file."""

    def __init__(
        self,
        line_rules: Dict[int, Set[str]],
        file_rules: Set[str],
    ) -> None:
        self._line_rules = line_rules
        self._file_rules = file_rules
        self._used: Set[Tuple[int, str]] = set()

    # ------------------------------------------------------------------
    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        lines = source.splitlines()
        line_rules: Dict[int, Set[str]] = {}
        file_rules: Set[str] = set()
        for i, text in enumerate(lines, start=1):
            m = _FILE_RE.search(text)
            if m and i <= FILE_SCOPE_LINES:
                file_rules.update(_split_ids(m.group(1)))
                continue
            m = _LINE_RE.search(text)
            if not m:
                continue
            ids = set(_split_ids(m.group(1)))
            if text.lstrip().startswith("#"):
                # Comment-only line: applies to the next code line, skipping
                # blanks and the rest of the justification comment block.
                target = i + 1
                while target <= len(lines):
                    nxt = lines[target - 1].strip()
                    if nxt and not nxt.startswith("#"):
                        break
                    target += 1
                line_rules.setdefault(target, set()).update(ids)
            else:
                line_rules.setdefault(i, set()).update(ids)
        return cls(line_rules, file_rules)

    # ------------------------------------------------------------------
    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self._file_rules:
            self._used.add((0, rule_id))
            return True
        if rule_id in self._line_rules.get(line, ()):
            self._used.add((line, rule_id))
            return True
        return False

    def declared_ids(self) -> Set[str]:
        """Every rule id mentioned by any suppression in the file."""
        ids = set(self._file_rules)
        for rules in self._line_rules.values():
            ids.update(rules)
        return ids

    def suppression_sites(self) -> Sequence[Tuple[int, str]]:
        """(line, rule) pairs declared; line 0 means file scope."""
        sites = [(0, rid) for rid in sorted(self._file_rules)]
        for line in sorted(self._line_rules):
            sites.extend((line, rid) for rid in sorted(self._line_rules[line]))
        return sites

    def unused_sites(self) -> Sequence[Tuple[int, str]]:
        """Declared sites no :meth:`is_suppressed` hit ever consumed.

        Only meaningful after the full analysis has run over the file;
        the engine turns these into ``DPL902`` (stale suppression)
        findings so dead annotations cannot accumulate.
        """
        return [
            (line, rid)
            for line, rid in self.suppression_sites()
            if (line, rid) not in self._used
        ]
