"""Path policy: which parts of the tree carry which privacy obligations.

The paper's invariants are *path-sensitive*: ``np.random`` inside a
dataset synthesizer is simulation plumbing, but the same call inside a
mechanism is an unaudited randomness source feeding a release.  Rules ask
the :class:`PathPolicy` for a file's tags instead of hard-coding paths.

Tags
----
``release``
    Code on the privatized-release path: ``mechanisms/``, ``rng/``,
    ``core/``, ``privacy/``, ``aggregation/``, ``runtime/``,
    ``parallel/`` (the sharded fleet workers draw release noise),
    ``queries/`` (the frequency-oracle server side debiases by channel
    parameters and the PEM cascade *drives* per-level releases),
    ``fixedpoint/`` and the repro CLI (``repro/cli.py`` — *not*
    ``lint/cli.py``, which only reports findings).  Randomness, float
    usage and accounting rules apply here.
``fxp-datapath``
    ``fixedpoint/`` specifically.  It was originally tagged
    ``simulation`` because it has no randomness of its own, but that
    was wrong in kind: the FxP datapath is the *release arithmetic* —
    every mechanism's noise is quantized through it before leaving the
    device, so a float leaking into it, or a raw value flowing through
    it to a sink, breaks the deployed guarantee, not a simulation.  It
    therefore carries ``release`` (all release-path rules apply) plus
    this marker tag so rules that only make sense for stochastic code
    (e.g. seed-material checks) can recognize the deterministic
    datapath if they ever need to.
``simulation``
    Evaluation/simulation scaffolding (``datasets/``, ``sensors/``,
    ``sim/``, ``analysis/``, ``attacks/``, ``ml/``,
    benchmarks, examples, tests).  Hazard rules stay silent; the code may
    still carry ``# dplint: allow[...]`` annotations as documentation.
``audited-rng``
    The audited randomness implementations themselves (``rng/urng.py``,
    ``rng/tausworthe.py``, ``rng/lfsr.py``, ``rng/codebook.py``).
    DPL001 exempts them: they are the abstraction everything else must
    route through.  ``codebook.py`` qualifies because a gather from a
    cached codebook is a deterministic function of the configuration —
    every random bit still comes from the injected
    :class:`~repro.rng.urng.UniformCodeSource`.
"""

from __future__ import annotations

import pathlib
from typing import FrozenSet

__all__ = [
    "PathPolicy",
    "RELEASE_DIRS",
    "FXP_DATAPATH_DIRS",
    "SIMULATION_DIRS",
    "AUDITED_RNG_FILES",
]

RELEASE_DIRS = frozenset(
    {
        "mechanisms",
        "rng",
        "core",
        "privacy",
        "aggregation",
        "runtime",
        "parallel",
        "queries",
        "fixedpoint",
        "service",
    }
)
#: ``fixedpoint/`` additionally carries this marker (see module docs).
FXP_DATAPATH_DIRS = frozenset({"fixedpoint"})
SIMULATION_DIRS = frozenset(
    {
        "datasets",
        "sensors",
        "sim",
        "analysis",
        "attacks",
        "ml",
        "benchmarks",
        "examples",
        "tests",
    }
)
#: Files allowed to construct raw generators: the audited abstraction.
AUDITED_RNG_FILES = frozenset({"urng.py", "tausworthe.py", "lfsr.py", "codebook.py"})
#: Top-level release files (not inside a release directory).  Matched by
#: basename, but only when the file sits directly under a ``repro``
#: package dir (or is given as a bare name): ``src/repro/cli.py`` is the
#: release CLI, ``src/repro/lint/cli.py`` is the linter's own front end
#: and must not be release-tagged (the linter would flag itself).
RELEASE_FILES = frozenset({"cli.py"})


class PathPolicy:
    """Classifies repository paths into privacy-obligation tags."""

    def tags(self, path: str) -> FrozenSet[str]:
        parts = pathlib.PurePath(path).parts
        name = parts[-1] if parts else ""
        dirs = set(parts[:-1])
        release_file = name in RELEASE_FILES and (
            len(parts) == 1 or parts[-2] == "repro"
        )
        tags = set()
        if dirs & SIMULATION_DIRS:
            tags.add("simulation")
        elif dirs & RELEASE_DIRS or release_file:
            tags.add("release")
        if dirs & FXP_DATAPATH_DIRS:
            tags.add("fxp-datapath")
        if name in AUDITED_RNG_FILES and "rng" in dirs:
            tags.add("audited-rng")
        return frozenset(tags)

    # Convenience predicates -------------------------------------------
    def is_release(self, path: str) -> bool:
        return "release" in self.tags(path)

    def is_audited_rng(self, path: str) -> bool:
        return "audited-rng" in self.tags(path)

    def in_dir(self, path: str, dirname: str) -> bool:
        """Whether ``path`` sits under a directory called ``dirname``."""
        return dirname in pathlib.PurePath(path).parts[:-1]
