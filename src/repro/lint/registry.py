"""Rule plugin registry and the per-file analysis context.

A rule is a class with a unique ``rule_id`` (``DPL###``), a severity, a
one-line description and a ``check(ctx)`` generator yielding
:class:`~repro.lint.findings.Finding` objects.  Registration happens at
import time via the :func:`register` decorator; the engine materializes
rules through :func:`get_rules` so tests can run single rules in
isolation.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Type

from ..errors import ConfigurationError
from .findings import Finding, Severity
from .paths import PathPolicy

__all__ = ["FileContext", "Rule", "register", "get_rules", "all_rule_ids"]


class FileContext:
    """Everything a rule needs to analyze one source file."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        policy: Optional[PathPolicy] = None,
    ) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.policy = policy or PathPolicy()
        self.tags: FrozenSet[str] = self.policy.tags(path)

    # ------------------------------------------------------------------
    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def in_dir(self, dirname: str) -> bool:
        return self.policy.in_dir(self.path, dirname)

    @property
    def is_release(self) -> bool:
        return "release" in self.tags

    @property
    def is_audited_rng(self) -> bool:
        return "audited-rng" in self.tags

    def finding(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=rule.rule_id,
            severity=rule.severity,
            path=self.path,
            line=lineno,
            col=col,
            message=message,
            source_line=self.source_line(lineno),
        )


class Rule:
    """Base class for dplint rules."""

    rule_id: str = "DPL000"
    name: str = "unnamed"
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Which paper invariant the rule encodes (for --list-rules and docs).
    paper_ref: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared AST helpers
    # ------------------------------------------------------------------
    @staticmethod
    def dotted_name(node: ast.AST) -> Optional[str]:
        """``a.b.c`` for Name/Attribute chains, else None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    @staticmethod
    def functions(tree: ast.Module) -> Iterator[ast.AST]:
        """All function/async-function definitions, any nesting depth."""
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def names_in(node: ast.AST) -> Iterator[str]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                yield sub.id


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rid = cls.rule_id
    if rid in _REGISTRY and _REGISTRY[rid] is not cls:
        raise ConfigurationError(f"duplicate rule id {rid!r}")
    _REGISTRY[rid] = cls
    return cls


def _ensure_builtin_rules_loaded() -> None:
    # Importing the subpackage triggers @register on every builtin rule.
    from . import rules  # noqa: F401


def all_rule_ids() -> List[str]:
    _ensure_builtin_rules_loaded()
    return sorted(_REGISTRY)


def get_rules(ids: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate the requested rules (all registered rules by default)."""
    _ensure_builtin_rules_loaded()
    if ids is None:
        selected = sorted(_REGISTRY)
    else:
        selected = list(ids)
        unknown = [rid for rid in selected if rid not in _REGISTRY]
        if unknown:
            raise ConfigurationError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(_REGISTRY))}"
            )
    return [_REGISTRY[rid]() for rid in selected]
