"""dplint flow analysis: whole-project taint and determinism checking.

The per-file rules (DPL001-005) inspect one AST at a time; this package
sees the project.  :class:`~repro.lint.flow.graph.ProjectGraph` builds
module/import/call structure from the parsed trees (``ast`` only — no
analyzed code is imported or executed), the taint engine in
:mod:`~repro.lint.flow.taint` pushes labeled roots through assignments,
calls and returns across module boundaries, and
:func:`~repro.lint.flow.rules.run_flow_analysis` turns sink hits into
findings for DPL006 (unprivatized flow to sink), DPL007
(nondeterministic seed material) and DPL008 (ε-arithmetic drift), each
carrying a :class:`~repro.lint.findings.FlowStep` witness chain.
:func:`~repro.lint.flow.sarif.render_sarif` serializes any lint result
— flow or per-file — as SARIF 2.1.0 with the witness as a ``codeFlow``.
"""

from .graph import ProjectGraph
from .rules import FLOW_RULES, FlowRuleMeta, flow_rule_ids, run_flow_analysis
from .sarif import render_sarif

__all__ = [
    "ProjectGraph",
    "FLOW_RULES",
    "FlowRuleMeta",
    "flow_rule_ids",
    "run_flow_analysis",
    "render_sarif",
]
