"""The cross-module flow rules: DPL006, DPL007, DPL008.

Each rule is one configuration of the taint engine — a set of
:class:`~repro.lint.flow.taint.SourceSpec`/`SinkSpec` plus a scope
filter — run as an independent analysis so labels never cross-
contaminate (an ε-named value is not "raw data", a wall-clock read is
not "seed material" unless it feeds a seed).

DPL006 — unprivatized flow to sink (error)
    A raw-sensor value (``sensors/``/``datasets/`` readers,
    ``read_raw``/``digitize`` calls, fleet truth matrices) reaches a
    release sink (``server.submit*``, ``ReleaseEvent``, sink ``emit``,
    CLI ``print``) without passing a privatization seam.  This is the
    end-to-end form of the paper's guarantee; the per-file rules cannot
    see it once the flow crosses a module boundary.

DPL007 — nondeterministic seed material on the release path (error)
    ``os.cpu_count()``, wall-clock reads, ``os.urandom``/``secrets``,
    or an argless ``SeedSequence()`` feeding shard planning or stream
    splitting.  The sharded fleet's bit-identity guarantee (results
    independent of worker count) only holds when every seed derives
    from the experiment configuration.

DPL008 — ε-arithmetic drift outside the calibration seam (warning)
    A value rooted in an ``epsilon``/``eps`` name combined with a bare
    numeric literal in orchestration code (``aggregation/``,
    ``parallel/``, ``runtime/``, ``core/``, the CLI).  Budget arithmetic
    belongs in ``privacy/`` and the mechanism calibration seam, where
    DPL005 and the accounting tests watch it.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..findings import Finding, FlowStep, Severity
from .graph import ProjectGraph
from .taint import SinkHit, SinkSpec, SourceSpec, TaintAnalysis

__all__ = [
    "FlowRuleMeta",
    "FLOW_RULES",
    "flow_rule_ids",
    "run_flow_analysis",
]


@dataclasses.dataclass(frozen=True)
class FlowRuleMeta:
    """Catalog entry for one flow rule (mirrors the per-file Rule API)."""

    rule_id: str
    name: str
    severity: Severity
    description: str
    paper_ref: str = ""


FLOW_RULES: Dict[str, FlowRuleMeta] = {
    "DPL006": FlowRuleMeta(
        rule_id="DPL006",
        name="cross-module unprivatized flow to sink",
        severity=Severity.ERROR,
        description=(
            "a raw sensor/dataset value reaches a release sink "
            "(server.submit*, ReleaseEvent, sink emit, CLI output) "
            "without passing privatize*/release(accounting=)/"
            "charge_and_emit"
        ),
        paper_ref="§2 threat model: only privatized values leave a device",
    ),
    "DPL007": FlowRuleMeta(
        rule_id="DPL007",
        name="nondeterministic seed material on release path",
        severity=Severity.ERROR,
        description=(
            "cpu_count/wall-clock/os.urandom/argless SeedSequence() "
            "feeds shard planning or stream splitting, breaking the "
            "sharded fleet's bit-identity guarantee"
        ),
        paper_ref="§4 seeded, auditable randomness",
    ),
    "DPL008": FlowRuleMeta(
        rule_id="DPL008",
        name="epsilon arithmetic outside calibration seam",
        severity=Severity.WARNING,
        description=(
            "an epsilon-derived value is combined with a numeric "
            "literal in orchestration code; budget arithmetic belongs "
            "in the privacy/ accounting seam"
        ),
        paper_ref="§3 budget accounting is centralized",
    ),
}


def flow_rule_ids() -> List[str]:
    return sorted(FLOW_RULES)


# ---------------------------------------------------------------------------
# Rule configurations
# ---------------------------------------------------------------------------
#: Parameter names that carry raw (pre-privatization) data by contract.
_RAW_PARAM_NAMES = frozenset(
    {
        "true_values",
        "truth",
        "raw_value",
        "raw_values",
        "physical",
        "reading",
        "readings",
        "secret",
    }
)
_RAW_CALL_ATTRS = frozenset({"read_raw", "digitize"})
_RAW_SOURCE_DIRS = frozenset({"sensors", "datasets"})
_RAW_SINK_ATTRS = frozenset({"submit", "submit_all", "submit_array", "emit"})
_RAW_SINK_NAMES = frozenset({"print", "ReleaseEvent"})

#: Files that *implement* the sink/seam layer; a ``submit`` or ``emit``
#: inside them is the sink's own body, not a flow into it.
_SEAM_IMPL_FILES: Tuple[Tuple[str, str], ...] = (
    ("runtime", "pipeline.py"),
    ("runtime", "sinks.py"),
    ("runtime", "events.py"),
    ("aggregation", "server.py"),
)

_NONDET_DOTTED = frozenset(
    {
        "os.cpu_count",
        "os.getpid",
        "os.urandom",
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
    }
)
_NONDET_ARGLESS = frozenset(
    {
        "SeedSequence",
        "default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.default_rng",
    }
)
_NONDET_SINK_NAMES = frozenset(
    {
        "plan_shards",
        "shard_seed_sequences",
        "spawn_shard_sources",
        "SplitStreamSource",
        "SeedSequence",
        "audited_generator",
    }
)
_NONDET_SINK_ATTRS = frozenset({"spawn"})
#: ``workers=`` is deliberately absent: worker COUNT must not affect
#: results (that is the bit-identity property), only seed material does.
_NONDET_SINK_KWARGS = frozenset({"seed", "source_seed", "seed_seq", "shards"})

_EPS_PARAM_NAMES = frozenset({"epsilon", "eps"})
_EPS_VALUE_ATTRS = frozenset({"epsilon", "eps"})
#: Where ε-literal arithmetic is a drift hazard (the seam — privacy/,
#: mechanisms/, rng/ — is exempt: calibration lives there by design).
_EPS_SCOPE_DIRS = frozenset({"aggregation", "parallel", "runtime", "core"})


def _is_seam_impl(path: str) -> bool:
    p = pathlib.PurePath(path)
    name = p.name
    parents = set(p.parts[:-1])
    return any(d in parents and name == fn for d, fn in _SEAM_IMPL_FILES)


def _build_raw_analysis(graph: ProjectGraph) -> TaintAnalysis:
    policy = graph.policy

    def raw_site(path: str) -> bool:
        return (
            policy.is_release(path)
            and not policy.in_dir(path, "mechanisms")
            and not _is_seam_impl(path)
        )

    return TaintAnalysis(
        graph,
        sources=[
            SourceSpec(
                label="raw",
                call_attrs=_RAW_CALL_ATTRS,
                param_names=_RAW_PARAM_NAMES,
                source_dirs=_RAW_SOURCE_DIRS,
            )
        ],
        sinks=[
            SinkSpec(
                label="raw",
                call_attrs=_RAW_SINK_ATTRS,
                call_names=_RAW_SINK_NAMES,
                site_filter=raw_site,
            )
        ],
    )


def _build_nondet_analysis(graph: ProjectGraph) -> TaintAnalysis:
    policy = graph.policy

    def nondet_site(path: str) -> bool:
        return policy.is_release(path) and not policy.is_audited_rng(path)

    return TaintAnalysis(
        graph,
        sources=[
            SourceSpec(
                label="nondet",
                dotted_calls=_NONDET_DOTTED,
                argless_calls=_NONDET_ARGLESS,
            )
        ],
        sinks=[
            SinkSpec(
                label="nondet",
                call_names=_NONDET_SINK_NAMES,
                call_attrs=_NONDET_SINK_ATTRS,
                kwargs=_NONDET_SINK_KWARGS,
                site_filter=nondet_site,
            )
        ],
    )


def _build_epsilon_analysis(graph: ProjectGraph) -> TaintAnalysis:
    return TaintAnalysis(
        graph,
        sources=[
            SourceSpec(
                label="epsilon",
                param_names=_EPS_PARAM_NAMES,
                value_attrs=_EPS_VALUE_ATTRS,
            )
        ],
        sinks=[],
        track_epsilon_ops=True,
    )


def _in_epsilon_scope(graph: ProjectGraph, path: str) -> bool:
    policy = graph.policy
    p = pathlib.PurePath(path)
    if any(policy.in_dir(path, d) for d in _EPS_SCOPE_DIRS):
        return True
    # The repro CLI is orchestration too; lint's own cli.py is not
    # release-tagged (see PathPolicy.RELEASE_FILES).
    return p.name == "cli.py" and policy.is_release(path)


# ---------------------------------------------------------------------------
# Finding construction
# ---------------------------------------------------------------------------
def _source_line(graph: ProjectGraph, path: str, line: int) -> str:
    mod = graph.module_of_path(path)
    return mod.source_line(line).strip() if mod is not None else ""


def _sink_findings(
    graph: ProjectGraph,
    analysis: TaintAnalysis,
    rule_id: str,
    message: str,
) -> List[Finding]:
    meta = FLOW_RULES[rule_id]
    findings: List[Finding] = []
    seen: Set[Tuple[str, int]] = set()
    for hit in sorted(analysis.sink_hits, key=lambda h: (h.path, h.line, h.col)):
        if (hit.path, hit.line) in seen:
            continue
        flow = analysis.trace(hit)
        if flow is None:
            continue  # symbolic taint no real caller activates
        seen.add((hit.path, hit.line))
        origin = flow[0]
        findings.append(
            Finding(
                rule_id=rule_id,
                severity=meta.severity,
                path=hit.path,
                line=hit.line,
                col=hit.col,
                message=(
                    f"{message}: {origin.note} "
                    f"({origin.path}:{origin.line}) {hit.sink_desc} "
                    f"without a sanitizing seam"
                ),
                source_line=_source_line(graph, hit.path, hit.line),
                flow=tuple(flow),
            )
        )
    return findings


def _epsilon_findings(graph: ProjectGraph, analysis: TaintAnalysis) -> List[Finding]:
    meta = FLOW_RULES["DPL008"]
    findings: List[Finding] = []
    seen: Set[Tuple[str, int]] = set()
    for hit in sorted(analysis.op_hits, key=lambda h: (h.path, h.line, h.col)):
        if not _in_epsilon_scope(graph, hit.path):
            continue
        if (hit.path, hit.line) in seen:
            continue
        seen.add((hit.path, hit.line))
        origin = min(hit.roots, key=lambda r: (r.path, r.line))
        steps: List[FlowStep] = []
        if (origin.path, origin.line) != (hit.path, hit.line):
            steps.append(FlowStep(origin.path, origin.line, origin.note))
        steps.append(FlowStep(hit.path, hit.line, hit.op_desc))
        findings.append(
            Finding(
                rule_id="DPL008",
                severity=meta.severity,
                path=hit.path,
                line=hit.line,
                col=hit.col,
                message=(
                    f"ε-arithmetic outside the calibration seam: "
                    f"{hit.op_desc}; move budget math into privacy/ "
                    f"accounting (rooted at {origin.path}:{origin.line})"
                ),
                source_line=_source_line(graph, hit.path, hit.line),
                flow=tuple(steps),
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def run_flow_analysis(
    graph: ProjectGraph, rule_ids: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the selected flow rules over a built project graph."""
    selected = set(rule_ids) if rule_ids is not None else set(FLOW_RULES)
    findings: List[Finding] = []
    if "DPL006" in selected:
        analysis = _build_raw_analysis(graph)
        analysis.run()
        findings.extend(
            _sink_findings(
                graph,
                analysis,
                "DPL006",
                "unprivatized flow to sink",
            )
        )
    if "DPL007" in selected:
        analysis = _build_nondet_analysis(graph)
        analysis.run()
        findings.extend(
            _sink_findings(
                graph,
                analysis,
                "DPL007",
                "nondeterministic seed material",
            )
        )
    if "DPL008" in selected:
        analysis = _build_epsilon_analysis(graph)
        analysis.run()
        findings.extend(_epsilon_findings(graph, analysis))
    findings.sort(key=Finding.sort_key)
    return findings
