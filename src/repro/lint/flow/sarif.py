"""SARIF 2.1.0 emission for dplint.

One ``run`` with the full rule catalog (per-file DPL001-005, flow
DPL006-008, pseudo DPL900-902) as ``reportingDescriptors`` so viewers
can show rule help without a side channel, and one ``result`` per
finding.  Flow findings carry their witness chain as a
``codeFlow``/``threadFlow`` so SARIF-aware UIs (GitHub code scanning,
VS Code) render the source → hop → sink path as navigable steps.

SARIF is 1-based for lines *and* columns; dplint columns are 0-based
(``ast`` convention), so ``startColumn`` is shifted here and only here.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ... import __version__ as _REPRO_VERSION
from ..findings import Finding, Severity
from ..registry import get_rules
from .rules import FLOW_RULES

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)

_INFO_URI = "https://github.com/example/repro/blob/main/docs/lint.md"

#: Engine pseudo-rules (importing engine here would cycle).
_PSEUDO_RULES = (
    ("DPL900", "file does not parse", Severity.ERROR,
     "the file could not be parsed; no analysis ran on it"),
    ("DPL901", "suppression names unknown rule", Severity.ERROR,
     "a dplint: allow[...] comment names a rule id that does not exist"),
    ("DPL902", "stale suppression", Severity.WARNING,
     "a dplint: allow[...] comment in release code suppresses nothing "
     "and should be deleted"),
)


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _rule_descriptors() -> List[Dict[str, Any]]:
    descriptors: List[Dict[str, Any]] = []
    for rule in get_rules():
        desc = rule.description
        if rule.paper_ref:
            desc = f"{desc} (paper: {rule.paper_ref})"
        descriptors.append(
            {
                "id": rule.rule_id,
                "name": _camel(rule.name),
                "shortDescription": {"text": rule.name},
                "fullDescription": {"text": desc},
                "helpUri": _INFO_URI,
                "defaultConfiguration": {"level": _level(rule.severity)},
            }
        )
    for meta in FLOW_RULES.values():
        desc = meta.description
        if meta.paper_ref:
            desc = f"{desc} (paper: {meta.paper_ref})"
        descriptors.append(
            {
                "id": meta.rule_id,
                "name": _camel(meta.name),
                "shortDescription": {"text": meta.name},
                "fullDescription": {"text": desc},
                "helpUri": _INFO_URI,
                "defaultConfiguration": {"level": _level(meta.severity)},
            }
        )
    for rid, name, severity, desc in _PSEUDO_RULES:
        descriptors.append(
            {
                "id": rid,
                "name": _camel(name),
                "shortDescription": {"text": name},
                "fullDescription": {"text": desc},
                "helpUri": _INFO_URI,
                "defaultConfiguration": {"level": _level(severity)},
            }
        )
    descriptors.sort(key=lambda d: d["id"])
    return descriptors


def _camel(name: str) -> str:
    """``"stale suppression"`` → ``"StaleSuppression"`` (SARIF rule.name)."""
    return "".join(
        part.capitalize() for part in name.replace("-", " ").split() if part.isalnum()
    ) or "Rule"


def _location(path: str, line: int, col: Optional[int] = None,
              note: Optional[str] = None) -> Dict[str, Any]:
    region: Dict[str, Any] = {"startLine": max(1, line)}
    if col is not None:
        region["startColumn"] = col + 1  # 0-based (ast) → 1-based (SARIF)
    loc: Dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": path, "uriBaseId": "SRCROOT"},
            "region": region,
        }
    }
    if note is not None:
        loc["message"] = {"text": note}
    return loc


def _code_flow(finding: Finding) -> Dict[str, Any]:
    return {
        "threadFlows": [
            {
                "locations": [
                    {"location": _location(step.path, step.line, note=step.note)}
                    for step in finding.flow
                ]
            }
        ]
    }


def _result(finding: Finding, rule_index: Dict[str, int]) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule_id,
        "level": _level(finding.severity),
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
        "partialFingerprints": {"dplintFingerprint/v1": finding.fingerprint},
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    if finding.flow:
        result["codeFlows"] = [_code_flow(finding)]
    return result


def render_sarif(findings: List[Finding]) -> Dict[str, Any]:
    """Render findings as a complete SARIF 2.1.0 log object."""
    descriptors = _rule_descriptors()
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "dplint",
                        "version": _REPRO_VERSION,
                        "informationUri": _INFO_URI,
                        "rules": descriptors,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": [_result(f, rule_index) for f in findings],
            }
        ],
    }
