"""Whole-project module and call graph for the dplint flow pass.

The per-file rules (DPL001-DPL005) see one AST at a time; the flow rules
(DPL006-DPL008) need to follow a value across files — a helper in
``aggregation/`` forwarding an unprivatized reading into a sink in
``runtime/``.  This module builds the project-level structure those
rules walk:

* **module naming** — dotted names derived from the analyzed file set
  itself: a directory is a package iff the set contains its
  ``__init__.py``, so ``src/repro/parallel/sharding.py`` becomes
  ``repro.parallel.sharding`` without importing anything (``ast`` only;
  no analyzed code ever executes);
* **import resolution** — ``import a.b as c``, ``from a.b import f``,
  and relative ``from .x import y`` forms resolve to dotted targets
  inside the analyzed set (externals like ``numpy`` stay opaque);
* **function table** — every function/method gets a
  :class:`FunctionInfo` keyed ``module:qualname``;
* **call resolution** — direct calls, imported names, ``self.method()``,
  constructor calls, and attribute calls on locals whose class is known
  via the lightweight type inference in :mod:`repro.lint.flow.taint`.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..paths import PathPolicy

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "ProjectGraph"]


@dataclasses.dataclass
class FunctionInfo:
    """One function or method in the analyzed project."""

    module: str
    qualname: str  # "plan_shards" or "Device.report"
    path: str  # display path of the defining file
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None

    @property
    def func_id(self) -> str:
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclasses.dataclass
class ClassInfo:
    """One class: its methods, dataclass-ish field order, and bases."""

    module: str
    name: str
    path: str
    methods: Dict[str, FunctionInfo]
    #: Annotated class-level fields, in declaration order (dataclasses).
    field_order: List[str]
    #: Base-class dotted names as written (resolved lazily).
    bases: List[str]

    @property
    def class_id(self) -> str:
        return f"{self.module}:{self.name}"


class ModuleInfo:
    """Parsed module plus its local-name → dotted-target import map."""

    def __init__(self, name: str, path: str, source: str, tree: ast.Module):
        self.name = name
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: local alias → dotted target ("np" → "numpy",
        #: "plan_shards" → "repro.parallel.sharding.plan_shards").
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def _package_of(module_name: str, is_package: bool) -> str:
    if is_package:
        return module_name
    return module_name.rsplit(".", 1)[0] if "." in module_name else ""


class ProjectGraph:
    """All analyzed modules, with name/import/call resolution."""

    def __init__(self, policy: Optional[PathPolicy] = None):
        self.policy = policy or PathPolicy()
        self.modules: Dict[str, ModuleInfo] = {}
        #: display path → module name (for suppression lookups).
        self.by_path: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        sources: Sequence[Tuple[str, str, ast.Module]],
        policy: Optional[PathPolicy] = None,
    ) -> "ProjectGraph":
        """Build from ``(display_path, source, tree)`` triples.

        Package structure is inferred from the file set: a directory
        counts as a package iff its ``__init__.py`` is among the
        analyzed files, so the naming needs no filesystem access and
        works for test fixtures as well as the real tree.
        """
        graph = cls(policy)
        package_dirs = {
            str(pathlib.PurePath(path).parent).replace("\\", "/")
            for path, _, _ in sources
            if pathlib.PurePath(path).name == "__init__.py"
        }
        for path, source, tree in sources:
            name, is_pkg = graph._module_name(path, package_dirs)
            info = ModuleInfo(name, path, source, tree)
            info.is_package = is_pkg
            graph.modules[name] = info
            graph.by_path[path] = name
        for info in graph.modules.values():
            graph._index_module(info)
        return graph

    @staticmethod
    def _module_name(path: str, package_dirs) -> Tuple[str, bool]:
        p = pathlib.PurePath(path)
        is_pkg = p.name == "__init__.py"
        parts: List[str] = [] if is_pkg else [p.stem]
        cur = p.parent
        while str(cur).replace("\\", "/") in package_dirs:
            parts.append(cur.name)
            cur = cur.parent
        return ".".join(reversed(parts)) or p.stem, is_pkg

    # ------------------------------------------------------------------
    def _index_module(self, info: ModuleInfo) -> None:
        package = _package_of(info.name, getattr(info, "is_package", False))
        # Imports are collected from the whole tree, not just module
        # scope: deferred function-level imports (a common cycle-breaking
        # idiom in the CLI) resolve the same names.
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    info.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node, info.name, package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = f"{base}.{alias.name}" if base else alias.name
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(info.name, node.name, info.path, node)
                info.functions[node.name] = fn
                self.functions[fn.func_id] = fn
            elif isinstance(node, ast.ClassDef):
                methods: Dict[str, FunctionInfo] = {}
                field_order: List[str] = []
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = FunctionInfo(
                            info.name,
                            f"{node.name}.{stmt.name}",
                            info.path,
                            stmt,
                            class_name=node.name,
                        )
                        methods[stmt.name] = fn
                        self.functions[fn.func_id] = fn
                    elif isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        field_order.append(stmt.target.id)
                bases = []
                for b in node.bases:
                    dotted = _dotted(b)
                    if dotted:
                        bases.append(dotted)
                ci = ClassInfo(
                    module=info.name,
                    name=node.name,
                    path=info.path,
                    methods=methods,
                    field_order=field_order,
                    bases=bases,
                )
                info.classes[node.name] = ci
                self.classes[ci.class_id] = ci

    @staticmethod
    def _resolve_from(
        node: ast.ImportFrom, module_name: str, package: str
    ) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        # Relative import: climb from the module's package.
        base_parts = package.split(".") if package else []
        up = node.level - 1
        if up > len(base_parts):
            return None
        base_parts = base_parts[: len(base_parts) - up]
        if node.module:
            base_parts.extend(node.module.split("."))
        return ".".join(base_parts)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def expand(self, module: ModuleInfo, dotted: str) -> str:
        """Expand the leading segment of ``dotted`` through the imports."""
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def lookup(self, dotted: str) -> Optional[object]:
        """A FunctionInfo or ClassInfo for a fully-dotted name, if ours."""
        # Longest-prefix module match, then walk the remainder.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = self.modules.get(".".join(parts[:cut]))
            if mod is None:
                continue
            rest = parts[cut:]
            if len(rest) == 1:
                hit = mod.functions.get(rest[0]) or mod.classes.get(rest[0])
                if hit is not None:
                    return hit
                # Re-exported name (``from .x import f`` in __init__).
                reexport = mod.imports.get(rest[0])
                if reexport is not None and reexport != dotted:
                    return self.lookup(reexport)
            elif len(rest) == 2:
                ci = mod.classes.get(rest[0])
                if ci is not None:
                    return ci.methods.get(rest[1])
        return None

    def resolve_name(self, module: ModuleInfo, name: str) -> Optional[object]:
        """Resolve a bare Name used in ``module`` to a function/class."""
        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name]
        if name in module.imports:
            return self.lookup(module.imports[name])
        return None

    def resolve_dotted(self, module: ModuleInfo, dotted: str) -> Optional[object]:
        """Resolve a dotted expression (``pkg.mod.func``) in ``module``."""
        if "." not in dotted:
            return self.resolve_name(module, dotted)
        return self.lookup(self.expand(module, dotted))

    def resolve_method(self, class_id: str, method: str) -> Optional[FunctionInfo]:
        """Find ``method`` on a class or (project-resolvable) bases."""
        seen = set()
        stack = [class_id]
        while stack:
            cid = stack.pop(0)
            if cid in seen:
                continue
            seen.add(cid)
            ci = self.classes.get(cid)
            if ci is None:
                continue
            if method in ci.methods:
                return ci.methods[method]
            mod = self.modules.get(ci.module)
            for base in ci.bases:
                target = (
                    self.resolve_dotted(mod, base) if mod is not None else None
                )
                if isinstance(target, ClassInfo):
                    stack.append(target.class_id)
        return None

    def module_of_path(self, path: str) -> Optional[ModuleInfo]:
        name = self.by_path.get(path)
        return self.modules.get(name) if name else None


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
