"""Cross-module taint analysis over the project call graph.

A small interprocedural dataflow engine, specialized to the three flow
rules (see :mod:`repro.lint.flow.rules`).  Values carry sets of *roots*:

* :class:`SourceRoot` — a concrete origin (a ``read_raw()`` call, a
  ``true_values`` parameter, an argless ``SeedSequence()``, an
  ``epsilon`` name), tagged with a label (``raw`` / ``nondet`` /
  ``epsilon``);
* :class:`ParamRoot` / :class:`ParamFieldRoot` — symbolic taint of a
  function's parameter (or one attribute of it), so per-function
  summaries compose at call sites without re-analyzing callees.

Each function is abstract-interpreted to a local fixpoint (assignments,
attribute/field access, containers, calls); function summaries — which
roots reach the return value, which fields of a constructed object they
land in, which ``self.attr`` slots a constructor fills — are iterated to
a global fixpoint over the call graph.  Sink hits (a call matching a
rule's sink spec with a tainted argument) and operation hits (ε-named
value combined with a numeric literal) are recorded with their root
sets; :meth:`TaintAnalysis.trace` then resolves symbolic roots back
through recorded call edges to concrete sources, producing the
``FlowStep`` witness chain attached to findings.

Sanitizers cut flows structurally: a call whose attribute/name matches
``privatize*`` / ``read_private`` / ``charge_and_emit`` — or
``release(...)``/``submit(...)`` seams carrying an ``accounting=``
keyword — returns a clean value, mirroring the paper's rule that data
leaves a device only through a calibrated, budget-charged release.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..findings import FlowStep
from .graph import ClassInfo, FunctionInfo, ModuleInfo, ProjectGraph

__all__ = [
    "SourceRoot",
    "ParamRoot",
    "ParamFieldRoot",
    "TaintValue",
    "SinkHit",
    "OpHit",
    "SourceSpec",
    "SinkSpec",
    "TaintAnalysis",
    "SANITIZER_ATTRS",
    "ACCOUNTED_SEAM_ATTRS",
]

_MAX_LOCAL_PASSES = 10
_MAX_GLOBAL_PASSES = 12
_MAX_TRACE_DEPTH = 25

#: Calls whose *result* is privatized by contract, whatever went in.
SANITIZER_ATTRS = ("privatize", "read_private", "charge_and_emit")
#: Seam calls sanitizing only when they bind an ``accounting=`` policy.
ACCOUNTED_SEAM_ATTRS = ("release",)
#: Metadata accessors whose result is configuration, not data: the
#: *shape* of the truth matrix is the experiment geometry (n_epochs ×
#: n_devices), not a sensor value.  Without this, ``n, m = x.shape``
#: taints every loop index downstream.
METADATA_ATTRS = frozenset({"shape", "ndim", "size", "dtype", "nbytes", "itemsize"})
#: Builtins returning counts/structure, never element values.
METADATA_BUILTINS = frozenset({"len", "id", "type"})


# ---------------------------------------------------------------------------
# Roots and values
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SourceRoot:
    """A concrete taint origin."""

    label: str
    path: str
    line: int
    note: str


@dataclasses.dataclass(frozen=True)
class ParamRoot:
    """Symbolic: 'parameter ``index`` of ``func_id`` was tainted'."""

    func_id: str
    index: int


@dataclasses.dataclass(frozen=True)
class ParamFieldRoot:
    """Symbolic: 'attribute ``field`` of parameter ``index`` was tainted'."""

    func_id: str
    index: int
    field: str


Roots = FrozenSet


class TaintValue:
    """Abstract value: whole-value roots plus per-attribute root sets."""

    __slots__ = ("roots", "fields")

    def __init__(
        self,
        roots: Optional[Iterable] = None,
        fields: Optional[Dict[str, Set]] = None,
    ):
        self.roots: Set = set(roots or ())
        self.fields: Dict[str, Set] = {
            k: set(v) for k, v in (fields or {}).items() if v
        }

    # ------------------------------------------------------------------
    @classmethod
    def clean(cls) -> "TaintValue":
        return cls()

    def is_clean(self) -> bool:
        return not self.roots and not self.fields

    def all_roots(self) -> Set:
        flat = set(self.roots)
        for rs in self.fields.values():
            flat |= rs
        return flat

    def union(self, other: "TaintValue") -> "TaintValue":
        out = TaintValue(self.roots | other.roots, self.fields)
        for k, v in other.fields.items():
            out.fields.setdefault(k, set()).update(v)
        return out

    def widen_fields(self) -> "TaintValue":
        """Collapse field structure into whole-value roots."""
        return TaintValue(self.all_roots())

    def attr(self, name: str) -> "TaintValue":
        """The abstract value of ``<self>.name``."""
        roots: Set = set()
        for r in self.roots:
            if isinstance(r, ParamRoot):
                roots.add(ParamFieldRoot(r.func_id, r.index, name))
            else:
                roots.add(r)
        roots |= self.fields.get(name, set())
        return TaintValue(roots)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TaintValue)
            and self.roots == other.roots
            and self.fields == other.fields
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaintValue(roots={self.roots!r}, fields={self.fields!r})"


# ---------------------------------------------------------------------------
# Specs, summaries, hits
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SourceSpec:
    """What generates taint for one label."""

    label: str
    #: Attribute/function call names whose result is tainted.
    call_attrs: FrozenSet[str] = frozenset()
    #: Parameter names that arrive tainted.
    param_names: FrozenSet[str] = frozenset()
    #: Attribute names that *are* the tainted value (``.epsilon``).
    value_attrs: FrozenSet[str] = frozenset()
    #: Directories whose module-level functions return tainted data.
    source_dirs: FrozenSet[str] = frozenset()
    #: Dotted call targets (``os.cpu_count``) whose result is tainted.
    dotted_calls: FrozenSet[str] = frozenset()
    #: Dotted/bare constructors tainted only when called with NO args.
    argless_calls: FrozenSet[str] = frozenset()


@dataclasses.dataclass(frozen=True)
class SinkSpec:
    """What consumes taint for one label."""

    label: str
    #: Attribute-call names that are sinks (``submit_array``, ``emit``).
    call_attrs: FrozenSet[str] = frozenset()
    #: Bare function-name sinks (``print``) and resolvable call targets.
    call_names: FrozenSet[str] = frozenset()
    #: Keyword arguments that are sinks on *any* call (``source_seed=``).
    kwargs: FrozenSet[str] = frozenset()
    #: Only flag sink sites in files for which this returns True.
    site_filter: Optional[Callable[[str], bool]] = None


@dataclasses.dataclass
class SinkHit:
    """A sink call that received tainted argument(s)."""

    label: str
    func_id: str
    path: str
    line: int
    col: int
    sink_desc: str
    roots: Set


@dataclasses.dataclass
class OpHit:
    """An ε-labeled value combined with a numeric literal (DPL008)."""

    func_id: str
    path: str
    line: int
    col: int
    op_desc: str
    roots: Set


class _Summary:
    """Per-function interprocedural summary."""

    __slots__ = ("ret", "self_fields")

    def __init__(self):
        self.ret = TaintValue.clean()
        self.self_fields: Dict[str, Set] = {}

    def state(self) -> Tuple:
        return (
            frozenset(self.ret.roots),
            tuple(sorted((k, frozenset(v)) for k, v in self.ret.fields.items())),
            tuple(sorted((k, frozenset(v)) for k, v in self.self_fields.items())),
        )


@dataclasses.dataclass
class _CallEdge:
    """Caller→callee activation record, for witness reconstruction."""

    caller_id: str
    caller_path: str
    line: int
    callee_id: str
    #: callee ParamRoot/ParamFieldRoot → caller-side roots activating it.
    activation: Dict[object, Set]


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------
class TaintAnalysis:
    """Run the labeled taint lattice over a :class:`ProjectGraph`."""

    def __init__(
        self,
        graph: ProjectGraph,
        sources: Iterable[SourceSpec],
        sinks: Iterable[SinkSpec],
        track_epsilon_ops: bool = False,
    ):
        self.graph = graph
        self.sources = list(sources)
        self.sinks = list(sinks)
        self.track_epsilon_ops = track_epsilon_ops
        self.summaries: Dict[str, _Summary] = {}
        self.sink_hits: List[SinkHit] = []
        self.op_hits: List[OpHit] = []
        #: callee func_id → edges from its callers.
        self.edges: Dict[str, List[_CallEdge]] = {}
        self._source_labels = {s.label for s in self.sources}

    # ------------------------------------------------------------------
    def run(self) -> None:
        funcs = sorted(self.graph.functions.values(), key=lambda f: f.func_id)
        for fn in funcs:
            self.summaries[fn.func_id] = _Summary()
        for _ in range(_MAX_GLOBAL_PASSES):
            changed = False
            self.sink_hits = []
            self.op_hits = []
            self.edges = {}
            for fn in funcs:
                before = self.summaries[fn.func_id].state()
                self._analyze_function(fn)
                if self.summaries[fn.func_id].state() != before:
                    changed = True
            if not changed:
                break

    # ------------------------------------------------------------------
    # Witness reconstruction
    # ------------------------------------------------------------------
    def trace(self, hit) -> Optional[List[FlowStep]]:
        """Resolve a hit's roots to a concrete source → sink witness.

        Returns the step chain, or None when no root resolves to a
        concrete :class:`SourceRoot` of a label this analysis tracks
        (symbolic taint that no real caller ever activates is not a
        finding).
        """
        best: Optional[List[FlowStep]] = None
        for root in sorted(hit.roots, key=_root_key):
            chain = self._resolve(root, depth=0, seen=set())
            if chain is None:
                continue
            if best is None or len(chain) < len(best):
                best = chain
        if best is None:
            return None
        best.append(FlowStep(hit.path, hit.line, hit.sink_desc))
        return best

    def _resolve(self, root, depth: int, seen: Set) -> Optional[List[FlowStep]]:
        if isinstance(root, SourceRoot):
            return [FlowStep(root.path, root.line, root.note)]
        if depth >= _MAX_TRACE_DEPTH or root in seen:
            return None
        if not isinstance(root, (ParamRoot, ParamFieldRoot)):
            return None
        seen = seen | {root}
        best: Optional[List[FlowStep]] = None
        for edge in self.edges.get(root.func_id, ()):
            activated = edge.activation.get(root)
            if not activated:
                continue
            for caller_root in sorted(activated, key=_root_key):
                chain = self._resolve(caller_root, depth + 1, seen)
                if chain is None:
                    continue
                fn = self.graph.functions.get(root.func_id)
                callee_name = fn.name if fn else root.func_id
                chain = chain + [
                    FlowStep(
                        edge.caller_path,
                        edge.line,
                        f"tainted value passed into {callee_name}()",
                    )
                ]
                if best is None or len(chain) < len(best):
                    best = chain
        return best

    # ------------------------------------------------------------------
    # Per-function abstract interpretation
    # ------------------------------------------------------------------
    def _analyze_function(self, fn: FunctionInfo) -> None:
        module = self.graph.modules.get(fn.module)
        if module is None:  # pragma: no cover - defensive
            return
        interp = _FunctionInterp(self, fn, module)
        interp.run()


def _root_key(root):
    return (type(root).__name__, repr(root))


def _param_names(func: ast.AST) -> List[str]:
    a = func.args
    names = [p.arg for p in (*a.posonlyargs, *a.args)]
    if a.vararg:
        names.append(a.vararg.arg)
    names.extend(p.arg for p in a.kwonlyargs)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return names


_NUMERIC = (int, float)


class _FunctionInterp:
    """Local fixpoint over one function body."""

    def __init__(self, analysis: TaintAnalysis, fn: FunctionInfo, module: ModuleInfo):
        self.a = analysis
        self.fn = fn
        self.module = module
        self.graph = analysis.graph
        self.policy = analysis.graph.policy
        self.params = _param_names(fn.node)
        self.env: Dict[str, TaintValue] = {}
        self.types: Dict[str, object] = {}  # var → ClassInfo | ("list", ClassInfo)
        self.summary = analysis.summaries[fn.func_id]
        self._final = False
        self._seed_params()

    # ------------------------------------------------------------------
    def _seed_params(self) -> None:
        for i, name in enumerate(self.params):
            roots: Set = {ParamRoot(self.fn.func_id, i)}
            for spec in self.a.sources:
                if name in spec.param_names:
                    roots.add(
                        SourceRoot(
                            spec.label,
                            self.fn.path,
                            getattr(self.fn.node, "lineno", 1),
                            f"parameter {name!r} of {self.fn.name}() "
                            f"carries {spec.label} data",
                        )
                    )
            self.env[name] = TaintValue(roots)
        if self.fn.class_name and self.params and self.params[0] == "self":
            ci = self.graph.classes.get(f"{self.fn.module}:{self.fn.class_name}")
            if ci is not None:
                self.types["self"] = ci

    # ------------------------------------------------------------------
    def run(self) -> None:
        new_summary = _Summary()
        for _ in range(_MAX_LOCAL_PASSES):
            snapshot = {k: (frozenset(v.roots), len(v.fields)) for k, v in self.env.items()}
            self._final = False
            new_summary = _Summary()
            self._ret_acc = TaintValue.clean()
            self._self_fields: Dict[str, Set] = {}
            self._exec_body(self.fn.node.body)
            if {
                k: (frozenset(v.roots), len(v.fields)) for k, v in self.env.items()
            } == snapshot:
                break
        # Final pass: record hits and call edges with the converged env.
        self._final = True
        self._ret_acc = TaintValue.clean()
        self._self_fields = {}
        self._exec_body(self.fn.node.body)
        new_summary.ret = self._ret_acc
        new_summary.self_fields = self._self_fields
        self.a.summaries[self.fn.func_id] = new_summary

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _exec_body(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value, value_expr=stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(
                    stmt.target, self._eval(stmt.value), value_expr=stmt.value
                )
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value)
            old = self._eval(stmt.target)
            self._assign(stmt.target, old.union(value))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            seq = self._eval(stmt.iter)
            self._assign(stmt.target, seq, value_expr=stmt.iter, unwrap_iter=True)
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.While, ast.If)):
            self._eval(stmt.test)
            self._exec_body(stmt.body)
            self._exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                val = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(
                        item.optional_vars, val, value_expr=item.context_expr
                    )
            self._exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_body(stmt.body)
            for handler in stmt.handlers:
                self._exec_body(handler.body)
            self._exec_body(stmt.orelse)
            self._exec_body(stmt.finalbody)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._ret_acc = self._ret_acc.union(self._eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested defs analyzed separately / out of scope
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    self.env.pop(t.id, None)
        # Pass/Import/Global/... : nothing to do.

    # ------------------------------------------------------------------
    def _assign(
        self,
        target: ast.AST,
        value: TaintValue,
        value_expr: Optional[ast.AST] = None,
        unwrap_iter: bool = False,
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
            if value_expr is not None:
                t = self._type_of(value_expr)
                if t is not None:
                    if unwrap_iter:  # ``for x in seq`` peels one list level
                        t = t[1] if isinstance(t, tuple) else t
                    self.types[target.id] = t
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, value)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value)
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name):
                if (
                    base.id == "self"
                    and self.params
                    and self.params[0] == "self"
                ):
                    self._self_fields.setdefault(target.attr, set()).update(
                        value.all_roots()
                    )
                self.env[f"{base.id}.{target.attr}"] = value
        elif isinstance(target, ast.Subscript):
            # Container write: only the assigned VALUE taints the
            # container (a tainted index does not taint the data).
            if isinstance(target.value, ast.Name):
                name = target.value.id
                old = self.env.get(name, TaintValue.clean())
                self.env[name] = old.union(TaintValue(value.all_roots()))

    # ------------------------------------------------------------------
    # Lightweight local type inference (constructor provenance)
    # ------------------------------------------------------------------
    def _type_of(self, expr: ast.AST):
        """ClassInfo, ("list", ClassInfo), or None."""
        if isinstance(expr, ast.Name):
            return self.types.get(expr.id)
        if isinstance(expr, ast.Call):
            target = self._resolve_call(expr)
            if isinstance(target, ClassInfo):
                return target
            return None
        if isinstance(expr, (ast.List, ast.Tuple)):
            elem = None
            for elt in expr.elts:
                t = self._type_of(elt)
                if t is None or (elem is not None and t is not elem):
                    return None
                elem = t
            return ("list", elem) if elem is not None else None
        if isinstance(expr, ast.ListComp):
            t = self._type_of(expr.elt)
            return ("list", t) if isinstance(t, ClassInfo) else None
        if isinstance(expr, ast.Subscript):
            t = self._type_of(expr.value)
            if isinstance(t, tuple):
                return t[1]
            return None
        return None

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _eval(self, expr: ast.AST) -> TaintValue:
        if expr is None:
            return TaintValue.clean()
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, TaintValue.clean())
        if isinstance(expr, ast.Attribute):
            return self._eval_attr(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.BinOp):
            left, right = self._eval(expr.left), self._eval(expr.right)
            if self.a.track_epsilon_ops and self._final:
                self._check_epsilon_op(expr, left, right)
            return left.union(right).widen_fields()
        if isinstance(expr, ast.BoolOp):
            out = TaintValue.clean()
            for v in expr.values:
                out = out.union(self._eval(v))
            return out
        if isinstance(expr, ast.Compare):
            out = self._eval(expr.left)
            for c in expr.comparators:
                out = out.union(self._eval(c))
            return out.widen_fields()
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return self._eval(expr.body).union(self._eval(expr.orelse))
        if isinstance(expr, ast.Subscript):
            base = self._eval(expr.value)
            self._eval(expr.slice)  # index taint does not flow to the value
            if base.fields:
                return base.widen_fields()
            return TaintValue(base.roots)
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            out = TaintValue.clean()
            for elt in expr.elts:
                out = out.union(self._eval(elt))
            return out
        if isinstance(expr, ast.Dict):
            out = TaintValue.clean()
            for v in expr.values:
                if v is not None:
                    out = out.union(self._eval(v))
            return out
        if isinstance(expr, ast.JoinedStr):
            out = TaintValue.clean()
            for v in expr.values:
                out = out.union(self._eval(v))
            return out
        if isinstance(expr, ast.FormattedValue):
            return self._eval(expr.value)
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in expr.generators:
                seq = self._eval(gen.iter)
                self._assign(gen.target, seq, value_expr=gen.iter, unwrap_iter=True)
                for cond in gen.ifs:
                    self._eval(cond)
            return self._eval(expr.elt)
        if isinstance(expr, ast.DictComp):
            for gen in expr.generators:
                self._assign(
                    gen.target,
                    self._eval(gen.iter),
                    value_expr=gen.iter,
                    unwrap_iter=True,
                )
            self._eval(expr.key)
            return self._eval(expr.value)
        if isinstance(expr, ast.NamedExpr):
            value = self._eval(expr.value)
            self._assign(expr.target, value)
            return value
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            return self._eval(expr.value)
        if isinstance(expr, ast.Yield):
            if expr.value is not None:
                self._ret_acc = self._ret_acc.union(self._eval(expr.value))
            return TaintValue.clean()
        if isinstance(expr, ast.Lambda):
            return TaintValue.clean()
        return TaintValue.clean()  # Constant and friends

    def _eval_attr(self, expr: ast.Attribute) -> TaintValue:
        if expr.attr in METADATA_ATTRS:
            return TaintValue.clean()
        # Local override (``x.f = tainted`` earlier in this function).
        if isinstance(expr.value, ast.Name):
            key = f"{expr.value.id}.{expr.attr}"
            if key in self.env:
                return self.env[key]
        base = self._eval(expr.value)
        out = base.attr(expr.attr)
        for spec in self.a.sources:
            if expr.attr in spec.value_attrs:
                out = out.union(
                    TaintValue(
                        {
                            SourceRoot(
                                spec.label,
                                self.fn.path,
                                expr.lineno,
                                f"value of {expr.attr!r} "
                                f"(ε-material named at the source)"
                                if spec.label == "epsilon"
                                else f"attribute {expr.attr!r}",
                            )
                        }
                    )
                )
        return out

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _resolve_call(self, call: ast.Call):
        func = call.func
        if isinstance(func, ast.Name):
            return self.graph.resolve_name(self.module, func.id)
        if isinstance(func, ast.Attribute):
            # self.method() / typed-local.method()
            base_t = self._type_of(func.value)
            if isinstance(base_t, ClassInfo):
                m = self.graph.resolve_method(base_t.class_id, func.attr)
                if m is not None:
                    return m
            dotted = _dotted_name(func)
            if dotted is not None:
                return self.graph.resolve_dotted(self.module, dotted)
        return None

    def _is_sanitizer(self, call: ast.Call) -> bool:
        name = _call_name(call)
        if name is None:
            return False
        if name.startswith(SANITIZER_ATTRS[0]) or name in SANITIZER_ATTRS:
            return True
        if name in ACCOUNTED_SEAM_ATTRS and any(
            kw.arg == "accounting" for kw in call.keywords
        ):
            return True
        return False

    def _source_match(self, call: ast.Call, resolved) -> List[SourceRoot]:
        name = _call_name(call)
        roots: List[SourceRoot] = []
        dotted = (
            _dotted_name(call.func) if isinstance(call.func, ast.Attribute) else name
        )
        expanded = (
            self.graph.expand(self.module, dotted) if dotted is not None else None
        )
        argless = not call.args and not call.keywords
        for spec in self.a.sources:
            hit = None
            if name in spec.call_attrs:
                hit = f"call to {name}() reads {spec.label} data"
            elif expanded is not None and (
                expanded in spec.dotted_calls or dotted in spec.dotted_calls
            ):
                hit = f"call to {expanded}() is {spec.label}"
            elif argless and expanded is not None and (
                expanded in spec.argless_calls
                or dotted in spec.argless_calls
                or (name in spec.argless_calls)
            ):
                hit = (
                    f"argless {name}() derives {spec.label} seed material "
                    "from process entropy"
                )
            elif (
                spec.source_dirs
                and isinstance(resolved, FunctionInfo)
                and resolved.class_name is None
                and not resolved.name.startswith("_")
                and any(
                    self.policy.in_dir(resolved.path, d) for d in spec.source_dirs
                )
            ):
                hit = (
                    f"call into {resolved.module}.{resolved.name}() "
                    f"returns {spec.label} data"
                )
            if hit is not None:
                roots.append(
                    SourceRoot(spec.label, self.fn.path, call.lineno, hit)
                )
        return roots

    def _eval_call(self, call: ast.Call) -> TaintValue:
        # Evaluate arguments first (side effects on env via walrus etc).
        arg_vals = [self._eval(a) for a in call.args]
        kw_vals = {kw.arg: self._eval(kw.value) for kw in call.keywords}
        self._eval(call.func) if isinstance(call.func, ast.Call) else None

        if self._is_sanitizer(call):
            return TaintValue.clean()
        if (
            isinstance(call.func, ast.Name)
            and call.func.id in METADATA_BUILTINS
        ):
            return TaintValue.clean()

        resolved = self._resolve_call(call)
        if self._final:
            self._check_sinks(call, arg_vals, kw_vals, resolved)

        source_roots = self._source_match(call, resolved)
        result = TaintValue({r for r in source_roots})

        # ``pool.map(f, xs)`` — treat as elementwise f(x).
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in ("map", "imap", "starmap")
            and call.args
        ):
            mapped = None
            if isinstance(call.args[0], (ast.Name, ast.Attribute)):
                mapped = (
                    self.graph.resolve_name(self.module, call.args[0].id)
                    if isinstance(call.args[0], ast.Name)
                    else self.graph.resolve_dotted(
                        self.module, _dotted_name(call.args[0]) or ""
                    )
                )
            if isinstance(mapped, FunctionInfo) and len(arg_vals) >= 2:
                return result.union(
                    self._apply_summary(mapped, call, [arg_vals[1]], {})
                )

        if isinstance(resolved, FunctionInfo):
            return result.union(
                self._apply_summary(resolved, call, arg_vals, kw_vals)
            )
        if isinstance(resolved, ClassInfo):
            return result.union(
                self._construct(resolved, call, arg_vals, kw_vals)
            )

        # List-mutator special case: ``acc.append(tainted)`` taints acc.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in ("append", "extend", "add", "insert", "update")
            and isinstance(call.func.value, ast.Name)
        ):
            flowed = TaintValue.clean()
            for v in arg_vals:
                flowed = flowed.union(v)
            for v in kw_vals.values():
                flowed = flowed.union(v)
            name = call.func.value.id
            old = self.env.get(name, TaintValue.clean())
            self.env[name] = old.union(TaintValue(flowed.all_roots()))
            return TaintValue.clean()

        # Unresolved call: conservative propagation through arguments,
        # including the receiver of a method call (``x.mean()``).
        out = result
        if isinstance(call.func, ast.Attribute):
            out = out.union(TaintValue(self._eval(call.func.value).all_roots()))
        for v in arg_vals:
            out = out.union(TaintValue(v.all_roots()))
        for v in kw_vals.values():
            out = out.union(TaintValue(v.all_roots()))
        return out

    # ------------------------------------------------------------------
    def _bind_args(
        self,
        target: FunctionInfo,
        arg_vals: List[TaintValue],
        kw_vals: Dict[str, TaintValue],
        skip_self: bool,
    ) -> Dict[int, TaintValue]:
        params = _param_names(target.node)
        offset = 1 if skip_self and params and params[0] == "self" else 0
        bound: Dict[int, TaintValue] = {}
        for i, v in enumerate(arg_vals):
            idx = i + offset
            if idx < len(params):
                bound[idx] = v
        for name, v in kw_vals.items():
            if name in params:
                bound[params.index(name)] = v
        return bound

    def _activation(
        self, target: FunctionInfo, bound: Dict[int, TaintValue]
    ) -> Dict[object, Set]:
        act: Dict[object, Set] = {}
        for idx, v in bound.items():
            if v.roots:
                act[ParamRoot(target.func_id, idx)] = set(v.roots)
            for field, roots in v.fields.items():
                if roots:
                    act[ParamFieldRoot(target.func_id, idx, field)] = set(roots)
        return act

    def _map_roots(self, roots: Set, act: Dict[object, Set]) -> Set:
        out: Set = set()
        for r in roots:
            if isinstance(r, SourceRoot):
                out.add(r)
            elif isinstance(r, (ParamRoot, ParamFieldRoot)):
                out |= act.get(r, set())
                if isinstance(r, ParamFieldRoot):
                    # Whole-param taint also taints every field.
                    out |= act.get(ParamRoot(r.func_id, r.index), set())
        return out

    def _apply_summary(
        self,
        target: FunctionInfo,
        call: ast.Call,
        arg_vals: List[TaintValue],
        kw_vals: Dict[str, TaintValue],
        skip_self: bool = True,
    ) -> TaintValue:
        bound = self._bind_args(target, arg_vals, kw_vals, skip_self)
        act = self._activation(target, bound)
        if self._final and act:
            self.a.edges.setdefault(target.func_id, []).append(
                _CallEdge(
                    caller_id=self.fn.func_id,
                    caller_path=self.fn.path,
                    line=call.lineno,
                    callee_id=target.func_id,
                    activation=act,
                )
            )
        summary = self.a.summaries.get(target.func_id)
        if summary is None:
            return TaintValue.clean()
        ret = TaintValue(self._map_roots(summary.ret.roots, act))
        for field, roots in summary.ret.fields.items():
            mapped = self._map_roots(roots, act)
            if mapped:
                ret.fields[field] = mapped
        return ret

    def _construct(
        self,
        target: ClassInfo,
        call: ast.Call,
        arg_vals: List[TaintValue],
        kw_vals: Dict[str, TaintValue],
    ) -> TaintValue:
        init = self.graph.resolve_method(target.class_id, "__init__")
        if init is not None:
            applied = self._apply_summary(init, call, arg_vals, kw_vals)
            summary = self.a.summaries.get(init.func_id)
            obj = TaintValue(applied.roots)
            if summary is not None:
                bound = self._bind_args(init, arg_vals, kw_vals, skip_self=True)
                act = self._activation(init, bound)
                for field, roots in summary.self_fields.items():
                    mapped = self._map_roots(roots, act)
                    if mapped:
                        obj.fields[field] = mapped
            return obj
        # Dataclass-style: keywords map to fields, positionals by order.
        obj = TaintValue()
        for i, v in enumerate(arg_vals):
            if i < len(target.field_order):
                if not v.is_clean():
                    obj.fields[target.field_order[i]] = v.all_roots()
            else:
                obj.roots |= v.all_roots()
        for name, v in kw_vals.items():
            if v.is_clean():
                continue
            if name in target.field_order or name is not None:
                obj.fields[name] = v.all_roots()
        return obj

    # ------------------------------------------------------------------
    # Sinks and ε-ops
    # ------------------------------------------------------------------
    def _check_sinks(
        self,
        call: ast.Call,
        arg_vals: List[TaintValue],
        kw_vals: Dict[str, TaintValue],
        resolved,
    ) -> None:
        name = _call_name(call)
        resolved_name = resolved.name if isinstance(resolved, FunctionInfo) else (
            resolved.name if isinstance(resolved, ClassInfo) else None
        )
        for spec in self.a.sinks:
            if spec.site_filter is not None and not spec.site_filter(self.fn.path):
                continue
            tainted: Set = set()
            desc = None
            is_named_sink = (
                (isinstance(call.func, ast.Attribute) and name in spec.call_attrs)
                or (isinstance(call.func, ast.Name) and name in spec.call_names)
                or (resolved_name is not None and resolved_name in spec.call_names)
            )
            if is_named_sink:
                for v in arg_vals:
                    tainted |= self._labeled(v, spec.label)
                for v in kw_vals.values():
                    tainted |= self._labeled(v, spec.label)
                desc = f"reaches sink {name}()"
            if spec.kwargs:
                for kw_name, v in kw_vals.items():
                    if kw_name in spec.kwargs:
                        hit = self._labeled(v, spec.label)
                        if hit:
                            tainted |= hit
                            desc = (
                                f"reaches seed-material argument "
                                f"{kw_name}= of {name or 'call'}()"
                            )
            if tainted:
                self.a.sink_hits.append(
                    SinkHit(
                        label=spec.label,
                        func_id=self.fn.func_id,
                        path=self.fn.path,
                        line=call.lineno,
                        col=call.col_offset,
                        sink_desc=desc or f"reaches sink {name}()",
                        roots=tainted,
                    )
                )

    def _labeled(self, value: TaintValue, label: str) -> Set:
        """Roots of ``value`` that could carry ``label`` taint."""
        out: Set = set()
        for r in value.all_roots():
            if isinstance(r, SourceRoot):
                if r.label == label:
                    out.add(r)
            else:
                out.add(r)  # symbolic — resolved against callers later
        return out

    def _check_epsilon_op(
        self, expr: ast.BinOp, left: TaintValue, right: TaintValue
    ) -> None:
        for tainted, other_node in (
            (left, expr.right),
            (right, expr.left),
        ):
            roots = {
                r
                for r in tainted.all_roots()
                if isinstance(r, SourceRoot) and r.label == "epsilon"
            }
            if not roots:
                continue
            if not (
                isinstance(other_node, ast.Constant)
                and isinstance(other_node.value, _NUMERIC)
                and not isinstance(other_node.value, bool)
            ):
                continue
            self.a.op_hits.append(
                OpHit(
                    func_id=self.fn.func_id,
                    path=self.fn.path,
                    line=expr.lineno,
                    col=expr.col_offset,
                    op_desc=(
                        f"ε-derived value combined with literal "
                        f"{other_node.value!r}"
                    ),
                    roots=roots,
                )
            )
            return


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None
