"""Vendored, trimmed SARIF 2.1.0 JSON schema.

The full OASIS schema is ~330 kB and mostly describes objects dplint
never emits.  This subset keeps — verbatim in structure and constraint
— every definition reachable from what :mod:`repro.lint.flow.sarif`
produces (log → run → tool/driver/rules, results with locations,
partialFingerprints and codeFlows), so ``jsonschema`` validation of our
output is as strict as against the full schema, without shipping 330 kB
or fetching anything at test time.  ``additionalProperties`` is left
open exactly as in the original: SARIF consumers must ignore unknown
properties.
"""

from __future__ import annotations

SARIF_2_1_0_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "Static Analysis Results Format (SARIF) Version 2.1.0 (trimmed)",
    "type": "object",
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "minItems": 0,
            "items": {"$ref": "#/definitions/run"},
        },
    },
    "required": ["version", "runs"],
    "definitions": {
        "run": {
            "type": "object",
            "properties": {
                "tool": {"$ref": "#/definitions/tool"},
                "results": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/result"},
                },
                "columnKind": {
                    "enum": ["utf16CodeUnits", "unicodeCodePoints"]
                },
                "originalUriBaseIds": {
                    "type": "object",
                    "additionalProperties": {
                        "$ref": "#/definitions/artifactLocation"
                    },
                },
            },
            "required": ["tool"],
        },
        "tool": {
            "type": "object",
            "properties": {
                "driver": {"$ref": "#/definitions/toolComponent"}
            },
            "required": ["driver"],
        },
        "toolComponent": {
            "type": "object",
            "properties": {
                "name": {"type": "string"},
                "version": {"type": "string"},
                "informationUri": {"type": "string", "format": "uri"},
                "rules": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/reportingDescriptor"},
                },
            },
            "required": ["name"],
        },
        "reportingDescriptor": {
            "type": "object",
            "properties": {
                "id": {"type": "string"},
                "name": {"type": "string", "pattern": "^[A-Za-z0-9]+$"},
                "shortDescription": {
                    "$ref": "#/definitions/multiformatMessageString"
                },
                "fullDescription": {
                    "$ref": "#/definitions/multiformatMessageString"
                },
                "helpUri": {"type": "string", "format": "uri"},
                "defaultConfiguration": {
                    "$ref": "#/definitions/reportingConfiguration"
                },
            },
            "required": ["id"],
        },
        "reportingConfiguration": {
            "type": "object",
            "properties": {
                "level": {"enum": ["none", "note", "warning", "error"]}
            },
        },
        "multiformatMessageString": {
            "type": "object",
            "properties": {
                "text": {"type": "string"},
                "markdown": {"type": "string"},
            },
            "required": ["text"],
        },
        "message": {
            "type": "object",
            "properties": {
                "text": {"type": "string"},
                "markdown": {"type": "string"},
                "id": {"type": "string"},
            },
            "anyOf": [{"required": ["text"]}, {"required": ["id"]}],
        },
        "result": {
            "type": "object",
            "properties": {
                "ruleId": {"type": "string"},
                "ruleIndex": {"type": "integer", "minimum": 0},
                "level": {"enum": ["none", "note", "warning", "error"]},
                "message": {"$ref": "#/definitions/message"},
                "locations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/location"},
                },
                "partialFingerprints": {
                    "type": "object",
                    "additionalProperties": {"type": "string"},
                },
                "codeFlows": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/codeFlow"},
                },
            },
            "required": ["message"],
        },
        "location": {
            "type": "object",
            "properties": {
                "physicalLocation": {
                    "$ref": "#/definitions/physicalLocation"
                },
                "message": {"$ref": "#/definitions/message"},
            },
        },
        "physicalLocation": {
            "type": "object",
            "properties": {
                "artifactLocation": {
                    "$ref": "#/definitions/artifactLocation"
                },
                "region": {"$ref": "#/definitions/region"},
            },
            "anyOf": [
                {"required": ["artifactLocation"]},
                {"required": ["address"]},
            ],
        },
        "artifactLocation": {
            "type": "object",
            "properties": {
                "uri": {"type": "string", "format": "uri-reference"},
                "uriBaseId": {"type": "string"},
                "description": {"$ref": "#/definitions/message"},
            },
        },
        "region": {
            "type": "object",
            "properties": {
                "startLine": {"type": "integer", "minimum": 1},
                "startColumn": {"type": "integer", "minimum": 1},
                "endLine": {"type": "integer", "minimum": 1},
                "endColumn": {"type": "integer", "minimum": 1},
            },
        },
        "codeFlow": {
            "type": "object",
            "properties": {
                "threadFlows": {
                    "type": "array",
                    "minItems": 1,
                    "items": {"$ref": "#/definitions/threadFlow"},
                }
            },
            "required": ["threadFlows"],
        },
        "threadFlow": {
            "type": "object",
            "properties": {
                "locations": {
                    "type": "array",
                    "minItems": 1,
                    "items": {"$ref": "#/definitions/threadFlowLocation"},
                }
            },
            "required": ["locations"],
        },
        "threadFlowLocation": {
            "type": "object",
            "properties": {
                "location": {"$ref": "#/definitions/location"},
                "importance": {
                    "enum": ["important", "essential", "unimportant"]
                },
            },
        },
    },
}
