"""Command-line front end for dplint.

Reachable two ways with identical semantics:

* ``python -m repro lint [paths...] [options]`` — the repro CLI
  subcommand (:mod:`repro.cli` delegates here), and
* ``repro-lint [paths...] [options]`` — the console entry point
  registered in ``pyproject.toml``.

Exit codes: 0 — clean (no non-baselined findings); 1 — findings; 2 —
usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import FrozenSet, List, Optional

from ..errors import ConfigurationError, ReproError
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import LintConfig, LintEngine, LintResult
from .flow import FLOW_RULES, render_sarif
from .registry import get_rules

__all__ = ["add_lint_arguments", "run_lint_command", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install dplint's options on a parser (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--flow",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="run the cross-module flow analysis (DPL006-DPL008); "
        "slower, whole-project (default: off)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text); sarif emits SARIF 2.1.0",
    )
    parser.add_argument(
        "--changed",
        metavar="BASE_REF",
        default=None,
        help="only report findings in files that differ from the given "
        "git ref (e.g. origin/main); the flow graph still covers the "
        "whole tree",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"baseline file of grandfathered findings "
        f"(e.g. {DEFAULT_BASELINE_NAME}); matching findings do not fail "
        "the run",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write all current findings to PATH as the new baseline "
        "and exit 0",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all); selecting "
        "a flow rule (DPL006-DPL008) implies --flow",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )


def _changed_files(base_ref: str) -> FrozenSet[str]:
    """Absolute paths of .py files differing from ``base_ref``.

    Combines ``git diff --name-only BASE_REF`` (tracked changes,
    deletions excluded — a deleted file cannot be linted) with untracked
    files, so a brand-new module is linted before its first commit.
    """
    def _git(*args: str) -> List[str]:
        try:
            out = subprocess.run(
                ["git", *args],
                capture_output=True,
                check=True,
            )
        except FileNotFoundError:
            raise ConfigurationError("--changed requires git on PATH")
        except subprocess.CalledProcessError as exc:
            detail = exc.stderr.decode("utf-8", "replace").strip()
            raise ConfigurationError(
                f"git {' '.join(args[:2])} failed for --changed: {detail}"
            )
        return [p for p in out.stdout.decode("utf-8").split("\0") if p]

    names = _git("diff", "--name-only", "-z", "--diff-filter=d", base_ref)
    names += _git("ls-files", "--others", "--exclude-standard", "-z")
    return frozenset(
        os.path.abspath(name) for name in names if name.endswith(".py")
    )


def _render_text(result: LintResult) -> str:
    lines = [f.render_text() for f in result.findings]
    counts = result.counts_by_rule()
    summary = (
        f"dplint: {len(result.findings)} finding(s) in {result.n_files} "
        f"file(s) ({result.n_suppressed} suppressed, "
        f"{result.n_baselined} baselined)"
    )
    if counts:
        summary += " — " + ", ".join(f"{k}: {v}" for k, v in counts.items())
    lines.append(summary)
    return "\n".join(lines)


def _list_rules() -> str:
    lines = []
    for rule in get_rules():
        lines.append(f"{rule.rule_id}  {rule.name} [{rule.severity.value}]")
        lines.append(f"    {rule.description}")
        if rule.paper_ref:
            lines.append(f"    paper: {rule.paper_ref}")
    for meta in sorted(FLOW_RULES.values(), key=lambda m: m.rule_id):
        lines.append(
            f"{meta.rule_id}  {meta.name} [{meta.severity.value}] (flow)"
        )
        lines.append(f"    {meta.description}")
        if meta.paper_ref:
            lines.append(f"    paper: {meta.paper_ref}")
    return "\n".join(lines)


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        print(_list_rules())
        return 0
    rule_ids = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    restrict = _changed_files(args.changed) if args.changed else None
    config = LintConfig(
        rule_ids=rule_ids,
        baseline_path=args.baseline,
        flow=args.flow,
        restrict_to=restrict,
    )
    engine = LintEngine(config)
    result = engine.run(args.paths)
    if args.write_baseline:
        Baseline.from_findings(result.all_findings).write(args.write_baseline)
        print(
            f"dplint: wrote {len(result.all_findings)} finding(s) to "
            f"baseline {args.write_baseline}"
        )
        return 0
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    elif args.format == "sarif":
        print(json.dumps(render_sarif(result.findings), indent=2))
    else:
        print(_render_text(result))
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-lint`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="DP-safety static analysis for the repro codebase "
        "(rules DPL001-DPL008; see docs/lint.md)",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint_command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
