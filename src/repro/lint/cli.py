"""Command-line front end for dplint.

Reachable two ways with identical semantics:

* ``python -m repro lint [paths...] [options]`` — the repro CLI
  subcommand (:mod:`repro.cli` delegates here), and
* ``repro-lint [paths...] [options]`` — the console entry point
  registered in ``pyproject.toml``.

Exit codes: 0 — clean (no non-baselined findings); 1 — findings; 2 —
usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..errors import ReproError
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import LintConfig, LintEngine, LintResult
from .registry import get_rules

__all__ = ["add_lint_arguments", "run_lint_command", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install dplint's options on a parser (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"baseline file of grandfathered findings "
        f"(e.g. {DEFAULT_BASELINE_NAME}); matching findings do not fail "
        "the run",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write all current findings to PATH as the new baseline "
        "and exit 0",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )


def _render_text(result: LintResult) -> str:
    lines = [f.render_text() for f in result.findings]
    counts = result.counts_by_rule()
    summary = (
        f"dplint: {len(result.findings)} finding(s) in {result.n_files} "
        f"file(s) ({result.n_suppressed} suppressed, "
        f"{result.n_baselined} baselined)"
    )
    if counts:
        summary += " — " + ", ".join(f"{k}: {v}" for k, v in counts.items())
    lines.append(summary)
    return "\n".join(lines)


def _list_rules() -> str:
    lines = []
    for rule in get_rules():
        lines.append(f"{rule.rule_id}  {rule.name} [{rule.severity.value}]")
        lines.append(f"    {rule.description}")
        if rule.paper_ref:
            lines.append(f"    paper: {rule.paper_ref}")
    return "\n".join(lines)


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        print(_list_rules())
        return 0
    rule_ids = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    config = LintConfig(rule_ids=rule_ids, baseline_path=args.baseline)
    engine = LintEngine(config)
    result = engine.run(args.paths)
    if args.write_baseline:
        Baseline.from_findings(result.all_findings).write(args.write_baseline)
        print(
            f"dplint: wrote {len(result.all_findings)} finding(s) to "
            f"baseline {args.write_baseline}"
        )
        return 0
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(_render_text(result))
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-lint`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="DP-safety static analysis for the repro codebase "
        "(rules DPL001-DPL005; see docs/lint.md)",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint_command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
