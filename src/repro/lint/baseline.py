"""Baseline file: grandfathered findings that do not fail the build.

The baseline is a committed JSON document mapping finding fingerprints to
occurrence counts (a fingerprint can legitimately appear twice when two
identical lines in one file violate the same rule).  A lint run filters
findings against it and fails only on *new* ones; ``--write-baseline``
regenerates it from the current findings, which is how a finding gets
grandfathered in the first place.

Entries keep human-readable context (rule, path, message) next to the
fingerprint so baseline diffs are reviewable, but only the fingerprint
and count participate in matching.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from collections import Counter
from typing import Dict, Iterable, List, Tuple

from ..errors import ConfigurationError
from .findings import Finding

__all__ = ["Baseline", "BASELINE_VERSION", "DEFAULT_BASELINE_NAME"]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "dplint-baseline.json"


class Baseline:
    """Set of grandfathered finding fingerprints with multiplicities."""

    def __init__(self, counts: Dict[str, int], context: List[dict] = None):
        self._counts = dict(counts)
        self._context = list(context or [])

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Counter = Counter()
        context: List[dict] = []
        for f in sorted(findings, key=Finding.sort_key):
            counts[f.fingerprint] += 1
            context.append(
                {
                    "fingerprint": f.fingerprint,
                    "rule": f.rule_id,
                    "path": f.path,
                    "message": f.message,
                }
            )
        return cls(dict(counts), context)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        p = pathlib.Path(path)
        try:
            doc = json.loads(p.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ConfigurationError(f"baseline file not found: {path}")
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"baseline file {path} is not valid JSON: {exc}")
        if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
            raise ConfigurationError(
                f"baseline file {path} has unsupported format "
                f"(expected version {BASELINE_VERSION})"
            )
        entries = doc.get("entries", [])
        counts: Counter = Counter()
        for entry in entries:
            fp = entry.get("fingerprint")
            if not isinstance(fp, str):
                raise ConfigurationError(f"baseline file {path}: malformed entry")
            counts[fp] += int(entry.get("count", 1))
        return cls(dict(counts), entries)

    # ------------------------------------------------------------------
    def write(self, path: str) -> None:
        merged: Dict[str, dict] = {}
        for entry in self._context:
            fp = entry["fingerprint"]
            if fp in merged:
                merged[fp]["count"] += 1
            else:
                merged[fp] = {
                    "fingerprint": fp,
                    "rule": entry.get("rule", "?"),
                    "path": entry.get("path", "?"),
                    "message": entry.get("message", ""),
                    "count": 1,
                }
        # Entries whose context was lost (hand-edited files) still match.
        for fp, count in self._counts.items():
            if fp not in merged:
                merged[fp] = {"fingerprint": fp, "rule": "?", "path": "?",
                              "message": "", "count": count}
        doc = {
            "version": BASELINE_VERSION,
            "tool": "dplint",
            "entries": sorted(
                merged.values(), key=lambda e: (e["path"], e["rule"], e["fingerprint"])
            ),
        }
        # Atomic replace: a crash mid-write must never leave a truncated
        # baseline behind (CI would then "pass" against half a file).
        target = pathlib.Path(path)
        payload = json.dumps(doc, indent=2, sort_keys=False) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            prefix=target.name + ".", suffix=".tmp", dir=str(target.parent) or "."
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, str(target))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:  # pragma: no cover - already replaced/removed
                pass
            raise

    # ------------------------------------------------------------------
    def filter(self, findings: Iterable[Finding]) -> Tuple[List[Finding], int]:
        """Split findings into (new, n_baselined).

        Consumes baseline multiplicities in file order, so ``k`` baselined
        occurrences absorb at most ``k`` identical findings.
        """
        remaining = Counter(self._counts)
        fresh: List[Finding] = []
        absorbed = 0
        for f in sorted(findings, key=Finding.sort_key):
            if remaining.get(f.fingerprint, 0) > 0:
                remaining[f.fingerprint] -= 1
                absorbed += 1
            else:
                fresh.append(f)
        return fresh, absorbed

    def __len__(self) -> int:
        return sum(self._counts.values())
