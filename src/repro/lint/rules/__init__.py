"""Builtin dplint rules.

Importing this package registers every builtin rule with
:mod:`repro.lint.registry`.  Each module holds one rule so the encoding
of each paper invariant can be read (and reviewed) in isolation.
"""

from . import (  # noqa: F401
    dpl001_randomness,
    dpl002_float,
    dpl003_branch,
    dpl004_accounting,
    dpl005_epsilon,
)

__all__ = [
    "dpl001_randomness",
    "dpl002_float",
    "dpl003_branch",
    "dpl004_accounting",
    "dpl005_epsilon",
]
