"""DPL004 — mechanism release without budget accounting.

Paper invariant (Section II-A, Algorithm 1, Fig. 13): sequential
composition means every privatized release *must* debit the privacy
budget, or an averaging adversary reconstructs the secret to arbitrary
precision by querying repeatedly.  DP-Box enforces this in hardware; the
software orchestration layers have to enforce it by construction.

The rule checks orchestration code (``aggregation/``, ``core/``,
``runtime/`` and the CLI): any function that calls ``.privatize(...)``
(or the ``privatize_with_counts`` / ``privatize_bits`` variants) must,
in the same function, interact with an accountant — ``spend``,
``try_spend``, ``can_spend``, ``charge``, ``debit`` or ``record_loss``.
The release pipeline's own seam also counts: a ``.release(...)`` or
``.charge_and_emit(...)`` call carrying an ``accounting=`` keyword binds
a charge policy into the release itself (see docs/runtime.md), so it
satisfies the rule; a bare ``.release(...)`` is a release site like
``.privatize(...)``.  Helpers that privatize below an enclosing guard
annotate the call with ``# dplint: allow[DPL004]`` naming the guard.
Mechanism internals (``mechanisms/``) and evaluation harnesses are out
of scope — they are the mechanism, not a release site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..registry import FileContext, Rule, register

__all__ = ["ReleaseWithoutAccounting"]

_RELEASE_CALLS = frozenset(
    {"privatize", "privatize_with_counts", "privatize_bits", "release"}
)
_ACCOUNTING_CALLS = frozenset(
    {"spend", "try_spend", "can_spend", "charge", "debit", "record_loss"}
)
#: Pipeline-seam calls whose ``accounting=`` keyword binds a charge
#: policy into the release itself (repro.runtime).
_SEAM_CALLS = frozenset({"release", "charge_and_emit"})


def _binds_accounting(node: ast.Call) -> bool:
    """Whether a pipeline-seam call carries an ``accounting=`` policy."""
    return any(kw.arg == "accounting" for kw in node.keywords)


@register
class ReleaseWithoutAccounting(Rule):
    rule_id = "DPL004"
    name = "release-without-accounting"
    severity = Severity.ERROR
    description = (
        "privatized release call site without a budget/accountant "
        "interaction in the same function (composition is unenforced)"
    )
    paper_ref = "Section II-A / Algorithm 1 / Fig. 13 averaging attack"

    def _in_scope(self, ctx: FileContext) -> bool:
        import pathlib

        name = pathlib.PurePath(ctx.path).parts[-1]
        return (
            ctx.in_dir("aggregation")
            or ctx.in_dir("core")
            or ctx.in_dir("runtime")
            or ctx.in_dir("parallel")
            or name == "cli.py"
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        for func in self.functions(ctx.tree):
            release_sites = []
            accounted = False
            for node in ast.walk(func):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr in _SEAM_CALLS and _binds_accounting(node):
                        accounted = True
                    elif node.func.attr in _RELEASE_CALLS:
                        release_sites.append(node)
                    elif node.func.attr in _ACCOUNTING_CALLS:
                        accounted = True
            if accounted:
                continue
            for site in release_sites:
                callee = self.dotted_name(site.func) or site.func.attr
                yield ctx.finding(
                    self,
                    site,
                    f"release call {callee}() in {func.name!r} is not "
                    "guarded by a budget decrement (spend/try_spend/"
                    "can_spend); unaccounted releases defeat composition "
                    "(paper Fig. 13)",
                )
