"""DPL003 — secret-dependent control flow in mechanisms.

Paper invariant (Section VI-D / Fig. 12): the resampling guard's redraw
count depends on the *sensor value*, so execution time becomes a side
channel — :mod:`repro.attacks.timing` implements the distinguisher.  Any
``if``/``while`` whose condition is data-dependent on a secret input
re-creates that channel in software.

The rule runs a lightweight intraprocedural taint analysis over every
function in ``mechanisms/``: parameters with secret-ish names (``x``,
``values``, ``bits``, ``categories``, ...) seed the taint set;
assignments, augmented assignments and ``for`` targets propagate it (to a
fixpoint); any ``if``/``while`` test mentioning a tainted name is
flagged.  Branches whose body consists solely of ``raise`` are skipped:
input validation intentionally rejects out-of-contract secrets and is a
different (documented) channel.  Inherent channels — the resampling loop
itself — carry ``# dplint: allow[DPL003]`` annotations pointing at the
paper's discussion.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..findings import Finding, Severity
from ..registry import FileContext, Rule, register

__all__ = ["SecretDependentBranch", "SECRET_PARAM_NAMES"]

#: Parameter names treated as secret sensor data.
SECRET_PARAM_NAMES = frozenset(
    {
        "x",
        "xs",
        "value",
        "values",
        "reading",
        "readings",
        "bits",
        "categories",
        "data",
        "raw",
        "raw_value",
        "physical",
        "k_x",
        "secret",
    }
)

_MAX_TAINT_PASSES = 10


def _assigned_names(target: ast.AST) -> Iterator[str]:
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            yield node.id


def _mentions(node: ast.AST, tainted: Set[str]) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in tainted for sub in ast.walk(node)
    )


def _raise_only(body) -> bool:
    return all(isinstance(stmt, ast.Raise) for stmt in body)


@register
class SecretDependentBranch(Rule):
    rule_id = "DPL003"
    name = "secret-dependent-branch"
    severity = Severity.WARNING
    description = (
        "if/while condition depends on a secret sensor input — a timing "
        "side channel like the paper's resampling loop (Fig. 12)"
    )
    paper_ref = "Section VI-D / Fig. 12; repro.attacks.timing"

    def _taint(self, func: ast.AST) -> Set[str]:
        args = func.args
        params = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
        tainted: Set[str] = {
            a.arg for a in params if a.arg in SECRET_PARAM_NAMES
        }
        if not tainted:
            return tainted
        for _ in range(_MAX_TAINT_PASSES):
            before = len(tainted)
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    if _mentions(node.value, tainted):
                        for tgt in node.targets:
                            tainted.update(_assigned_names(tgt))
                elif isinstance(node, ast.AugAssign):
                    if _mentions(node.value, tainted) or _mentions(
                        node.target, tainted
                    ):
                        tainted.update(_assigned_names(node.target))
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    if _mentions(node.value, tainted):
                        tainted.update(_assigned_names(node.target))
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if _mentions(node.iter, tainted):
                        tainted.update(_assigned_names(node.target))
                elif isinstance(node, (ast.NamedExpr,)):
                    if _mentions(node.value, tainted):
                        tainted.update(_assigned_names(node.target))
            if len(tainted) == before:
                break
        return tainted

    # ------------------------------------------------------------------
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dir("mechanisms"):
            return
        for func in self.functions(ctx.tree):
            tainted = self._taint(func)
            if not tainted:
                continue
            for node in ast.walk(func):
                if not isinstance(node, (ast.If, ast.While)):
                    continue
                if _raise_only(node.body):
                    continue  # validation-reject pattern, documented channel
                if _mentions(node.test, tainted):
                    names = sorted(
                        {
                            sub.id
                            for sub in ast.walk(node.test)
                            if isinstance(sub, ast.Name) and sub.id in tainted
                        }
                    )
                    kind = "if" if isinstance(node, ast.If) else "while"
                    yield ctx.finding(
                        self,
                        node,
                        f"{kind}-condition in {func.name!r} depends on "
                        f"secret-derived value(s) {', '.join(names)} — "
                        "data-dependent control flow is a timing channel "
                        "(paper Fig. 12); make the dataflow constant-shape "
                        "or annotate the inherent channel",
                    )
