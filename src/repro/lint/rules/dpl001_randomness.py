"""DPL001 — unaudited randomness on the release path.

Paper invariant (Section III-A; Holohan & Braghin, "Secure Random
Sampling in Differential Privacy"): every bit of randomness that reaches
a privatized release must come from the audited URNG abstraction
(:mod:`repro.rng.urng` / :mod:`repro.rng.tausworthe`), whose discrete
code alphabet is exactly what the exact-PMF certification enumerates.  A
stray ``random.random()`` or ``np.random.default_rng()`` on the release
path produces noise the analyzer never sees — the guarantee silently
stops covering the implementation.

The rule fires on ``import random``, ``from random import ...`` and any
call into ``random.*`` / ``np.random.*`` / ``numpy.random.*`` inside
release-path files.  Simulation paths (``datasets/``, ``sensors/``,
benchmarks, ...) and the audited RNG modules themselves are exempt.
Release-path construction of generators should go through
:func:`repro.rng.urng.audited_generator` (or inject a seeded generator at
construction), which keeps every construction site greppable.

A gather from a cached codebook (:mod:`repro.rng.codebook`) is audited
randomness, not a new source: the ``m → k`` table is a deterministic
function of the configuration, built by sweeping the audited datapath
over the full code alphabet, and every random bit indexing it still
comes from the injected :class:`~repro.rng.urng.UniformCodeSource`.
``rng/codebook.py`` is therefore part of the audited-rng file set.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..registry import FileContext, Rule, register

__all__ = ["UnauditedRandomness"]

_BANNED_CALL_PREFIXES = ("random.", "np.random.", "numpy.random.")


@register
class UnauditedRandomness(Rule):
    rule_id = "DPL001"
    name = "unaudited-randomness"
    severity = Severity.ERROR
    description = (
        "random/np.random used on a release path instead of the audited "
        "URNG abstraction (repro.rng.urng / repro.rng.tausworthe)"
    )
    paper_ref = "Section III-A; PAPERS.md: Secure Random Sampling in DP"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_release or ctx.is_audited_rng:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "numpy.random"
                    ):
                        yield ctx.finding(
                            self,
                            node,
                            f"import of unaudited randomness module "
                            f"{alias.name!r} on a release path",
                        )
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if mod == "random" or mod.startswith("numpy.random"):
                    yield ctx.finding(
                        self,
                        node,
                        f"from-import of unaudited randomness module {mod!r} "
                        "on a release path",
                    )
            elif isinstance(node, ast.Call):
                dotted = self.dotted_name(node.func)
                if dotted and dotted.startswith(_BANNED_CALL_PREFIXES):
                    yield ctx.finding(
                        self,
                        node,
                        f"call to {dotted}() on a release path; route "
                        "randomness through repro.rng.urng.audited_generator "
                        "or an injected UniformCodeSource",
                    )
