"""DPL002 — float operations inside the fixed-point sampling datapath.

Paper invariant (Section III-A4; Gazeau et al., "Preserving differential
privacy under finite-precision semantics"): the certified mechanisms are
*discrete* objects — integer URNG codes through an integer datapath onto
the ``Δ`` grid.  Uncontrolled float64 arithmetic inside that datapath
(transcendental calls, ``float`` casts, ``dtype=float`` materialization)
reintroduces exactly the finite-precision semantics the exact-PMF
analysis does not model, so the certification silently stops describing
the code that runs.

Scope: the sampling/privatization functions of ``mechanisms/`` and
``rng/`` modules — functions named ``sample*``, ``draw*``, ``privatize*``
or ``noise*`` (with or without a leading underscore) plus the inverse-CDF
datapath hooks (``magnitude_from_uniform``, ``inverse_half_cdf``,
``inverse_magnitude_cdf``, ``inverse_cdf``, ``_ln_uniform``,
``_codes_from_uniform``).  Deliberate float models — the ideal reference
arms and exact-log hardware models — carry ``# dplint: allow[DPL002]``
annotations stating why the float is sound there.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..findings import Finding, Severity
from ..registry import FileContext, Rule, register

__all__ = ["FloatInFxpPath"]

_DATAPATH_NAME = re.compile(r"^_?(sample|draw|privatize|noise)")
_DATAPATH_HOOKS = frozenset(
    {
        "magnitude_from_uniform",
        "inverse_half_cdf",
        "inverse_magnitude_cdf",
        "inverse_cdf",
        "_ln_uniform",
        "_codes_from_uniform",
    }
)
_TRANSCENDENTAL = frozenset(
    {
        "np.log", "np.log2", "np.log10", "np.log1p", "np.exp", "np.expm1",
        "np.sqrt", "np.sinh", "np.cosh", "np.tanh", "np.power",
        "numpy.log", "numpy.exp", "numpy.sqrt",
        "math.log", "math.log2", "math.log1p", "math.exp", "math.expm1",
        "math.sqrt", "math.sinh", "math.cosh", "math.pow",
    }
)
_FLOAT_DTYPES = frozenset({"float", "np.float64", "np.float32", "numpy.float64"})


def _is_float_dtype(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "float"
    dotted = Rule.dotted_name(node)
    return dotted in _FLOAT_DTYPES if dotted else False


@register
class FloatInFxpPath(Rule):
    rule_id = "DPL002"
    name = "float-in-fxp-path"
    severity = Severity.ERROR
    description = (
        "float arithmetic/casts inside a fixed-point sampling datapath "
        "(finite-precision hazard: the exact-PMF certification does not "
        "model float64 semantics)"
    )
    paper_ref = "Section III-A4; PAPERS.md: Gazeau et al. finite-precision"

    def _in_scope(self, ctx: FileContext) -> bool:
        return ctx.in_dir("mechanisms") or ctx.in_dir("rng")

    def _datapath_function(self, name: str) -> bool:
        return bool(_DATAPATH_NAME.match(name)) or name in _DATAPATH_HOOKS

    # ------------------------------------------------------------------
    def _violation(self, node: ast.AST) -> Optional[str]:
        if not isinstance(node, ast.Call):
            # dtype=float keywords are attached to Call nodes; everything
            # else this rule flags is a call too.
            return None
        dotted = self.dotted_name(node.func)
        if isinstance(node.func, ast.Name) and node.func.id == "float":
            return "float() cast"
        if dotted in _TRANSCENDENTAL:
            return f"transcendental float call {dotted}()"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "to_float":
            return ".to_float() conversion"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
            and _is_float_dtype(node.args[0])
        ):
            return ".astype(float) conversion"
        for kw in node.keywords:
            if kw.arg == "dtype" and _is_float_dtype(kw.value):
                return "dtype=float materialization"
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        for func in self.functions(ctx.tree):
            if not self._datapath_function(func.name):
                continue
            for node in ast.walk(func):
                what = self._violation(node)
                if what:
                    yield ctx.finding(
                        self,
                        node,
                        f"{what} inside fixed-point datapath function "
                        f"{func.name!r}; keep the release datapath on "
                        "integer codes (or annotate a deliberate float "
                        "model with its justification)",
                    )
