"""DPL005 — mechanism constructor accepts ε without validating it.

Paper invariant (Section II-B): ε parameterizes the noise scale
``λ = d/ε``; ε ≤ 0 (or NaN) silently produces a mechanism whose "noise"
is infinite-scale garbage or, worse for privacy, whose downstream
calibration divides by zero and disables the guard.  Every constructor
that takes an ε must reject non-positive values at the boundary, exactly
like :class:`repro.mechanisms.base.LocalMechanism` does.

The rule inspects ``__init__`` / ``__post_init__`` methods in
``mechanisms/`` and ``privacy/`` classes whose signature (or dataclass
fields) include ``epsilon``/``eps``.  The constructor passes if it

* compares the ε name (or ``self.epsilon``) in any ``Compare`` node —
  the ``if epsilon <= 0: raise`` idiom,
* calls a validator whose name contains ``valid`` or ``check`` with the
  ε in its arguments, or
* forwards ε to ``super().__init__`` (the base class validates).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..findings import Finding, Severity
from ..registry import FileContext, Rule, register

__all__ = ["UnvalidatedEpsilon"]

_EPS_NAMES = frozenset({"epsilon", "eps"})


def _param_names(func: ast.AST) -> List[str]:
    args = func.args
    return [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]


def _mentions_eps(node: ast.AST, eps_names: Set[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in eps_names:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in eps_names:
            return True
    return False


def _is_super_init(call: ast.Call) -> bool:
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "__init__"
        and isinstance(call.func.value, ast.Call)
        and isinstance(call.func.value.func, ast.Name)
        and call.func.value.func.id == "super"
    )


@register
class UnvalidatedEpsilon(Rule):
    rule_id = "DPL005"
    name = "unvalidated-epsilon"
    severity = Severity.ERROR
    description = (
        "constructor accepts epsilon without an eps > 0 validation or "
        "forwarding it to a validating base class"
    )
    paper_ref = "Section II-B (λ = d/ε noise calibration)"

    def _in_scope(self, ctx: FileContext) -> bool:
        return ctx.in_dir("mechanisms") or ctx.in_dir("privacy")

    # ------------------------------------------------------------------
    def _class_eps_fields(self, cls: ast.ClassDef) -> Set[str]:
        fields: Set[str] = set()
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if stmt.target.id in _EPS_NAMES:
                    fields.add(stmt.target.id)
        return fields

    def _validated(self, func: ast.AST, eps_names: Set[str]) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Compare) and _mentions_eps(node, eps_names):
                return True
            if isinstance(node, ast.Call):
                if _is_super_init(node):
                    fwd = list(node.args) + [
                        kw.value for kw in node.keywords
                    ]
                    if any(_mentions_eps(a, eps_names) for a in fwd):
                        return True
                callee: Optional[str] = None
                if isinstance(node.func, ast.Name):
                    callee = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    callee = node.func.attr
                if callee and ("valid" in callee or "check" in callee):
                    fwd = list(node.args) + [kw.value for kw in node.keywords]
                    if any(_mentions_eps(a, eps_names) for a in fwd):
                        return True
        return False

    # ------------------------------------------------------------------
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            dataclass_eps = self._class_eps_fields(cls)
            ctor_names = {
                f.name
                for f in cls.body
                if isinstance(f, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if dataclass_eps and not ({"__init__", "__post_init__"} & ctor_names):
                yield ctx.finding(
                    self,
                    cls,
                    f"dataclass {cls.name} declares an "
                    f"{'/'.join(sorted(dataclass_eps))} field with no "
                    "__post_init__ validation at all",
                )
            for func in cls.body:
                if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if func.name == "__init__":
                    eps_names = {
                        n for n in _param_names(func) if n in _EPS_NAMES
                    }
                elif func.name == "__post_init__":
                    eps_names = set(dataclass_eps)
                else:
                    continue
                if not eps_names:
                    continue
                if not self._validated(func, eps_names):
                    yield ctx.finding(
                        self,
                        func,
                        f"{cls.name}.{func.name} accepts "
                        f"{'/'.join(sorted(eps_names))} without validating "
                        "it (need eps > 0 / format check, a *valid*/*check* "
                        "helper, or super().__init__ forwarding)",
                    )
