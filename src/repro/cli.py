"""Command-line interface: ``python -m repro <command>``.

A thin operational layer over the library for quick experiments:

* ``verify``    — exact ε-LDP certification of an arm for given parameters
* ``calibrate`` — guard thresholds (paper closed forms vs exact search)
* ``noise``     — privatize values from the command line
* ``datasets``  — list the Table-I evaluation datasets
* ``latency``   — measure DP-Box noising latency for a configuration
* ``selftest``  — run the integrity BIST (URNG health, CORDIC, noise shape)
* ``lint``      — dplint DP-safety static analysis (rules DPL001-DPL008)
* ``trace``     — runtime release-event tracing: selfcheck every release
  path, or replay a JSONL event trace (see docs/runtime.md)
* ``kernels``   — codebook sampling-kernel report: table size vs budget,
  measured codebook-vs-live speedup, cache statistics
  (see docs/performance.md)
* ``fleet``     — sharded multi-core fleet simulation with an optional
  streaming aggregation server (see docs/performance.md)
* ``serve``     — network-facing ingestion service (JSONL + negotiated
  binary columnar wire) in front of a streaming aggregation server
  (see docs/service.md)
* ``loadgen``   — load-generator client for a running ingestion service

Every command prints plain text; exit code 0 means the operation
succeeded (for ``verify``: the mechanism was *analyzed*, whatever the
verdict — the verdict itself is in the output and in ``--expect``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .analysis import render_table
from .core import DPBox, DPBoxConfig, DPBoxDriver, GuardMode, LatencyStats
from .datasets import PAPER_DATASETS, load
from .errors import ReproError
from .mechanisms import SensorSpec, make_mechanism
from .privacy import (
    BudgetAccountant,
    calibrate_threshold_exact,
    paper_resampling_threshold,
    paper_thresholding_threshold,
)
from .rng import FxpLaplaceConfig, FxpLaplaceRng, audited_generator

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Local differential privacy on ultra-low-power systems "
        "(ISCA 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_mech_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--range", nargs=2, type=float, required=True,
                       metavar=("M_LO", "M_HI"), help="declared sensor range")
        p.add_argument("--epsilon", type=float, default=0.5)
        p.add_argument(
            "--arm",
            choices=["ideal", "baseline", "resampling", "thresholding"],
            default="thresholding",
        )
        p.add_argument("--input-bits", type=int, default=14, help="URNG width Bu")
        p.add_argument("--loss-multiple", type=float, default=2.0)

    p_verify = sub.add_parser("verify", help="exact epsilon-LDP certification")
    add_mech_args(p_verify)
    p_verify.add_argument(
        "--expect",
        choices=["ldp", "not-ldp"],
        help="exit nonzero unless the verdict matches",
    )

    p_cal = sub.add_parser("calibrate", help="guard threshold calibration")
    p_cal.add_argument("--range", nargs=2, type=float, required=True,
                       metavar=("M_LO", "M_HI"))
    p_cal.add_argument("--epsilon", type=float, default=0.5)
    p_cal.add_argument("--input-bits", type=int, default=17)
    p_cal.add_argument("--delta-bits", type=int, default=5,
                       help="grid step = range/2**delta_bits")
    p_cal.add_argument("--loss-multiple", type=float, default=2.0)

    p_noise = sub.add_parser("noise", help="privatize values")
    add_mech_args(p_noise)
    p_noise.add_argument("values", nargs="+", type=float)
    p_noise.add_argument("--seed", type=int, default=None)
    p_noise.add_argument(
        "--budget",
        type=float,
        default=None,
        help="privacy budget for this invocation; the per-value loss is the "
        "mechanism's claimed bound (default: exactly enough for the "
        "requested values)",
    )

    sub.add_parser("datasets", help="list the Table-I evaluation datasets")

    p_lat = sub.add_parser("latency", help="measure DP-Box noising latency")
    p_lat.add_argument("--range", nargs=2, type=float, default=(0.0, 10.0),
                       metavar=("M_LO", "M_HI"))
    p_lat.add_argument("--epsilon-exponent", type=int, default=1,
                       help="eps = 2**-nm")
    p_lat.add_argument("--mode", choices=["resample", "threshold"],
                       default="threshold")
    p_lat.add_argument("--samples", type=int, default=200)

    p_bist = sub.add_parser("selftest", help="run the integrity BIST")
    p_bist.add_argument("--seed", type=int, default=12345)

    p_lint = sub.add_parser(
        "lint", help="DP-safety static analysis (dplint, see docs/lint.md)"
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(p_lint)

    p_kern = sub.add_parser(
        "kernels",
        help="codebook sampling-kernel report (see docs/performance.md)",
    )
    p_kern.add_argument("--range", nargs=2, type=float, default=(0.0, 10.0),
                        metavar=("M_LO", "M_HI"), help="declared sensor range")
    p_kern.add_argument("--epsilon", type=float, default=0.5)
    p_kern.add_argument("--input-bits", type=int, default=17, help="URNG width Bu")
    p_kern.add_argument("--output-bits", type=int, default=20)
    p_kern.add_argument(
        "--backend",
        choices=["exact", "cordic", "poly"],
        default="exact",
        help="logarithm datapath model",
    )
    p_kern.add_argument(
        "--samples",
        type=int,
        default=200_000,
        help="draws per kernel for the timing comparison (0 skips timing)",
    )
    p_kern.add_argument(
        "--budget-bytes",
        type=int,
        default=None,
        help="override the per-table budget for this invocation",
    )

    p_fleet = sub.add_parser(
        "fleet",
        help="sharded multi-core fleet simulation (see docs/performance.md)",
    )
    p_fleet.add_argument("--range", nargs=2, type=float, default=(0.0, 50.0),
                         metavar=("M_LO", "M_HI"), help="declared sensor range")
    p_fleet.add_argument("--epsilon", type=float, default=2.0)
    p_fleet.add_argument(
        "--arm",
        choices=["ideal", "baseline", "resampling", "thresholding", "rr"],
        default="thresholding",
    )
    p_fleet.add_argument("--devices", type=int, default=2000)
    p_fleet.add_argument("--epochs", type=int, default=8)
    p_fleet.add_argument("--dropout", type=float, default=0.0)
    p_fleet.add_argument("--device-budget", type=float, default=None)
    p_fleet.add_argument(
        "--workers", type=int, default=None,
        help="pin the worker-process count (1 = inline, no pool); "
        "overrides --plan",
    )
    p_fleet.add_argument(
        "--plan",
        default="auto",
        metavar="auto|serial|pool:<W>",
        help="execution plan: 'auto' probes cores + a cached calibration "
        "to pick serial vs pool, 'serial' forces inline, 'pool:<W>' "
        "forces a W-worker pool; never changes the noise streams "
        "(default: auto)",
    )
    p_fleet.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count; fixes the noise streams independently of "
        "--workers/--plan (default 8, clamped to the device count)",
    )
    p_fleet.add_argument(
        "--streaming",
        action="store_true",
        help="streaming aggregation server: per-epoch running moments, "
        "O(epochs) memory, reports not retained",
    )
    p_fleet.add_argument("--seed", type=int, default=1234,
                         help="fleet seed (noise streams + simulated data)")

    p_oracle = sub.add_parser(
        "oracle",
        help="categorical frequency oracles (encode/perturb/aggregate/"
        "estimate; see docs/api.md)",
    )
    p_oracle.add_argument(
        "--oracle",
        choices=["krr", "oue", "olh"],
        default="oue",
        help="frequency-oracle arm",
    )
    p_oracle.add_argument("--categories", type=int, default=16,
                          help="domain size d")
    p_oracle.add_argument("--epsilon", type=float, default=2.0)
    p_oracle.add_argument("--devices", type=int, default=5000)
    p_oracle.add_argument("--epochs", type=int, default=1)
    p_oracle.add_argument("--dropout", type=float, default=0.0)
    p_oracle.add_argument("--workers", type=int, default=1,
                          help="worker processes (1 = inline, no pool)")
    p_oracle.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count; fixes the noise streams independently of "
        "--workers (default 8, clamped to the device count)",
    )
    p_oracle.add_argument("--seed", type=int, default=1234,
                          help="oracle seed (noise streams + simulated data)")
    p_oracle.add_argument("--zipf", type=float, default=1.3,
                          help="Zipf exponent of the simulated category skew")
    p_oracle.add_argument(
        "--heavy-hitters",
        type=int,
        default=None,
        metavar="K",
        help="instead of full-domain estimation, find the top-K heavy "
        "hitters over a 2^--domain-bits domain via prefix extension (PEM)",
    )
    p_oracle.add_argument("--domain-bits", type=int, default=12,
                          help="with --heavy-hitters: prefix-domain width")

    p_serve = sub.add_parser(
        "serve",
        help="ingestion service: JSONL-over-TCP device-report admission "
        "in front of an aggregation server (see docs/service.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7787,
        help="TCP port (0 lets the OS pick; the bound port is printed)",
    )
    p_serve.add_argument(
        "--queue-capacity", type=int, default=64,
        help="pending-batch bound; a full queue answers 'busy' (backpressure)",
    )
    p_serve.add_argument("--max-batch", type=int, default=65536,
                         help="largest admissible reports-per-request")
    p_serve.add_argument(
        "--per-epoch-limit", type=int, default=1,
        help="reports each device may land per epoch (rate-limit guard)",
    )
    p_serve.add_argument(
        "--device-budget", type=float, default=None,
        help="cumulative claimed-loss budget per device (epoch/budget guard)",
    )
    p_serve.add_argument("--max-claimed-loss", type=float, default=16.0,
                         help="per-batch claimed-loss cap")
    p_serve.add_argument("--epoch-horizon", type=int, default=1_000_000,
                         help="largest admissible epoch number")
    p_serve.add_argument(
        "--strict", action="store_true",
        help="disable schema repair: every recoverable coercion BLOCKs instead",
    )
    p_serve.add_argument(
        "--retain", action="store_true",
        help="retain-mode aggregation server (default: streaming moments)",
    )
    p_serve.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="also write every admission decision (IngestEvent) to PATH",
    )
    p_serve.add_argument(
        "--allow-shutdown", action="store_true",
        help="honor the remote 'shutdown' op (off by default: DoS door)",
    )

    p_load = sub.add_parser(
        "loadgen",
        help="drive a burst of report batches at a running ingestion "
        "service and report throughput + admission latency",
    )
    p_load.add_argument(
        "--connect", default="127.0.0.1:7787", metavar="HOST:PORT",
        help="service address (default 127.0.0.1:7787)",
    )
    p_load.add_argument("--batches", type=int, default=200)
    p_load.add_argument("--batch-size", type=int, default=256)
    p_load.add_argument("--epochs", type=int, default=4)
    p_load.add_argument("--claimed-loss", type=float, default=1.0)
    p_load.add_argument("--range", nargs=2, type=float, default=(0.0, 50.0),
                        metavar=("M_LO", "M_HI"), help="simulated value range")
    p_load.add_argument("--seed", type=int, default=1234,
                        help="load seed (batch values; replayable)")
    p_load.add_argument(
        "--wire", choices=("jsonl", "binary"), default="jsonl",
        help="request encoding: jsonl (default) or the negotiated "
        "binary columnar frames (wire v2)",
    )
    p_load.add_argument(
        "--pipeline", type=int, default=1, metavar="DEPTH",
        help="request window depth: batches in flight before the oldest "
        "reply is read (default 1 = lock-step)",
    )
    p_load.add_argument(
        "--shutdown-after", action="store_true",
        help="send the 'shutdown' op when the burst completes "
        "(the service must run with --allow-shutdown)",
    )

    p_trace = sub.add_parser(
        "trace", help="release-event tracing (see docs/runtime.md)"
    )
    trace_action = p_trace.add_mutually_exclusive_group(required=True)
    trace_action.add_argument(
        "--selfcheck",
        action="store_true",
        help="exercise every release path through one instrumented "
        "pipeline and validate the emitted events",
    )
    trace_action.add_argument(
        "--replay",
        metavar="FILE",
        help="validate and summarize a JSONL event trace",
    )
    p_trace.add_argument(
        "--jsonl",
        metavar="PATH",
        default=None,
        help="with --selfcheck: also write the event trace to PATH",
    )
    p_trace.add_argument(
        "--limit",
        type=int,
        default=None,
        help="with --replay: only read the first N events",
    )
    return parser


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------
def _cmd_verify(args: argparse.Namespace) -> int:
    sensor = SensorSpec(args.range[0], args.range[1])
    kwargs = {} if args.arm == "ideal" else {"input_bits": args.input_bits}
    mech = make_mechanism(
        args.arm, sensor, args.epsilon, loss_multiple=args.loss_multiple, **kwargs
    )
    report = mech.ldp_report()
    print(f"arm           : {mech.name}")
    print(f"claimed bound : {mech.claimed_loss_bound:g}")
    print(f"verdict       : {report.describe()}")
    if getattr(mech, "threshold", None) is not None:
        print(f"threshold     : {mech.threshold:g}")
    if args.expect:
        want = args.expect == "ldp"
        return 0 if bool(report.satisfied) == want else 1
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    m, M = args.range
    d = M - m
    delta = d / (1 << args.delta_bits)
    cfg = FxpLaplaceConfig(
        input_bits=args.input_bits, output_bits=20, delta=delta, lam=d / args.epsilon
    )
    noise = FxpLaplaceRng(cfg).exact_pmf()
    from .privacy import input_grid_codes

    codes = input_grid_codes(0.0, d, delta, n_points=5)
    n = args.loss_multiple
    rows = []
    t_paper_rs = paper_resampling_threshold(d, delta, args.epsilon, args.input_bits, n)
    t_exact_rs = calibrate_threshold_exact(noise, codes, n * args.epsilon, "resample")
    rows.append(["resampling", f"{t_paper_rs:g}", f"{t_exact_rs:g}"])
    t_paper_th = paper_thresholding_threshold(
        d, delta, args.epsilon, args.input_bits, n
    )
    t_exact_th = calibrate_threshold_exact(noise, codes, n * args.epsilon, "threshold")
    rows.append(["thresholding", f"{t_paper_th:g}", f"{t_exact_th:g}"])
    print(
        render_table(
            ["guard", "paper closed form", "exact calibration"],
            rows,
            title=(
                f"thresholds bounding loss by {n:g}·ε "
                f"(d={d:g}, ε={args.epsilon:g}, Bu={args.input_bits}, Δ={delta:g})"
            ),
        )
    )
    return 0


def _cmd_noise(args: argparse.Namespace) -> int:
    sensor = SensorSpec(args.range[0], args.range[1])
    kwargs = {} if args.arm == "ideal" else {"input_bits": args.input_bits}
    if args.arm == "ideal" and args.seed is not None:
        kwargs["rng"] = audited_generator(args.seed)
    elif args.arm != "ideal" and args.seed is not None:
        from .rng import NumpySource

        kwargs["source"] = NumpySource(seed=args.seed)
    mech = make_mechanism(
        args.arm, sensor, args.epsilon, loss_multiple=args.loss_multiple, **kwargs
    )
    # Every release is debited against an explicit budget (composition,
    # paper Section II-A): the whole request runs as ONE pipeline release
    # with a per-value FlatCharge, so a budget too small for the request
    # is refused mid-charge and nothing unaccounted is printed.
    from .runtime import FlatCharge

    per_value_loss = mech.claimed_loss_bound
    budget = (
        args.budget
        if args.budget is not None
        else per_value_loss * len(args.values)
    )
    accountant = BudgetAccountant(budget)
    outcome = mech.release(
        np.asarray(args.values, dtype=float),
        accounting=FlatCharge(accountant, per_value_loss),
    )
    noisy = [float(v) for v in outcome.values]
    for raw, out in zip(args.values, noisy):
        print(f"{raw:g} -> {out:g}")
    print(
        f"budget        : spent {accountant.spent:g} of {accountant.budget:g} "
        f"({len(args.values)} release(s) at {per_value_loss:g} each)"
    )
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    for name in PAPER_DATASETS:
        ds = load(name)
        st = ds.stats()
        rows.append(
            [
                name,
                st.entries,
                f"[{ds.sensor.m:g}, {ds.sensor.M:g}]",
                f"{st.mean:.4g}",
                f"{st.std:.4g}",
            ]
        )
    # dplint: allow[DPL006] -- Table-I summary of the SYNTHETIC evaluation
    # datasets: the printed means/stds describe generated stand-in data
    # (datasets/ is simulation scaffolding), not readings from a device.
    print(
        render_table(
            ["dataset", "entries", "declared range", "mean", "std"],
            rows,
            title="Table-I evaluation datasets (synthetic substitutes)",
        )
    )
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    # Measurements come off the release-event stream, not the driver's
    # return values: the DP-Box emits one event per noising with its
    # cycle latency attached, and a dedicated pipeline isolates them.
    from .runtime import ReleasePipeline, RingBufferSink

    mode = GuardMode.RESAMPLE if args.mode == "resample" else GuardMode.THRESHOLD
    pipeline = ReleasePipeline()
    ring = pipeline.add_sink(RingBufferSink(capacity=args.samples))
    box = DPBox(
        DPBoxConfig(input_bits=14, range_frac_bits=6, guard_mode=mode),
        pipeline=pipeline,
    )
    driver = DPBoxDriver(box)
    driver.initialize(budget=1e12)
    driver.configure(
        epsilon_exponent=args.epsilon_exponent,
        range_lower=args.range[0],
        range_upper=args.range[1],
    )
    rng = audited_generator(0)
    for x in rng.uniform(args.range[0], args.range[1], args.samples):
        driver.noise(float(x))
    stats = LatencyStats.from_events(ring.events)
    print(f"mode          : {args.mode}")
    print(f"samples       : {stats.n}")
    print(f"mean cycles   : {stats.mean_cycles:.3f}")
    print(f"max cycles    : {stats.max_cycles}")
    print(f"mean draws    : {stats.mean_draws:.3f}")
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    from .core import run_selftest
    from .rng import TauswortheSource

    report = run_selftest(TauswortheSource(seed=args.seed))
    print(report.describe())
    return 0 if report.passed else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run_lint_command

    return run_lint_command(args)


def _cmd_kernels(args: argparse.Namespace) -> int:
    import time

    from .rng import CordicLn, NumpySource, PiecewisePolyLn, codebook_cache
    from .rng.codebook import configure_codebooks

    m_lo, m_hi = args.range
    sensor_d = m_hi - m_lo
    cfg = FxpLaplaceConfig(
        input_bits=args.input_bits,
        output_bits=args.output_bits,
        delta=sensor_d / 64.0,
        lam=sensor_d / args.epsilon,
    )
    backend = {
        "exact": None,
        "cordic": CordicLn(),
        "poly": PiecewisePolyLn(),
    }[args.backend]
    cache = codebook_cache()
    if args.budget_bytes is not None:
        configure_codebooks(table_budget_bytes=args.budget_bytes)
    planned = cache.planned_bytes(cfg)
    print(f"config        : Bu={cfg.input_bits} By={cfg.output_bits} "
          f"Δ={cfg.delta:g} λ={cfg.lam:g} backend={args.backend}")
    print(f"alphabet      : 2**{cfg.input_bits} = {1 << cfg.input_bits} codes")
    print(f"table         : {planned} bytes "
          f"(budget {cache.table_budget_bytes} bytes)")
    rng = FxpLaplaceRng(cfg, source=NumpySource(seed=0), log_backend=backend)
    t0 = time.perf_counter()
    kernel = rng.kernel  # resolves (and possibly builds) the codebook
    build_s = time.perf_counter() - t0
    print(f"kernel        : {kernel}"
          + (f" (resolved in {build_s * 1e3:.1f} ms)" if kernel == "codebook" else
             " (over budget — live datapath)"))
    if args.samples > 0:
        live = FxpLaplaceRng(
            cfg, source=NumpySource(seed=0), log_backend=backend, kernel="live"
        )
        t0 = time.perf_counter()
        rng.sample_codes(args.samples)
        t_kernel = time.perf_counter() - t0
        t0 = time.perf_counter()
        live.sample_codes(args.samples)
        t_live = time.perf_counter() - t0
        print(f"draw timing   : {args.samples} samples — "
              f"{kernel} {t_kernel * 1e3:.1f} ms, live {t_live * 1e3:.1f} ms "
              f"({t_live / t_kernel:.1f}x)")
    stats = cache.stats()
    print("cache         : "
          + ", ".join(f"{k}={stats[k]}" for k in
                      ("entries", "hits", "builds", "evictions",
                       "budget_fallbacks", "bytes")))
    return 0


def _parse_plan(args: argparse.Namespace):
    """Resolve --plan/--workers into an ExecutionPlan (never the streams)."""
    from .errors import ConfigurationError
    from .parallel import plan_execution

    if args.workers is not None:
        workers = args.workers
    elif args.plan == "auto":
        workers = None
    elif args.plan == "serial":
        workers = 1
    elif args.plan.startswith("pool:"):
        try:
            workers = int(args.plan[len("pool:"):])
        except ValueError:
            raise ConfigurationError(
                f"--plan pool:<W> needs an integer, got {args.plan!r}"
            )
    else:
        raise ConfigurationError(
            f"--plan must be 'auto', 'serial' or 'pool:<W>', got {args.plan!r}"
        )
    return plan_execution(
        args.devices, args.epochs, shards=args.shards, workers=workers
    )


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .parallel import run_fleet_sharded

    lo, hi = args.range
    sensor = SensorSpec(m=lo, M=hi)
    sim_rng = audited_generator(args.seed)
    if args.arm == "rr":
        truth = np.where(
            sim_rng.random((args.epochs, args.devices)) < 0.5, lo, hi
        )
    else:
        truth = sim_rng.uniform(lo, hi, size=(args.epochs, args.devices))
    plan = _parse_plan(args)
    result = run_fleet_sharded(
        truth,
        sensor,
        args.epsilon,
        arm=args.arm,
        device_budget=args.device_budget,
        dropout=args.dropout,
        rng=audited_generator(args.seed + 1),
        source_seed=args.seed,
        shards=args.shards,
        streaming=args.streaming,
        with_devices=not args.streaming,
        execution_plan=plan,
    )
    mode = "streaming" if args.streaming else "retain"
    print(
        f"fleet: {args.devices} devices x {args.epochs} epochs, arm={args.arm}, "
        f"eps={args.epsilon}, plan={plan.describe()}, server={mode}"
    )
    print(f"  plan reason: {plan.reason}")
    for epoch in result.server.epochs:
        s = result.server.summarize(epoch)
        # dplint: allow[DPL006] -- prints the simulated ground-truth mean
        # next to the estimate so the demo shows fleet accuracy; `truth`
        # is drawn above from the audited sim generator, not a sensor.
        print(
            f"  epoch {epoch}: n={s.n_reports}  true_mean="
            f"{result.true_means[epoch]:.4f}  est_mean={s.mean:.4f}"
        )
    print(f"mean abs error: {result.mean_abs_error:.4f}")
    print(
        f"retained reports: {result.server.n_retained_reports} "
        f"(events={result.counters.n_events}, "
        f"samples={result.counters.n_samples})"
    )
    return 0


def _cmd_oracle(args: argparse.Namespace) -> int:
    from .mechanisms import make_oracle
    from .parallel import plan_shards, run_fleet_categorical
    from .queries import pem_heavy_hitters

    sim_rng = audited_generator(args.seed)
    if args.heavy_hitters is not None:
        domain = 1 << args.domain_bits
        values = np.minimum(
            sim_rng.zipf(args.zipf, size=args.devices) - 1, domain - 1
        )
        # Scatter the ranks across the domain so prefixes aren't trivially
        # clustered at zero.
        perm = sim_rng.permutation(domain)
        values = perm[values]
        result = pem_heavy_hitters(
            values, args.domain_bits, args.epsilon, args.heavy_hitters,
            oracle=args.oracle, seed=args.seed,
        )
        print(
            f"heavy hitters: top-{args.heavy_hitters} of a 2^{args.domain_bits} "
            f"domain, oracle={args.oracle}, eps={args.epsilon}, "
            f"n={args.devices}, levels={len(result.levels)}"
        )
        true_counts = np.bincount(values, minlength=domain)
        rows = [
            [f"{item}", f"{freq:.4f}", f"{se:.4f}",
             f"{true_counts[item] / args.devices:.4f}"]
            for item, freq, se in zip(
                result.items, result.frequencies, result.std_errors
            )
        ]
        print(render_table(["value", "est freq", "std err", "true freq"], rows))
        return 0

    truth = np.minimum(
        sim_rng.zipf(args.zipf, size=(args.epochs, args.devices)) - 1,
        args.categories - 1,
    )
    plan = plan_shards(args.devices, args.shards)
    result = run_fleet_categorical(
        truth,
        args.categories,
        args.epsilon,
        oracle=args.oracle,
        dropout=args.dropout,
        rng=audited_generator(args.seed + 1),
        source_seed=args.seed,
        workers=args.workers,
        shards=args.shards,
    )
    arm = result.oracle
    print(
        f"oracle: {arm.name}, d={args.categories}, eps={args.epsilon} "
        f"(exact {arm.exact_epsilon():.4f}), {arm.report_bits} bits/report, "
        f"{args.devices} devices x {args.epochs} epochs, "
        f"shards={plan.n_shards}, workers={args.workers}"
    )
    for epoch, est in zip(result.server.categorical_epochs, result.estimates):
        err = float(np.abs(est.frequencies - result.true_frequencies[epoch]).max())
        # dplint: allow[DPL006] -- utility report: `truth` is synthesized
        # above by the audited sim generator, not sensor data; printing
        # the estimate-vs-truth error is the point of the demo.
        print(
            f"  epoch {epoch}: n={est.n}  max |f_hat - f|={err:.4f}  "
            f"rare-item sigma={est.std_errors()[int(np.argmin(est.counts))]:.4f}"
        )
    print(f"mean abs error: {result.mean_abs_error:.4f}")
    # dplint: allow[DPL006] -- event/counter totals from the fleet result
    # container; the raw-data taint is the simulation truth it also holds.
    print(
        f"retained reports: {result.server.n_retained_reports} "
        f"(events={result.counters.n_events}, draws={result.counters.n_draws})"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .aggregation import AggregationServer
    from .runtime import JsonlSink
    from .service import IngestionService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        queue_capacity=args.queue_capacity,
        max_batch=args.max_batch,
        coerce=not args.strict,
        epoch_horizon=args.epoch_horizon,
        max_claimed_loss=args.max_claimed_loss,
        device_budget=args.device_budget,
        per_epoch_limit=args.per_epoch_limit,
        allow_shutdown=args.allow_shutdown,
    )
    aggregation = AggregationServer(streaming=not args.retain)
    extra_sinks = [JsonlSink(args.jsonl)] if args.jsonl else []
    service = IngestionService(aggregation, config=config, extra_sinks=extra_sinks)

    async def _serve() -> None:
        host, port = await service.start()
        mode = "retain" if args.retain else "streaming"
        print(f"listening on {host}:{port} ({mode} aggregation, "
              f"queue={config.queue_capacity}, "
              f"per-epoch-limit={config.per_epoch_limit})", flush=True)
        try:
            await service.wait_stopped()
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted; stopping", file=sys.stderr)
    finally:
        for sink in extra_sinks:
            sink.close()
    summary = service.counters.ingest_summary()
    print(
        f"served {summary['events']} decisions — "
        f"admitted {summary['reports_admitted']} reports "
        f"({summary['reports_repaired']} repaired), "
        f"blocked {summary['reports_blocked']}, busy {summary['busy']}, "
        f"internal errors {summary['internal_errors']}"
    )
    return 0 if summary["internal_errors"] == 0 else 1


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError
    from .service import IngestClient, run_load

    host, sep, port_text = args.connect.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"--connect needs HOST:PORT, got {args.connect!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(f"--connect port must be an integer, "
                                 f"got {port_text!r}")
    report = run_load(
        host,
        port,
        batches=args.batches,
        batch_size=args.batch_size,
        epochs=args.epochs,
        claimed_loss=args.claimed_loss,
        value_range=(args.range[0], args.range[1]),
        seed=args.seed,
        wire=args.wire,
        pipeline=args.pipeline,
    )
    print(report.describe())
    if args.shutdown_after:
        with IngestClient(host, port) as client:
            reply = client.shutdown()
        print(f"shutdown: {reply.get('status')}")
    internal_errors = report.server_metrics.get("internal_errors", 0)
    if internal_errors:
        print(f"error: {internal_errors} internal admission error(s)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .runtime.trace import run_replay, run_selfcheck

    if args.selfcheck:
        return run_selfcheck(jsonl_path=args.jsonl)
    return run_replay(args.replay, limit=args.limit)


_COMMANDS = {
    "verify": _cmd_verify,
    "calibrate": _cmd_calibrate,
    "noise": _cmd_noise,
    "datasets": _cmd_datasets,
    "latency": _cmd_latency,
    "selftest": _cmd_selftest,
    "lint": _cmd_lint,
    "kernels": _cmd_kernels,
    "fleet": _cmd_fleet,
    "oracle": _cmd_oracle,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "trace": _cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
