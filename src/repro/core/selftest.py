"""Built-in self-test (BIST) for the DP-Box privacy datapath.

The paper's case for hardware support is *integrity*: "implementing
privacy in custom hardware is the only way to guarantee that it is not
tampered with" (Section III-D).  A privacy block that silently emits
biased or stuck noise is worse than none — the host keeps publishing
"noised" values that no longer hide anything.  Real secure peripherals
pair that argument with a power-on self-test; this module provides one:

* **URNG health** — monobit (frequency) test, runs test, and a per-bit
  bias scan over the raw Tausworthe output: catches stuck-at faults,
  missing entropy, and correlated bits.
* **Logarithm unit check** — CORDIC spot vectors against exact ``ln``.
* **Noise-shape check** — a chi-square test of sampled noise against the
  *exact* PMF of the configured generator: catches datapath faults that
  leave the URNG healthy but corrupt the transform.

``run_selftest`` aggregates everything into a :class:`SelfTestReport`.
The fault-injection tests drive each check with a sabotaged component
and assert detection.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..rng.cordic import CordicLn
from ..rng.laplace_fxp import FxpLaplaceConfig, FxpLaplaceRng
from ..rng.urng import UniformCodeSource

__all__ = [
    "CheckResult",
    "SelfTestReport",
    "monobit_check",
    "runs_check",
    "bit_bias_scan",
    "cordic_check",
    "noise_shape_check",
    "run_selftest",
]

# Standard-normal two-sided 1e-4 quantile: generous enough that a healthy
# generator essentially never fails, tight enough to catch real faults.
_Z_LIMIT = 3.89


@dataclasses.dataclass(frozen=True)
class CheckResult:
    """Outcome of one self-test check."""

    name: str
    passed: bool
    statistic: float
    limit: float
    detail: str = ""

    def describe(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: stat={self.statistic:.3g} limit={self.limit:.3g} {self.detail}"


@dataclasses.dataclass(frozen=True)
class SelfTestReport:
    """All checks plus the aggregate verdict."""

    checks: List[CheckResult]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def describe(self) -> str:
        lines = [c.describe() for c in self.checks]
        lines.append(f"=> self-test {'PASSED' if self.passed else 'FAILED'}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# URNG health
# ---------------------------------------------------------------------------
def _bits_from_source(source: UniformCodeSource, n_bits: int, width: int = 16) -> np.ndarray:
    codes = source.uniform_codes(-(-n_bits // width), width) - 1
    bits = ((codes[:, None] >> np.arange(width)) & 1).reshape(-1)
    return bits[:n_bits].astype(np.int64)


def monobit_check(source: UniformCodeSource, n_bits: int = 65536) -> CheckResult:
    """NIST-style frequency test: ones fraction within sampling error."""
    if n_bits < 1024:
        raise ConfigurationError("need at least 1024 bits")
    bits = _bits_from_source(source, n_bits)
    z = abs(bits.sum() - n_bits / 2) / math.sqrt(n_bits / 4)
    return CheckResult(
        name="urng-monobit",
        passed=z <= _Z_LIMIT,
        statistic=float(z),
        limit=_Z_LIMIT,
        detail=f"ones={bits.mean():.4f}",
    )


def runs_check(source: UniformCodeSource, n_bits: int = 65536) -> CheckResult:
    """Wald–Wolfowitz runs test: transition count near n/2."""
    if n_bits < 1024:
        raise ConfigurationError("need at least 1024 bits")
    bits = _bits_from_source(source, n_bits)
    pi = bits.mean()
    if pi in (0.0, 1.0):
        return CheckResult("urng-runs", False, float("inf"), _Z_LIMIT, "constant")
    runs = 1 + int(np.count_nonzero(bits[1:] != bits[:-1]))
    expected = 2 * n_bits * pi * (1 - pi)
    z = abs(runs - expected) / (2 * math.sqrt(n_bits) * pi * (1 - pi))
    return CheckResult(
        name="urng-runs",
        passed=z <= _Z_LIMIT,
        statistic=float(z),
        limit=_Z_LIMIT,
        detail=f"runs={runs}",
    )


def bit_bias_scan(
    source: UniformCodeSource, width: int = 16, n_codes: int = 8192
) -> CheckResult:
    """Per-bit-position bias: catches a stuck or weakly-toggling bit line."""
    codes = source.uniform_codes(n_codes, width) - 1
    positions = ((codes[:, None] >> np.arange(width)) & 1).astype(float)
    means = positions.mean(axis=0)
    z = np.abs(means - 0.5) / math.sqrt(0.25 / n_codes)
    worst = int(np.argmax(z))
    return CheckResult(
        name="urng-bit-bias",
        passed=float(z.max()) <= _Z_LIMIT + 1.0,  # Bonferroni slack over positions
        statistic=float(z.max()),
        limit=_Z_LIMIT + 1.0,
        detail=f"worst bit {worst} mean={means[worst]:.4f}",
    )


# ---------------------------------------------------------------------------
# Datapath checks
# ---------------------------------------------------------------------------
def cordic_check(
    unit: Optional[CordicLn] = None, input_bits: int = 12, tolerance: float = 1e-4
) -> CheckResult:
    """Spot-check the log unit against exact ``ln`` over a code sweep."""
    unit = unit or CordicLn(frac_bits=24, n_iterations=24)
    err = unit.max_abs_error(input_bits, sample_every=7)
    return CheckResult(
        name="cordic-ln",
        passed=err <= tolerance,
        statistic=float(err),
        limit=tolerance,
    )


def noise_shape_check(
    rng: FxpLaplaceRng,
    n_samples: int = 20000,
    significance_chi2_per_dof: float = 1.6,
) -> CheckResult:
    """Chi-square of sampled noise vs the generator's exact PMF.

    Bins with expected count < 8 are pooled into their neighbour so the
    chi-square approximation holds.
    """
    if n_samples < 2000:
        raise ConfigurationError("need at least 2000 samples")
    pmf = rng.exact_pmf()
    samples = rng.sample_codes(n_samples)
    # Samples outside the reference support are themselves a fault
    # symptom; fold them into the edge bins where the chi-square will
    # flag the excess.
    idx = np.clip(samples - pmf.min_k, 0, pmf.probs.size - 1)
    counts = np.bincount(idx, minlength=pmf.probs.size).astype(float)
    expected = pmf.probs * n_samples
    # Pool sparse bins left to right.
    pooled_obs: List[float] = []
    pooled_exp: List[float] = []
    acc_o = acc_e = 0.0
    for o, e in zip(counts, expected):
        acc_o += o
        acc_e += e
        if acc_e >= 8.0:
            pooled_obs.append(acc_o)
            pooled_exp.append(acc_e)
            acc_o = acc_e = 0.0
    if acc_e > 0 and pooled_exp:
        pooled_obs[-1] += acc_o
        pooled_exp[-1] += acc_e
    obs = np.asarray(pooled_obs)
    exp = np.asarray(pooled_exp)
    dof = max(obs.size - 1, 1)
    chi2 = float(((obs - exp) ** 2 / exp).sum())
    stat = chi2 / dof
    return CheckResult(
        name="noise-shape",
        passed=stat <= significance_chi2_per_dof,
        statistic=stat,
        limit=significance_chi2_per_dof,
        detail=f"chi2={chi2:.1f} dof={dof}",
    )


# ---------------------------------------------------------------------------
# Aggregate
# ---------------------------------------------------------------------------
def run_selftest(
    source: UniformCodeSource,
    noise_config: Optional[FxpLaplaceConfig] = None,
    log_unit: Optional[CordicLn] = None,
) -> SelfTestReport:
    """Power-on self-test: URNG health + log unit + noise shape."""
    checks = [
        monobit_check(source),
        runs_check(source),
        bit_bias_scan(source),
        cordic_check(log_unit),
    ]
    cfg = noise_config or FxpLaplaceConfig(
        input_bits=12, output_bits=16, delta=1 / 16, lam=2.0
    )
    checks.append(noise_shape_check(FxpLaplaceRng(cfg, source=source)))
    return SelfTestReport(checks=checks)
