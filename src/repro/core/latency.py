"""Latency accounting for DP-Box transactions (paper Fig. 11).

Aggregates :class:`~repro.core.dpbox.NoisingResult` streams into the
statistics the paper reports: average cycles per noising, broken down by
guard mode and dataset.  Also provides the *analytic* expected latency of
resampling (2 + expected extra draws) so experiments can be cross-checked
against closed form.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.resampling import ResamplingMechanism
from .dpbox import NoisingResult

__all__ = ["LatencyStats", "collect_latency", "expected_latency_cycles"]

#: Cycles of a guard-free noising: one register load + one generate.
BASE_NOISING_CYCLES = 2


@dataclasses.dataclass(frozen=True)
class LatencyStats:
    """Summary of observed noising latencies."""

    n: int
    mean_cycles: float
    max_cycles: int
    mean_draws: float
    p99_cycles: float

    @classmethod
    def from_results(cls, results: Iterable[NoisingResult]) -> "LatencyStats":
        cycles = np.array([r.cycles for r in results], dtype=float)
        if cycles.size == 0:
            raise ConfigurationError("no results to summarize")
        draws = np.array([r.draws for r in results], dtype=float)
        return cls(
            n=int(cycles.size),
            mean_cycles=float(cycles.mean()),
            max_cycles=int(cycles.max()),
            mean_draws=float(draws.mean()),
            p99_cycles=float(np.percentile(cycles, 99)),
        )


    @classmethod
    def from_events(cls, events: Iterable) -> "LatencyStats":
        """Summarize hardware latency from emitted ``ReleaseEvent``s.

        Only events carrying a cycle count (DP-Box noisings) contribute;
        mechanism-level releases have no hardware latency and are
        skipped.  This is how the Fig. 11 benchmarks consume the trace —
        no ad-hoc instrumentation of the box itself.
        """
        hw = [e for e in events if getattr(e, "cycles", None) is not None]
        if not hw:
            raise ConfigurationError("no hardware release events to summarize")
        cycles = np.array([e.cycles for e in hw], dtype=float)
        draws = np.array([e.draws for e in hw], dtype=float)
        return cls(
            n=int(cycles.size),
            mean_cycles=float(cycles.mean()),
            max_cycles=int(cycles.max()),
            mean_draws=float(draws.mean()),
            p99_cycles=float(np.percentile(cycles, 99)),
        )


def collect_latency(results: List[NoisingResult]) -> LatencyStats:
    """Convenience alias of :meth:`LatencyStats.from_results`."""
    return LatencyStats.from_results(results)


def expected_latency_cycles(mechanism: ResamplingMechanism, x: float) -> float:
    """Analytic expected DP-Box cycles to noise ``x`` with resampling.

    One load cycle plus a geometric number of generate cycles with
    success probability equal to the window acceptance probability:
    ``1 + 1/p_accept``.  Thresholding is always exactly
    :data:`BASE_NOISING_CYCLES`.
    """
    return 1.0 + mechanism.expected_draws(x)
