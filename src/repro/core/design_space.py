"""Datapath design-space exploration (paper Section III-D).

"We found that to support sensors with resolution up to 13 bits with
privacy parameter ε ≥ 0.1, we needed to use 20-bit fixed-point values."
This module makes that kind of sizing statement computable: given a
sensor resolution (the grid) and a privacy target, find the minimum URNG
width ``Bu`` for which a guard threshold *exists* — and, optionally, for
which the guard is also cheap (resampling acceptance above a floor).

The search is exact: each candidate width is checked by building the
exact noise PMF and running the exact threshold calibration.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..errors import CalibrationError, ConfigurationError
from ..privacy.loss import input_grid_codes
from ..privacy.thresholds import calibrate_threshold_exact
from ..rng.laplace_fxp import FxpLaplaceConfig, FxpLaplaceRng

__all__ = ["DesignPoint", "minimum_input_bits", "design_point"]


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One feasible datapath sizing."""

    input_bits: int
    epsilon: float
    delta: float
    threshold: float
    worst_loss_bound: float
    #: Exact single-draw acceptance probability at the range edge
    #: (resampling cost proxy); ``None`` for thresholding.
    edge_acceptance: Optional[float]


def design_point(
    d: float,
    epsilon: float,
    input_bits: int,
    range_frac_bits: int = 7,
    loss_multiple: float = 2.0,
    mode: str = "threshold",
) -> DesignPoint:
    """Calibrate one candidate sizing; raises CalibrationError if infeasible."""
    if d <= 0 or epsilon <= 0:
        raise ConfigurationError("d and epsilon must be positive")
    delta = d / (1 << range_frac_bits)
    cfg = FxpLaplaceConfig(
        input_bits=input_bits, output_bits=32, delta=delta, lam=d / epsilon
    )
    noise = FxpLaplaceRng(cfg).exact_pmf()
    codes = input_grid_codes(0.0, d, delta, n_points=5)
    threshold = calibrate_threshold_exact(
        noise, codes, loss_multiple * epsilon, mode=mode
    )
    acceptance: Optional[float] = None
    if mode == "resample":
        k_th = int(round(threshold / delta))
        window_mass = noise.shifted(0).prob_array(-k_th, codes[-1] + k_th).sum()
        acceptance = float(window_mass)
    return DesignPoint(
        input_bits=input_bits,
        epsilon=epsilon,
        delta=delta,
        threshold=threshold,
        worst_loss_bound=loss_multiple * epsilon,
        edge_acceptance=acceptance,
    )


def minimum_input_bits(
    d: float,
    epsilon: float,
    range_frac_bits: int = 7,
    loss_multiple: float = 2.0,
    mode: str = "threshold",
    min_acceptance: Optional[float] = None,
    max_bits: int = 26,
) -> DesignPoint:
    """Smallest ``Bu`` for which the privacy target is achievable.

    Feasibility means a calibrated guard threshold exists for loss bound
    ``loss_multiple·ε``; with ``min_acceptance`` set (resampling only),
    the single-draw acceptance at the range edge must also clear the
    floor (the energy-cost criterion).

    Raises :class:`CalibrationError` if no width up to ``max_bits`` works.
    """
    if min_acceptance is not None and mode != "resample":
        raise ConfigurationError("min_acceptance applies to resampling only")
    last_error: Optional[Exception] = None
    for bu in range(4, max_bits + 1):
        try:
            point = design_point(
                d,
                epsilon,
                input_bits=bu,
                range_frac_bits=range_frac_bits,
                loss_multiple=loss_multiple,
                mode=mode,
            )
        except CalibrationError as exc:
            last_error = exc
            continue
        if (
            min_acceptance is not None
            and point.edge_acceptance is not None
            and point.edge_acceptance < min_acceptance
        ):
            continue
        return point
    raise CalibrationError(
        f"no URNG width up to {max_bits} bits supports eps={epsilon} at "
        f"{range_frac_bits}-bit sensor resolution ({last_error})"
    )
