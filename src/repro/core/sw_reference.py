"""Software (MSP430-class) reference implementation of noising.

Section III-D compares DP-Box against doing the same noising in software
on the microcontroller: 4043 cycles for 20-bit fixed point, 1436 cycles
using half-precision floats.  This module provides

* :class:`SoftwareNoiser` — a *functional* pure-integer implementation of
  the full noising pipeline (Tausworthe URNG → CORDIC log → scale → round
  → add), numerically identical to the DP-Box datapath, that **counts
  abstract MSP430 cycles** per primitive operation as it runs;
* an op-cost table with documented per-primitive estimates for a
  multiplier-less 16-bit MCU, plus a calibration mode that scales the
  table so the fixed-point total matches the paper's measured 4043 cycles
  (the measured totals remain the source of truth for the energy model in
  :mod:`repro.core.energy`).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..rng.cordic import CordicLn
from ..rng.tausworthe import Taus88
from .energy import SW_FLOAT_CYCLES, SW_FXP_CYCLES

__all__ = ["MSP430CostTable", "SoftwareNoiser", "paper_cycle_counts"]


@dataclasses.dataclass(frozen=True)
class MSP430CostTable:
    """Cycle costs of primitive operations on a 16-bit MSP430-class MCU.

    32-bit values occupy two machine words; shifts cost one cycle per bit
    per word.  The defaults are conservative textbook estimates for a
    multiplier-less device.
    """

    #: 32-bit add/sub/xor/and (two 16-bit ops + carry handling).
    alu32: float = 4.0
    #: One-bit shift of a 32-bit value.
    shift32_per_bit: float = 4.0
    #: 32-bit compare-and-branch.
    branch: float = 3.0
    #: Memory load/store of a 32-bit value.
    mem32: float = 6.0
    #: Call/return overhead for a leaf routine.
    call: float = 10.0

    def scaled(self, factor: float) -> "MSP430CostTable":
        """Uniformly scale every cost (used for calibration)."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return MSP430CostTable(
            alu32=self.alu32 * factor,
            shift32_per_bit=self.shift32_per_bit * factor,
            branch=self.branch * factor,
            mem32=self.mem32 * factor,
            call=self.call * factor,
        )


def paper_cycle_counts() -> Tuple[int, int]:
    """The measured (fixed-point, half-float) software cycle totals."""
    return SW_FXP_CYCLES, SW_FLOAT_CYCLES


class SoftwareNoiser:
    """Pure-integer software noising with per-operation cycle accounting."""

    def __init__(
        self,
        input_bits: int = 17,
        frac_bits: int = 20,
        cordic_iterations: int = 20,
        seed: int = 1234,
        cost_table: Optional[MSP430CostTable] = None,
        calibrate_to_paper: bool = False,
    ):
        self.input_bits = input_bits
        self.frac_bits = frac_bits
        self._urng = Taus88(seed=seed)
        self._cordic = CordicLn(frac_bits=frac_bits, n_iterations=cordic_iterations)
        self.costs = cost_table or MSP430CostTable()
        self.cycles = 0
        if calibrate_to_paper:
            raw = self._dry_run_cycles()
            self.costs = self.costs.scaled(SW_FXP_CYCLES / raw)

    # ------------------------------------------------------------------
    # Cycle accounting helpers
    # ------------------------------------------------------------------
    def _charge_alu(self, n: int = 1) -> None:
        self.cycles += n * self.costs.alu32

    def _charge_shift(self, bits: int) -> None:
        self.cycles += max(bits, 1) * self.costs.shift32_per_bit

    def _charge_branch(self, n: int = 1) -> None:
        self.cycles += n * self.costs.branch

    def _charge_mem(self, n: int = 1) -> None:
        self.cycles += n * self.costs.mem32

    def _charge_call(self, n: int = 1) -> None:
        self.cycles += n * self.costs.call

    # ------------------------------------------------------------------
    # The noising pipeline (functionally identical to the DP-Box path)
    # ------------------------------------------------------------------
    def _taus_step(self) -> int:
        """One Tausworthe output, charging its constituent operations."""
        # Per component: two multi-bit shifts, two xors, one and.
        for shift_a, shift_b in ((13, 19), (2, 25), (3, 11)):
            self._charge_shift(shift_a)
            self._charge_shift(shift_b)
            self._charge_alu(3)
            self._charge_shift(12)  # the masked-state shift
        self._charge_alu(2)  # final combining xors
        self._charge_mem(3)  # state load/store
        self._charge_call()
        return self._urng.next_u32()

    def _uniform_code(self) -> int:
        raw = self._taus_step() >> (32 - self.input_bits)
        self._charge_shift(32 - self.input_bits)
        self._charge_branch()
        return raw if raw != 0 else (1 << self.input_bits)

    def _cordic_ln(self, m: int) -> int:
        """Fixed-point ln(m·2^-Bu), charging the CORDIC iterations."""
        self._charge_call()
        # Normalization: find the leading one (bit scan loop).
        j = m.bit_length() - 1
        self._charge_branch(max(j, 1))
        self._charge_shift(abs(self.frac_bits - j))
        # Iterations: two variable shifts + three adds + one branch each.
        for shift in self._cordic.schedule:
            self._charge_shift(shift)
            self._charge_shift(shift)
            self._charge_alu(3)
            self._charge_branch()
        self._charge_alu(2)  # 2*z and the (j - Bu)·ln2 correction
        return self._cordic.ln_uniform_code(m, self.input_bits)

    def noise_value(
        self, sensor_code: int, lam_shift: int, delta_shift: int
    ) -> Tuple[int, float]:
        """Noise a sensor code; returns (noised code, cycles consumed).

        ``lam_shift`` realizes the ``λ = d·2**nm`` scaling as a shift
        (eq. 19); ``delta_shift`` converts from the log grid down to the
        output grid.  All arithmetic is integer.
        """
        start = self.cycles
        m = self._uniform_code()
        ln_code = self._cordic_ln(m)  # negative, frac_bits grid
        # magnitude = -λ·ln(u): shift-based scaling.
        mag = (-ln_code) << lam_shift
        self._charge_shift(lam_shift)
        # Round to the output grid (Δ = 2**delta_shift on the log grid).
        half = 1 << (delta_shift - 1) if delta_shift > 0 else 0
        k = (mag + half) >> delta_shift
        self._charge_alu()
        self._charge_shift(max(delta_shift, 1))
        # Random sign from one more URNG bit.
        sign_bit = self._taus_step() & 1
        self._charge_alu()
        noised = sensor_code + (-k if sign_bit else k)
        self._charge_alu()
        self._charge_mem(2)  # read sensor value, write result
        return noised, self.cycles - start

    # ------------------------------------------------------------------
    def _dry_run_cycles(self) -> float:
        """Cycle count of one noising with the current (unscaled) table."""
        saved_urng = Taus88.from_state(*self._urng.state)
        saved_cycles = self.cycles
        self.cycles = 0
        _, cycles = self.noise_value(0, lam_shift=1, delta_shift=8)
        self._urng = saved_urng
        self.cycles = saved_cycles
        return cycles

    def average_cycles(self, n: int = 32) -> float:
        """Average cycles per noising over ``n`` runs."""
        total = 0
        for _ in range(n):
            _, c = self.noise_value(0, lam_shift=1, delta_shift=8)
            total += c
        return total / n
