"""Static DP-Box configuration.

Collects every synthesis-time parameter of the hardware: datapath bit
widths, the guard mode, the loss-bound multiple used for threshold
calibration, the budget-segment levels (Fig. 8), and behavioural options
(caching on exhaustion, timing-channel mitigation).

Run-time parameters — ε exponent, sensor value, range — arrive over the
command port instead (see :mod:`repro.core.dpbox`).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Tuple

from ..errors import ConfigurationError

__all__ = ["DPBoxConfig", "GuardMode", "validate_epsilon_exponent"]


class GuardMode(enum.Enum):
    """Which guard the DP-Box applies to out-of-window outputs."""

    RESAMPLE = "resample"
    THRESHOLD = "threshold"

    def toggled(self) -> "GuardMode":
        """The other mode (the Set Threshold command toggles)."""
        return GuardMode.THRESHOLD if self is GuardMode.RESAMPLE else GuardMode.RESAMPLE


@dataclasses.dataclass(frozen=True)
class DPBoxConfig:
    """Synthesis-time parameters of a DP-Box instance."""

    #: URNG output width ``Bu``.
    input_bits: int = 17
    #: Signed noised-output width ``By`` (paper: 20-bit datapath).
    output_bits: int = 20
    #: Fractional bits of the noise grid relative to the sensor range:
    #: ``Δ = d / 2**range_frac_bits``.
    range_frac_bits: int = 7
    #: Guard mode selected at reset (Set Threshold toggles it).
    guard_mode: GuardMode = GuardMode.THRESHOLD
    #: Loss-bound multiple ``n``: guards are calibrated to loss ``n·ε``.
    loss_multiple: float = 2.0
    #: Budget-segment levels as multiples of ε, ascending (Fig. 8).  The
    #: first level also caps the in-range segment charge.
    segment_levels: Tuple[float, ...] = (1.0, 1.25, 1.5, 1.75, 2.0)
    #: Return the cached output once the budget is exhausted (Section
    #: III-C); when False the DP-Box halts (raises) instead.
    cache_on_exhaustion: bool = True
    #: Draw a fixed number of noise samples per request and select the
    #: first acceptable one, closing the resampling timing channel
    #: (Section IV-C).  0 disables the mitigation.
    fixed_resample_draws: int = 0
    #: Use the bit-true CORDIC logarithm unit instead of an exact float
    #: log (Section IV-B: "implementing a CORDIC logarithm function").
    #: Threshold calibration and segment tables are then computed on the
    #: CORDIC datapath's own enumerated PMF, so the guarantee is for the
    #: hardware actually deployed.
    use_cordic_log: bool = False
    #: Fractional bits of the CORDIC datapath (ignored unless enabled).
    cordic_frac_bits: int = 24
    #: Clock frequency used for latency/energy conversion.
    frequency_hz: float = 16e6

    def __post_init__(self) -> None:
        if not 2 <= self.input_bits <= 40:
            raise ConfigurationError("input_bits must be in 2..40")
        if not 4 <= self.output_bits <= 40:
            raise ConfigurationError("output_bits must be in 4..40")
        if not 1 <= self.range_frac_bits <= 16:
            raise ConfigurationError("range_frac_bits must be in 1..16")
        if self.loss_multiple <= 1.0:
            raise ConfigurationError("loss_multiple must exceed 1")
        levels = tuple(self.segment_levels)
        if not levels or any(l <= 0 for l in levels):
            raise ConfigurationError("segment levels must be positive")
        if list(levels) != sorted(levels):
            raise ConfigurationError("segment levels must be ascending")
        if levels[-1] > self.loss_multiple + 1e-12:
            raise ConfigurationError(
                "segment levels cannot exceed the calibrated loss multiple"
            )
        if self.fixed_resample_draws < 0:
            raise ConfigurationError("fixed_resample_draws must be >= 0")
        if not 8 <= self.cordic_frac_bits <= 32:
            raise ConfigurationError("cordic_frac_bits must be in 8..32")
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")

    def delta_for_range(self, d: float) -> float:
        """Noise grid step for a sensor range of length ``d``."""
        if d <= 0:
            raise ConfigurationError("range length must be positive")
        return d / float(1 << self.range_frac_bits)


def validate_epsilon_exponent(nm: int) -> None:
    """``ε = 2**-nm`` (eq. 19) must keep the scale multiply a left shift."""
    if not 0 <= nm <= 8:
        raise ConfigurationError("epsilon exponent nm must be in 0..8")
