"""DP-Box operating phases (paper Section IV-C)."""

from __future__ import annotations

import enum

__all__ = ["Phase"]


class Phase(enum.Enum):
    """The three phases of DP-Box operation.

    INITIALIZATION
        Entered at power-up (secure boot window).  Budget and
        replenishment period are configurable; leaving this phase locks
        them until the system is power-cycled.
    WAITING
        Idle from the processor's viewpoint, but internally tracking the
        replenishment timer and prefetching the next Laplace sample so
        noising can complete in a single cycle.
    NOISING
        Computes ``y = x + s_f·l_u``, applies the guard (clamp, or
        resample at one extra cycle per redraw), updates the budget, and
        raises the ready flag.
    """

    INITIALIZATION = "initialization"
    WAITING = "waiting"
    NOISING = "noising"
