"""Multi-sensor DP-Box with a shared privacy budget (paper Section IV).

"If there is more than one sensor, there also may need to be a hardware
mechanism for sharing the budget between all sensors since the readings
of different sensors could be combined to compromise privacy."

:class:`MultiSensorDPBox` manages N sensor channels.  Each channel has
its own guarded mechanism (range, ε, mode, exact segment table) but all
channels draw from **one** budget: the composition theorem makes losses
about the *same individual* additive across sensors, so per-sensor
budgets of B each would hand a cross-sensor adversary N·B of loss about
a quantity the sensors jointly measure.  Per-channel output caches keep
service available after exhaustion, exactly as in the single-sensor box.

This model sits at the mechanism level (vectorizable, exact analysis);
the cycle-level single-channel model is :class:`repro.core.dpbox.DPBox`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from ..errors import ConfigurationError
from ..mechanisms.base import SensorSpec
from ..mechanisms.resampling import ResamplingMechanism
from ..mechanisms.thresholding import ThresholdingMechanism
from ..privacy.accountant import BudgetAccountant
from ..runtime import ReleasePipeline, ReplayCache, TableCharge, default_pipeline
from .config import GuardMode
from .segments import SegmentTable, build_segment_table

__all__ = ["ChannelConfig", "ChannelReply", "MultiSensorDPBox"]


@dataclasses.dataclass(frozen=True)
class ChannelConfig:
    """Per-sensor channel configuration."""

    name: str
    sensor: SensorSpec
    epsilon: float
    guard_mode: GuardMode = GuardMode.THRESHOLD
    loss_multiple: float = 2.0
    input_bits: int = 14
    segment_levels: tuple = (1.0, 1.5, 2.0)

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        if self.loss_multiple <= 1.0:
            raise ConfigurationError("loss_multiple must exceed 1")


@dataclasses.dataclass(frozen=True)
class ChannelReply:
    """One reply from a channel."""

    channel: str
    value: float
    charged: float
    from_cache: bool


class _Channel:
    """Internal per-channel state: mechanism + segment table + cache."""

    def __init__(self, config: ChannelConfig, pipeline: Optional[ReleasePipeline]):
        self.config = config
        mech_cls = (
            ResamplingMechanism
            if config.guard_mode is GuardMode.RESAMPLE
            else ThresholdingMechanism
        )
        self.mechanism = mech_cls(
            config.sensor,
            config.epsilon,
            loss_multiple=config.loss_multiple,
            input_bits=config.input_bits,
            pipeline=pipeline,
        )
        family = self.mechanism._family()
        self.table: SegmentTable = build_segment_table(
            family, config.epsilon, config.segment_levels
        )
        self.cache = ReplayCache()

    @property
    def cached_code(self) -> Optional[int]:
        """Last released code (``None`` before the first release)."""
        return None if self.cache.code is None else int(self.cache.code)

    def value_of(self, code: int) -> float:
        return code * self.mechanism.delta


class MultiSensorDPBox:
    """N guarded channels drawing on one shared privacy budget."""

    def __init__(
        self,
        channels: Dict[str, ChannelConfig] | list,
        budget: float,
        cache_on_exhaustion: bool = True,
        pipeline: Optional[ReleasePipeline] = None,
    ):
        if isinstance(channels, list):
            names = [c.name for c in channels]
            if len(set(names)) != len(names):
                raise ConfigurationError("channel names must be unique")
            channels = {c.name: c for c in channels}
        if not channels:
            raise ConfigurationError("need at least one channel")
        self._pipeline = pipeline
        self._channels = {
            name: _Channel(cfg, pipeline) for name, cfg in channels.items()
        }
        self.accountant = BudgetAccountant(budget)
        self.cache_on_exhaustion = cache_on_exhaustion
        self.n_fresh = 0
        self.n_cached = 0

    # ------------------------------------------------------------------
    @property
    def channel_names(self) -> list:
        """Configured channel names."""
        return list(self._channels)

    @property
    def remaining_budget(self) -> float:
        """Shared budget still available."""
        return self.accountant.remaining

    def channel(self, name: str) -> _Channel:
        """Access a channel's internals (mechanism, segment table)."""
        if name not in self._channels:
            raise ConfigurationError(f"unknown channel {name!r}")
        return self._channels[name]

    def replenish(self) -> None:
        """Restore the shared budget (new accounting period)."""
        self.accountant.reset()

    @property
    def pipeline(self) -> ReleasePipeline:
        """The release pipeline all channels emit through."""
        return self._pipeline if self._pipeline is not None else default_pipeline()

    # ------------------------------------------------------------------
    def request(self, channel: str, x: float) -> ChannelReply:
        """Noise a reading on a channel, charging the shared budget.

        One pipeline pass: the channel mechanism draws and guards, then
        :class:`~repro.runtime.TableCharge` charges the realized output's
        segment loss (Algorithm 1) against the *shared* accountant, or
        replays the per-channel cache after exhaustion.  The emitted
        event carries the channel name and the shared budget remaining;
        on a refused charge with an empty cache, an ``exhausted=True``
        event precedes the :class:`~repro.errors.BudgetExhaustedError`.
        """
        ch = self.channel(channel)
        outcome = ch.mechanism.release(
            np.asarray([x]),
            accounting=TableCharge(
                self.accountant,
                ch.table,
                ch.cache if self.cache_on_exhaustion else None,
            ),
            channel=channel,
        )
        from_cache = bool(outcome.cache_hits[0])
        self.n_fresh += int(not from_cache)
        self.n_cached += int(from_cache)
        return ChannelReply(
            channel=channel,
            value=ch.value_of(int(outcome.codes[0])),
            charged=float(outcome.charged[0]),
            from_cache=from_cache,
        )

    def total_disclosed_loss(self) -> float:
        """Composition-theorem total loss released so far this period."""
        return self.accountant.spent
