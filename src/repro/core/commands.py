"""DP-Box command-port encodings (paper Section IV-A).

The main processor drives DP-Box through a 3-bit command port plus a
signed value port.  Several commands are overloaded during the
initialization phase (budget / replenishment-period configuration), which
is faithful to the paper's interface and modelled in the FSM.
"""

from __future__ import annotations

import enum

__all__ = ["Command"]


class Command(enum.IntEnum):
    """3-bit command encodings on the DP-Box command port."""

    #: Begin noising with the loaded x, ε, and range.  In the
    #: initialization phase: lock budget/replenishment and go to WAITING.
    START_NOISING = 0b000

    #: Load the privacy level exponent ``nm`` (``ε = 2**-nm``, eq. 19).
    #: In the initialization phase: load the privacy budget.
    SET_EPSILON = 0b001

    #: Load the sensor value to be noised.
    SET_SENSOR_VALUE = 0b010

    #: Load the sensor range upper bound ``r_u``.  In the initialization
    #: phase: load the budget replenishment period (cycles).
    SET_RANGE_UPPER = 0b011

    #: Load the sensor range lower bound ``r_l``.
    SET_RANGE_LOWER = 0b100

    #: Toggle between resampling and thresholding guards.
    SET_THRESHOLD = 0b101

    #: Hold the DP-Box idle (without it, noising restarts immediately).
    DO_NOTHING = 0b110
