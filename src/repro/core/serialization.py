"""Configuration (de)serialization.

Reproducible experiments need configurations on disk: these helpers
round-trip the library's frozen config dataclasses through plain JSON
(enums by value, tuples as lists).  Unknown keys are rejected rather than
ignored — a typo in a privacy configuration must not silently fall back
to a default.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, Type, TypeVar, Union

from ..errors import ConfigurationError
from ..mechanisms.base import SensorSpec
from ..rng.laplace_fxp import FxpLaplaceConfig
from .config import DPBoxConfig, GuardMode
from .multisensor import ChannelConfig

__all__ = ["config_to_dict", "config_from_dict", "save_config", "load_config"]

T = TypeVar("T")

#: Dataclasses this module knows how to round-trip, keyed by type name.
_REGISTRY: Dict[str, type] = {
    cls.__name__: cls
    for cls in (DPBoxConfig, FxpLaplaceConfig, ChannelConfig, SensorSpec)
}


def _encode_value(value: Any) -> Any:
    if isinstance(value, GuardMode):
        return value.value
    if isinstance(value, SensorSpec):
        return config_to_dict(value)
    if isinstance(value, tuple):
        return list(value)
    return value


def config_to_dict(config: Any) -> Dict[str, Any]:
    """Serialize a supported config dataclass to a plain dict.

    The dict carries a ``"type"`` discriminator so ``config_from_dict``
    can rebuild without being told the class.
    """
    name = type(config).__name__
    if name not in _REGISTRY:
        raise ConfigurationError(f"unsupported config type {name!r}")
    out: Dict[str, Any] = {"type": name}
    for field in dataclasses.fields(config):
        out[field.name] = _encode_value(getattr(config, field.name))
    return out


def _decode_field(cls: type, name: str, value: Any) -> Any:
    if cls is DPBoxConfig and name == "guard_mode":
        return GuardMode(value)
    if cls is ChannelConfig and name == "guard_mode":
        return GuardMode(value)
    if cls is ChannelConfig and name == "sensor":
        return config_from_dict(value, SensorSpec)
    if cls is DPBoxConfig and name == "segment_levels":
        return tuple(value)
    if cls is ChannelConfig and name == "segment_levels":
        return tuple(value)
    return value


def config_from_dict(data: Dict[str, Any], expected: Type[T] = None) -> T:
    """Rebuild a config dataclass from :func:`config_to_dict` output."""
    if not isinstance(data, dict) or "type" not in data:
        raise ConfigurationError("config dict must carry a 'type' discriminator")
    name = data["type"]
    if name not in _REGISTRY:
        raise ConfigurationError(f"unknown config type {name!r}")
    cls = _REGISTRY[name]
    if expected is not None and cls is not expected:
        raise ConfigurationError(
            f"expected a {expected.__name__}, got {name}"
        )
    field_names = {f.name for f in dataclasses.fields(cls)}
    payload = {k: v for k, v in data.items() if k != "type"}
    unknown = set(payload) - field_names
    if unknown:
        raise ConfigurationError(f"unknown {name} fields: {sorted(unknown)}")
    kwargs = {k: _decode_field(cls, k, v) for k, v in payload.items()}
    return cls(**kwargs)  # type: ignore[return-value]


def save_config(config: Any, path: Union[str, pathlib.Path]) -> None:
    """Write a config as pretty JSON."""
    pathlib.Path(path).write_text(json.dumps(config_to_dict(config), indent=2) + "\n")


def load_config(path: Union[str, pathlib.Path], expected: Type[T] = None) -> T:
    """Read a config back from JSON."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot load config from {path}: {exc}") from exc
    return config_from_dict(data, expected)
