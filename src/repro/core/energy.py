"""Area / power / energy model of DP-Box and its software alternatives.

The paper reports synthesis results for a 65 nm implementation (Section
V) and a software-vs-hardware energy comparison (Section III-D).  We have
no RTL toolchain in this environment, so — per the substitution policy in
DESIGN.md §4 — this module encodes the published constants and the
first-order arithmetic that connects them, attached to the cycle counts
our simulator produces.

Calibration note: the paper's two energy ratios (894× vs 20-bit
fixed-point software, 318× vs half-float software) are *mutually
consistent* with a single model

    E_sw = C_sw · E_mcu          E_hw = 4 · E_mcu + 2 · E_box

(4 conservatively-assumed MCU cycles for the write/read, 2 active DP-Box
cycles), which pins the per-cycle energy ratio at
``E_box/E_mcu ≈ 0.258``.  With the synthesized power of 158.3 µW at
16 MHz this gives ``E_mcu ≈ 38.3 pJ/cycle`` — a plausible ULP-MCU figure
— and reproduces both published ratios to within a percent.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError

__all__ = [
    "SynthesisPoint",
    "DPBOX_BASELINE",
    "DPBOX_RELAXED",
    "EnergyModel",
    "SW_FXP_CYCLES",
    "SW_FLOAT_CYCLES",
    "HW_MCU_CYCLES",
    "HW_BOX_ACTIVE_CYCLES",
    "BUDGET_LOGIC_OVERHEAD",
]

#: Cycles of the 20-bit fixed-point software noising loop on the MSP430.
SW_FXP_CYCLES = 4043
#: Cycles of the half-precision floating-point software loop.
SW_FLOAT_CYCLES = 1436
#: MCU cycles conservatively charged per hardware noising (one memory
#: write + one memory read instruction).
HW_MCU_CYCLES = 4
#: DP-Box active cycles per (non-resampled) noising.
HW_BOX_ACTIVE_CYCLES = 2
#: Fractional area overhead of embedding the budget-control logic.
BUDGET_LOGIC_OVERHEAD = 0.11


@dataclasses.dataclass(frozen=True)
class SynthesisPoint:
    """One synthesized DP-Box variant."""

    name: str
    gates: int
    critical_path_ns: float
    power_uw: float
    technology_nm: int = 65
    frequency_hz: float = 16e6

    def __post_init__(self) -> None:
        if min(self.gates, self.technology_nm) <= 0:
            raise ConfigurationError("gates/technology must be positive")
        if min(self.critical_path_ns, self.power_uw, self.frequency_hz) <= 0:
            raise ConfigurationError("timing/power must be positive")

    @property
    def max_frequency_hz(self) -> float:
        """Frequency limit implied by the critical path."""
        return 1e9 / self.critical_path_ns

    @property
    def energy_per_cycle_pj(self) -> float:
        """Active energy per clock cycle at the nominal frequency."""
        return (self.power_uw * 1e-6) / self.frequency_hz * 1e12

    def gates_with_budget_logic(self) -> int:
        """Gate count including the embedded budget controller (+11%)."""
        return int(round(self.gates * (1.0 + BUDGET_LOGIC_OVERHEAD)))

    def pipelined(self, stages: int, register_overhead: float = 0.06) -> "SynthesisPoint":
        """First-order pipelined variant (paper Section V: "pipelined
        variants reduced critical path length at the expense of area").

        Splitting the combinational CORDIC chain into ``stages`` stages
        divides the critical path (plus one flop delay of margin) and adds
        one pipeline register bank per extra stage (``register_overhead``
        of the gate count each).  Dynamic power grows with the added
        flops clocking every cycle.
        """
        if stages < 1:
            raise ConfigurationError("stages must be >= 1")
        if stages == 1:
            return self
        extra = register_overhead * (stages - 1)
        flop_delay_ns = 0.35  # setup+clk-to-q margin per added boundary, 65 nm
        return SynthesisPoint(
            name=f"{self.name}-pipe{stages}",
            gates=int(round(self.gates * (1.0 + extra))),
            critical_path_ns=self.critical_path_ns / stages + flop_delay_ns,
            power_uw=self.power_uw * (1.0 + 0.8 * extra),
            technology_nm=self.technology_nm,
            frequency_hz=self.frequency_hz,
        )


#: The primary synthesis result (Section V).
DPBOX_BASELINE = SynthesisPoint(
    name="baseline-16MHz", gates=10431, critical_path_ns=58.66, power_uw=158.3
)
#: The relaxed-timing variant reported alongside it.
DPBOX_RELAXED = SynthesisPoint(
    name="relaxed-30ns", gates=9621, critical_path_ns=30.0, power_uw=252.0
)


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Per-noising energy of the software and hardware implementations."""

    synthesis: SynthesisPoint = DPBOX_BASELINE
    #: MCU energy per cycle in pJ; default calibrated so the model
    #: reproduces the paper's 894×/318× ratios (see module docstring).
    mcu_energy_per_cycle_pj: float = 38.3

    def __post_init__(self) -> None:
        if self.mcu_energy_per_cycle_pj <= 0:
            raise ConfigurationError("MCU energy must be positive")

    # ------------------------------------------------------------------
    def software_energy_pj(self, cycles: int) -> float:
        """Energy of a software noising taking ``cycles`` MCU cycles."""
        if cycles <= 0:
            raise ConfigurationError("cycle count must be positive")
        return cycles * self.mcu_energy_per_cycle_pj

    def hardware_energy_pj(self, box_cycles: int = HW_BOX_ACTIVE_CYCLES) -> float:
        """Energy of one hardware noising: MCU handshake + DP-Box active.

        ``box_cycles`` grows with resampling (one extra cycle per redraw).
        """
        if box_cycles <= 0:
            raise ConfigurationError("cycle count must be positive")
        return (
            HW_MCU_CYCLES * self.mcu_energy_per_cycle_pj
            + box_cycles * self.synthesis.energy_per_cycle_pj
        )

    # ------------------------------------------------------------------
    def ratio_vs_fxp_software(self, box_cycles: int = HW_BOX_ACTIVE_CYCLES) -> float:
        """Energy win over the 20-bit fixed-point software loop (~894×)."""
        return self.software_energy_pj(SW_FXP_CYCLES) / self.hardware_energy_pj(box_cycles)

    def ratio_vs_float_software(self, box_cycles: int = HW_BOX_ACTIVE_CYCLES) -> float:
        """Energy win over the half-float software loop (~318×)."""
        return self.software_energy_pj(SW_FLOAT_CYCLES) / self.hardware_energy_pj(box_cycles)

    def latency_seconds(self, cycles: int) -> float:
        """Wall time of ``cycles`` at the synthesis frequency."""
        return cycles / self.synthesis.frequency_hz
