"""DP-Box budget engine (paper Algorithm 1 + caching + replenishment).

Implements the output-adaptive accounting of Section III-C: each noising
request is charged the loss of the segment its realized output falls in
(:class:`~repro.core.segments.SegmentTable`), debited from a fixed budget.
Once the budget cannot cover a request, the engine either replays the
cached last output (no additional loss — the paper's practical answer to
budget overruns) or halts.  A cycle-driven replenishment timer restores
the budget periodically.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..errors import BudgetExhaustedError, ConfigurationError
from ..privacy.accountant import BudgetAccountant
from .segments import SegmentTable

__all__ = ["BudgetEngine", "BudgetDecision"]


@dataclasses.dataclass(frozen=True)
class BudgetDecision:
    """Outcome of presenting a realized output to the budget engine."""

    #: Output code to report (the fresh one, or the cached one on overrun).
    k_out: int
    #: Loss actually charged (0 when served from cache).
    charged: float
    #: True when the reply came from the output cache.
    from_cache: bool


class BudgetEngine:
    """Segment-table budget accounting with caching and replenishment."""

    def __init__(
        self,
        table: SegmentTable,
        budget: float,
        replenish_period_cycles: Optional[int] = None,
        cache_on_exhaustion: bool = True,
    ):
        if budget <= 0:
            raise ConfigurationError("budget must be positive")
        if replenish_period_cycles is not None and replenish_period_cycles <= 0:
            raise ConfigurationError("replenishment period must be positive")
        self.table = table
        self.accountant = BudgetAccountant(budget)
        self.replenish_period_cycles = replenish_period_cycles
        self.cache_on_exhaustion = cache_on_exhaustion
        self._cached_output: Optional[int] = None
        self._cycles_since_replenish = 0
        self.n_cached_replies = 0
        self.n_fresh_replies = 0
        self.n_replenishments = 0

    # ------------------------------------------------------------------
    @property
    def remaining(self) -> float:
        """Budget still available in the current period."""
        return self.accountant.remaining

    @property
    def exhausted_for(self) -> float:
        """Loss level below which no further query can be afforded."""
        return self.accountant.remaining

    def advance_cycles(self, n: int) -> None:
        """Account elapsed idle cycles; replenish when the period elapses.

        The DP-Box tracks this while in the waiting phase (Section
        IV-C.2).
        """
        if self.replenish_period_cycles is None:
            return
        self._cycles_since_replenish += n
        while self._cycles_since_replenish >= self.replenish_period_cycles:
            self._cycles_since_replenish -= self.replenish_period_cycles
            self.accountant.reset()
            self.n_replenishments += 1

    # ------------------------------------------------------------------
    def submit(self, k_out_fresh: int) -> BudgetDecision:
        """Charge for a freshly computed output, or fall back to cache.

        ``k_out_fresh`` is the output code the noising datapath produced;
        the engine decides whether the budget can pay for releasing it.
        """
        loss = self.table.loss_for_output(k_out_fresh)
        if self.accountant.can_spend(loss):
            self.accountant.spend(loss)
            self._cached_output = k_out_fresh
            self.n_fresh_replies += 1
            return BudgetDecision(k_out=k_out_fresh, charged=loss, from_cache=False)
        if self.cache_on_exhaustion and self._cached_output is not None:
            self.n_cached_replies += 1
            return BudgetDecision(
                k_out=self._cached_output, charged=0.0, from_cache=True
            )
        raise BudgetExhaustedError(
            f"budget cannot cover loss {loss:.4g} "
            f"(remaining {self.accountant.remaining:.4g}) and no cached output"
        )

    def submit_many(self, codes) -> list:
        """Batched :meth:`submit`: one vectorized segment lookup up front.

        Losses for the whole batch come from
        :meth:`~repro.core.segments.SegmentTable.losses_for_outputs`;
        the sequential spend/cache decisions (which are inherently
        order-dependent) then consume the precomputed array.  Returns
        one :class:`BudgetDecision` per code, in order.
        """
        codes = [int(c) for c in np.atleast_1d(codes)]
        losses = self.table.losses_for_outputs(np.asarray(codes, dtype=np.int64))
        decisions = []
        for k_out_fresh, loss in zip(codes, losses):
            loss = float(loss)
            if self.accountant.can_spend(loss):
                self.accountant.spend(loss)
                self._cached_output = k_out_fresh
                self.n_fresh_replies += 1
                decisions.append(
                    BudgetDecision(k_out=k_out_fresh, charged=loss, from_cache=False)
                )
            elif self.cache_on_exhaustion and self._cached_output is not None:
                self.n_cached_replies += 1
                decisions.append(
                    BudgetDecision(
                        k_out=self._cached_output, charged=0.0, from_cache=True
                    )
                )
            else:
                raise BudgetExhaustedError(
                    f"budget cannot cover loss {loss:.4g} "
                    f"(remaining {self.accountant.remaining:.4g}) and no cached output"
                )
        return decisions
