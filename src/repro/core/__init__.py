"""The paper's primary contribution: the DP-Box hardware module.

Cycle-level DP-Box model (command FSM, guards, prefetching, latency),
Algorithm-1 budget control with exact Fig.-8 segment tables, the
area/power/energy model, and the software reference implementation used
for the hardware-vs-software comparison.
"""

from .budget import BudgetDecision, BudgetEngine
from .commands import Command
from .design_space import DesignPoint, design_point, minimum_input_bits
from .config import DPBoxConfig, GuardMode, validate_epsilon_exponent
from .dpbox import DPBox, DPBoxDriver, NoisingResult
from .energy import (
    BUDGET_LOGIC_OVERHEAD,
    DPBOX_BASELINE,
    DPBOX_RELAXED,
    HW_BOX_ACTIVE_CYCLES,
    HW_MCU_CYCLES,
    SW_FLOAT_CYCLES,
    SW_FXP_CYCLES,
    EnergyModel,
    SynthesisPoint,
)
from .fsm import Phase
from .multisensor import ChannelConfig, ChannelReply, MultiSensorDPBox
from .latency import BASE_NOISING_CYCLES, LatencyStats, collect_latency, expected_latency_cycles
from .segments import Segment, SegmentTable, build_segment_table
from .serialization import config_from_dict, config_to_dict, load_config, save_config
from .selftest import (
    CheckResult,
    SelfTestReport,
    bit_bias_scan,
    cordic_check,
    monobit_check,
    noise_shape_check,
    run_selftest,
    runs_check,
)
from .sw_reference import MSP430CostTable, SoftwareNoiser, paper_cycle_counts

__all__ = [
    "BudgetDecision",
    "BudgetEngine",
    "Command",
    "DesignPoint",
    "design_point",
    "minimum_input_bits",
    "DPBoxConfig",
    "GuardMode",
    "validate_epsilon_exponent",
    "DPBox",
    "DPBoxDriver",
    "NoisingResult",
    "BUDGET_LOGIC_OVERHEAD",
    "DPBOX_BASELINE",
    "DPBOX_RELAXED",
    "HW_BOX_ACTIVE_CYCLES",
    "HW_MCU_CYCLES",
    "SW_FLOAT_CYCLES",
    "SW_FXP_CYCLES",
    "EnergyModel",
    "SynthesisPoint",
    "Phase",
    "ChannelConfig",
    "ChannelReply",
    "MultiSensorDPBox",
    "BASE_NOISING_CYCLES",
    "LatencyStats",
    "collect_latency",
    "expected_latency_cycles",
    "Segment",
    "SegmentTable",
    "build_segment_table",
    "config_from_dict",
    "config_to_dict",
    "load_config",
    "save_config",
    "CheckResult",
    "SelfTestReport",
    "bit_bias_scan",
    "cordic_check",
    "monobit_check",
    "noise_shape_check",
    "run_selftest",
    "runs_check",
    "MSP430CostTable",
    "SoftwareNoiser",
    "paper_cycle_counts",
]
